//! **bgp-juice** — a full reproduction of *"BGP Security in Partial
//! Deployment: Is the Juice Worth the Squeeze?"* (Lychev, Goldberg,
//! Schapira; SIGCOMM 2013).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`topology`] — AS-graph substrate, Table 1 tiers, synthetic Internet
//!   generator, IXP augmentation, CAIDA serial-1 I/O;
//! * [`core`] — the paper's models and algorithms: security 1st/2nd/3rd
//!   routing policies, the Appendix B routing-outcome engine, the
//!   doomed/protectable/immune partition framework, downgrade/collateral
//!   analysis, the `H_{M,D}(S)` metric;
//! * [`proto`] — the event-driven message-level BGP/S\*BGP simulator
//!   (wedgies, convergence, link dynamics);
//! * [`sim`] — deployment scenarios, the parallel experiment harness and
//!   per-figure drivers;
//! * [`hardness`] — the Max-k-Security NP-hardness gadget and optimizers.
//!
//! # Quickstart
//!
//! ```
//! use bgp_juice::prelude::*;
//!
//! // A small synthetic Internet with the paper's UCLA-2012 shape.
//! let net = Internet::synthetic(1_000, 42);
//!
//! // Secure the Tier 1s, the 13 largest Tier 2s, and their stubs.
//! let step = scenario::tier12_step(&net, 13, 13);
//!
//! // How often does the "m, d" attack fail when security is 2nd?
//! let attackers = sample::sample_non_stubs(&net, 5, 7);
//! let dests = sample::sample_all(&net, 10, 8);
//! let pairs = sample::pairs(&attackers, &dests);
//! let h = runner::metric(
//!     &net,
//!     &pairs,
//!     &step.deployment,
//!     Policy::new(SecurityModel::Security2nd),
//!     Parallelism(1),
//! );
//! assert!(h.lower > 0.0 && h.upper <= 1.0);
//! ```
//!
//! See `README.md` for the architecture tour and the paper-to-crate
//! inventory. Measured-vs-paper results for every figure are regenerated
//! by `cargo run --release -p sbgp_bench --bin run_all` (one section per
//! figure/table on stdout).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sbgp_core as core;
pub use sbgp_hardness as hardness;
pub use sbgp_proto as proto;
pub use sbgp_sim as sim;
pub use sbgp_topology as topology;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use sbgp_core::{
        AttackDeltaEngine, AttackScenario, AttackStrategy, Bounds, CellSet, DeltaStats, Deployment,
        Engine, Fate, FusedDeltaEngine, FusedStats, HappyCount, LpVariant, MultiOutcome, Outcome,
        PairAnalysis, PairAnalyzer, PartitionComputer, Policy, PolicyCell, RouteClass,
        SecurityModel, SweepEngine, SweepStats,
    };
    pub use sbgp_sim::{runner, sample, scenario, stats, sweep, Internet, Parallelism};
    pub use sbgp_topology::{AsGraph, AsId, AsSet, GraphBuilder};
}
