//! Property tests for the paper's theorems on random valley-free
//! topologies.
//!
//! * **Theorem 2.1** — with consistent SecP priorities, BGP converges to a
//!   unique stable state regardless of message ordering.
//! * **Theorem 3.1** — under security 1st, a source whose normal secure
//!   route avoids the attacker keeps a secure route during the attack.
//! * **Theorem 6.1** — security 3rd is monotone: growing the deployment
//!   never turns a happy source unhappy.
//! * **Appendix E soundness** — immune/doomed predictions hold for every
//!   concrete deployment.
//! * **Appendix C bounds** — tie-break bounds are ordered and bracket the
//!   partition-derived limits.

use proptest::prelude::*;

use bgp_juice::prelude::*;
use bgp_juice::proto::{RunOutcome, Schedule, Simulator};

fn graph_from_codes(n: usize, codes: &[u8]) -> AsGraph {
    let mut b = GraphBuilder::new(n);
    let mut k = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            match codes[k] % 8 {
                0..=3 => {}
                4 => b.add_peering(AsId(i as u32), AsId(j as u32)).unwrap(),
                _ => b.add_provider(AsId(j as u32), AsId(i as u32)).unwrap(),
            }
            k += 1;
        }
    }
    b.build()
}

#[derive(Debug, Clone)]
struct Instance {
    n: usize,
    codes: Vec<u8>,
    secure_bits: Vec<bool>,
    extra_bits: Vec<bool>,
    attacker: usize,
    destination: usize,
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    (5usize..11).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        (
            Just(n),
            proptest::collection::vec(any::<u8>(), pairs),
            proptest::collection::vec(any::<bool>(), n),
            proptest::collection::vec(any::<bool>(), n),
            0..n,
            0..n,
        )
            .prop_map(
                |(n, codes, secure_bits, extra_bits, attacker, destination)| Instance {
                    n,
                    codes,
                    secure_bits,
                    extra_bits,
                    attacker,
                    destination,
                },
            )
    })
}

impl Instance {
    fn attack_pair(&self) -> Option<(AsId, AsId)> {
        if self.attacker == self.destination {
            None
        } else {
            Some((AsId(self.attacker as u32), AsId(self.destination as u32)))
        }
    }

    fn deployment(&self) -> Deployment {
        Deployment::full_from_iter(
            self.n,
            self.secure_bits
                .iter()
                .enumerate()
                .filter(|(_, &s)| s)
                .map(|(i, _)| AsId(i as u32)),
        )
    }

    /// A strict superset of [`Instance::deployment`].
    fn larger_deployment(&self) -> Deployment {
        let mut dep = self.deployment();
        for (i, &extra) in self.extra_bits.iter().enumerate() {
            if extra {
                dep.insert_full(AsId(i as u32));
            }
        }
        dep
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Theorem 2.1: any message schedule reaches the same stable state.
    #[test]
    fn theorem_2_1_unique_stable_state(inst in arb_instance()) {
        let graph = graph_from_codes(inst.n, &inst.codes);
        let deployment = inst.deployment();
        let scenario = match inst.attack_pair() {
            Some((m, d)) => AttackScenario::attack(m, d),
            None => AttackScenario::normal(AsId(inst.destination as u32)),
        };
        for model in SecurityModel::ALL {
            let mut reference: Option<Vec<Option<AsId>>> = None;
            for schedule in [Schedule::Fifo, Schedule::Random(1), Schedule::Random(99)] {
                let mut sim =
                    Simulator::new(&graph, &deployment, Policy::new(model), scenario);
                let out = sim.run(schedule, 2_000_000);
                prop_assert!(matches!(out, RunOutcome::Converged { .. }), "{model}");
                prop_assert!(sim.unstable_ases().is_empty(), "{model}");
                let snap = sim.next_hop_snapshot();
                match &reference {
                    None => reference = Some(snap),
                    Some(r) => prop_assert_eq!(&snap, r, "{} under {:?}", model, schedule),
                }
            }
        }
    }

    /// Theorem 3.1: no protocol downgrade under security 1st (unless the
    /// attacker sat on the normal route).
    #[test]
    fn theorem_3_1_no_downgrade_when_security_first(inst in arb_instance()) {
        let Some((m, d)) = inst.attack_pair() else { return Ok(()) };
        let graph = graph_from_codes(inst.n, &inst.codes);
        let deployment = inst.deployment();
        let policy = Policy::new(SecurityModel::Security1st);
        let mut engine = Engine::new(&graph);

        let normal: Vec<(bool, bool)> = {
            let o = engine.compute(AttackScenario::normal_marked(d, m), &deployment, policy);
            graph
                .ases()
                .map(|v| (o.uses_secure_route(v), o.may_traverse_mark(v)))
                .collect()
        };
        let o = engine.compute(AttackScenario::attack(m, d), &deployment, policy);
        for v in graph.ases() {
            if v == d || v == m {
                continue;
            }
            let (was_secure, via_m) = normal[v.index()];
            if was_secure && !via_m {
                prop_assert!(
                    o.uses_secure_route(v),
                    "{v} downgraded under security 1st: {inst:?}"
                );
                prop_assert!(o.flags(v).surely_happy());
            }
        }

        // The analyzer reports the same through its counters.
        let mut analyzer = PairAnalyzer::new(&graph);
        let a = analyzer.analyze(m, d, &deployment, policy);
        prop_assert_eq!(a.downgraded, a.downgraded_via_attacker);
    }

    /// Theorem 6.1: security 3rd is monotone in the deployment.
    #[test]
    fn theorem_6_1_security_third_is_monotone(inst in arb_instance()) {
        let Some((m, d)) = inst.attack_pair() else { return Ok(()) };
        let graph = graph_from_codes(inst.n, &inst.codes);
        let small = inst.deployment();
        let large = inst.larger_deployment();
        let policy = Policy::new(SecurityModel::Security3rd);
        let mut engine = Engine::new(&graph);
        let before: Vec<(bool, bool)> = {
            let o = engine.compute(AttackScenario::attack(m, d), &small, policy);
            graph
                .ases()
                .map(|v| {
                    let f = o.flags(v);
                    (f.surely_happy(), f.may_reach_destination())
                })
                .collect()
        };
        let o = engine.compute(AttackScenario::attack(m, d), &large, policy);
        for v in graph.ases() {
            if v == d || v == m {
                continue;
            }
            let (sure, may) = before[v.index()];
            if sure {
                prop_assert!(
                    o.flags(v).surely_happy(),
                    "{v} lost sure-happiness: {inst:?}"
                );
            }
            if may {
                prop_assert!(
                    o.flags(v).may_reach_destination(),
                    "{v} lost possible-happiness: {inst:?}"
                );
            }
        }

        // Corollary: zero collateral damage in the analyzer.
        let mut analyzer = PairAnalyzer::new(&graph);
        prop_assert_eq!(analyzer.analyze(m, d, &large, policy).collateral_damage, 0);
    }

    /// Appendix E: immune and doomed fates are sound for every deployment.
    #[test]
    fn partition_fates_are_deployment_sound(inst in arb_instance()) {
        let Some((m, d)) = inst.attack_pair() else { return Ok(()) };
        let graph = graph_from_codes(inst.n, &inst.codes);
        let mut computer = PartitionComputer::new(&graph);
        let mut engine = Engine::new(&graph);
        for model in SecurityModel::ALL {
            let policy = Policy::new(model);
            let fates = computer.compute(m, d, policy).to_vec();
            for deployment in [inst.deployment(), inst.larger_deployment(), Deployment::empty(inst.n)] {
                let o = engine.compute(AttackScenario::attack(m, d), &deployment, policy);
                for v in graph.ases() {
                    if v == d || v == m {
                        continue;
                    }
                    match fates[v.index()] {
                        Fate::Immune => prop_assert!(
                            o.flags(v).surely_happy(),
                            "{model}: immune {v} unhappy ({inst:?})"
                        ),
                        // Doomed = never happy. Under security 1st a doomed
                        // source may end up routeless instead of on a bogus
                        // route; under 2nd/3rd the class/length invariance
                        // pins it to the attacker outright.
                        Fate::Doomed => {
                            prop_assert!(
                                !o.flags(v).may_reach_destination(),
                                "{model}: doomed {v} happy ({inst:?})"
                            );
                            if model != SecurityModel::Security1st {
                                prop_assert!(
                                    o.flags(v).surely_unhappy(),
                                    "{model}: doomed {v} not on a bogus route ({inst:?})"
                                );
                            }
                        }
                        Fate::Protectable => {}
                        Fate::Unreachable => prop_assert!(
                            o.route(v).is_none(),
                            "{model}: unreachable {v} routed ({inst:?})"
                        ),
                    }
                }
            }
        }
    }

    /// Appendix C: bounds are ordered and the analyzer identity holds for
    /// every model and deployment.
    #[test]
    fn bounds_and_identities(inst in arb_instance()) {
        let Some((m, d)) = inst.attack_pair() else { return Ok(()) };
        let graph = graph_from_codes(inst.n, &inst.codes);
        let mut analyzer = PairAnalyzer::new(&graph);
        for model in SecurityModel::ALL {
            for deployment in [inst.deployment(), inst.larger_deployment()] {
                let a = analyzer.analyze(m, d, &deployment, Policy::new(model));
                prop_assert!(a.happy.lower <= a.happy.upper);
                prop_assert!(a.happy_baseline.lower <= a.happy_baseline.upper);
                prop_assert!(a.metric_change_identity_holds(), "{}", model);
                prop_assert_eq!(a.secure_attack, a.wasted + a.protected, "{}", model);
                prop_assert!(a.happy.upper <= a.sources);
            }
        }
    }

    /// Secure routes imply happiness in every model (a secure route cannot
    /// lead to the attacker).
    #[test]
    fn secure_routes_are_legitimate(inst in arb_instance()) {
        let Some((m, d)) = inst.attack_pair() else { return Ok(()) };
        let graph = graph_from_codes(inst.n, &inst.codes);
        let deployment = inst.larger_deployment();
        let mut engine = Engine::new(&graph);
        for model in SecurityModel::ALL {
            let o = engine.compute(AttackScenario::attack(m, d), &deployment, Policy::new(model));
            for v in graph.ases() {
                if o.uses_secure_route(v) {
                    prop_assert!(o.flags(v).surely_happy(), "{model} {v}");
                }
            }
        }
    }
}
