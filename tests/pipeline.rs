//! End-to-end integration tests spanning all crates: generate a synthetic
//! Internet, classify it, deploy, attack, measure — the same pipeline every
//! figure binary runs — plus CAIDA round-trips and the hardness optimizers
//! on a realistic topology.

use bgp_juice::hardness;
use bgp_juice::prelude::*;
use bgp_juice::sim::experiments::{baseline, rollout, ExperimentConfig};
use bgp_juice::topology::tier::{Tier, TierConfig};
use bgp_juice::topology::{io, prune, stats::GraphStats};

fn net() -> Internet {
    Internet::synthetic(1_500, 77)
}

#[test]
fn generated_internet_has_paper_shape() {
    let net = net();
    let stats = GraphStats::compute(&net.graph);
    assert!(net.graph.provider_hierarchy_is_acyclic());
    assert!(net.graph.is_connected());
    assert!(
        stats.stub_share() > 0.75,
        "stub share {}",
        stats.stub_share()
    );
    assert_eq!(net.tiers.tier1().len(), 13);
    assert_eq!(net.tiers.tier2().len(), 100);
    assert_eq!(net.content_providers.len(), 17);
    // Tier 1s are transit-free and peer-meshed.
    for &t1 in net.tiers.tier1() {
        assert_eq!(net.graph.provider_degree(t1), 0);
        assert!(net.graph.peer_degree(t1) >= 12);
    }
}

#[test]
fn rollout_improves_metric_in_model_order() {
    let net = net();
    let cfg = ExperimentConfig::small(3);
    let result = rollout::figure7(&net, &cfg);
    let last = result.points.last().unwrap();
    // Security 1st ≥ security 3rd at the biggest deployment (midpoints).
    assert!(last.delta[0].mid() >= last.delta[2].mid() - 1e-9);
    // Security 3rd never hurts (Theorem 6.1): lower-bound deltas ≥ 0.
    for p in &result.points {
        assert!(p.delta[2].lower >= -1e-9, "{}", p.label);
    }
    // Simplex-at-stubs tracks the full deployment closely (§5.3.2).
    for p in &result.points {
        for i in 0..3 {
            assert!((p.delta[i].mid() - p.delta_simplex[i].mid()).abs() < 0.12);
        }
    }
}

#[test]
fn baseline_beats_half_and_figures_are_consistent() {
    let net = net();
    let cfg = ExperimentConfig::small(5);
    let b = baseline::baseline_metric(&net, &cfg);
    assert!(b.metric.lower > 0.5, "{}", b.metric);

    // The deployment-invariant upper bound must dominate any concrete
    // deployment's metric for the same pairs.
    let attackers = sample::sample_all(&net, cfg.attackers, cfg.seed);
    let destinations = sample::sample_all(&net, cfg.destinations, cfg.seed ^ 0xD);
    let pairs = sample::pairs(&attackers, &destinations);
    let policy = Policy::new(SecurityModel::Security2nd);
    let parts = runner::partitions(&net, &pairs, policy, Parallelism(1));
    let everyone = Deployment::full_from_iter(net.len(), net.graph.ases());
    let h_full = runner::metric(&net, &pairs, &everyone, policy, Parallelism(1));
    let upper = 1.0 - parts.doomed as f64 / parts.sources() as f64;
    assert!(
        h_full.upper <= upper + 1e-9,
        "full deployment {h_full} exceeds invariant bound {upper}"
    );
}

#[test]
fn caida_round_trip_preserves_experiments() {
    // Serialize a generated graph to serial-1 text, parse it back, rebuild
    // the Internet via the public tier config, and check an experiment
    // produces identical numbers.
    let original = Internet::synthetic(700, 13);
    let text = io::write_relationships(&original.graph);
    let reparsed = io::parse_relationships(text.as_bytes()).unwrap();
    assert_eq!(reparsed.len(), original.graph.len());

    // Map the CP list through ASN labels (ids may be permuted).
    let cps: Vec<AsId> = original
        .content_providers
        .iter()
        .map(|&cp| {
            let label = original.graph.asn_label(cp);
            reparsed
                .ases()
                .find(|&v| reparsed.asn_label(v) == label)
                .expect("cp preserved")
        })
        .collect();
    let rebuilt = Internet::from_graph(
        reparsed,
        &TierConfig {
            content_providers: cps,
            ..TierConfig::default()
        },
        "reparsed",
    );

    let h_a = baseline::baseline_metric(&original, &ExperimentConfig::small(1));
    let h_b = baseline::baseline_metric(&rebuilt, &ExperimentConfig::small(1));
    // Ids are permuted so the samples differ; both must land in the same
    // regime rather than be bitwise equal.
    assert!((h_a.metric.lower - h_b.metric.lower).abs() < 0.25);
}

#[test]
fn pruning_composes_with_classification() {
    let net = net();
    let pruned = prune::prune_orphans(&net.graph, 3, net.tiers.tier1());
    assert!(pruned.graph.len() <= net.graph.len());
    assert!(pruned.graph.provider_hierarchy_is_acyclic());
    let lc = prune::largest_component(&pruned.graph);
    assert!(lc.graph.is_connected());
}

#[test]
fn greedy_early_adopters_beat_random_ones_on_average() {
    // A cross-crate use of the hardness optimizers: greedily protect one
    // victim CP against one fixed attacker, and compare with securing the
    // same *number* of arbitrary ASes.
    let net = Internet::synthetic(400, 21);
    let d = net.content_providers[0];
    let m = net.tiers.tier2()[0];
    let policy = Policy::new(SecurityModel::Security2nd);
    let g = hardness::greedy(&net.graph, m, d, 4, policy);
    let arbitrary: Vec<AsId> = (0..4).map(|i| AsId(i * 7 + 50)).collect();
    let h_arbitrary = hardness::happy_lower_bound(&net.graph, m, d, &arbitrary, policy);
    assert!(
        g.happy >= h_arbitrary,
        "greedy {} < arbitrary {}",
        g.happy,
        h_arbitrary
    );
}

#[test]
fn tier_census_is_stable_across_ixp_augmentation() {
    let base = Internet::synthetic(900, 31);
    let aug = Internet::synthetic_with_ixp(900, 31);
    // Tier 1 and CP sets are structural; augmentation must not move them.
    assert_eq!(base.tiers.tier1(), aug.tiers.tier1());
    assert_eq!(base.content_providers, aug.content_providers);
    // Stub-x count can only grow (stubs gaining peers).
    let count = |net: &Internet, t: Tier| net.tiers.count(t);
    assert!(count(&aug, Tier::StubX) >= count(&base, Tier::StubX));
}

#[test]
fn simplex_stub_destinations_still_get_protection() {
    // §5.3.2's point (3): a simplex stub acts as a secure *destination*.
    let net = net();
    let full = scenario::tier12_step(&net, 13, 37);
    let simplex = scenario::simplex_variant(&net, &full);
    // Pick a stub destination inside the deployment.
    let stub_dest = scenario::secure_destinations(&full)
        .into_iter()
        .find(|&v| net.graph.customer_degree(v) == 0 && net.graph.provider_degree(v) >= 2)
        .expect("a multihomed secure stub exists");
    let attackers = sample::sample_non_stubs(&net, 8, 2);
    let pairs: Vec<(AsId, AsId)> = attackers
        .iter()
        .filter(|&&m| m != stub_dest)
        .map(|&m| (m, stub_dest))
        .collect();
    let policy = Policy::new(SecurityModel::Security1st);
    let h_full = runner::metric(&net, &pairs, &full.deployment, policy, Parallelism(1));
    let h_simplex = runner::metric(&net, &pairs, &simplex.deployment, policy, Parallelism(1));
    let h_none = runner::metric(
        &net,
        &pairs,
        &Deployment::empty(net.len()),
        policy,
        Parallelism(1),
    );
    assert!(
        h_simplex.lower >= h_none.lower - 1e-9,
        "simplex hurt the stub destination"
    );
    // Simplex tracks full closely for this destination.
    assert!((h_full.lower - h_simplex.lower).abs() < 0.2);
}
