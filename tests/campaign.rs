//! End-to-end checkpointing/resume test for the `campaign` runner.
//!
//! Runs `campaign --smoke` in a scratch directory, then simulates a killed
//! campaign by deleting the assembled JSON plus one cell checkpoint and
//! re-running: the second run must resume every surviving cell, recompute
//! only the missing one, and assemble byte-identical *estimates* (wall
//! clock may of course differ).

use std::path::{Path, PathBuf};
use std::process::Command;

/// Build (cached by the shared target dir) and locate the binary via
/// cargo.
fn campaign_bin() -> PathBuf {
    let mut build = Command::new(env!("CARGO"));
    build
        .current_dir(Path::new(env!("CARGO_MANIFEST_DIR")))
        .args([
            "build",
            "--offline",
            "-q",
            "-p",
            "sbgp_bench",
            "--bin",
            "campaign",
        ]);
    let out = build.output().expect("spawn cargo build");
    assert!(
        out.status.success(),
        "campaign failed to build:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("debug")
        .join("campaign")
}

fn campaign_cmd(dir: &Path) -> Command {
    let mut cmd = Command::new(campaign_bin());
    cmd.current_dir(dir);
    cmd.args(["--smoke", "--threads", "2"]);
    cmd
}

/// Strip the timing fields (and the content checksums, which cover them)
/// so runs are comparable.
fn estimates_only(json: &str) -> String {
    json.lines()
        .filter(|l| {
            !(l.contains("wall_ms")
                || l.contains("pairs_per_sec")
                || l.contains("\"checksum\"")
                || l.contains("_this_run")
                || l.contains("\"resumed\""))
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn campaign_smoke_checkpoints_and_resumes() {
    let dir = std::env::temp_dir().join(format!("sbgp_campaign_test_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");

    // First run: all cells computed, JSON assembled and self-validated.
    let out = campaign_cmd(&dir).output().expect("spawn campaign");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "first campaign run failed:\nstdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("6 computed, 0 resumed"),
        "unexpected first-run summary:\n{stdout}"
    );
    let json_path = dir.join("BENCH_campaign_smoke.json");
    let first = std::fs::read_to_string(&json_path).expect("campaign JSON");
    assert!(first.contains("\"schema\": \"campaign-v1\""));
    assert!(first.contains("\"ci_trajectory\""));
    let ckpt = dir.join("campaign_smoke_ckpt");
    let cells: Vec<PathBuf> = std::fs::read_dir(&ckpt)
        .expect("checkpoint dir")
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(cells.len(), 6, "expected 6 cell checkpoints: {cells:?}");

    // Kill simulation: the assembled JSON and one cell vanish.
    std::fs::remove_file(&json_path).unwrap();
    let victim = ckpt.join("rollout_400_11_sec2.json");
    assert!(victim.exists(), "victim cell missing from {ckpt:?}");
    std::fs::remove_file(&victim).unwrap();

    // Second run: 5 resumed, 1 recomputed, same estimates.
    let out = campaign_cmd(&dir).output().expect("spawn campaign");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "resumed campaign run failed:\nstdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("1 computed, 5 resumed"),
        "resume did not skip surviving cells:\n{stdout}"
    );
    assert!(stdout.contains("rollout_400_11_sec2: 300 pairs"));
    let second = std::fs::read_to_string(&json_path).expect("campaign JSON after resume");
    assert_eq!(
        estimates_only(&first),
        estimates_only(&second),
        "estimates drifted across a resume"
    );

    // Changed estimation parameters must invalidate every checkpoint:
    // reusing a 300-pair cell under a 301-pair grid header would be a
    // silent lie, so nothing may be resumed.
    let out = campaign_cmd(&dir)
        .args(["--pairs", "301"])
        .output()
        .expect("spawn campaign with changed budget");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "changed-budget run failed:\n{stdout}");
    assert!(
        stdout.contains("6 computed, 0 resumed"),
        "stale checkpoints were reused under changed --pairs:\n{stdout}"
    );
    assert!(stdout.contains("different estimation parameters"));
    let second = std::fs::read_to_string(&json_path).expect("campaign JSON after budget change");
    assert!(second.contains("\"budget\": 301,"));

    // Schema gate: the self-validation path accepts the fresh file and
    // rejects a mutilated one.
    let status = campaign_cmd(&dir)
        .args(["--validate", "BENCH_campaign_smoke.json"])
        .status()
        .expect("spawn validate");
    assert!(status.success(), "validation rejected a good file");
    std::fs::write(&json_path, second.replace("pairs_per_sec", "nope")).unwrap();
    let status = campaign_cmd(&dir)
        .args(["--validate", "BENCH_campaign_smoke.json"])
        .status()
        .expect("spawn validate");
    assert!(!status.success(), "validation accepted schema drift");

    let _ = std::fs::remove_dir_all(&dir);
}

/// A supervised N-worker campaign must produce the same bytes as the
/// in-process run — the coordinator merges worker accumulators in group
/// order, the exact merge sequence of the thread pool — for every worker
/// count and every figure kind.
#[test]
fn campaign_workers_bit_identical() {
    let dir = std::env::temp_dir().join(format!("sbgp_campaign_workers_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let bin = campaign_bin();

    let run = |workers: usize| -> String {
        let out_name = format!("out{workers}.json");
        let out = Command::new(&bin)
            .current_dir(&dir)
            .args([
                "--figures",
                "baseline,rollout,ladder",
                "--asns",
                "300",
                "--seeds",
                "7",
                "--models",
                "sec1,sec2",
                "--pairs",
                "100",
                "--rollout-steps",
                "2",
                "--threads",
                "2",
                "--workers",
                &workers.to_string(),
                "--checkpoint-dir",
                &format!("ck{workers}"),
                "--out",
                &out_name,
            ])
            .output()
            .expect("spawn campaign");
        assert!(
            out.status.success(),
            "campaign --workers {workers} failed:\nstdout:\n{}\nstderr:\n{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("6 computed, 0 resumed, 0 degraded"),
            "--workers {workers}: unexpected summary:\n{stdout}"
        );
        std::fs::read_to_string(dir.join(out_name)).expect("campaign JSON")
    };

    let reference = run(0);
    assert!(
        reference.contains("\"degraded\": [],"),
        "clean run must report an empty degraded list"
    );
    for workers in [1usize, 2, 4] {
        let distributed = run(workers);
        assert_eq!(
            estimates_only(&reference),
            estimates_only(&distributed),
            "--workers {workers} diverged from the in-process run"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// Resume must never trust damaged checkpoint bytes: a corrupted cell
/// (checksum mismatch) and a zero-byte cell are both quarantined to
/// `<name>.json.quarantined` and recomputed, and the repaired campaign
/// JSON is byte-identical to the undamaged one.
#[test]
fn campaign_quarantines_damaged_checkpoints() {
    let dir = std::env::temp_dir().join(format!("sbgp_campaign_quarantine_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");

    let out = campaign_cmd(&dir).output().expect("spawn campaign");
    assert!(out.status.success(), "first campaign run failed");
    let json_path = dir.join("BENCH_campaign_smoke.json");
    let first = std::fs::read_to_string(&json_path).expect("campaign JSON");
    let ckpt = dir.join("campaign_smoke_ckpt");

    // Silent corruption: flip one digit of a checkpointed estimate.
    let victim = ckpt.join("baseline_400_11_sec1.json");
    let text = std::fs::read_to_string(&victim).expect("victim cell");
    let pos = text.find("\"population\": ").expect("population line") + "\"population\": ".len();
    let mut bytes = text.into_bytes();
    bytes[pos] = b'0' + (bytes[pos] - b'0' + 1) % 10;
    std::fs::write(&victim, &bytes).unwrap();

    // A crashed write(2) that only got as far as create: zero bytes.
    let truncated = ckpt.join("rollout_400_11_sec1.json");
    assert!(truncated.exists());
    std::fs::write(&truncated, b"").unwrap();

    std::fs::remove_file(&json_path).unwrap();
    let out = campaign_cmd(&dir).output().expect("spawn campaign");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "repair run failed:\n{stderr}");
    assert!(
        stdout.contains("2 computed, 4 resumed"),
        "damaged cells were not both recomputed:\n{stdout}\n{stderr}"
    );
    assert!(
        stderr.contains("fails its content checksum") && stderr.contains("zero bytes"),
        "missing damage diagnoses:\n{stderr}"
    );
    assert_eq!(stderr.matches("quarantined to").count(), 2, "{stderr}");
    assert!(ckpt.join("baseline_400_11_sec1.json.quarantined").exists());
    assert!(ckpt.join("rollout_400_11_sec1.json.quarantined").exists());

    let second = std::fs::read_to_string(&json_path).expect("campaign JSON after repair");
    assert_eq!(
        estimates_only(&first),
        estimates_only(&second),
        "repair after corruption drifted the estimates"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
