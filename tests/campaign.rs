//! End-to-end checkpointing/resume test for the `campaign` runner.
//!
//! Runs `campaign --smoke` in a scratch directory, then simulates a killed
//! campaign by deleting the assembled JSON plus one cell checkpoint and
//! re-running: the second run must resume every surviving cell, recompute
//! only the missing one, and assemble byte-identical *estimates* (wall
//! clock may of course differ).

use std::path::{Path, PathBuf};
use std::process::Command;

fn campaign_cmd(dir: &Path) -> Command {
    // Build (cached by the shared target dir) and locate the binary via
    // cargo, but *run* it from the scratch directory.
    let mut build = Command::new(env!("CARGO"));
    build
        .current_dir(Path::new(env!("CARGO_MANIFEST_DIR")))
        .args([
            "build",
            "--offline",
            "-q",
            "-p",
            "sbgp_bench",
            "--bin",
            "campaign",
        ]);
    let out = build.output().expect("spawn cargo build");
    assert!(
        out.status.success(),
        "campaign failed to build:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let bin = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("debug")
        .join("campaign");
    let mut cmd = Command::new(bin);
    cmd.current_dir(dir);
    cmd.args(["--smoke", "--threads", "2"]);
    cmd
}

/// Strip the timing fields so runs are comparable.
fn estimates_only(json: &str) -> String {
    json.lines()
        .filter(|l| {
            !(l.contains("wall_ms")
                || l.contains("pairs_per_sec")
                || l.contains("_this_run")
                || l.contains("\"resumed\""))
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn campaign_smoke_checkpoints_and_resumes() {
    let dir = std::env::temp_dir().join(format!("sbgp_campaign_test_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");

    // First run: all cells computed, JSON assembled and self-validated.
    let out = campaign_cmd(&dir).output().expect("spawn campaign");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "first campaign run failed:\nstdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("6 computed, 0 resumed"),
        "unexpected first-run summary:\n{stdout}"
    );
    let json_path = dir.join("BENCH_campaign_smoke.json");
    let first = std::fs::read_to_string(&json_path).expect("campaign JSON");
    assert!(first.contains("\"schema\": \"campaign-v1\""));
    assert!(first.contains("\"ci_trajectory\""));
    let ckpt = dir.join("campaign_smoke_ckpt");
    let cells: Vec<PathBuf> = std::fs::read_dir(&ckpt)
        .expect("checkpoint dir")
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(cells.len(), 6, "expected 6 cell checkpoints: {cells:?}");

    // Kill simulation: the assembled JSON and one cell vanish.
    std::fs::remove_file(&json_path).unwrap();
    let victim = ckpt.join("rollout_400_11_sec2.json");
    assert!(victim.exists(), "victim cell missing from {ckpt:?}");
    std::fs::remove_file(&victim).unwrap();

    // Second run: 5 resumed, 1 recomputed, same estimates.
    let out = campaign_cmd(&dir).output().expect("spawn campaign");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "resumed campaign run failed:\nstdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("1 computed, 5 resumed"),
        "resume did not skip surviving cells:\n{stdout}"
    );
    assert!(stdout.contains("rollout_400_11_sec2: 300 pairs"));
    let second = std::fs::read_to_string(&json_path).expect("campaign JSON after resume");
    assert_eq!(
        estimates_only(&first),
        estimates_only(&second),
        "estimates drifted across a resume"
    );

    // Changed estimation parameters must invalidate every checkpoint:
    // reusing a 300-pair cell under a 301-pair grid header would be a
    // silent lie, so nothing may be resumed.
    let out = campaign_cmd(&dir)
        .args(["--pairs", "301"])
        .output()
        .expect("spawn campaign with changed budget");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "changed-budget run failed:\n{stdout}");
    assert!(
        stdout.contains("6 computed, 0 resumed"),
        "stale checkpoints were reused under changed --pairs:\n{stdout}"
    );
    assert!(stdout.contains("different estimation parameters"));
    let second = std::fs::read_to_string(&json_path).expect("campaign JSON after budget change");
    assert!(second.contains("\"budget\": 301,"));

    // Schema gate: the self-validation path accepts the fresh file and
    // rejects a mutilated one.
    let status = campaign_cmd(&dir)
        .args(["--validate", "BENCH_campaign_smoke.json"])
        .status()
        .expect("spawn validate");
    assert!(status.success(), "validation rejected a good file");
    std::fs::write(&json_path, second.replace("pairs_per_sec", "nope")).unwrap();
    let status = campaign_cmd(&dir)
        .args(["--validate", "BENCH_campaign_smoke.json"])
        .status()
        .expect("spawn validate");
    assert!(!status.success(), "validation accepted schema drift");

    let _ = std::fs::remove_dir_all(&dir);
}
