//! The fused multi-cell equivalence property suite: on random
//! valley-free graphs, one fused pass over a whole policy grid —
//! [`Engine::compute_cells`] for snapshot computes, [`FusedDeltaEngine`]
//! for the incremental attacker loop — must reproduce a dedicated
//! per-cell computation **bit for bit** (route class, length, flags,
//! representative next hop, and happy bounds) for every input cell of the
//! grid: all three security models, the `LP2`/`LPinf` variants, the full
//! `FakePath` ladder plus the duplicate `FakeLink`/`OriginHijack`
//! spellings, and colluding announcer sets via
//! [`FusedDeltaEngine::attack_set`]. `tests/delta_equivalence.rs` pins
//! the solo [`AttackDeltaEngine`] against fresh computes, so checking the
//! fused engine against the solo delta closes the chain fused ≡ delta ≡
//! engine ≡ simulated S*BGP. A fixed-seed determinism test additionally
//! pins the fused destination-major runners (`runner::metric_cells`,
//! `sweep::metric_sweep_cells`) bit-identical across thread counts *and*
//! to their single-cell counterparts.

use proptest::prelude::*;

use bgp_juice::prelude::*;
use bgp_juice::sim::sweep as simsweep;

/// Build a random valley-free topology from pairwise edge codes.
/// Providers always have smaller ids, so the hierarchy is acyclic.
fn graph_from_codes(n: usize, codes: &[u8]) -> AsGraph {
    let mut b = GraphBuilder::new(n);
    let mut k = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            match codes[k] % 8 {
                // Sparse: most pairs are unconnected.
                0..=3 => {}
                4 => b.add_peering(AsId(i as u32), AsId(j as u32)).unwrap(),
                // i is the provider of j.
                _ => b.add_provider(AsId(j as u32), AsId(i as u32)).unwrap(),
            }
            k += 1;
        }
    }
    b.build()
}

/// A monotone 4-step deployment sequence from per-AS join codes: bits 0–1
/// give the AS's join step (3 = never), bit 2 picks simplex mode, and bit 3
/// upgrades a simplex member to full one step after joining.
fn deployment_sequence(n: usize, join_codes: &[u8]) -> Vec<Deployment> {
    (0..4usize)
        .map(|step| {
            let mut dep = Deployment::empty(n);
            for (i, &code) in join_codes.iter().enumerate() {
                let join = usize::from(code & 3);
                if join == 3 || join > step {
                    continue;
                }
                let v = AsId(i as u32);
                let simplex = code & 4 != 0;
                let upgrades = code & 8 != 0;
                if simplex && !(upgrades && step > join) {
                    dep.insert_simplex(v);
                } else {
                    dep.insert_full(v);
                }
            }
            dep
        })
        .collect()
}

#[derive(Debug, Clone)]
struct Instance {
    n: usize,
    codes: Vec<u8>,
    join_codes: Vec<u8>,
    destination: usize,
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    (4usize..10).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        (
            Just(n),
            proptest::collection::vec(any::<u8>(), pairs),
            proptest::collection::vec(any::<u8>(), n),
            0..n,
        )
            .prop_map(|(n, codes, join_codes, destination)| Instance {
                n,
                codes,
                join_codes,
                destination,
            })
    })
}

/// The policy axis of the test grid: all three models under standard
/// local pref, plus the `LP2` and `LPinf` variants.
fn grid_policies() -> Vec<Policy> {
    let mut policies: Vec<Policy> = SecurityModel::ALL.map(Policy::new).to_vec();
    policies.push(Policy::with_variant(
        SecurityModel::Security2nd,
        LpVariant::LpK(2),
    ));
    policies.push(Policy::with_variant(
        SecurityModel::Security3rd,
        LpVariant::LpInf,
    ));
    policies
}

/// The strategy axis: the full forged-path ladder **plus** the duplicate
/// `FakeLink`/`OriginHijack` spellings, so canonical dedup is exercised
/// on every grid (the duplicates must share their rung's lane).
fn grid_rungs() -> Vec<AttackStrategy> {
    let mut rungs = AttackStrategy::LADDER.to_vec();
    rungs.push(AttackStrategy::FakeLink);
    rungs.push(AttackStrategy::OriginHijack);
    rungs
}

fn assert_outcomes_match(got: &Outcome, want: &Outcome, graph: &AsGraph, ctx: &str) {
    for v in graph.ases() {
        assert_eq!(got.route(v), want.route(v), "route mismatch at {v}, {ctx}");
        assert_eq!(
            got.next_hop(v),
            want.next_hop(v),
            "next-hop mismatch at {v}, {ctx}"
        );
    }
}

/// One fused snapshot pass ([`Engine::compute_cells`]) vs a dedicated
/// [`Engine::compute`] per input cell, plus the cross-cell dirty-bitset
/// semantics of the [`MultiOutcome`] store.
fn check_compute_cells(inst: &Instance) {
    let graph = graph_from_codes(inst.n, &inst.codes);
    let steps = deployment_sequence(inst.n, &inst.join_codes);
    let d = AsId(inst.destination as u32);
    let (policies, rungs) = (grid_policies(), grid_rungs());
    let cells = CellSet::grid(&policies, &rungs);
    // The duplicate spellings fold away: FakePath{0}/{1} share lanes with
    // OriginHijack/FakeLink, so the grid dedups to 4 rungs per policy.
    assert_eq!(cells.input_len(), policies.len() * rungs.len());
    assert_eq!(
        cells.lane_count(),
        policies.len() * AttackStrategy::LADDER.len()
    );
    for (p, _) in policies.iter().enumerate() {
        let row = p * rungs.len();
        assert_eq!(
            cells.lane_of(row + 1),
            cells.lane_of(row + 4),
            "FakeLink dup"
        );
        assert_eq!(
            cells.lane_of(row),
            cells.lane_of(row + 5),
            "OriginHijack dup"
        );
    }

    let mut engine = Engine::new(&graph);
    let mut fresh = Engine::new(&graph);
    let mut out = MultiOutcome::new();
    for (k, dep) in steps.iter().enumerate() {
        // Normal conditions (empty announcer slice) and every
        // single-attacker scenario.
        let mut scenarios: Vec<Vec<AsId>> = vec![Vec::new()];
        scenarios.extend(graph.ases().filter(|&m| m != d).map(|m| vec![m]));
        for attackers in &scenarios {
            engine.compute_cells(d, attackers, dep, &cells, &mut out);
            assert_eq!(out.lane_count(), cells.lane_count());
            for (i, (p, r)) in (0..policies.len())
                .flat_map(|p| (0..rungs.len()).map(move |r| (p, r)))
                .enumerate()
            {
                let scenario = if attackers.is_empty() {
                    AttackScenario::normal(d)
                } else {
                    AttackScenario::colluding(attackers, d).with_strategy(rungs[r])
                };
                let want = fresh.compute(scenario, dep, policies[p]);
                let lane = cells.lane_of(i);
                assert_outcomes_match(
                    out.lane(lane),
                    want,
                    &graph,
                    &format!(
                        "cell {i} ({}, {}), m={attackers:?}, step {k}: {inst:?}",
                        policies[p], rungs[r]
                    ),
                );
                assert_eq!(
                    out.happy(lane),
                    want.count_happy(),
                    "happy mismatch at cell {i}, m={attackers:?}, step {k}: {inst:?}"
                );
            }
            // Dirty-bitset semantics: bit 0 is never set (lane 0 is the
            // reference), and a zero bit certifies the lane agrees with
            // lane 0 at that AS.
            for v in graph.ases() {
                let mask = out.dirty_mask(v);
                assert_eq!(mask & 1, 0, "reference-lane bit set at {v}");
                for j in 1..out.lane_count() {
                    if mask & (1 << j) == 0 {
                        assert_eq!(
                            out.lane(j).route(v),
                            out.lane(0).route(v),
                            "clean bit but dirty route: lane {j} at {v}, step {k}"
                        );
                        assert_eq!(
                            out.lane(j).next_hop(v),
                            out.lane(0).next_hop(v),
                            "clean bit but dirty next hop: lane {j} at {v}, step {k}"
                        );
                    }
                }
            }
        }
    }
}

/// The incremental fused engine vs one solo [`AttackDeltaEngine`] per
/// policy: every attacker of every deployment step, checked lane-by-lane
/// through the input-cell view (duplicate spellings must read back their
/// shared lane's values).
fn check_fused_delta(inst: &Instance) {
    let graph = graph_from_codes(inst.n, &inst.codes);
    let steps = deployment_sequence(inst.n, &inst.join_codes);
    let d = AsId(inst.destination as u32);
    let (policies, rungs) = (grid_policies(), grid_rungs());
    let cells = CellSet::grid(&policies, &rungs);
    let mut fused = FusedDeltaEngine::new(&graph, cells.clone());
    let mut solos: Vec<AttackDeltaEngine> = policies
        .iter()
        .map(|_| AttackDeltaEngine::new(&graph))
        .collect();
    for (k, dep) in steps.iter().enumerate() {
        fused.begin(d, dep);
        for (p, solo) in solos.iter_mut().enumerate() {
            solo.begin(d, dep, policies[p]);
            for r in 0..rungs.len() {
                let i = p * rungs.len() + r;
                assert_outcomes_match(
                    fused.normal_outcome(i),
                    solo.normal_outcome(),
                    &graph,
                    &format!("normal, cell {i}, step {k}: {inst:?}"),
                );
                assert_eq!(
                    fused.normal_happy(i),
                    solo.normal_happy(),
                    "normal happy mismatch at cell {i}, step {k}: {inst:?}"
                );
            }
        }
        for m in graph.ases().filter(|&m| m != d) {
            fused.attack(m);
            for (p, solo) in solos.iter_mut().enumerate() {
                for (r, &rung) in rungs.iter().enumerate() {
                    let i = p * rungs.len() + r;
                    let want = solo.attack(m, rung);
                    assert_outcomes_match(
                        fused.outcome(i),
                        want,
                        &graph,
                        &format!(
                            "cell {i} ({}, {rung}), m={m}, step {k}: {inst:?}",
                            policies[p]
                        ),
                    );
                    assert_eq!(
                        fused.count_happy(i),
                        solo.count_happy(),
                        "happy mismatch at cell {i}, m={m}, step {k}: {inst:?}"
                    );
                }
            }
        }
    }
}

/// Colluding announcer sets (pairs and triples sliding over the AS space)
/// through [`FusedDeltaEngine::attack_set`] vs the solo engine's
/// `attack_set`, over the first two deployment steps.
fn check_fused_collusion(inst: &Instance) {
    let graph = graph_from_codes(inst.n, &inst.codes);
    let steps = deployment_sequence(inst.n, &inst.join_codes);
    let d = AsId(inst.destination as u32);
    let n = inst.n as u32;
    let (policies, rungs) = (grid_policies(), grid_rungs());
    let cells = CellSet::grid(&policies, &rungs);
    let mut fused = FusedDeltaEngine::new(&graph, cells.clone());
    let mut solos: Vec<AttackDeltaEngine> = policies
        .iter()
        .map(|_| AttackDeltaEngine::new(&graph))
        .collect();
    for (k, dep) in steps.iter().enumerate().take(2) {
        fused.begin(d, dep);
        for (p, solo) in solos.iter_mut().enumerate() {
            solo.begin(d, dep, policies[p]);
        }
        for start in 0..n {
            for size in [2usize, 3] {
                let set: Vec<AsId> = (0..size as u32)
                    .map(|i| AsId((start + i) % n))
                    .filter(|&m| m != d)
                    .collect();
                if set.len() < 2 {
                    continue;
                }
                fused.attack_set(&set);
                for (p, solo) in solos.iter_mut().enumerate() {
                    for (r, &rung) in rungs.iter().enumerate() {
                        let i = p * rungs.len() + r;
                        let want = solo.attack_set(&set, rung);
                        assert_outcomes_match(
                            fused.outcome(i),
                            want,
                            &graph,
                            &format!("cell {i}, set={set:?}, step {k}: {inst:?}"),
                        );
                        assert_eq!(
                            fused.count_happy(i),
                            solo.count_happy(),
                            "happy mismatch at cell {i}, set={set:?}, step {k}: {inst:?}"
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// One fused snapshot pass serves the whole grid, bit-identical to a
    /// dedicated compute per cell, for normal conditions and every
    /// single-attacker scenario at every deployment step.
    #[test]
    fn compute_cells_matches_per_cell_compute(inst in arb_instance()) {
        check_compute_cells(&inst);
    }

    /// The incremental fused engine reproduces a solo delta engine per
    /// policy cell, every attacker from one shared snapshot.
    #[test]
    fn fused_delta_matches_solo_delta(inst in arb_instance()) {
        check_fused_delta(&inst);
    }

    /// Colluding sets through the fused `attack_set` match the solo
    /// engine's colluding outcomes per cell.
    #[test]
    fn fused_collusion_matches_solo_delta(inst in arb_instance()) {
        check_fused_collusion(&inst);
    }
}

/// A monotone three-step rollout over the synthetic tiers (empty →
/// Tier 1s full → Tier 1s + largest Tier 2s full).
fn rollout_steps(net: &Internet) -> Vec<Deployment> {
    let t1 = net.tiers.tier1();
    let t2 = net.tiers.tier2();
    let step1 = Deployment::full_from_iter(net.len(), t1.iter().copied());
    let step2 =
        Deployment::full_from_iter(net.len(), t1.iter().chain(&t2[..t2.len().min(5)]).copied());
    vec![Deployment::empty(net.len()), step1, step2]
}

/// The fused destination-major runners are bit-identical across thread
/// counts and to their single-cell counterparts — the exactness contract
/// the experiment drivers rely on when they group a whole grid onto one
/// fused engine per worker.
#[test]
fn fused_runners_are_bit_identical_across_thread_counts() {
    let net = Internet::synthetic(300, 9);
    let attackers = sample::sample_non_stubs(&net, 5, 21);
    let dests: Vec<AsId> = sample::sample_all(&net, 7, 22)
        .into_iter()
        .filter(|d| !attackers.contains(d))
        .collect();
    let pairs = sample::pairs(&attackers, &dests);
    let deployments = rollout_steps(&net);
    let (policies, rungs) = (grid_policies(), grid_rungs());
    let cells = CellSet::grid(&policies, &rungs);
    let parallelisms = [
        Parallelism::sequential(),
        Parallelism(2),
        Parallelism::auto(),
    ];

    for dep in &deployments {
        let reference = runner::metric_cells(&net, &pairs, dep, &cells, Parallelism::sequential());
        assert_eq!(reference.len(), cells.input_len());
        // Across thread counts: bit-identical, not approximately equal.
        for par in parallelisms {
            let got = runner::metric_cells(&net, &pairs, dep, &cells, par);
            for (i, (g, r)) in got.iter().zip(&reference).enumerate() {
                assert_eq!(
                    g.lower.to_bits(),
                    r.lower.to_bits(),
                    "cell {i} lower @ {par:?}"
                );
                assert_eq!(
                    g.upper.to_bits(),
                    r.upper.to_bits(),
                    "cell {i} upper @ {par:?}"
                );
            }
        }
        // Against the single-cell runner, cell by cell.
        for (i, r) in reference.iter().enumerate() {
            let (p, rung) = (i / rungs.len(), rungs[i % rungs.len()]);
            let solo = runner::metric_with_strategy(
                &net,
                &pairs,
                dep,
                policies[p],
                rung,
                Parallelism::sequential(),
            );
            assert_eq!(
                solo.lower.to_bits(),
                r.lower.to_bits(),
                "solo cell {i} lower"
            );
            assert_eq!(
                solo.upper.to_bits(),
                r.upper.to_bits(),
                "solo cell {i} upper"
            );
        }
    }

    let reference = simsweep::metric_sweep_cells(
        &net,
        &pairs,
        &deployments,
        &cells,
        Parallelism::sequential(),
    );
    assert_eq!(reference.len(), cells.input_len());
    for par in parallelisms {
        let got = simsweep::metric_sweep_cells(&net, &pairs, &deployments, &cells, par);
        for (i, (grow, rrow)) in got.iter().zip(&reference).enumerate() {
            for (k, (g, r)) in grow.iter().zip(rrow).enumerate() {
                assert_eq!(
                    g.lower.to_bits(),
                    r.lower.to_bits(),
                    "cell {i} step {k} lower @ {par:?}"
                );
                assert_eq!(
                    g.upper.to_bits(),
                    r.upper.to_bits(),
                    "cell {i} step {k} upper @ {par:?}"
                );
            }
        }
    }
    for (i, rrow) in reference.iter().enumerate() {
        let (p, rung) = (i / rungs.len(), rungs[i % rungs.len()]);
        let solo = simsweep::metric_sweep(
            &net,
            &pairs,
            &deployments,
            policies[p],
            rung,
            Parallelism::sequential(),
        );
        for (k, (s, r)) in solo.iter().zip(rrow).enumerate() {
            assert_eq!(
                s.lower.to_bits(),
                r.lower.to_bits(),
                "solo cell {i} step {k} lower"
            );
            assert_eq!(
                s.upper.to_bits(),
                r.upper.to_bits(),
                "solo cell {i} step {k} upper"
            );
        }
    }
}
