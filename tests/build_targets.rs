//! Deliverable smoke tests.
//!
//! The workspace's real product is the set of figure/table binaries and
//! examples; a green `cargo test` on the libraries alone would not notice
//! a bin that no longer compiles. These tests shell out to cargo (sharing
//! the same target directory, so everything already built stays cached)
//! to assert that every registered target builds, and they run one figure
//! binary end-to-end on a tiny topology to guard the full
//! generator → sampler → engine → renderer pipeline.

use std::path::Path;
use std::process::Command;

fn cargo() -> Command {
    let mut cmd = Command::new(env!("CARGO"));
    cmd.current_dir(Path::new(env!("CARGO_MANIFEST_DIR")));
    cmd.arg("--offline");
    cmd
}

/// Every bin, example, and bench target in the workspace must compile.
#[test]
fn all_targets_build() {
    let out = cargo()
        .args(["build", "--workspace", "--bins", "--examples", "--benches"])
        .output()
        .expect("failed to spawn cargo");
    assert!(
        out.status.success(),
        "cargo build --bins --examples --benches failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// One figure binary, end to end, on a 200-AS topology: the banner and a
/// rendered table must come out, and the process must exit 0.
#[test]
fn figure03_runs_end_to_end_on_tiny_topology() {
    let out = cargo()
        .args([
            "run",
            "-q",
            "-p",
            "sbgp_bench",
            "--bin",
            "figure03",
            "--",
            "--asns",
            "200",
            "--attackers",
            "2",
            "--destinations",
            "4",
            "--per-tier",
            "1",
            "--threads",
            "2",
        ])
        .output()
        .expect("failed to spawn cargo run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "figure03 exited nonzero:\nstdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("Figure 3"),
        "figure03 printed no banner:\n{stdout}"
    );
    assert!(
        stdout.lines().count() > 5,
        "figure03 output suspiciously short:\n{stdout}"
    );
}

/// The strategic-attacker table, end to end on a tiny topology, with the
/// `--strategy` flag exercised (it must show up in the banner when
/// non-default).
#[test]
fn table_strategy_ladder_runs_end_to_end_on_tiny_topology() {
    let out = cargo()
        .args([
            "run",
            "-q",
            "-p",
            "sbgp_bench",
            "--bin",
            "table_strategy_ladder",
            "--",
            "--asns",
            "200",
            "--attackers",
            "4",
            "--destinations",
            "6",
            "--threads",
            "2",
            "--strategy",
            "path2",
        ])
        .output()
        .expect("failed to spawn cargo run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "table_strategy_ladder exited nonzero:\nstdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("strategy ladder"),
        "table_strategy_ladder printed no banner:\n{stdout}"
    );
    assert!(
        stdout.contains("attack strategy: forged path (k=2)"),
        "--strategy flag not reflected in the banner:\n{stdout}"
    );
    assert!(
        stdout.contains("colluding pairs"),
        "collusion table missing:\n{stdout}"
    );
    assert!(
        stdout.contains("optimal"),
        "optimal column missing:\n{stdout}"
    );
}

/// The `--file` ingestion path, end to end on the committed CAIDA-style
/// fixture: parse → label-aware CP resolution → tier classification →
/// partition rendering, with the snapshot name in the banner.
#[test]
fn figure03_runs_end_to_end_on_the_committed_snapshot_fixture() {
    let out = cargo()
        .args([
            "run",
            "-q",
            "-p",
            "sbgp_bench",
            "--bin",
            "figure03",
            "--",
            "--file",
            "tests/fixtures/cyclops_sample.as-rel",
            "--cps",
            "15169,8075,20940,32934,16509",
            "--attackers",
            "3",
            "--destinations",
            "4",
            "--threads",
            "2",
        ])
        .output()
        .expect("failed to spawn cargo run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "figure03 --file exited nonzero:\nstdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("cyclops_sample"),
        "snapshot name missing from the banner:\n{stdout}"
    );
    assert!(
        stdout.contains("24 ASes"),
        "parsed AS count missing from the banner:\n{stdout}"
    );
    assert!(
        stdout.lines().count() > 5,
        "figure03 output suspiciously short:\n{stdout}"
    );
}

/// The wedgie exhibit, end to end: both the protocol-level hysteresis and
/// the engine-level recovery (Theorem 2.1) must be reported, and the new
/// adoption-churn section must drive the engine's retraction path.
#[test]
fn exhibit_wedgie_runs_end_to_end() {
    let out = cargo()
        .args(["run", "-q", "-p", "sbgp_bench", "--bin", "exhibit_wedgie"])
        .output()
        .expect("failed to spawn cargo run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "exhibit_wedgie exited nonzero:\nstdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("wedged = true"),
        "hysteresis not exhibited:\n{stdout}"
    );
    assert!(
        stdout.contains("returns to intended = true"),
        "engine recovery line missing:\n{stdout}"
    );
}

/// The wedgie example walks the §2.3 gadget through fail → recover and
/// must land in the stuck state, then recover under uniform sec-1st.
#[test]
fn example_wedgie_runs_end_to_end() {
    let out = cargo()
        .args(["run", "-q", "--example", "wedgie"])
        .output()
        .expect("failed to spawn cargo run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "examples/wedgie exited nonzero:\nstdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("the system is wedged"),
        "wedged section missing:\n{stdout}"
    );
    assert!(
        stdout.contains("Theorem 2.1"),
        "uniform-priority recovery missing:\n{stdout}"
    );
}

/// The downgrade example reproduces Figure 2: sec-2nd/3rd abandon the
/// secure route under attack, sec-1st keeps it (Theorem 3.1).
#[test]
fn example_downgrade_attack_runs_end_to_end() {
    let out = cargo()
        .args(["run", "-q", "--example", "downgrade_attack"])
        .output()
        .expect("failed to spawn cargo run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "examples/downgrade_attack exited nonzero:\nstdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("PROTOCOL DOWNGRADE"),
        "downgrade not exhibited:\n{stdout}"
    );
    assert!(
        stdout.contains("Theorem 3.1"),
        "sec-1st immunity line missing:\n{stdout}"
    );
}

/// A bad snapshot path must be a clean diagnostic exit, not a panic.
#[test]
fn figure03_reports_missing_snapshots_cleanly() {
    let out = cargo()
        .args([
            "run",
            "-q",
            "-p",
            "sbgp_bench",
            "--bin",
            "figure03",
            "--",
            "--file",
            "tests/fixtures/no_such_file.as-rel",
        ])
        .output()
        .expect("failed to spawn cargo run");
    assert!(
        !out.status.success(),
        "missing snapshot should exit nonzero"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot load snapshot"),
        "no diagnostic on stderr:\n{stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "missing snapshot caused a panic:\n{stderr}"
    );
}
