//! Paper-scale smoke test: a 40k-AS synthetic Internet — the size class of
//! the paper's UCLA/Cyclops snapshot (~39k ASes, Appendix H) — must
//! generate with the calibrated Table 1 shape intact, and the delta engine
//! must serve a full destination group on it within a wall-clock guard.
//!
//! `#[ignore]`d in tier-1 (it is a scale test, not a correctness test);
//! the CI bench-smoke job runs it in release via
//! `cargo test --release --test scale_smoke -- --ignored`.

use std::time::Instant;

use bgp_juice::prelude::*;
use bgp_juice::sim::sample;
use bgp_juice::topology::tier::Tier;

const ASNS: usize = 40_000;

#[test]
#[ignore = "40k-AS scale smoke; run by CI bench-smoke with --ignored"]
fn scale_smoke_40k_generation_and_delta_group() {
    let t0 = Instant::now();
    let net = Internet::synthetic(ASNS, 42);
    let gen_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(net.len(), ASNS);

    // --- Table 1 shape invariants at paper scale -----------------------
    // 13 transit-free Tier 1s forming a full peering clique.
    let t1 = net.tiers.tier1();
    assert_eq!(t1.len(), 13);
    for (i, &a) in t1.iter().enumerate() {
        assert_eq!(net.graph.provider_degree(a), 0, "{a} buys transit");
        for &b in &t1[i + 1..] {
            assert!(
                net.graph.peers(a).contains(&b),
                "Tier-1 clique broken: {a} does not peer with {b}"
            );
        }
    }
    // Stub fraction near the UCLA snapshot's ~85%.
    let stubs = net.graph.ases().filter(|&v| net.tiers.is_stub(v)).count();
    let stub_share = stubs as f64 / net.len() as f64;
    assert!(
        (0.80..=0.92).contains(&stub_share),
        "stub share {stub_share}"
    );
    // Customer→provider : peer–peer edge ratio within the calibrated band
    // (UCLA 2012: 73442/62129 ≈ 1.18).
    let ratio = net.graph.num_customer_provider_edges() as f64 / net.graph.num_peer_edges() as f64;
    assert!((0.7..=2.0).contains(&ratio), "c2p/p2p ratio {ratio}");
    // The tier classifier found its full populations.
    assert_eq!(net.tiers.tier2().len(), 100);
    assert_eq!(net.tiers.tier3().len(), 100);
    assert_eq!(net.tiers.count(Tier::SmallCp), 300);
    assert_eq!(net.content_providers.len(), 17);

    // --- One delta-engine destination group, end to end ----------------
    // A Tier-2 destination against a spread of non-stub attackers: one
    // normal-conditions base fix plus one contested-region patch per
    // attacker, exactly the unit of work every campaign cell repeats.
    let attackers = sample::sample_non_stubs(&net, 40, 7);
    let d = net.tiers.tier2()[0];
    let dep = Deployment::full_from_iter(net.len(), net.tiers.tier1().iter().copied());
    let policy = Policy::new(SecurityModel::Security2nd);
    let t_group = Instant::now();
    let mut delta = AttackDeltaEngine::new(&net.graph);
    delta.begin(d, &dep, policy);
    let mut served = 0usize;
    for &m in &attackers {
        if m == d {
            continue;
        }
        delta.attack(m, AttackStrategy::FakeLink);
        let (lower, upper) = delta.count_happy();
        assert!(lower <= upper && upper <= net.len() - 2);
        served += 1;
    }
    let group_ms = t_group.elapsed().as_secs_f64() * 1e3;
    assert!(served >= 39, "only {served} attackers served");

    // Wall-clock guard: generation plus one full destination group must
    // stay comfortably interactive even at paper scale (the guard is
    // generous to absorb dev-profile and CI-runner noise; release runs
    // come in far under it).
    let total_s = (gen_ms + group_ms) / 1e3;
    assert!(
        total_s < 300.0,
        "40k-AS generation + delta group took {total_s:.1}s (gen {gen_ms:.0}ms, group {group_ms:.0}ms)"
    );
    println!(
        "40k smoke: gen {gen_ms:.0} ms, {served}-attacker delta group {group_ms:.0} ms, \
         stub share {stub_share:.3}, c2p/p2p {ratio:.2}"
    );
}

/// The `--file` ingestion pipeline at beyond-paper scale: serialize a
/// 100k-AS synthetic Internet to CAIDA serial-1 text, load it back through
/// [`Internet::from_file`] (parse → bulk CSR build → hierarchy validation
/// → label-aware tier classification), and serve a delta-engine
/// destination group on the loaded snapshot.
#[test]
#[ignore = "100k-AS ingest smoke; run by CI bench-smoke with --ignored"]
fn scale_smoke_100k_ingest_and_delta_group() {
    use bgp_juice::topology::io;

    const N: usize = 100_000;
    let net = Internet::synthetic(N, 42);
    let cp_asns: Vec<u32> = net
        .content_providers
        .iter()
        .map(|&v| net.graph.asn_label(v))
        .collect();
    let path = std::env::temp_dir().join(format!("scale_smoke_100k_{}.as-rel", std::process::id()));
    std::fs::write(&path, io::write_relationships(&net.graph)).unwrap();

    let t0 = Instant::now();
    let loaded = Internet::from_file(&path, &cp_asns).unwrap();
    let load_ms = t0.elapsed().as_secs_f64() * 1e3;
    let _ = std::fs::remove_file(&path);

    // The loaded snapshot is the synthetic net under relabeled dense ids:
    // same size and edge counts, same tier populations, and every CP
    // resolved back through its preserved ASN label.
    assert_eq!(loaded.len(), N);
    assert_eq!(
        loaded.graph.num_customer_provider_edges(),
        net.graph.num_customer_provider_edges()
    );
    assert_eq!(loaded.graph.num_peer_edges(), net.graph.num_peer_edges());
    assert_eq!(loaded.tiers.tier1().len(), 13);
    assert_eq!(loaded.tiers.tier2().len(), 100);
    assert_eq!(loaded.content_providers.len(), net.content_providers.len());
    let mut want: Vec<u32> = cp_asns.clone();
    let mut got: Vec<u32> = loaded
        .content_providers
        .iter()
        .map(|&v| loaded.graph.asn_label(v))
        .collect();
    want.sort_unstable();
    got.sort_unstable();
    assert_eq!(got, want, "CPs survive the round trip by ASN");

    // One destination group on the loaded graph, same shape as the 40k
    // smoke above.
    let attackers = sample::sample_non_stubs(&loaded, 40, 7);
    let d = loaded.tiers.tier2()[0];
    let dep = Deployment::full_from_iter(loaded.len(), loaded.tiers.tier1().iter().copied());
    let t_group = Instant::now();
    let mut delta = AttackDeltaEngine::new(&loaded.graph);
    delta.begin(d, &dep, Policy::new(SecurityModel::Security2nd));
    let mut served = 0usize;
    for &m in &attackers {
        if m == d {
            continue;
        }
        delta.attack(m, AttackStrategy::FakeLink);
        let (lower, upper) = delta.count_happy();
        assert!(lower <= upper && upper <= loaded.len() - 2);
        served += 1;
    }
    let group_ms = t_group.elapsed().as_secs_f64() * 1e3;
    assert!(served >= 39, "only {served} attackers served");
    let total_s = (load_ms + group_ms) / 1e3;
    assert!(
        total_s < 300.0,
        "100k-AS load + delta group took {total_s:.1}s (load {load_ms:.0}ms, group {group_ms:.0}ms)"
    );
    println!(
        "100k ingest smoke: load {load_ms:.0} ms, {served}-attacker delta group {group_ms:.0} ms"
    );
}
