//! The crown-jewel property test: the Appendix B routing-outcome engine
//! must agree with the message-level BGP/S\*BGP protocol simulator on
//! random topologies, deployments, attacks, security models and LP
//! variants.
//!
//! Theorem 2.1 guarantees a *unique* stable state whenever all ASes rank
//! security consistently, so the protocol simulator's fixed point is a
//! complete oracle for the engine: every AS must end up with a route of
//! the same class, length and security, leading to a root the engine's
//! `BPR` flags admit.

use proptest::prelude::*;

use bgp_juice::prelude::*;
use bgp_juice::proto::{RunOutcome, Schedule, Simulator};
use bgp_juice::topology::NeighborClass;

/// Build a random valley-free topology from pairwise edge codes.
/// Providers always have smaller ids, so the hierarchy is acyclic.
fn graph_from_codes(n: usize, codes: &[u8]) -> AsGraph {
    let mut b = GraphBuilder::new(n);
    let mut k = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            match codes[k] % 8 {
                // Sparse: most pairs are unconnected.
                0..=3 => {}
                4 => b.add_peering(AsId(i as u32), AsId(j as u32)).unwrap(),
                // i is the provider of j.
                _ => b.add_provider(AsId(j as u32), AsId(i as u32)).unwrap(),
            }
            k += 1;
        }
    }
    b.build()
}

#[derive(Debug, Clone)]
struct Instance {
    n: usize,
    codes: Vec<u8>,
    secure_bits: Vec<bool>,
    attacker: usize,
    destination: usize,
    /// Use the origin-hijack strategy instead of the fake link.
    hijack: bool,
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    (4usize..10).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        (
            Just(n),
            proptest::collection::vec(any::<u8>(), pairs),
            proptest::collection::vec(any::<bool>(), n),
            0..n,
            0..n,
            any::<bool>(),
        )
            .prop_map(
                |(n, codes, secure_bits, attacker, destination, hijack)| Instance {
                    n,
                    codes,
                    secure_bits,
                    attacker,
                    destination,
                    hijack,
                },
            )
    })
}

fn class_matches(engine: RouteClass, proto: NeighborClass) -> bool {
    matches!(
        (engine, proto),
        (RouteClass::Customer, NeighborClass::Customer)
            | (RouteClass::Peer, NeighborClass::Peer)
            | (RouteClass::Provider, NeighborClass::Provider)
    )
}

fn check_instance(inst: &Instance, model: SecurityModel, variant: LpVariant) {
    let deployment = Deployment::full_from_iter(
        inst.n,
        inst.secure_bits
            .iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(i, _)| AsId(i as u32)),
    );
    check_instance_with_deployment(inst, &deployment, model, variant);
}

fn check_instance_with_deployment(
    inst: &Instance,
    deployment: &Deployment,
    model: SecurityModel,
    variant: LpVariant,
) {
    let graph = graph_from_codes(inst.n, &inst.codes);
    let d = AsId(inst.destination as u32);
    let m = AsId(inst.attacker as u32);
    let scenario = if m == d {
        AttackScenario::normal(d)
    } else if inst.hijack {
        AttackScenario::hijack(m, d)
    } else {
        AttackScenario::attack(m, d)
    };
    check_scenario(
        &graph,
        scenario,
        deployment,
        model,
        variant,
        &format!("{inst:?}"),
    );
}

/// The oracle comparison itself, for an arbitrary scenario (any strategy,
/// any announcer set): run the engine and the message-level simulator and
/// require agreement at every source AS.
fn check_scenario(
    graph: &AsGraph,
    scenario: AttackScenario,
    deployment: &Deployment,
    model: SecurityModel,
    variant: LpVariant,
    label: &str,
) {
    let policy = Policy::with_variant(model, variant);

    let mut engine = Engine::new(graph);
    let outcome = engine.compute(scenario, deployment, policy);

    let mut sim = Simulator::new(graph, deployment, policy, scenario);
    let run = sim.run(Schedule::Fifo, 2_000_000);
    assert!(
        matches!(run, RunOutcome::Converged { .. }),
        "simulator did not converge: {label} {model} {variant}"
    );
    assert!(
        sim.unstable_ases().is_empty(),
        "simulator fixed point is not stable: {label} {model} {variant}"
    );

    for v in graph.ases() {
        if !scenario.is_source(v) {
            continue;
        }
        let ctx = || format!("{label} {model} {variant} at {v}");
        match (outcome.route(v), sim.selected(v)) {
            (None, None) => {}
            (Some(er), Some(sel)) => {
                assert!(
                    class_matches(er.class, sel.class),
                    "class mismatch: engine {er:?} vs proto {sel:?} ({})",
                    ctx()
                );
                assert_eq!(er.length, sel.route.length(), "length mismatch ({})", ctx());
                assert_eq!(er.secure, sel.secure, "security mismatch ({})", ctx());
                let to_attacker = scenario.attackers().any(|m| sel.route.contains(m));
                if to_attacker {
                    assert!(
                        er.flags.may_reach_attacker(),
                        "proto routes to an announcer but engine says TO_D only ({})",
                        ctx()
                    );
                } else {
                    assert!(
                        er.flags.may_reach_destination(),
                        "proto routes to d but engine says TO_M only ({})",
                        ctx()
                    );
                }
            }
            (er, sel) => panic!(
                "reachability mismatch: engine {er:?} vs proto {sel:?} ({})",
                ctx()
            ),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn engine_matches_protocol_simulator_standard_lp(inst in arb_instance()) {
        for model in SecurityModel::ALL {
            check_instance(&inst, model, LpVariant::Standard);
        }
    }

    #[test]
    fn engine_matches_protocol_simulator_lp_variants(inst in arb_instance()) {
        for model in SecurityModel::ALL {
            check_instance(&inst, model, LpVariant::LpK(2));
        }
        check_instance(&inst, SecurityModel::Security2nd, LpVariant::LpK(1));
        check_instance(&inst, SecurityModel::Security3rd, LpVariant::LpInf);
        check_instance(&inst, SecurityModel::Security1st, LpVariant::LpInf);
    }
}

/// A deployment mixing full and simplex members from per-AS mode codes
/// (simplex ASes sign their origin but neither validate nor prefer secure
/// routes — §5.3.2's stub mode, previously uncovered by the oracle).
fn deployment_from_modes(n: usize, modes: &[u8]) -> Deployment {
    let mut dep = Deployment::empty(n);
    for (i, &code) in modes.iter().enumerate() {
        match code % 4 {
            0 | 1 => {}
            2 => dep.insert_simplex(AsId(i as u32)),
            _ => dep.insert_full(AsId(i as u32)),
        }
    }
    dep
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Mixed full/simplex deployments, with extra weight on security 1st —
    /// the model whose schedule depends most on who actually validates —
    /// under both the fake-link and origin-hijack strategies (`inst.hijack`).
    #[test]
    fn engine_matches_protocol_simulator_with_simplex(
        args in (arb_instance(), proptest::collection::vec(any::<u8>(), 10))
    ) {
        let (inst, modes) = args;
        let dep = deployment_from_modes(inst.n, &modes[..inst.n]);
        for model in SecurityModel::ALL {
            check_instance_with_deployment(&inst, &dep, model, LpVariant::Standard);
        }
        check_instance_with_deployment(&inst, &dep, SecurityModel::Security1st, LpVariant::LpK(2));
        check_instance_with_deployment(&inst, &dep, SecurityModel::Security1st, LpVariant::LpInf);
    }
}

/// Forged-path / colluding-announcer instances: up to three announcers
/// (deduplicated, destination removed) all flooding a `FakePath` of
/// claimed distance 0..=3.
#[derive(Debug, Clone)]
struct StrategicInstance {
    n: usize,
    codes: Vec<u8>,
    secure_bits: Vec<bool>,
    attackers: Vec<usize>,
    destination: usize,
    hops: u8,
}

fn arb_strategic_instance() -> impl Strategy<Value = StrategicInstance> {
    (4usize..10).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        (
            Just(n),
            proptest::collection::vec(any::<u8>(), pairs),
            proptest::collection::vec(any::<bool>(), n),
            proptest::collection::vec(0..n, 1..4),
            0..n,
            0u8..4,
        )
            .prop_map(|(n, codes, secure_bits, attackers, destination, hops)| {
                StrategicInstance {
                    n,
                    codes,
                    secure_bits,
                    attackers,
                    destination,
                    hops,
                }
            })
    })
}

impl StrategicInstance {
    /// The colluding forged-path scenario (normal conditions when every
    /// sampled announcer collides with the destination).
    fn scenario(&self) -> AttackScenario {
        let d = AsId(self.destination as u32);
        let candidates: Vec<AsId> = self.attackers.iter().map(|&i| AsId(i as u32)).collect();
        let ms = AttackScenario::filter_announcers(&candidates, d);
        if ms.is_empty() {
            AttackScenario::normal(d)
        } else {
            AttackScenario::colluding(&ms, d)
                .with_strategy(AttackStrategy::FakePath { hops: self.hops })
        }
    }

    fn deployment(&self) -> Deployment {
        Deployment::full_from_iter(
            self.n,
            self.secure_bits
                .iter()
                .enumerate()
                .filter(|(_, &s)| s)
                .map(|(i, _)| AsId(i as u32)),
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `FakePath{k}` for k ∈ 0..=3 and up to three colluding announcers:
    /// engine ≡ protocol simulator under every model, standard LP.
    #[test]
    fn engine_matches_protocol_simulator_strategic(inst in arb_strategic_instance()) {
        let graph = graph_from_codes(inst.n, &inst.codes);
        let deployment = inst.deployment();
        let scenario = inst.scenario();
        let label = format!("{inst:?}");
        for model in SecurityModel::ALL {
            check_scenario(&graph, scenario, &deployment, model, LpVariant::Standard, &label);
        }
    }

    /// The same strategic instances under the LP2 and LPinf variants, all
    /// three models.
    #[test]
    fn engine_matches_protocol_simulator_strategic_lp_variants(inst in arb_strategic_instance()) {
        let graph = graph_from_codes(inst.n, &inst.codes);
        let deployment = inst.deployment();
        let scenario = inst.scenario();
        let label = format!("{inst:?}");
        for model in SecurityModel::ALL {
            check_scenario(&graph, scenario, &deployment, model, LpVariant::LpK(2), &label);
            check_scenario(&graph, scenario, &deployment, model, LpVariant::LpInf, &label);
        }
    }
}

/// A deterministic regression net: the equivalence must also hold on a
/// structured (generated) topology, not just proptest soup. Both legacy
/// attack strategies are cross-checked (the hijack pass additionally runs
/// the §5.3.2 simplex-at-stubs deployment variant), plus a 3-hop forged
/// path and a colluding pair flooding 2-hop forged paths.
#[test]
fn engine_matches_protocol_simulator_on_generated_internet() {
    let net = Internet::synthetic(160, 9);
    let step = scenario::tier12_step(&net, 5, 5);
    let simplex_step = scenario::simplex_variant(&net, &step);
    let d = net.content_providers[0];
    let m = net.tiers.tier2()[1];
    let m2 = net.tiers.tier2()[3];
    assert_ne!(m, m2);
    for model in SecurityModel::ALL {
        let policy = Policy::new(model);
        for (scenario, deployment) in [
            (AttackScenario::attack(m, d), &step.deployment),
            (AttackScenario::hijack(m, d), &simplex_step.deployment),
            (
                AttackScenario::attack(m, d).with_strategy(AttackStrategy::FakePath { hops: 3 }),
                &step.deployment,
            ),
            (
                AttackScenario::colluding(&[m, m2], d)
                    .with_strategy(AttackStrategy::FakePath { hops: 2 }),
                &step.deployment,
            ),
        ] {
            let mut engine = Engine::new(&net.graph);
            let outcome = engine.compute(scenario, deployment, policy);
            let mut sim = Simulator::new(&net.graph, deployment, policy, scenario);
            let run = sim.run(Schedule::Random(model as u64), 5_000_000);
            assert!(matches!(run, RunOutcome::Converged { .. }), "{model}");
            assert!(sim.unstable_ases().is_empty(), "{model}");
            for v in net.graph.ases() {
                if !scenario.is_source(v) {
                    continue;
                }
                match (outcome.route(v), sim.selected(v)) {
                    (None, None) => {}
                    (Some(er), Some(sel)) => {
                        assert_eq!(er.length, sel.route.length(), "{model} {v}");
                        assert_eq!(er.secure, sel.secure, "{model} {v}");
                        assert!(class_matches(er.class, sel.class), "{model} {v}");
                    }
                    (er, sel) => panic!("{model} {v}: {er:?} vs {sel:?}"),
                }
            }
        }
    }
}
