//! The sweep-equivalence property suite: on random valley-free graphs,
//! [`SweepEngine`] outcomes after **any** deployment sequence — monotone
//! rollouts and arbitrary churn (joins, retirements, simplex↔full flips,
//! the destination signing and un-signing) alike — must be identical —
//! route class, length, security, flags, representative next hop, and
//! happy bounds — to a fresh [`Engine::compute`] at every step, for every
//! security model, the `LP2`/`LPinf` variants, and both attack kinds.
//! The message-level simulator oracle (`tests/equivalence.rs`) pins
//! `Engine::compute` itself to the protocol, so together these close the
//! chain: sweep ≡ engine ≡ simulated S*BGP.

use proptest::prelude::*;

use bgp_juice::prelude::*;

/// Build a random valley-free topology from pairwise edge codes.
/// Providers always have smaller ids, so the hierarchy is acyclic.
fn graph_from_codes(n: usize, codes: &[u8]) -> AsGraph {
    let mut b = GraphBuilder::new(n);
    let mut k = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            match codes[k] % 8 {
                // Sparse: most pairs are unconnected.
                0..=3 => {}
                4 => b.add_peering(AsId(i as u32), AsId(j as u32)).unwrap(),
                // i is the provider of j.
                _ => b.add_provider(AsId(j as u32), AsId(i as u32)).unwrap(),
            }
            k += 1;
        }
    }
    b.build()
}

/// A monotone 4-step deployment sequence from per-AS join codes: bits 0–1
/// give the AS's join step (3 = never), bit 2 picks simplex mode, and bit 3
/// upgrades a simplex member to full one step after joining.
fn deployment_sequence(n: usize, join_codes: &[u8]) -> Vec<Deployment> {
    (0..4usize)
        .map(|step| {
            let mut dep = Deployment::empty(n);
            for (i, &code) in join_codes.iter().enumerate() {
                let join = usize::from(code & 3);
                if join == 3 || join > step {
                    continue;
                }
                let v = AsId(i as u32);
                let simplex = code & 4 != 0;
                let upgrades = code & 8 != 0;
                if simplex && !(upgrades && step > join) {
                    dep.insert_simplex(v);
                } else {
                    dep.insert_full(v);
                }
            }
            dep
        })
        .collect()
}

#[derive(Debug, Clone)]
struct Instance {
    n: usize,
    codes: Vec<u8>,
    join_codes: Vec<u8>,
    attacker: usize,
    destination: usize,
    /// Use the origin-hijack strategy instead of the fake link.
    hijack: bool,
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    (4usize..10).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        (
            Just(n),
            proptest::collection::vec(any::<u8>(), pairs),
            proptest::collection::vec(any::<u8>(), n),
            0..n,
            0..n,
            any::<bool>(),
        )
            .prop_map(
                |(n, codes, join_codes, attacker, destination, hijack)| Instance {
                    n,
                    codes,
                    join_codes,
                    attacker,
                    destination,
                    hijack,
                },
            )
    })
}

fn check_instance(inst: &Instance, policy: Policy) {
    let graph = graph_from_codes(inst.n, &inst.codes);
    let steps = deployment_sequence(inst.n, &inst.join_codes);
    // The sequence must actually be monotone, or the whole premise breaks.
    for w in steps.windows(2) {
        assert!(w[1].is_monotone_extension_of(&w[0]), "generator bug");
    }

    let d = AsId(inst.destination as u32);
    let m = AsId(inst.attacker as u32);
    let scenario = if m == d {
        AttackScenario::normal(d)
    } else if inst.hijack {
        AttackScenario::hijack(m, d)
    } else {
        AttackScenario::attack(m, d)
    };

    let mut sweep = SweepEngine::new(&graph);
    let mut fresh = Engine::new(&graph);
    sweep.begin(scenario, policy);
    for (k, dep) in steps.iter().enumerate() {
        let got = sweep.advance(dep);
        let want = fresh.compute(scenario, dep, policy);
        for v in graph.ases() {
            assert_eq!(
                got.route(v),
                want.route(v),
                "route mismatch at {v}, step {k}: {inst:?} {policy}"
            );
            assert_eq!(
                got.next_hop(v),
                want.next_hop(v),
                "next-hop mismatch at {v}, step {k}: {inst:?} {policy}"
            );
        }
        assert_eq!(
            sweep.count_happy(),
            want.count_happy(),
            "happy-bound mismatch at step {k}: {inst:?} {policy}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sweep_matches_fresh_engine_standard_lp(inst in arb_instance()) {
        for model in SecurityModel::ALL {
            check_instance(&inst, Policy::new(model));
        }
    }

    #[test]
    fn sweep_matches_fresh_engine_lp_variants(inst in arb_instance()) {
        for model in SecurityModel::ALL {
            check_instance(&inst, Policy::with_variant(model, LpVariant::LpK(2)));
            check_instance(&inst, Policy::with_variant(model, LpVariant::LpInf));
        }
    }
}

/// A fixed-length any-direction deployment sequence: each AS gets an
/// independent state per step (absent / simplex / full), so joins,
/// retirements, and simplex↔full flips all occur — including on the
/// destination, whose flips exercise the signing seed.
const CHURN_STEPS: usize = 6;

fn churn_sequence(n: usize, state_codes: &[u8]) -> Vec<Deployment> {
    (0..CHURN_STEPS)
        .map(|step| {
            let mut dep = Deployment::empty(n);
            for i in 0..n {
                let v = AsId(i as u32);
                match state_codes[step * n + i] % 8 {
                    // Biased toward absent so the secure set stays sparse
                    // and actually churns instead of saturating.
                    0..=3 => {}
                    4 | 5 => dep.insert_simplex(v),
                    _ => dep.insert_full(v),
                }
            }
            dep
        })
        .collect()
}

#[derive(Debug, Clone)]
struct ChurnInstance {
    n: usize,
    codes: Vec<u8>,
    /// One state code per (step, AS) — `churn_sequence` input.
    state_codes: Vec<u8>,
    attacker: usize,
    destination: usize,
    hijack: bool,
}

fn arb_churn_instance() -> impl Strategy<Value = ChurnInstance> {
    (4usize..10).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        (
            Just(n),
            proptest::collection::vec(any::<u8>(), pairs),
            proptest::collection::vec(any::<u8>(), n * CHURN_STEPS),
            0..n,
            0..n,
            any::<bool>(),
        )
            .prop_map(|(n, codes, state_codes, attacker, destination, hijack)| {
                ChurnInstance {
                    n,
                    codes,
                    state_codes,
                    attacker,
                    destination,
                    hijack,
                }
            })
    })
}

fn check_churn_instance(inst: &ChurnInstance, policy: Policy) {
    let graph = graph_from_codes(inst.n, &inst.codes);
    let steps = churn_sequence(inst.n, &inst.state_codes);

    let d = AsId(inst.destination as u32);
    let m = AsId(inst.attacker as u32);
    let scenario = if m == d {
        AttackScenario::normal(d)
    } else if inst.hijack {
        AttackScenario::hijack(m, d)
    } else {
        AttackScenario::attack(m, d)
    };

    let mut sweep = SweepEngine::new(&graph);
    let mut fresh = Engine::new(&graph);
    sweep.begin(scenario, policy);
    for (k, dep) in steps.iter().enumerate() {
        let got = sweep.advance(dep);
        let want = fresh.compute(scenario, dep, policy);
        for v in graph.ases() {
            assert_eq!(
                got.route(v),
                want.route(v),
                "route mismatch at {v}, step {k}: {inst:?} {policy}"
            );
            assert_eq!(
                got.next_hop(v),
                want.next_hop(v),
                "next-hop mismatch at {v}, step {k}: {inst:?} {policy}"
            );
        }
        assert_eq!(
            sweep.count_happy(),
            want.count_happy(),
            "happy-bound mismatch at step {k}: {inst:?} {policy}"
        );
    }
    // Step-direction accounting must close over whatever the sequence did.
    let s = sweep.stats();
    assert_eq!(
        s.monotone_steps + s.retracting_steps + s.mixed_steps,
        s.incremental_steps,
        "direction accounting broke: {inst:?} {policy}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sweep_matches_fresh_engine_under_churn(inst in arb_churn_instance()) {
        for model in SecurityModel::ALL {
            check_churn_instance(&inst, Policy::new(model));
        }
    }

    #[test]
    fn sweep_matches_fresh_engine_under_churn_lp_variants(inst in arb_churn_instance()) {
        for model in SecurityModel::ALL {
            check_churn_instance(&inst, Policy::with_variant(model, LpVariant::LpK(2)));
            check_churn_instance(&inst, Policy::with_variant(model, LpVariant::LpInf));
        }
    }
}

/// Build the colluding forged-path scenario for the strategic sweep tests:
/// the given attacker plus up to two extra announcers (deduplicated,
/// destination dropped), all announcing `FakePath { hops }`.
fn strategic_scenario(
    attacker: usize,
    destination: usize,
    extra: &[usize],
    hops: u8,
) -> AttackScenario {
    let d = AsId(destination as u32);
    let candidates: Vec<AsId> = std::iter::once(&attacker)
        .chain(extra)
        .map(|&i| AsId(i as u32))
        .collect();
    let ms = AttackScenario::filter_announcers(&candidates, d);
    if ms.is_empty() {
        AttackScenario::normal(d)
    } else {
        AttackScenario::colluding(&ms, d).with_strategy(AttackStrategy::FakePath { hops })
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every new strategy through the sweep: `FakePath{k}` for k ∈ 0..=3
    /// announced by 1–3 colluders (who may sit inside the secure set —
    /// the join codes are independent of the announcer sample), swept
    /// over monotone deployments and compared to fresh computes per step,
    /// across all models and the LP2/LPinf variants.
    #[test]
    fn sweep_matches_fresh_engine_strategic(
        args in (arb_instance(), proptest::collection::vec(0usize..10, 0..3), 0u8..4)
    ) {
        let (inst, extra, hops) = args;
        let extra: Vec<usize> = extra.into_iter().filter(|&i| i < inst.n).collect();
        let graph = graph_from_codes(inst.n, &inst.codes);
        let steps = deployment_sequence(inst.n, &inst.join_codes);
        let scenario = strategic_scenario(inst.attacker, inst.destination, &extra, hops);
        for policy in [
            Policy::new(SecurityModel::Security1st),
            Policy::new(SecurityModel::Security2nd),
            Policy::new(SecurityModel::Security3rd),
            Policy::with_variant(SecurityModel::Security2nd, LpVariant::LpK(2)),
            Policy::with_variant(SecurityModel::Security3rd, LpVariant::LpInf),
        ] {
            let mut sweep = SweepEngine::new(&graph);
            let mut fresh = Engine::new(&graph);
            sweep.begin(scenario, policy);
            for (k, dep) in steps.iter().enumerate() {
                let got = sweep.advance(dep);
                let want = fresh.compute(scenario, dep, policy);
                for v in graph.ases() {
                    prop_assert_eq!(
                        got.route(v),
                        want.route(v),
                        "route mismatch at {} step {}: {:?} {} hops {}",
                        v, k, inst, policy, hops
                    );
                    prop_assert_eq!(
                        got.next_hop(v),
                        want.next_hop(v),
                        "next-hop mismatch at {} step {}: {:?} {}",
                        v, k, inst, policy
                    );
                }
                prop_assert_eq!(
                    sweep.count_happy(),
                    want.count_happy(),
                    "happy-bound mismatch at step {}: {:?} {}",
                    k, inst, policy
                );
            }
        }
    }

    /// The strategy ladder under churn: `FakePath{k}` for k ∈ 0..=3
    /// announced by 1–3 colluders (who may churn in and out of the secure
    /// set themselves), swept over an arbitrary-direction sequence and
    /// compared to fresh computes per step.
    #[test]
    fn sweep_matches_fresh_engine_strategic_under_churn(
        args in (arb_churn_instance(), proptest::collection::vec(0usize..10, 0..3), 0u8..4)
    ) {
        let (inst, extra, hops) = args;
        let extra: Vec<usize> = extra.into_iter().filter(|&i| i < inst.n).collect();
        let graph = graph_from_codes(inst.n, &inst.codes);
        let steps = churn_sequence(inst.n, &inst.state_codes);
        let scenario = strategic_scenario(inst.attacker, inst.destination, &extra, hops);
        for policy in [
            Policy::new(SecurityModel::Security1st),
            Policy::new(SecurityModel::Security2nd),
            Policy::new(SecurityModel::Security3rd),
            Policy::with_variant(SecurityModel::Security2nd, LpVariant::LpK(2)),
            Policy::with_variant(SecurityModel::Security3rd, LpVariant::LpInf),
        ] {
            let mut sweep = SweepEngine::new(&graph);
            let mut fresh = Engine::new(&graph);
            sweep.begin(scenario, policy);
            for (k, dep) in steps.iter().enumerate() {
                let got = sweep.advance(dep);
                let want = fresh.compute(scenario, dep, policy);
                for v in graph.ases() {
                    prop_assert_eq!(
                        got.route(v),
                        want.route(v),
                        "route mismatch at {} step {}: {:?} {} hops {}",
                        v, k, inst, policy, hops
                    );
                    prop_assert_eq!(
                        got.next_hop(v),
                        want.next_hop(v),
                        "next-hop mismatch at {} step {}: {:?} {}",
                        v, k, inst, policy
                    );
                }
                prop_assert_eq!(
                    sweep.count_happy(),
                    want.count_happy(),
                    "happy-bound mismatch at step {}: {:?} {}",
                    k, inst, policy
                );
            }
        }
    }
}

/// The same equivalence on a structured (generated) topology with a real
/// rollout, where the incremental path is actually exercised (proptest's
/// tiny graphs often fall back to full recomputes via the region cap).
#[test]
fn sweep_matches_fresh_engine_on_generated_internet() {
    let net = Internet::synthetic(400, 17);
    let steps: Vec<Deployment> = [
        Deployment::empty(net.len()),
        scenario::tier12_step(&net, 2, 2).deployment.clone(),
        scenario::tier12_step(&net, 5, 8).deployment.clone(),
        scenario::tier12_step(&net, 13, 30).deployment.clone(),
    ]
    .to_vec();
    let m = net.tiers.tier2()[1];
    let d = net.content_providers[0];
    let attack = AttackScenario::attack(m, d);
    let mut incremental_seen = false;
    for model in SecurityModel::ALL {
        let policy = Policy::new(model);
        let mut sweep = SweepEngine::new(&net.graph);
        let mut fresh = Engine::new(&net.graph);
        sweep.begin(attack, policy);
        for (k, dep) in steps.iter().enumerate() {
            let got = sweep.advance(dep);
            let want = fresh.compute(attack, dep, policy);
            for v in net.graph.ases() {
                assert_eq!(got.route(v), want.route(v), "{model} step {k} at {v}");
            }
            assert_eq!(sweep.count_happy(), want.count_happy(), "{model} step {k}");
        }
        incremental_seen |= sweep.stats().incremental_steps > 0;
    }
    assert!(incremental_seen, "rollout never took the incremental path");
}

/// The same equivalence on a generated topology over a full wax-and-wane
/// churn trajectory, where the *retraction* path is actually exercised
/// incrementally (not just bailed to the region-cap fallback).
#[test]
fn sweep_matches_fresh_engine_on_generated_internet_churn() {
    let net = Internet::synthetic(400, 17);
    let steps = scenario::churn_trajectory(&net, 4);
    assert_eq!(steps.len(), 7, "wax-and-wane at peak 4");
    let m = net.tiers.tier2()[1];
    let d = net.content_providers[0];
    let attack = AttackScenario::attack(m, d);
    let mut retraction_seen = false;
    for model in SecurityModel::ALL {
        let policy = Policy::new(model);
        let mut sweep = SweepEngine::new(&net.graph);
        let mut fresh = Engine::new(&net.graph);
        sweep.begin(attack, policy);
        for (k, dep) in steps.iter().enumerate() {
            let got = sweep.advance(dep);
            let want = fresh.compute(attack, dep, policy);
            for v in net.graph.ases() {
                assert_eq!(got.route(v), want.route(v), "{model} step {k} at {v}");
            }
            assert_eq!(sweep.count_happy(), want.count_happy(), "{model} step {k}");
        }
        retraction_seen |= sweep.stats().retracting_steps > 0;
    }
    assert!(
        retraction_seen,
        "churn trajectory never took the incremental retraction path"
    );
}
