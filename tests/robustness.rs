//! The paper's robustness appendices as executable checks: the headline
//! qualitative findings must survive (J) the IXP-augmented graph,
//! (K) the LP2 policy variant, and — beyond the paper — a change of
//! generator seed. Runs at reduced scale; the assertions are the *shape*
//! claims (orderings), never absolute numbers.

use bgp_juice::prelude::*;
use bgp_juice::sim::experiments::{baseline, partitions, ExperimentConfig};
use bgp_juice::topology::tier::Tier;

fn small_cfg(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        attackers: 10,
        destinations: 16,
        per_tier: 8,
        seed,
        parallelism: Parallelism(2),
        ..ExperimentConfig::default()
    }
}

fn shape_claims(net: &Internet, cfg: &ExperimentConfig, variant: LpVariant) {
    // 1. Baseline majority-happy.
    let b = baseline::baseline_metric(net, cfg);
    assert!(b.metric.lower > 0.5, "{}: baseline {}", net.name, b.metric);

    // 2. Figure 3 ordering: upper bound shrinks with security priority.
    let f3 = partitions::figure3(net, cfg, variant);
    let ub: Vec<f64> = f3.models.iter().map(|(_, s)| s.upper_bound()).collect();
    assert!(
        ub[0] >= ub[1] - 1e-9 && ub[1] >= ub[2] - 1e-9,
        "{}: {ub:?}",
        net.name
    );

    // 3. T1 destinations are the most doomed tier (sec 3rd).
    let rows = partitions::by_destination_tier(
        net,
        cfg,
        Policy::with_variant(SecurityModel::Security3rd, variant),
    );
    let doomed = |t: Tier| rows.iter().find(|r| r.tier == t).map(|r| r.share.doomed);
    let t1 = doomed(Tier::Tier1).expect("t1 row");
    for tier in [Tier::Stub, Tier::Smdg, Tier::Cp, Tier::Tier2] {
        if let Some(other) = doomed(tier) {
            assert!(
                t1 > other,
                "{} ({variant:?}): T1 doomed {t1} vs {tier:?} {other}",
                net.name
            );
        }
    }
}

#[test]
fn headline_shape_holds_on_the_base_graph() {
    let net = Internet::synthetic(2_000, 42);
    shape_claims(&net, &small_cfg(1), LpVariant::Standard);
}

#[test]
fn appendix_j_shape_survives_ixp_augmentation() {
    let net = Internet::synthetic_with_ixp(2_000, 42);
    shape_claims(&net, &small_cfg(1), LpVariant::Standard);

    // The paper's specific Appendix J note: the augmented baseline is at
    // least as happy as the base one (extra peer routes only help the
    // defense on average).
    let base = baseline::baseline_metric(&Internet::synthetic(2_000, 42), &small_cfg(1));
    let aug = baseline::baseline_metric(&net, &small_cfg(1));
    assert!(
        aug.metric.lower >= base.metric.lower - 0.03,
        "augmented {} vs base {}",
        aug.metric,
        base.metric
    );
}

#[test]
fn appendix_k_shape_survives_lp2() {
    let net = Internet::synthetic(2_000, 42);
    shape_claims(&net, &small_cfg(1), LpVariant::LpK(2));

    // Appendix K's headline: LP2 yields at least as many immune sources
    // under security 3rd (short peer routes beat long bogus customer
    // routes).
    let cfg = small_cfg(1);
    let lp = partitions::figure3(&net, &cfg, LpVariant::Standard);
    let lp2 = partitions::figure3(&net, &cfg, LpVariant::LpK(2));
    let immune = |f: &partitions::Figure3| f.models[2].1.immune;
    assert!(
        immune(&lp2) >= immune(&lp) - 0.02,
        "LP2 {} vs LP {}",
        immune(&lp2),
        immune(&lp)
    );
}

#[test]
fn shape_is_not_a_seed_artifact() {
    // A different world, same physics.
    let net = Internet::synthetic(2_000, 777);
    shape_claims(&net, &small_cfg(9), LpVariant::Standard);
}

#[test]
fn rollout_ordering_survives_ixp_augmentation() {
    use bgp_juice::sim::experiments::rollout;
    let net = Internet::synthetic_with_ixp(1_500, 5);
    let r = rollout::figure7(&net, &small_cfg(3));
    let last = r.points.last().unwrap();
    assert!(last.delta[0].mid() >= last.delta[1].mid() - 1e-9);
    assert!(last.delta[1].mid() >= last.delta[2].mid() - 0.02);
    for p in &r.points {
        assert!(p.delta[2].lower >= -1e-9, "{}", p.label);
    }
}
