//! Serial-1 I/O round-trip and error-path coverage for
//! `sbgp_topology::io`.
//!
//! The round-trip property: generate → write → parse must reproduce the
//! graph exactly — same AS count, same per-AS adjacency in every
//! relationship class (compared through the preserved ASN labels, since
//! dense ids may be permuted by first-appearance interning).

use proptest::prelude::*;

use bgp_juice::prelude::*;
use bgp_juice::topology::gen::{generate, InternetConfig};
use bgp_juice::topology::io::{parse_relationships, write_relationships};
use bgp_juice::topology::TopologyError;

/// Assert `g` and `h` are the same labeled graph.
fn assert_same_graph(g: &AsGraph, h: &AsGraph) {
    assert_eq!(g.len(), h.len());
    assert_eq!(
        g.num_customer_provider_edges(),
        h.num_customer_provider_edges()
    );
    assert_eq!(g.num_peer_edges(), h.num_peer_edges());
    let mut to_h = std::collections::HashMap::new();
    for v in h.ases() {
        assert!(
            to_h.insert(h.asn_label(v), v).is_none(),
            "duplicate label {}",
            h.asn_label(v)
        );
    }
    let labels = |g: &AsGraph, vs: &[AsId]| -> Vec<u32> {
        let mut ls: Vec<u32> = vs.iter().map(|&v| g.asn_label(v)).collect();
        ls.sort_unstable();
        ls
    };
    for v in g.ases() {
        let w = *to_h
            .get(&g.asn_label(v))
            .unwrap_or_else(|| panic!("label {} lost", g.asn_label(v)));
        assert_eq!(labels(g, g.providers(v)), labels(h, h.providers(w)), "{v}");
        assert_eq!(labels(g, g.customers(v)), labels(h, h.customers(w)), "{v}");
        assert_eq!(labels(g, g.peers(v)), labels(h, h.peers(w)), "{v}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Generate → write → parse → equal graph, ASN labels preserved.
    #[test]
    fn serial1_round_trip_preserves_the_graph(args in (150usize..400, 0u64..500)) {
        let (asns, seed) = args;
        let g = generate(&InternetConfig::sized(asns, seed)).graph;
        let text = write_relationships(&g);
        let h = parse_relationships(text.as_bytes()).expect("parse our own output");
        assert_same_graph(&g, &h);
        // And the round trip is a fixed point: writing the parsed graph
        // yields the same edge multiset. Peer lines are direction-free in
        // serial-1, so normalize their endpoint order before comparing.
        let canon = |text: &str| -> Vec<String> {
            let mut lines: Vec<String> = text
                .lines()
                .filter(|l| !l.starts_with('#'))
                .map(|l| {
                    let parts: Vec<&str> = l.split('|').collect();
                    if parts[2] == "0" && parts[0] > parts[1] {
                        format!("{}|{}|0", parts[1], parts[0])
                    } else {
                        l.to_string()
                    }
                })
                .collect();
            lines.sort_unstable();
            lines
        };
        assert_eq!(canon(&text), canon(&write_relationships(&h)));
    }

    /// Corrupting any single data line into a contradictory duplicate
    /// must be rejected with that line's number.
    #[test]
    fn contradictory_duplicates_are_rejected_everywhere(args in (150usize..250, 0u64..100)) {
        let (asns, seed) = args;
        let g = generate(&InternetConfig::sized(asns, seed)).graph;
        let mut text = write_relationships(&g);
        // Append a reversed copy of the first transit edge.
        let flipped = text
            .lines()
            .find(|l| l.ends_with("|-1"))
            .map(|l| {
                let mut it = l.split('|');
                let (p, c) = (it.next().unwrap(), it.next().unwrap());
                format!("{c}|{p}|-1\n")
            })
            .expect("a generated graph always has transit edges");
        let expected_line = text.lines().count() + 1;
        text.push_str(&flipped);
        match parse_relationships(text.as_bytes()) {
            Err(TopologyError::Parse { line, message }) => {
                prop_assert_eq!(line, expected_line);
                prop_assert!(message.contains("conflicting duplicate"), "{}", message);
            }
            other => prop_assert!(false, "expected a parse error, got {:?}", other.map(|g| g.len())),
        }
    }
}

#[test]
fn malformed_documents_are_rejected_with_locations() {
    let cases: [(&str, usize); 7] = [
        ("1|2\n", 1),                    // missing relationship column
        ("1|2|7\n", 1),                  // unknown relationship code
        ("x|2|0\n", 1),                  // non-numeric ASN
        ("1|2|-1\n\n# ok\n2|1|-1\n", 4), // reversed transit duplicate
        ("1|2|0\n1|2|-1\n", 2),          // peer vs transit
        ("5|5|-1\n", 1),                 // self loop
        ("1||0\n", 1),                   // empty ASN
    ];
    for (doc, want_line) in cases {
        match parse_relationships(doc.as_bytes()) {
            Err(TopologyError::Parse { line, .. }) => {
                assert_eq!(line, want_line, "{doc:?}");
            }
            other => panic!("{doc:?}: expected Parse error, got {other:?}"),
        }
    }
}

#[test]
fn exact_duplicates_parse_to_a_single_edge() {
    let doc = "10|20|-1\n10|20|-1\n30|40|0\n40|30|0\n10|20|-1\n";
    let g = parse_relationships(doc.as_bytes()).unwrap();
    assert_eq!(g.len(), 4);
    assert_eq!(g.num_customer_provider_edges(), 1);
    assert_eq!(g.num_peer_edges(), 1);
}
