//! Deterministic chaos suite for the supervised campaign.
//!
//! Builds the `campaign` binary with the `fault-injection` feature (into
//! its own target dir, so the plain binary used by `tests/campaign.rs`
//! is never clobbered) and replays scripted faults against a small grid:
//! worker crashes mid-cell, hangs past the watchdog, wrong-schema
//! replies, torn/corrupted/dropped checkpoint writes, and a persistent
//! failure that exhausts the retry ladder into a *degraded* cell.
//!
//! The invariant under test is always the same: after the fault (and,
//! for on-disk damage, one repair rerun) the campaign's estimates are
//! **byte-identical** to the fault-free in-process reference. Crashes
//! cost retries, never bits.

use std::path::PathBuf;
use std::process::Command;

/// Build the fault-injection campaign binary into `target/fault-injection`.
fn campaign_bin() -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let target = root.join("target").join("fault-injection");
    let mut build = Command::new(env!("CARGO"));
    build.current_dir(&root).args([
        "build",
        "--offline",
        "-q",
        "-p",
        "sbgp_bench",
        "--bin",
        "campaign",
        "--features",
        "fault-injection",
        "--target-dir",
    ]);
    build.arg(&target);
    let out = build.output().expect("spawn cargo build");
    assert!(
        out.status.success(),
        "fault-injection campaign failed to build:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    target.join("debug").join("campaign")
}

/// Strip timing fields and the content checksums that cover them.
fn estimates_only(json: &str) -> String {
    json.lines()
        .filter(|l| {
            !(l.contains("wall_ms")
                || l.contains("pairs_per_sec")
                || l.contains("\"checksum\"")
                || l.contains("_this_run")
                || l.contains("\"resumed\""))
        })
        .collect::<Vec<_>>()
        .join("\n")
}

struct Harness {
    bin: PathBuf,
    dir: PathBuf,
    reference: String,
}

impl Harness {
    /// Run the fixed test grid; `extra` supplies the per-case flags
    /// (`--workers`, `--fault-plan`, checkpoint dir, output name).
    fn run(&self, extra: &[&str]) -> (String, String, String) {
        let out_name = extra
            .iter()
            .skip_while(|a| **a != "--out")
            .nth(1)
            .expect("--out in extra");
        let out = Command::new(&self.bin)
            .current_dir(&self.dir)
            .args([
                "--figures",
                "baseline",
                "--asns",
                "300",
                "--seeds",
                "7",
                "--models",
                "sec1,sec2",
                "--pairs",
                "100",
                "--threads",
                "2",
            ])
            .args(extra)
            .output()
            .expect("spawn campaign");
        let stdout = String::from_utf8_lossy(&out.stdout).to_string();
        let stderr = String::from_utf8_lossy(&out.stderr).to_string();
        assert!(
            out.status.success(),
            "campaign {extra:?} failed:\nstdout:\n{stdout}\nstderr:\n{stderr}"
        );
        let json = std::fs::read_to_string(self.dir.join(out_name)).expect("campaign JSON");
        (json, stdout, stderr)
    }

    fn plan(&self, name: &str, text: &str) -> String {
        std::fs::write(self.dir.join(name), text).expect("write plan");
        name.to_string()
    }

    fn assert_reference(&self, json: &str, case: &str) {
        assert_eq!(
            estimates_only(&self.reference),
            estimates_only(json),
            "{case}: estimates diverged from the fault-free reference"
        );
    }
}

/// The whole fault matrix, sequentially (each case uses its own
/// checkpoint dir, but sharing one scratch dir and one reference run
/// keeps the suite cheap and the ordering deterministic).
#[test]
fn fault_matrix_heals_to_bit_identical_estimates() {
    let dir = std::env::temp_dir().join(format!("sbgp_fault_matrix_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let mut h = Harness {
        bin: campaign_bin(),
        dir,
        reference: String::new(),
    };

    // Fault-free in-process reference.
    let (reference, _, _) = h.run(&["--checkpoint-dir", "ck_ref", "--out", "ref.json"]);
    assert!(reference.contains("\"degraded\": [],"));
    h.reference = reference.clone();

    // Case 1: worker aborts mid-cell → respawned and the task retried.
    let plan = h.plan(
        "abort.plan",
        "point=worker.eval proc=worker0 key=task0 hit=1 action=abort\n",
    );
    let (json, _, stderr) = h.run(&[
        "--workers",
        "1",
        "--fault-plan",
        &plan,
        "--checkpoint-dir",
        "ck_abort",
        "--out",
        "abort.json",
    ]);
    assert!(
        stderr.contains("strike 1/3") && stderr.contains("died"),
        "abort was not struck:\n{stderr}"
    );
    assert!(json.contains("\"degraded\": [],"), "abort did not heal");
    h.assert_reference(&json, "worker abort");

    // Case 2: worker hangs → the watchdog kills and reassigns it.
    let plan = h.plan(
        "hang.plan",
        "point=worker.eval proc=worker0 key=task0 hit=1 action=hang\n",
    );
    let (json, _, stderr) = h.run(&[
        "--workers",
        "1",
        "--watchdog-ms",
        "2000",
        "--fault-plan",
        &plan,
        "--checkpoint-dir",
        "ck_hang",
        "--out",
        "hang.json",
    ]);
    assert!(
        stderr.contains("watchdog expired"),
        "hang did not trip the watchdog:\n{stderr}"
    );
    assert!(json.contains("\"degraded\": [],"), "hang did not heal");
    h.assert_reference(&json, "worker hang");

    // Case 3: wrong-schema reply → struck and retried on a respawn
    // (the plan pins the first incarnation, so the retry runs clean).
    let plan = h.plan(
        "garbage.plan",
        "point=worker.reply proc=worker0 key=task1 hit=1 action=garbage\n",
    );
    let (json, _, stderr) = h.run(&[
        "--workers",
        "1",
        "--fault-plan",
        &plan,
        "--checkpoint-dir",
        "ck_garbage",
        "--out",
        "garbage.json",
    ]);
    assert!(
        stderr.contains("wrong-schema"),
        "garbage reply was not detected:\n{stderr}"
    );
    assert!(json.contains("\"degraded\": [],"), "garbage did not heal");
    h.assert_reference(&json, "wrong-schema reply");

    // Case 4: torn checkpoint write → quarantined and recomputed on the
    // next run.
    let plan = h.plan(
        "torn.plan",
        "point=ckpt.write proc=coord key=baseline_300_7_sec1 hit=1 action=torn\n",
    );
    let (_, _, stderr) = h.run(&[
        "--fault-plan",
        &plan,
        "--checkpoint-dir",
        "ck_torn",
        "--out",
        "torn1.json",
    ]);
    assert!(stderr.contains("tearing checkpoint"), "{stderr}");
    let (json, stdout, stderr) = h.run(&["--checkpoint-dir", "ck_torn", "--out", "torn2.json"]);
    assert!(
        stderr.contains("quarantined to") && stderr.contains("torn"),
        "torn checkpoint was not quarantined:\n{stderr}"
    );
    assert!(stdout.contains("1 computed, 1 resumed"), "{stdout}");
    assert!(h
        .dir
        .join("ck_torn/baseline_300_7_sec1.json.quarantined")
        .exists());
    h.assert_reference(&json, "torn checkpoint repair");

    // Case 5: silent single-byte corruption → caught by the content
    // checksum, quarantined, recomputed.
    let plan = h.plan(
        "corrupt.plan",
        "point=ckpt.write proc=coord key=baseline_300_7_sec2 hit=1 action=corrupt\n",
    );
    let (_, _, stderr) = h.run(&[
        "--fault-plan",
        &plan,
        "--checkpoint-dir",
        "ck_corrupt",
        "--out",
        "corrupt1.json",
    ]);
    assert!(stderr.contains("corrupting checkpoint"), "{stderr}");
    let (json, stdout, stderr) =
        h.run(&["--checkpoint-dir", "ck_corrupt", "--out", "corrupt2.json"]);
    assert!(
        stderr.contains("fails its content checksum"),
        "corruption was not caught:\n{stderr}"
    );
    assert!(stdout.contains("1 computed, 1 resumed"), "{stdout}");
    h.assert_reference(&json, "corrupt checkpoint repair");

    // Case 6: crash between tmp write and rename → the tmp file is left
    // behind, the cell is simply missing and recomputed.
    let plan = h.plan(
        "rename.plan",
        "point=ckpt.rename proc=coord key=baseline_300_7_sec1 hit=1 action=err\n",
    );
    let (_, _, stderr) = h.run(&[
        "--fault-plan",
        &plan,
        "--checkpoint-dir",
        "ck_rename",
        "--out",
        "rename1.json",
    ]);
    assert!(stderr.contains("simulated rename failure"), "{stderr}");
    assert!(h
        .dir
        .join("ck_rename/baseline_300_7_sec1.json.tmp")
        .exists());
    assert!(!h.dir.join("ck_rename/baseline_300_7_sec1.json").exists());
    let (json, stdout, _) = h.run(&["--checkpoint-dir", "ck_rename", "--out", "rename2.json"]);
    assert!(stdout.contains("1 computed, 1 resumed"), "{stdout}");
    h.assert_reference(&json, "dropped rename repair");

    // Case 7: a fault that survives every respawn exhausts the retry
    // ladder: the cell is marked degraded (the grid still validates),
    // and a clean rerun refuses the degraded checkpoint and repairs it.
    let plan = h.plan(
        "persistent.plan",
        "point=worker.eval proc=worker* key=task1 hit=all action=panic\n",
    );
    let (json, stdout, stderr) = h.run(&[
        "--workers",
        "2",
        "--fault-plan",
        &plan,
        "--checkpoint-dir",
        "ck_degrade",
        "--out",
        "degrade1.json",
    ]);
    assert!(
        stderr.contains("degraded after 3 strikes"),
        "ladder was not exhausted:\n{stderr}"
    );
    assert!(stdout.contains("DEGRADED"), "{stdout}");
    assert!(json.contains("\"degraded\": true,"));
    assert!(json.contains("\"degraded\": [\"baseline_300_7_sec1\", \"baseline_300_7_sec2\"],"));
    let status = Command::new(&h.bin)
        .current_dir(&h.dir)
        .args(["--validate", "degrade1.json"])
        .status()
        .expect("spawn validate");
    assert!(status.success(), "a degraded grid must still validate");
    let (json, stdout, _) = h.run(&["--checkpoint-dir", "ck_degrade", "--out", "degrade2.json"]);
    assert!(
        stdout.contains("recomputing to repair"),
        "degraded checkpoints were resumed:\n{stdout}"
    );
    assert!(
        stdout.contains("2 computed, 0 resumed, 0 degraded"),
        "{stdout}"
    );
    assert!(json.contains("\"degraded\": [],"));
    h.assert_reference(&json, "degraded repair");

    let _ = std::fs::remove_dir_all(&h.dir);
}

/// Without the feature, `--fault-plan` must refuse loudly rather than
/// silently running clean.
#[test]
fn fault_plan_refused_without_feature() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut build = Command::new(env!("CARGO"));
    build.current_dir(&root).args([
        "build",
        "--offline",
        "-q",
        "-p",
        "sbgp_bench",
        "--bin",
        "campaign",
    ]);
    assert!(build.status().expect("spawn cargo build").success());
    let dir = std::env::temp_dir().join(format!("sbgp_fault_nofeat_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    std::fs::write(
        dir.join("plan"),
        "point=worker.eval proc=worker0 hit=1 action=abort\n",
    )
    .unwrap();
    let out = Command::new(root.join("target/debug/campaign"))
        .current_dir(&dir)
        .args(["--smoke", "--fault-plan", "plan"])
        .output()
        .expect("spawn campaign");
    assert!(
        !out.status.success(),
        "a featureless binary accepted a fault plan"
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("without the fault-injection feature"),
        "missing refusal diagnostic:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
