//! Bulk-vs-incremental graph-build equivalence.
//!
//! [`GraphBuilder::from_edges`] (collect → sort → dedup-scan → direct CSR
//! fill, the parser's hot path since the `--file` ingestion work) must be
//! **bit-identical** to the incremental per-edge HashMap path on every
//! conflict-free input: same labels, same customer/peer/provider segment
//! for every AS *in the same order* — the engines iterate adjacency
//! segments directly, so even a reordering within a segment would be an
//! observable behavior change.

use proptest::prelude::*;

use bgp_juice::prelude::*;
use bgp_juice::topology::gen::{generate, InternetConfig};
use bgp_juice::topology::{Relationship, TopologyError};

/// Assert two graphs are identical, segment order included.
fn assert_identical(a: &AsGraph, b: &AsGraph) {
    assert_eq!(a.len(), b.len());
    assert_eq!(
        a.num_customer_provider_edges(),
        b.num_customer_provider_edges()
    );
    assert_eq!(a.num_peer_edges(), b.num_peer_edges());
    for v in a.ases() {
        assert_eq!(a.asn_label(v), b.asn_label(v), "{v} label");
        assert_eq!(a.customers(v), b.customers(v), "{v} customers");
        assert_eq!(a.peers(v), b.peers(v), "{v} peers");
        assert_eq!(a.providers(v), b.providers(v), "{v} providers");
    }
}

/// A random conflict-free edge list over `n` ASes: every unordered pair
/// appears at most once, with a random relationship and orientation.
fn arb_edges(n: usize) -> impl Strategy<Value = Vec<(AsId, AsId, Relationship)>> {
    let pairs: Vec<(u32, u32)> = (0..n as u32)
        .flat_map(|a| (a + 1..n as u32).map(move |b| (a, b)))
        .collect();
    // For each pair: absent, customer→provider, provider→customer, peer.
    proptest::collection::vec(0u8..4, pairs.len()).prop_map(move |kinds| {
        pairs
            .iter()
            .zip(kinds)
            .filter_map(|(&(a, b), kind)| match kind {
                0 => None,
                1 => Some((AsId(a), AsId(b), Relationship::CustomerToProvider)),
                2 => Some((AsId(b), AsId(a), Relationship::CustomerToProvider)),
                _ => Some((AsId(a), AsId(b), Relationship::PeerToPeer)),
            })
            .collect()
    })
}

fn incremental(
    n: usize,
    labels: &[u32],
    edges: &[(AsId, AsId, Relationship)],
) -> Result<AsGraph, TopologyError> {
    let mut b = GraphBuilder::new(n);
    b.set_asn_labels(labels.to_vec())?;
    for &(x, y, rel) in edges {
        b.add_edge(x, y, rel)?;
    }
    Ok(b.build())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random conflict-free edge lists: bulk ≡ incremental, bit for bit.
    #[test]
    fn bulk_build_matches_incremental_on_random_edges(
        (n, edges, label_base) in (2usize..24)
            .prop_flat_map(|n| (Just(n), arb_edges(n), 1u32..1_000_000))
    ) {
        let labels: Vec<u32> = (0..n as u32).map(|i| label_base + 7 * i).collect();
        let bulk = GraphBuilder::from_edges(n, labels.clone(), edges.iter().copied())
            .expect("conflict-free by construction");
        let incr = incremental(n, &labels, &edges).expect("conflict-free by construction");
        assert_identical(&bulk, &incr);
    }

    /// Generator-shaped graphs (the realistic degree distribution): feeding
    /// a generated graph's own edge list through both paths reproduces it.
    #[test]
    fn bulk_build_matches_incremental_on_generated_graphs(
        (asns, seed) in (150usize..400, 0u64..500)
    ) {
        let g = generate(&InternetConfig::sized(asns, seed)).graph;
        let labels: Vec<u32> = g.ases().map(|v| g.asn_label(v)).collect();
        let edges: Vec<(AsId, AsId, Relationship)> = g.edges().collect();
        let bulk = GraphBuilder::from_edges(g.len(), labels.clone(), edges.iter().copied())
            .expect("a built graph has no conflicts");
        let incr = incremental(g.len(), &labels, &edges).expect("a built graph has no conflicts");
        assert_identical(&bulk, &incr);
        assert_identical(&bulk, &g);
    }

    /// Both paths agree on rejection too: duplicating a random edge with a
    /// *different* relationship makes both builders error.
    #[test]
    fn bulk_and_incremental_reject_the_same_conflicts(
        (n, edges, pick) in (3usize..16)
            .prop_flat_map(|n| (Just(n), arb_edges(n), any::<u32>()))
    ) {
        if edges.is_empty() {
            return Ok(()); // nothing to conflict with; vacuously fine
        }
        let &(x, y, rel) = &edges[pick as usize % edges.len()];
        let conflict = match rel {
            Relationship::CustomerToProvider => (x, y, Relationship::PeerToPeer),
            Relationship::PeerToPeer => (x, y, Relationship::CustomerToProvider),
        };
        let mut with_conflict = edges.clone();
        with_conflict.push(conflict);
        let labels: Vec<u32> = (0..n as u32).collect();
        assert!(matches!(
            GraphBuilder::from_edges(n, labels.clone(), with_conflict.iter().copied()),
            Err(TopologyError::ConflictingRelationship { .. })
        ));
        assert!(matches!(
            incremental(n, &labels, &with_conflict),
            Err(TopologyError::ConflictingRelationship { .. })
        ));
    }
}
