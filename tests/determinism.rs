//! Thread-count determinism: `runner::metric`, the sweep and churn
//! runners (merged `SweepStats` included), and the
//! strategic-attacker runners (strategy ladder, collusion) must
//! produce **bit-identical** results at any [`Parallelism`] — including the
//! floating-point metric bounds, not just integer counts. The runner
//! guarantees this by reducing fixed-size work chunks in chunk order, no
//! matter which worker computed which chunk.

use bgp_juice::prelude::*;
use bgp_juice::sim::stats::{self, EstimatorConfig};
use bgp_juice::sim::strategy;
use bgp_juice::sim::sweep;
use std::collections::HashSet;

fn net() -> Internet {
    Internet::synthetic(600, 5)
}

fn parallelisms() -> [Parallelism; 3] {
    [
        Parallelism::sequential(),
        Parallelism(2),
        Parallelism::auto(),
    ]
}

#[test]
fn metric_is_bit_identical_across_thread_counts() {
    let net = net();
    let attackers = sample::sample_non_stubs(&net, 7, 1);
    let dests = sample::sample_all(&net, 11, 2);
    let pairs = sample::pairs(&attackers, &dests);
    let dep = Deployment::full_from_iter(net.len(), net.tiers.tier1().iter().copied());
    for model in SecurityModel::ALL {
        let policy = Policy::new(model);
        let reference = runner::metric(&net, &pairs, &dep, policy, Parallelism::sequential());
        for par in parallelisms() {
            let got = runner::metric(&net, &pairs, &dep, policy, par);
            // Bit-identical, not approximately equal.
            assert_eq!(
                got.lower.to_bits(),
                reference.lower.to_bits(),
                "{model} lower @ {par:?}"
            );
            assert_eq!(
                got.upper.to_bits(),
                reference.upper.to_bits(),
                "{model} upper @ {par:?}"
            );
        }
    }
}

#[test]
fn metric_with_stderr_is_bit_identical_across_thread_counts() {
    let net = net();
    let attackers = sample::sample_non_stubs(&net, 5, 3);
    let dests = sample::sample_all(&net, 9, 4);
    let pairs = sample::pairs(&attackers, &dests);
    let dep = Deployment::empty(net.len());
    let policy = Policy::new(SecurityModel::Security3rd);
    let (ref_val, ref_err) = runner::metric_with_stderr(
        &net,
        &pairs,
        &dep,
        policy,
        AttackStrategy::FakeLink,
        Parallelism::sequential(),
    );
    for par in parallelisms() {
        let (val, err) =
            runner::metric_with_stderr(&net, &pairs, &dep, policy, AttackStrategy::FakeLink, par);
        assert_eq!(val.lower.to_bits(), ref_val.lower.to_bits(), "{par:?}");
        assert_eq!(val.upper.to_bits(), ref_val.upper.to_bits(), "{par:?}");
        assert_eq!(err.lower.to_bits(), ref_err.lower.to_bits(), "{par:?}");
        assert_eq!(err.upper.to_bits(), ref_err.upper.to_bits(), "{par:?}");
    }
}

#[test]
fn sweep_results_are_bit_identical_across_thread_counts() {
    let net = net();
    let attackers = sample::sample_non_stubs(&net, 5, 7);
    let dests = sample::sample_all(&net, 8, 8);
    let pairs = sample::pairs(&attackers, &dests);
    let deps = vec![
        Deployment::empty(net.len()),
        scenario::tier12_step(&net, 3, 5).deployment.clone(),
        scenario::tier12_step(&net, 5, 20).deployment.clone(),
    ];
    for model in SecurityModel::ALL {
        let policy = Policy::new(model);
        let reference = sweep::metric_sweep(
            &net,
            &pairs,
            &deps,
            policy,
            AttackStrategy::FakeLink,
            Parallelism::sequential(),
        );
        for par in parallelisms() {
            let got =
                sweep::metric_sweep(&net, &pairs, &deps, policy, AttackStrategy::FakeLink, par);
            assert_eq!(got.len(), reference.len());
            for (k, (g, r)) in got.iter().zip(&reference).enumerate() {
                assert_eq!(
                    g.lower.to_bits(),
                    r.lower.to_bits(),
                    "{model} step {k} lower @ {par:?}"
                );
                assert_eq!(
                    g.upper.to_bits(),
                    r.upper.to_bits(),
                    "{model} step {k} upper @ {par:?}"
                );
            }
        }
    }
}

#[test]
fn churn_metric_is_bit_identical_across_thread_counts() {
    // The non-monotone drivers inherit the chunk-order reduction, and the
    // merged SweepStats are a sum of per-group deltas — so the *stats*
    // (fallback counts, step directions, re-fixed ASes) are pinned too,
    // not just the float bounds.
    let net = net();
    let attackers = sample::sample_non_stubs(&net, 5, 15);
    let dests = sample::sample_all(&net, 7, 16);
    let pairs = sample::pairs(&attackers, &dests);
    let deps = scenario::churn_trajectory(&net, 4);
    for model in SecurityModel::ALL {
        let policy = Policy::new(model);
        let (reference, ref_stats) = sweep::metric_churn(
            &net,
            &pairs,
            &deps,
            policy,
            AttackStrategy::FakeLink,
            Parallelism::sequential(),
        );
        for par in parallelisms() {
            let (got, stats) =
                sweep::metric_churn(&net, &pairs, &deps, policy, AttackStrategy::FakeLink, par);
            assert_eq!(got.len(), reference.len());
            for (k, (g, r)) in got.iter().zip(&reference).enumerate() {
                assert_eq!(
                    g.lower.to_bits(),
                    r.lower.to_bits(),
                    "{model} step {k} lower @ {par:?}"
                );
                assert_eq!(
                    g.upper.to_bits(),
                    r.upper.to_bits(),
                    "{model} step {k} upper @ {par:?}"
                );
            }
            assert_eq!(stats, ref_stats, "{model} sweep stats @ {par:?}");
        }
    }
}

#[test]
fn churn_by_destination_is_identical_across_thread_counts() {
    let net = net();
    let attackers = sample::sample_non_stubs(&net, 4, 17);
    let dests = sample::sample_all(&net, 6, 18);
    let deps = scenario::churn_trajectory(&net, 3);
    let policy = Policy::new(SecurityModel::Security2nd);
    let (reference, ref_stats) = sweep::metric_churn_by_destination(
        &net,
        &attackers,
        &dests,
        &deps,
        policy,
        AttackStrategy::FakeLink,
        Parallelism::sequential(),
    );
    for par in parallelisms() {
        let (got, stats) = sweep::metric_churn_by_destination(
            &net,
            &attackers,
            &dests,
            &deps,
            policy,
            AttackStrategy::FakeLink,
            par,
        );
        assert_eq!(got, reference, "{par:?}");
        assert_eq!(stats, ref_stats, "sweep stats @ {par:?}");
    }
}

#[test]
fn sweep_by_destination_is_identical_across_thread_counts() {
    let net = net();
    let attackers = sample::sample_non_stubs(&net, 4, 9);
    let dests = sample::sample_all(&net, 6, 10);
    let deps = vec![
        Deployment::empty(net.len()),
        scenario::tier12_step(&net, 4, 10).deployment.clone(),
    ];
    let policy = Policy::new(SecurityModel::Security2nd);
    let reference = sweep::metric_sweep_by_destination(
        &net,
        &attackers,
        &dests,
        &deps,
        policy,
        AttackStrategy::FakeLink,
        Parallelism::sequential(),
    );
    for par in parallelisms() {
        let got = sweep::metric_sweep_by_destination(
            &net,
            &attackers,
            &dests,
            &deps,
            policy,
            AttackStrategy::FakeLink,
            par,
        );
        assert_eq!(got, reference, "{par:?}");
    }
}

#[test]
fn strategy_ladder_is_bit_identical_across_thread_counts() {
    let net = net();
    let attackers = sample::sample_non_stubs(&net, 5, 11);
    let dests = sample::sample_all(&net, 7, 12);
    let pairs = sample::pairs(&attackers, &dests);
    let dep = Deployment::full_from_iter(net.len(), net.tiers.tier1().iter().copied());
    for model in SecurityModel::ALL {
        let policy = Policy::new(model);
        let reference = strategy::metric_strategy_ladder(
            &net,
            &pairs,
            &dep,
            policy,
            &AttackStrategy::LADDER,
            Parallelism::sequential(),
        );
        for par in parallelisms() {
            let got = strategy::metric_strategy_ladder(
                &net,
                &pairs,
                &dep,
                policy,
                &AttackStrategy::LADDER,
                par,
            );
            assert_eq!(got.wins, reference.wins, "{model} wins @ {par:?}");
            assert_eq!(got.pairs, reference.pairs, "{model} pairs @ {par:?}");
            assert_eq!(
                got.optimal.lower.to_bits(),
                reference.optimal.lower.to_bits(),
                "{model} optimal lower @ {par:?}"
            );
            assert_eq!(
                got.optimal.upper.to_bits(),
                reference.optimal.upper.to_bits(),
                "{model} optimal upper @ {par:?}"
            );
            for (k, (g, r)) in got.per_rung.iter().zip(&reference.per_rung).enumerate() {
                assert_eq!(
                    g.lower.to_bits(),
                    r.lower.to_bits(),
                    "{model} rung {k} lower @ {par:?}"
                );
                assert_eq!(
                    g.upper.to_bits(),
                    r.upper.to_bits(),
                    "{model} rung {k} upper @ {par:?}"
                );
            }
        }
    }
}

#[test]
fn stratified_adaptive_runs_are_bit_identical_across_thread_counts() {
    // The estimation subsystem inherits the chunk-order reduction: the
    // whole adaptive run — estimates (floating point included), CI-width
    // trajectory, and the realized sample — is bit-identical at any
    // thread count.
    let net = net();
    let attackers = net.tiers.non_stubs();
    let dests: Vec<AsId> = net.graph.ases().collect();
    let deps = vec![
        Deployment::empty(net.len()),
        scenario::tier12_step(&net, 3, 5).deployment.clone(),
        scenario::tier12_step(&net, 5, 20).deployment.clone(),
    ];
    let cfg = EstimatorConfig::with_budget(600, 21).with_ci(0.004);
    for model in SecurityModel::ALL {
        let policy = Policy::new(model);
        let reference = stats::estimate_metric_sweep(
            &net,
            &attackers,
            &dests,
            &deps,
            policy,
            AttackStrategy::FakeLink,
            &cfg,
            Parallelism::sequential(),
        );
        for par in parallelisms() {
            let got = stats::estimate_metric_sweep(
                &net,
                &attackers,
                &dests,
                &deps,
                policy,
                AttackStrategy::FakeLink,
                &cfg,
                par,
            );
            assert_eq!(got.sampled, reference.sampled, "{model} sample @ {par:?}");
            assert_eq!(got.rounds, reference.rounds, "{model} rounds @ {par:?}");
            assert_eq!(got.estimates.len(), reference.estimates.len());
            for (k, (g, r)) in got.estimates.iter().zip(&reference.estimates).enumerate() {
                for (a, b) in [
                    (g.value.lower, r.value.lower),
                    (g.value.upper, r.value.upper),
                    (g.halfwidth.lower, r.halfwidth.lower),
                    (g.halfwidth.upper, r.halfwidth.upper),
                ] {
                    assert_eq!(a.to_bits(), b.to_bits(), "{model} step {k} @ {par:?}");
                }
            }
        }
    }
}

#[test]
fn adaptive_stopping_is_monotone_in_the_ci_target() {
    // The round schedule does not depend on the CI target, so a tighter
    // target can only run *more* rounds: its sample must be a superset of
    // every looser target's sample, and the realized sizes must be
    // monotone. The budget is a hard cap regardless of the target.
    let net = net();
    let attackers = net.tiers.non_stubs();
    let dests: Vec<AsId> = net.graph.ases().collect();
    let dep = Deployment::empty(net.len());
    let policy = Policy::new(SecurityModel::Security3rd);
    const BUDGET: u64 = 2_000;
    let run_with = |target: Option<f64>| {
        let mut cfg = EstimatorConfig::with_budget(BUDGET, 77);
        if let Some(t) = target {
            cfg = cfg.with_ci(t);
        }
        stats::estimate_metric(
            &net,
            &attackers,
            &dests,
            &dep,
            policy,
            AttackStrategy::FakeLink,
            &cfg,
            Parallelism(2),
        )
    };
    // Loosest to tightest; `None` runs to the budget, the floor for all.
    let targets = [Some(0.05), Some(0.02), Some(0.01), Some(0.004), None];
    let runs: Vec<_> = targets.iter().map(|&t| run_with(t)).collect();
    for w in runs.windows(2) {
        let (loose, tight) = (&w[0], &w[1]);
        assert!(loose.sampled.len() <= tight.sampled.len());
        let loose_set: HashSet<(AsId, AsId)> = loose.sampled.iter().copied().collect();
        let tight_set: HashSet<(AsId, AsId)> = tight.sampled.iter().copied().collect();
        assert!(
            loose_set.is_subset(&tight_set),
            "tighter target must sample a superset"
        );
        // Nested samples agree round by round while both ran.
        let shared = loose.rounds.len().min(tight.rounds.len());
        assert_eq!(loose.rounds[..shared], tight.rounds[..shared]);
    }
    for (t, run) in targets.iter().zip(&runs) {
        assert!(
            run.sampled.len() as u64 <= BUDGET,
            "budget overrun at target {t:?}"
        );
        if let Some(t) = t {
            // Stopped early ⇒ the target was actually met.
            if (run.sampled.len() as u64) < BUDGET {
                assert!(run.max_halfwidth() <= *t, "stopped without meeting ±{t}");
            }
        }
    }
    // The loosest target really does stop early on this workload, so the
    // monotonicity above is not vacuous.
    assert!(runs[0].sampled.len() < runs.last().unwrap().sampled.len());
}

#[test]
fn collusion_metric_is_bit_identical_across_thread_counts() {
    let net = net();
    let attackers = sample::sample_non_stubs(&net, 6, 13);
    let sets: Vec<Vec<AsId>> = attackers.chunks(2).map(|c| c.to_vec()).collect();
    let dests = sample::sample_all(&net, 6, 14);
    let dep = Deployment::empty(net.len());
    let policy = Policy::new(SecurityModel::Security2nd);
    let reference = strategy::metric_collusion(
        &net,
        &sets,
        &dests,
        &dep,
        policy,
        AttackStrategy::FakeLink,
        Parallelism::sequential(),
    );
    for par in parallelisms() {
        let got = strategy::metric_collusion(
            &net,
            &sets,
            &dests,
            &dep,
            policy,
            AttackStrategy::FakeLink,
            par,
        );
        assert_eq!(got.cells, reference.cells, "{par:?}");
        for (g, r) in [
            (got.colluding, reference.colluding),
            (got.best_single, reference.best_single),
            (got.solo, reference.solo),
        ] {
            assert_eq!(g.lower.to_bits(), r.lower.to_bits(), "{par:?}");
            assert_eq!(g.upper.to_bits(), r.upper.to_bits(), "{par:?}");
        }
    }
}
