//! The attacker-delta equivalence property suite: on random valley-free
//! graphs, [`AttackDeltaEngine`] outcomes for **every** attacker of a
//! `(d, S, policy)` cell — served back-to-back from one snapshot with a
//! touched-list undo between them — must be identical (route class,
//! length, security, flags, representative next hop, and happy bounds) to
//! a fresh [`Engine::compute`] per pair, for every security model, the
//! `LP2`/`LPinf` variants, and both attack kinds; attackers inside the
//! secure set and simplex destinations arise from the same generators.
//! `tests/sweep_equivalence.rs` pins the deployment axis and the
//! message-level oracle (`tests/equivalence.rs`) pins the engine itself,
//! so together they close the chain: delta ≡ sweep ≡ engine ≡ simulated
//! S*BGP. The generalized threat model is covered end to end: the full
//! `FakePath` ladder (k ∈ 0..=3) per attacker, colluding pairs/triples
//! served via [`AttackDeltaEngine::attack_set`], and a torture test that
//! interleaves many attackers — mixed forged-path depths and colluding
//! sets — with sweep advances feeding
//! [`AttackDeltaEngine::begin_from_normal`] on one engine pair, the exact
//! composition the destination-major runners use.

use proptest::prelude::*;

use bgp_juice::prelude::*;

/// Build a random valley-free topology from pairwise edge codes.
/// Providers always have smaller ids, so the hierarchy is acyclic.
fn graph_from_codes(n: usize, codes: &[u8]) -> AsGraph {
    let mut b = GraphBuilder::new(n);
    let mut k = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            match codes[k] % 8 {
                // Sparse: most pairs are unconnected (and disconnected
                // islands — the fix-log absorption path — are common).
                0..=3 => {}
                4 => b.add_peering(AsId(i as u32), AsId(j as u32)).unwrap(),
                // i is the provider of j.
                _ => b.add_provider(AsId(j as u32), AsId(i as u32)).unwrap(),
            }
            k += 1;
        }
    }
    b.build()
}

/// A monotone 4-step deployment sequence from per-AS join codes: bits 0–1
/// give the AS's join step (3 = never), bit 2 picks simplex mode, and bit 3
/// upgrades a simplex member to full one step after joining.
fn deployment_sequence(n: usize, join_codes: &[u8]) -> Vec<Deployment> {
    (0..4usize)
        .map(|step| {
            let mut dep = Deployment::empty(n);
            for (i, &code) in join_codes.iter().enumerate() {
                let join = usize::from(code & 3);
                if join == 3 || join > step {
                    continue;
                }
                let v = AsId(i as u32);
                let simplex = code & 4 != 0;
                let upgrades = code & 8 != 0;
                if simplex && !(upgrades && step > join) {
                    dep.insert_simplex(v);
                } else {
                    dep.insert_full(v);
                }
            }
            dep
        })
        .collect()
}

#[derive(Debug, Clone)]
struct Instance {
    n: usize,
    codes: Vec<u8>,
    join_codes: Vec<u8>,
    destination: usize,
    /// Use the origin-hijack strategy instead of the fake link.
    hijack: bool,
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    (4usize..10).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        (
            Just(n),
            proptest::collection::vec(any::<u8>(), pairs),
            proptest::collection::vec(any::<u8>(), n),
            0..n,
            any::<bool>(),
        )
            .prop_map(|(n, codes, join_codes, destination, hijack)| Instance {
                n,
                codes,
                join_codes,
                destination,
                hijack,
            })
    })
}

fn assert_outcomes_match(got: &Outcome, want: &Outcome, graph: &AsGraph, ctx: &str) {
    for v in graph.ases() {
        assert_eq!(got.route(v), want.route(v), "route mismatch at {v}, {ctx}");
        assert_eq!(
            got.next_hop(v),
            want.next_hop(v),
            "next-hop mismatch at {v}, {ctx}"
        );
    }
}

fn check_instance(inst: &Instance, policy: Policy) {
    let graph = graph_from_codes(inst.n, &inst.codes);
    let steps = deployment_sequence(inst.n, &inst.join_codes);
    let d = AsId(inst.destination as u32);
    let strategy = if inst.hijack {
        AttackStrategy::OriginHijack
    } else {
        AttackStrategy::FakeLink
    };

    let mut delta = AttackDeltaEngine::new(&graph);
    let mut fresh = Engine::new(&graph);
    for (k, dep) in steps.iter().enumerate() {
        // One cell per deployment; every non-destination AS attacks it,
        // exercising the snapshot restore between consecutive attackers.
        delta.begin(d, dep, policy);
        assert_outcomes_match(
            delta.normal_outcome(),
            fresh.compute(AttackScenario::normal(d), dep, policy),
            &graph,
            &format!("normal, step {k}: {inst:?} {policy}"),
        );
        for m in graph.ases().filter(|&m| m != d) {
            let got = delta.attack(m, strategy);
            let mut scenario = AttackScenario::attack(m, d);
            scenario.strategy = strategy;
            let want = fresh.compute(scenario, dep, policy);
            assert_outcomes_match(
                got,
                want,
                &graph,
                &format!("m={m}, step {k}: {inst:?} {policy}"),
            );
            assert_eq!(
                delta.count_happy(),
                want.count_happy(),
                "happy-bound mismatch for m={m}, step {k}: {inst:?} {policy}"
            );
        }
    }
}

/// Run every attacker through the full `FakePath` ladder on one cell,
/// checking each rung against a fresh compute — the exact access pattern
/// of the strategic-attacker runners (`sbgp_sim::strategy`).
fn check_ladder_instance(inst: &Instance, policy: Policy) {
    let graph = graph_from_codes(inst.n, &inst.codes);
    let steps = deployment_sequence(inst.n, &inst.join_codes);
    let d = AsId(inst.destination as u32);
    let mut delta = AttackDeltaEngine::new(&graph);
    let mut fresh = Engine::new(&graph);
    for (k, dep) in steps.iter().enumerate().take(2) {
        delta.begin(d, dep, policy);
        for m in graph.ases().filter(|&m| m != d) {
            for hops in 0..4u8 {
                let strategy = AttackStrategy::FakePath { hops };
                let got = delta.attack(m, strategy);
                let scenario = AttackScenario::attack(m, d).with_strategy(strategy);
                let want = fresh.compute(scenario, dep, policy);
                assert_outcomes_match(
                    got,
                    want,
                    &graph,
                    &format!("m={m} hops={hops}, step {k}: {inst:?} {policy}"),
                );
                assert_eq!(
                    delta.count_happy(),
                    want.count_happy(),
                    "happy-bound mismatch for m={m} hops={hops}, step {k}: {inst:?} {policy}"
                );
            }
        }
    }
}

/// Serve colluding announcer sets (pairs and triples sliding over the AS
/// space, skipping the destination) from one snapshot, checking each
/// against a fresh compute of the colluding scenario.
fn check_collusion_instance(inst: &Instance, policy: Policy, hops: u8) {
    let graph = graph_from_codes(inst.n, &inst.codes);
    let steps = deployment_sequence(inst.n, &inst.join_codes);
    let d = AsId(inst.destination as u32);
    let strategy = AttackStrategy::FakePath { hops };
    let n = inst.n as u32;
    let mut delta = AttackDeltaEngine::new(&graph);
    let mut fresh = Engine::new(&graph);
    for (k, dep) in steps.iter().enumerate().take(2) {
        delta.begin(d, dep, policy);
        for start in 0..n {
            for size in [2usize, 3] {
                let set: Vec<AsId> = (0..size as u32)
                    .map(|i| AsId((start + i) % n))
                    .filter(|&m| m != d)
                    .collect();
                if set.len() < 2 {
                    continue;
                }
                let got = delta.attack_set(&set, strategy);
                let scenario = AttackScenario::colluding(&set, d).with_strategy(strategy);
                let want = fresh.compute(scenario, dep, policy);
                assert_outcomes_match(
                    got,
                    want,
                    &graph,
                    &format!("set={set:?} hops={hops}, step {k}: {inst:?} {policy}"),
                );
                assert_eq!(
                    delta.count_happy(),
                    want.count_happy(),
                    "happy-bound mismatch for set={set:?}, step {k}: {inst:?} {policy}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn delta_matches_fresh_engine_standard_lp(inst in arb_instance()) {
        for model in SecurityModel::ALL {
            check_instance(&inst, Policy::new(model));
        }
    }

    #[test]
    fn delta_matches_fresh_engine_lp_variants(inst in arb_instance()) {
        for model in SecurityModel::ALL {
            check_instance(&inst, Policy::with_variant(model, LpVariant::LpK(2)));
            check_instance(&inst, Policy::with_variant(model, LpVariant::LpInf));
        }
    }

    /// The full `FakePath` ladder (k ∈ 0..=3), every attacker served from
    /// one snapshot — the strategic-attacker runners' access pattern.
    #[test]
    fn delta_matches_fresh_engine_forged_paths(inst in arb_instance()) {
        for model in SecurityModel::ALL {
            check_ladder_instance(&inst, Policy::new(model));
        }
        check_ladder_instance(&inst, Policy::with_variant(SecurityModel::Security2nd, LpVariant::LpK(2)));
        check_ladder_instance(&inst, Policy::with_variant(SecurityModel::Security3rd, LpVariant::LpInf));
    }

    /// Colluding pairs and triples served back-to-back from one snapshot,
    /// with colluders freely landing inside the secure set (join codes are
    /// independent of the announcer choice).
    #[test]
    fn delta_collusion_matches_fresh_engine(
        args in (arb_instance(), 0u8..4)
    ) {
        let (inst, hops) = args;
        for model in SecurityModel::ALL {
            check_collusion_instance(&inst, Policy::new(model), hops);
        }
        check_collusion_instance(&inst, Policy::with_variant(SecurityModel::Security1st, LpVariant::LpK(2)), hops);
    }

    /// Snapshot-restore torture: one (sweep, delta) engine pair driven
    /// exactly like the destination-major runners — sweep advances the
    /// normal outcome through a monotone rollout, each step's outcome is
    /// adopted via `begin_from_normal`, and many attackers (with mixed
    /// strategies — the whole forged-path ladder plus colluding sets, so
    /// roots of different depths and multiplicities interleave on the same
    /// snapshot) are patched and undone in between.
    #[test]
    fn delta_composes_with_sweep_advances(inst in arb_instance()) {
        let graph = graph_from_codes(inst.n, &inst.codes);
        let steps = deployment_sequence(inst.n, &inst.join_codes);
        let d = AsId(inst.destination as u32);
        let policy = Policy::new(SecurityModel::Security2nd);
        let n = inst.n as u32;

        let mut sweep = SweepEngine::new(&graph);
        let mut delta = AttackDeltaEngine::new(&graph);
        let mut fresh = Engine::new(&graph);
        sweep.begin(AttackScenario::normal(d), policy);
        for (k, dep) in steps.iter().enumerate() {
            let normal = sweep.advance(dep);
            delta.begin_from_normal(normal, dep, policy);
            for round in 0..2 {
                for m in graph.ases().filter(|&m| m != d) {
                    // Walk the ladder so consecutive attacks disagree even
                    // about the attacker's root depth.
                    let hops = ((m.index() + round) % 4) as u8;
                    let strategy = AttackStrategy::FakePath { hops };
                    let got = delta.attack(m, strategy);
                    let scenario = AttackScenario::attack(m, d).with_strategy(strategy);
                    let want = fresh.compute(scenario, dep, policy);
                    assert_outcomes_match(
                        got,
                        want,
                        &graph,
                        &format!("m={m} round {round}, step {k}: {inst:?}"),
                    );
                    assert_eq!(
                        delta.count_happy(),
                        want.count_happy(),
                        "happy bounds for m={m} round {round}, step {k}: {inst:?}"
                    );
                    // Every other attacker additionally brings a colluding
                    // partner, so single- and multi-root patches alternate
                    // on the same snapshot.
                    if (m.index() + round) % 2 == 0 {
                        let partner = AsId((m.0 + 1) % n);
                        if partner != d && partner != m {
                            let set = [m, partner];
                            let got = delta.attack_set(&set, strategy);
                            let scenario =
                                AttackScenario::colluding(&set, d).with_strategy(strategy);
                            let want = fresh.compute(scenario, dep, policy);
                            assert_outcomes_match(
                                got,
                                want,
                                &graph,
                                &format!("collusion m={m} round {round}, step {k}: {inst:?}"),
                            );
                            assert_eq!(
                                delta.count_happy(),
                                want.count_happy(),
                                "collusion happy bounds for m={m}, step {k}: {inst:?}"
                            );
                        }
                    }
                }
            }
            // The adopted snapshot must survive all those patches intact.
            assert_outcomes_match(
                delta.normal_outcome(),
                sweep.outcome(),
                &graph,
                &format!("snapshot after attacks, step {k}: {inst:?}"),
            );
        }
    }
}

/// The same equivalence on a structured (generated) topology with a real
/// rollout, where the incremental paths are actually exercised (proptest's
/// tiny graphs often fall back to full recomputes via the region cap).
#[test]
fn delta_matches_fresh_engine_on_generated_internet() {
    let net = Internet::synthetic(400, 17);
    let steps: Vec<Deployment> = vec![
        Deployment::empty(net.len()),
        scenario::tier12_step(&net, 2, 2).deployment.clone(),
        scenario::tier12_step(&net, 5, 8).deployment.clone(),
        scenario::tier12_step(&net, 13, 30).deployment.clone(),
    ];
    let d = net.content_providers[0];
    let attackers: Vec<AsId> = sample::sample_non_stubs(&net, 6, 3)
        .into_iter()
        .filter(|&m| m != d)
        .collect();
    let mut delta_seen = false;
    for model in SecurityModel::ALL {
        let policy = Policy::new(model);
        let mut sweep = SweepEngine::new(&net.graph);
        let mut delta = AttackDeltaEngine::new(&net.graph);
        let mut fresh = Engine::new(&net.graph);
        sweep.begin(AttackScenario::normal(d), policy);
        for (k, dep) in steps.iter().enumerate() {
            let normal = sweep.advance(dep);
            delta.begin_from_normal(normal, dep, policy);
            for &m in &attackers {
                let got = delta.attack(m, AttackStrategy::FakeLink);
                let want = fresh.compute(AttackScenario::attack(m, d), dep, policy);
                for v in net.graph.ases() {
                    assert_eq!(got.route(v), want.route(v), "{model} step {k} at {v}");
                }
                assert_eq!(delta.count_happy(), want.count_happy(), "{model} step {k}");
            }
        }
        delta_seen |= delta.stats().delta_attacks > 0;
    }
    // Random cells on this graph may legitimately fall back throughout (a
    // fake-link attack against an unprotected destination contests ~40% of
    // all ASes), so pin the incremental path on a cell that provably has a
    // tiny contested ball: with *everyone* running full S*BGP under
    // security 1st, every AS holds a secure route and the insecure bogus
    // announcement loses everywhere — the ball is the attacker alone.
    let everyone = Deployment::full_from_iter(net.len(), net.graph.ases());
    let sec1 = Policy::new(SecurityModel::Security1st);
    let mut delta = AttackDeltaEngine::new(&net.graph);
    let mut fresh = Engine::new(&net.graph);
    delta.begin(d, &everyone, sec1);
    for &m in &attackers {
        let got = delta.attack(m, AttackStrategy::FakeLink);
        let want = fresh.compute(AttackScenario::attack(m, d), &everyone, sec1);
        for v in net.graph.ases() {
            assert_eq!(got.route(v), want.route(v), "full-deployment cell at {v}");
        }
        assert_eq!(delta.count_happy(), want.count_happy());
        delta_seen = true;
    }
    assert!(
        delta.stats().delta_attacks >= attackers.len(),
        "the full-deployment cell must take the incremental path"
    );
    assert!(delta_seen);
}
