//! End-to-end tests for the deployment-planner what-if service.
//!
//! The issue's acceptance bar, pinned:
//!
//! * cold-cache, warm-cache and solo [`AttackDeltaEngine`] answers are
//!   **bit-identical** for the same query stream — including a query that
//!   mixes cached and uncached destinations — at every [`Parallelism`];
//! * a malformed frame draws a clean error reply and the server keeps
//!   answering (checked in-process *and* over a real subprocess pipe);
//! * (`--ignored`, CI's `planner-smoke` job) the warm cache beats a cold
//!   one by ≥5× on a 4 000-AS snapshot — the `planner --bench` gate that
//!   produced the committed `BENCH_planner.json`.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

use bgp_juice::prelude::*;
use bgp_juice::sim::serve::{Planner, PlannerConfig};
use bgp_juice::sim::supervise::{read_frame, write_frame};
use bgp_juice::sim::Internet;

fn planner_config(threads: usize) -> PlannerConfig {
    PlannerConfig {
        parallelism: Parallelism(threads),
        ..PlannerConfig::default()
    }
}

/// The shared what-if stream: a cold query, an exact repeat, a query
/// mixing cached (0, 3) and uncached (7, 11) destinations, and a
/// narrower solo-comparable cell.
fn query_stream(n: usize) -> Vec<String> {
    let (m1, m2) = (n - 1, n - 2);
    vec![
        format!(
            "{{\"op\":\"query\",\"id\":1,\"secure\":[0,1,2,3,4,5,6],\"simplex\":[8],\
             \"attackers\":[{m1},{m2}],\"destinations\":[0,3],\
             \"models\":[\"sec1\",\"sec3\"],\"strategies\":[\"fakelink\",\"hijack\"]}}"
        ),
        format!(
            "{{\"op\":\"query\",\"id\":2,\"secure\":[0,1,2,3,4,5,6],\"simplex\":[8],\
             \"attackers\":[{m1},{m2}],\"destinations\":[0,3],\
             \"models\":[\"sec1\",\"sec3\"],\"strategies\":[\"fakelink\",\"hijack\"]}}"
        ),
        format!(
            "{{\"op\":\"query\",\"id\":3,\"secure\":[0,1,2,3,4,5,6],\"simplex\":[8],\
             \"attackers\":[{m1},{m2}],\"destinations\":[0,3,7,11],\
             \"models\":[\"sec1\",\"sec3\"],\"strategies\":[\"fakelink\",\"hijack\"]}}"
        ),
        format!(
            "{{\"op\":\"query\",\"id\":4,\"secure\":[0,1,2,3,4,5,6],\"simplex\":[8],\
             \"attackers\":[{m1}],\"destinations\":[3],\"models\":[\"sec1\"],\
             \"strategies\":[\"fakelink\"]}}"
        ),
    ]
}

fn run_stream(planner: &mut Planner, stream: &[String]) -> Vec<String> {
    stream
        .iter()
        .map(|q| planner.handle(q).expect("reply"))
        .collect()
}

fn json_f64(text: &str, key: &str) -> f64 {
    let pat = format!("\"{key}\":");
    let start = text.find(&pat).expect("key present") + pat.len();
    let end = text[start..]
        .find([',', '}', ']'])
        .expect("value terminated");
    text[start..start + end].parse().expect("f64 value")
}

/// Cold replies, warm replies (same planner, stream pre-run once) and a
/// from-first-principles solo compute all agree bit-for-bit, at 1, 2 and
/// 5 worker threads alike.
#[test]
fn cold_warm_and_solo_replies_are_bit_identical() {
    let net = Internet::synthetic(600, 7);
    let stream = query_stream(net.len());

    let mut reference: Option<Vec<String>> = None;
    for threads in [1, 2, 5] {
        // Cold: fresh planner, every base outcome computed.
        let mut cold = Planner::new(net.clone(), planner_config(threads));
        let cold_replies = run_stream(&mut cold, &stream);
        assert!(cold.cache_stats().misses > 0, "cold pass must miss");

        // Warm: same stream again on a planner that has seen it all.
        let mut warm = Planner::new(net.clone(), planner_config(threads));
        run_stream(&mut warm, &stream);
        let before = warm.cache_stats();
        let warm_replies = run_stream(&mut warm, &stream);
        let after = warm.cache_stats();
        assert_eq!(
            before.misses, after.misses,
            "warm pass recomputed a base outcome"
        );
        assert!(after.hits > before.hits, "warm pass never hit the cache");

        assert_eq!(
            cold_replies, warm_replies,
            "cold and warm replies differ at {threads} thread(s)"
        );
        match &reference {
            Some(r) => assert_eq!(
                r, &cold_replies,
                "replies differ across Parallelism ({threads} threads)"
            ),
            None => reference = Some(cold_replies),
        }
    }

    // Solo cross-check: query 4 is one (m, d) pair under sec1/fakelink —
    // recompute it with a bare AttackDeltaEngine.
    let replies = reference.expect("reference replies");
    let (m, d) = (AsId(net.len() as u32 - 1), AsId(3));
    let mut dep = Deployment::empty(net.len());
    for v in 0..7 {
        dep.insert_full(AsId(v));
    }
    dep.insert_simplex(AsId(8));
    let mut delta = AttackDeltaEngine::new(&net.graph);
    delta.begin(d, &dep, Policy::new(SecurityModel::Security1st));
    delta.attack(m, AttackStrategy::FakeLink);
    let (lo, hi) = delta.count_happy();
    let sources = (net.len() - 2) as f64;
    assert_eq!(json_f64(&replies[3], "lower"), lo as f64 / sources);
    assert_eq!(json_f64(&replies[3], "upper"), hi as f64 / sources);
}

/// A malformed message mid-stream draws a clean `{"op":"error",...}`
/// reply and the very next query is answered normally (in-process).
#[test]
fn malformed_messages_do_not_poison_the_stream() {
    let net = Internet::synthetic(200, 7);
    let stream = query_stream(net.len());
    let mut planner = Planner::new(net, planner_config(1));

    let good = planner.handle(&stream[0]).expect("reply");
    assert!(good.contains("\"op\":\"reply\""));

    for bad in [
        "not json at all",
        "{\"op\":\"query\",\"id\":1}",
        "{\"op\":\"launch-missiles\"}",
        "{\"op\":\"query\",\"id\":1,\"secure\":[999999],\"attackers\":[1],\"destinations\":[2]}",
    ] {
        let err = planner.handle(bad).expect("error reply");
        assert!(
            err.contains("\"op\":\"error\""),
            "expected error reply for {bad:?}, got {err}"
        );
    }

    let again = planner.handle(&stream[0]).expect("reply");
    assert_eq!(good, again, "server state was poisoned by bad input");
}

// ---------------------------------------------------------------------------
// Subprocess end-to-end (the real binary over real pipes)
// ---------------------------------------------------------------------------

/// Build (cached by the shared target dir) and locate the planner binary.
fn planner_bin_profile(release: bool) -> PathBuf {
    let mut build = Command::new(env!("CARGO"));
    build
        .current_dir(Path::new(env!("CARGO_MANIFEST_DIR")))
        .args([
            "build",
            "--offline",
            "-q",
            "-p",
            "sbgp_bench",
            "--bin",
            "planner",
        ]);
    if release {
        build.arg("--release");
    }
    let out = build.output().expect("spawn cargo build");
    assert!(
        out.status.success(),
        "planner failed to build:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join(if release { "release" } else { "debug" })
        .join("planner")
}

fn planner_bin() -> PathBuf {
    planner_bin_profile(false)
}

/// Full duplex conversation with the served binary: queries answered,
/// a garbage frame rejected with the server still alive, clean shutdown.
#[test]
fn served_binary_answers_over_pipes_and_survives_garbage() {
    let mut child = Command::new(planner_bin())
        .args(["--asns", "200", "--seed", "7"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn planner");
    let mut to = child.stdin.take().expect("stdin");
    let mut from = child.stdout.take().expect("stdout");

    let hello = read_frame(&mut from).expect("io").expect("hello");
    assert!(hello.contains("\"op\":\"ready\""));
    assert!(hello.contains("\"asns\":200"));

    let stream = query_stream(200);
    write_frame(&mut to, &stream[0]).expect("send");
    let first = read_frame(&mut from).expect("io").expect("reply");
    assert!(first.contains("\"op\":\"reply\""), "got {first}");

    write_frame(&mut to, "garbage, not a query").expect("send");
    let err = read_frame(&mut from).expect("io").expect("error reply");
    assert!(err.contains("\"op\":\"error\""), "got {err}");

    // The server must still answer — and identically.
    write_frame(&mut to, &stream[1]).expect("send");
    let second = read_frame(&mut from).expect("io").expect("reply");
    assert_eq!(
        first.replace("\"id\":1", "\"id\":2"),
        second,
        "replies before/after the garbage frame diverged"
    );

    write_frame(&mut to, "{\"op\":\"shutdown\"}").expect("send");
    let bye = read_frame(&mut from).expect("io").expect("bye");
    assert!(bye.contains("\"op\":\"bye\""));
    assert!(child.wait().expect("wait").success());
}

/// An unreadable frame (invalid UTF-8 payload) is answered with a final
/// error frame and a clean exit — never a crash.
#[test]
fn undecodable_frames_end_the_session_cleanly() {
    use std::io::Write as _;
    let mut child = Command::new(planner_bin())
        .args(["--asns", "200", "--seed", "7"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn planner");
    let mut to = child.stdin.take().expect("stdin");
    let mut from = child.stdout.take().expect("stdout");
    let _hello = read_frame(&mut from).expect("io").expect("hello");

    to.write_all(&4u32.to_be_bytes()).expect("len");
    to.write_all(&[0xff, 0xfe, 0xfd, 0xfc]).expect("payload");
    to.flush().expect("flush");
    let err = read_frame(&mut from).expect("io").expect("final error");
    assert!(err.contains("\"op\":\"error\""), "got {err}");
    assert!(child.wait().expect("wait").success(), "server crashed");
}

/// The committed `BENCH_planner.json` gate, re-run from scratch: on a
/// 4 000-AS snapshot the warm cache must beat a cold one by ≥5×. Slow —
/// run explicitly (CI: `cargo test --release --test planner -- --ignored`).
#[test]
#[ignore = "latency measurement; run via --ignored (CI planner-smoke)"]
fn warm_cache_beats_cold_by_5x_on_a_4k_snapshot() {
    let out = tempdir_path("planner_bench.json");
    let status = Command::new(planner_bin_profile(true))
        .args(["--bench", "--asns", "4000"])
        .arg("--out")
        .arg(&out)
        .status()
        .expect("run planner --bench");
    assert!(status.success(), "planner --bench failed its 5x gate");
    let json = std::fs::read_to_string(&out).expect("bench artifact");
    assert!(json.contains("\"schema\": \"planner-bench-v1\""));
    assert!(json.contains("\"solo_matches\": true"));
    let _ = std::fs::remove_file(&out);
}

fn tempdir_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("bgp_juice_{}_{name}", std::process::id()));
    p
}
