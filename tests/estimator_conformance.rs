//! Exhaustive-oracle conformance for the stratified estimator.
//!
//! Two properties anchor `sbgp_sim::stats` to ground truth on graphs small
//! enough to enumerate (`sample::pairs_exhaustive`):
//!
//! 1. **Full budget ⇒ exhaustive.** With the pair budget set to the
//!    universe size, every stratum's nested sample is the whole stratum:
//!    the sampled pair *set* equals the exhaustive grid exactly, the
//!    confidence half-width is exactly zero (finite-population
//!    correction), and the population-weighted estimate equals the plain
//!    mean over `pairs_exhaustive` to floating-point addition order.
//! 2. **Nominal coverage.** Across many seeds, the 95% confidence
//!    interval of a genuinely partial sample must cover the exhaustive
//!    value at (at least close to) the nominal rate. Measured over ≥ 200
//!    seeded trials spanning all three security models, the LP2/LPinf
//!    variants, and forged paths k ∈ {0, 1, 2}, the acceptance bar is
//!    ≥ 90% at nominal 95%.

use std::collections::HashSet;

use proptest::prelude::*;

use bgp_juice::prelude::*;
use bgp_juice::sim::stats::{self, EstimatorConfig};

/// Strategy / model / variant combinations that jointly cover all three
/// models, both LP variants, and FakePath k ∈ {0, 1, 2}.
const COMBOS: [(SecurityModel, LpVariant, u8); 6] = [
    (SecurityModel::Security1st, LpVariant::LpK(2), 1),
    (SecurityModel::Security2nd, LpVariant::LpInf, 0),
    (SecurityModel::Security3rd, LpVariant::LpK(2), 2),
    (SecurityModel::Security1st, LpVariant::LpInf, 2),
    (SecurityModel::Security2nd, LpVariant::LpK(2), 0),
    (SecurityModel::Security3rd, LpVariant::LpInf, 1),
];

/// The exhaustive-oracle metric: a plain mean of per-pair happy fractions
/// over the full `m ≠ d` grid, through the classic runner.
fn oracle(
    net: &Internet,
    attackers: &[AsId],
    dests: &[AsId],
    dep: &Deployment,
    policy: Policy,
    strategy: AttackStrategy,
) -> Bounds {
    let pairs = sample::pairs_exhaustive(attackers, dests);
    runner::metric_with_strategy(net, &pairs, dep, policy, strategy, Parallelism(2))
}

/// Full-budget estimation: sampled set ≡ exhaustive grid, half-width ≡ 0,
/// value ≡ oracle.
fn check_full_budget(
    net: &Internet,
    attackers: &[AsId],
    dests: &[AsId],
    dep: &Deployment,
    policy: Policy,
    strategy: AttackStrategy,
    seed: u64,
) {
    let truth = oracle(net, attackers, dests, dep, policy, strategy);
    let cfg = EstimatorConfig::with_budget(u64::MAX, seed);
    let run = stats::estimate_metric(
        net,
        attackers,
        dests,
        dep,
        policy,
        strategy,
        &cfg,
        Parallelism(2),
    );
    let exhaustive: HashSet<(AsId, AsId)> = sample::pairs_exhaustive(attackers, dests)
        .into_iter()
        .collect();
    let sampled: HashSet<(AsId, AsId)> = run.sampled.iter().copied().collect();
    assert_eq!(sampled.len(), run.sampled.len(), "duplicate sampled pairs");
    assert_eq!(sampled, exhaustive, "full budget must enumerate everything");
    assert_eq!(run.population, exhaustive.len() as u64);
    let e = run.estimates[0];
    assert_eq!(e.pairs, exhaustive.len() as u64);
    assert_eq!(e.halfwidth.lower, 0.0, "exhausted strata have no CI width");
    assert_eq!(e.halfwidth.upper, 0.0);
    assert!(
        (e.value.lower - truth.lower).abs() < 1e-12,
        "lower: estimate {} vs oracle {}",
        e.value.lower,
        truth.lower
    );
    assert!(
        (e.value.upper - truth.upper).abs() < 1e-12,
        "upper: estimate {} vs oracle {}",
        e.value.upper,
        truth.upper
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property 1 over random graphs, pools, deployments and the full
    /// combo space (model × LP variant × forged-path depth).
    #[test]
    fn full_budget_reproduces_the_exhaustive_oracle(
        args in (150usize..260, 1u64..1000, 0usize..COMBOS.len(), any::<bool>())
    ) {
        let (asns, seed, combo, deployed) = args;
        let net = Internet::synthetic(asns, seed);
        let attackers = sample::sample_non_stubs(&net, 25, seed ^ 0xA);
        let dests = sample::sample_all(&net, 30, seed ^ 0xB);
        let dep = if deployed {
            Deployment::full_from_iter(net.len(), net.tiers.tier1().iter().copied())
        } else {
            Deployment::empty(net.len())
        };
        let (model, variant, hops) = COMBOS[combo];
        let policy = Policy::with_variant(model, variant);
        let strategy = AttackStrategy::FakePath { hops }.canonical();
        check_full_budget(&net, &attackers, &dests, &dep, policy, strategy, seed ^ 0x5A);
    }
}

/// Property 1 once more, over the *whole* `V × V` population of a 200-AS
/// graph — the paper's Appendix H setting in miniature.
#[test]
fn full_budget_equals_exhaustive_over_the_whole_population() {
    let net = Internet::synthetic(200, 7);
    let pool: Vec<AsId> = net.graph.ases().collect();
    let dep = Deployment::empty(net.len());
    check_full_budget(
        &net,
        &pool,
        &pool,
        &dep,
        Policy::new(SecurityModel::Security3rd),
        AttackStrategy::FakeLink,
        99,
    );
}

/// Property 2: measured CI coverage across ≥ 200 seeded trials (two bound
/// statistics per trial) is at least 90% at nominal 95%, pooled over the
/// full combo space; no single combo collapses either.
#[test]
fn ci_coverage_meets_the_nominal_rate() {
    let net = Internet::synthetic(240, 7);
    let attackers = net.tiers.non_stubs();
    let dests = sample::sample_all(&net, 40, 0xD1);
    let dep = Deployment::full_from_iter(net.len(), net.tiers.tier1().iter().copied());
    const TRIALS: u64 = 34; // 6 combos × 34 trials = 204 ≥ 200
    const BUDGET: u64 = 1_000; // genuinely partial (~20% of the universe)

    let (mut covered, mut total) = (0u32, 0u32);
    for (c, &(model, variant, hops)) in COMBOS.iter().enumerate() {
        let policy = Policy::with_variant(model, variant);
        let strategy = AttackStrategy::FakePath { hops }.canonical();
        let truth = oracle(&net, &attackers, &dests, &dep, policy, strategy);
        let (mut combo_cov, mut combo_total) = (0u32, 0u32);
        for trial in 0..TRIALS {
            let cfg = EstimatorConfig::with_budget(BUDGET, 0x9000 + 64 * c as u64 + trial);
            let run = stats::estimate_metric(
                &net,
                &attackers,
                &dests,
                &dep,
                policy,
                strategy,
                &cfg,
                Parallelism(2),
            );
            assert_eq!(run.sampled.len() as u64, BUDGET);
            let e = run.estimates[0];
            assert!(
                e.max_halfwidth() > 0.0,
                "a partial sample must carry CI width"
            );
            for (value, hw, t) in [
                (e.value.lower, e.halfwidth.lower, truth.lower),
                (e.value.upper, e.halfwidth.upper, truth.upper),
            ] {
                combo_total += 1;
                if (value - t).abs() <= hw {
                    combo_cov += 1;
                }
            }
        }
        covered += combo_cov;
        total += combo_total;
        assert!(
            f64::from(combo_cov) >= 0.75 * f64::from(combo_total),
            "{model}/{variant}/k={hops}: coverage {combo_cov}/{combo_total} collapsed"
        );
    }
    assert!(total >= 400, "fewer than 200 trials ({total} bound events)");
    let rate = f64::from(covered) / f64::from(total);
    assert!(
        rate >= 0.90,
        "measured coverage {rate:.3} ({covered}/{total}) below 0.90 at nominal 95%"
    );
}

/// The estimator must stay unbiased under *any* allocation: pin the
/// stratified estimate at full budget against the oracle when the pools
/// are deliberately lopsided (a single-tier destination pool).
#[test]
fn full_budget_is_exact_for_lopsided_pools() {
    let net = Internet::synthetic(220, 3);
    let attackers = net.tiers.non_stubs();
    let dests = net.tiers.tier2().to_vec();
    let dep = Deployment::empty(net.len());
    check_full_budget(
        &net,
        &attackers,
        &dests,
        &dep,
        Policy::new(SecurityModel::Security2nd),
        AttackStrategy::OriginHijack,
        5,
    );
}
