//! Golden-output regression tests: `figure03`, `figure08` and
//! `table_strategy_ladder` at `--asns 200 --seed 7` must print exactly the
//! snapshotted tables, so an engine or runner refactor cannot silently
//! shift reproduced numbers.
//! Running at 2 threads also exercises the runner's determinism guarantee —
//! the snapshots were captured at the same setting and reduction order does
//! not depend on scheduling.
//!
//! If a change *intentionally* alters the numbers, regenerate with:
//!
//! ```text
//! cargo run -q -p sbgp_bench --bin figure03 -- --asns 200 --seed 7 --threads 2 \
//!     > tests/golden/figure03_asns200_seed7.txt
//! cargo run -q -p sbgp_bench --bin figure08 -- --asns 200 --seed 7 --threads 2 \
//!     > tests/golden/figure08_asns200_seed7.txt
//! cargo run -q -p sbgp_bench --bin table_strategy_ladder -- --asns 200 --seed 7 --threads 2 \
//!     > tests/golden/table_strategy_ladder_asns200_seed7.txt
//! ```
//!
//! and say so in the commit message.

use std::path::Path;
use std::process::Command;

fn run_figure(bin: &str) -> String {
    let out = Command::new(env!("CARGO"))
        .current_dir(Path::new(env!("CARGO_MANIFEST_DIR")))
        .args([
            "run",
            "-q",
            "--offline",
            "-p",
            "sbgp_bench",
            "--bin",
            bin,
            "--",
            "--asns",
            "200",
            "--seed",
            "7",
            "--threads",
            "2",
        ])
        .output()
        .expect("failed to spawn cargo run");
    assert!(
        out.status.success(),
        "{bin} exited nonzero:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("non-UTF8 output")
}

fn golden(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn assert_matches_golden(bin: &str, golden_name: &str) {
    let got = run_figure(bin);
    let want = golden(golden_name);
    if got != want {
        // Pinpoint the first divergence for a readable failure.
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            assert_eq!(
                g,
                w,
                "{bin} line {} diverged from tests/golden/{golden_name}",
                i + 1
            );
        }
        assert_eq!(
            got.lines().count(),
            want.lines().count(),
            "{bin} line count diverged from tests/golden/{golden_name}"
        );
        panic!("{bin} output diverged from tests/golden/{golden_name}");
    }
}

#[test]
fn figure03_output_is_golden() {
    assert_matches_golden("figure03", "figure03_asns200_seed7.txt");
}

#[test]
fn figure08_output_is_golden() {
    assert_matches_golden("figure08", "figure08_asns200_seed7.txt");
}

#[test]
fn table_strategy_ladder_output_is_golden() {
    assert_matches_golden(
        "table_strategy_ladder",
        "table_strategy_ladder_asns200_seed7.txt",
    );
}
