//! Golden-output regression tests: `figure03`, `figure08`,
//! `table_strategy_ladder` and `table_churn` at `--asns 200 --seed 7`, plus
//! the fixed-gadget exhibits (`exhibit_wedgie` and both examples), must
//! print exactly the snapshotted tables, so an engine or runner refactor
//! cannot silently shift reproduced numbers.
//! Running the sampled tables at 2 threads also exercises the runner's
//! determinism guarantee — the snapshots were captured at the same setting
//! and reduction order does not depend on scheduling.
//!
//! If a change *intentionally* alters the numbers, regenerate with:
//!
//! ```text
//! cargo run -q -p sbgp_bench --bin figure03 -- --asns 200 --seed 7 --threads 2 \
//!     > tests/golden/figure03_asns200_seed7.txt
//! cargo run -q -p sbgp_bench --bin figure08 -- --asns 200 --seed 7 --threads 2 \
//!     > tests/golden/figure08_asns200_seed7.txt
//! cargo run -q -p sbgp_bench --bin table_strategy_ladder -- --asns 200 --seed 7 --threads 2 \
//!     > tests/golden/table_strategy_ladder_asns200_seed7.txt
//! cargo run -q -p sbgp_bench --bin table_churn -- --asns 200 --seed 7 --threads 2 \
//!     > tests/golden/table_churn_asns200_seed7.txt
//! cargo run -q -p sbgp_bench --bin exhibit_wedgie > tests/golden/exhibit_wedgie.txt
//! cargo run -q --example wedgie > tests/golden/example_wedgie.txt
//! cargo run -q --example downgrade_attack > tests/golden/example_downgrade_attack.txt
//! ```
//!
//! and say so in the commit message.

use std::path::Path;
use std::process::Command;

/// Run a cargo target (`["--bin", name]` or `["--example", name]`) with
/// the given CLI arguments and return its stdout.
fn run_target(target: &[&str], cli_args: &[&str]) -> String {
    let mut cmd = Command::new(env!("CARGO"));
    cmd.current_dir(Path::new(env!("CARGO_MANIFEST_DIR")))
        .args(["run", "-q", "--offline"])
        .args(target);
    if !cli_args.is_empty() {
        cmd.arg("--").args(cli_args);
    }
    let out = cmd.output().expect("failed to spawn cargo run");
    assert!(
        out.status.success(),
        "{target:?} exited nonzero:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("non-UTF8 output")
}

fn run_figure(bin: &str) -> String {
    run_target(
        &["-p", "sbgp_bench", "--bin", bin],
        &["--asns", "200", "--seed", "7", "--threads", "2"],
    )
}

fn golden(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn assert_output_matches(bin: &str, got: &str, golden_name: &str) {
    let want = golden(golden_name);
    if got != want {
        // Pinpoint the first divergence for a readable failure.
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            assert_eq!(
                g,
                w,
                "{bin} line {} diverged from tests/golden/{golden_name}",
                i + 1
            );
        }
        assert_eq!(
            got.lines().count(),
            want.lines().count(),
            "{bin} line count diverged from tests/golden/{golden_name}"
        );
        panic!("{bin} output diverged from tests/golden/{golden_name}");
    }
}

fn assert_matches_golden(bin: &str, golden_name: &str) {
    let got = run_figure(bin);
    assert_output_matches(bin, &got, golden_name);
}

#[test]
fn figure03_output_is_golden() {
    assert_matches_golden("figure03", "figure03_asns200_seed7.txt");
}

#[test]
fn figure08_output_is_golden() {
    assert_matches_golden("figure08", "figure08_asns200_seed7.txt");
}

#[test]
fn table_strategy_ladder_output_is_golden() {
    assert_matches_golden(
        "table_strategy_ladder",
        "table_strategy_ladder_asns200_seed7.txt",
    );
}

#[test]
fn table_churn_output_is_golden() {
    assert_matches_golden("table_churn", "table_churn_asns200_seed7.txt");
}

/// The wedgie exhibit runs on a fixed gadget and takes no CLI arguments;
/// its whole narrative (protocol hysteresis + engine recovery) is pinned.
#[test]
fn exhibit_wedgie_output_is_golden() {
    let got = run_target(&["-p", "sbgp_bench", "--bin", "exhibit_wedgie"], &[]);
    assert_output_matches("exhibit_wedgie", &got, "exhibit_wedgie.txt");
}

#[test]
fn example_wedgie_output_is_golden() {
    let got = run_target(&["--example", "wedgie"], &[]);
    assert_output_matches("examples/wedgie", &got, "example_wedgie.txt");
}

#[test]
fn example_downgrade_attack_output_is_golden() {
    let got = run_target(&["--example", "downgrade_attack"], &[]);
    assert_output_matches(
        "examples/downgrade_attack",
        &got,
        "example_downgrade_attack.txt",
    );
}
