//! Figure 6: partitions by attacker tier, security 3rd.
use sbgp_bench::{render, Cli};
use sbgp_core::SecurityModel;

fn main() {
    let cli = Cli::parse();
    let net = cli.internet();
    cli.banner("Figure 6 — partitions by attacker tier (Sec 3rd)", &net);
    println!(
        "{}",
        render::render_by_attacker_tier(&net, &cli.config, SecurityModel::Security3rd, cli.variant)
    );
    println!("paper: attacks strengthen from stubs to Tier 2, but Tier 1 attackers are weakest");
}
