//! Figure 7(a)+(b): the Tier 1+2 rollout with simplex error bars.
use sbgp_bench::{render, Cli};
use sbgp_sim::experiments::rollout;
use sbgp_sim::scenario;

fn main() {
    let cli = Cli::parse();
    let net = cli.internet();
    cli.banner("Figure 7 — Tier 1+2 rollout", &net);
    println!(
        "{}",
        render::render_rollout_report(&rollout::figure7(&net, &cli.config), &cli.config, net.len())
    );
    println!("paper: sec 1st improves ~24% at 50% deployment; sec 2nd/3rd stay meagre;");
    println!("simplex S*BGP at stubs changes almost nothing (§5.3.2)");
    if cli.config.estimation().is_some() {
        println!();
        println!(
            "{}",
            render::render_estimated_rollout(
                &net,
                &cli.config,
                "Tier 1+2 rollout",
                &scenario::tier12_rollout(&net),
            )
        );
    }
}
