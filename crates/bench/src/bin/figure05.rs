//! Figure 5: partitions by destination tier, security 2nd.
use sbgp_bench::{render, Cli};
use sbgp_core::SecurityModel;

fn main() {
    let cli = Cli::parse();
    let net = cli.internet();
    cli.banner("Figure 5 — partitions by destination tier (Sec 2nd)", &net);
    println!(
        "{}",
        render::render_by_destination_tier(
            &net,
            &cli.config,
            SecurityModel::Security2nd,
            cli.variant
        )
    );
}
