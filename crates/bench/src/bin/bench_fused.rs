//! Fused multi-cell benchmark: the whole (security model × LP variant)
//! policy grid served by one [`FusedDeltaEngine`] pass per attacker,
//! against PR 3's composed-delta path (one [`AttackDeltaEngine`] loop per
//! policy cell) — cross-checked for identical happy counts and emitted as
//! `BENCH_fused.json` for the perf trajectory and the CI bench-smoke job.
//!
//! Two regimes per graph size:
//!
//! * **empty** — zero validators: the models collapse onto one lane per
//!   LP variant (the fused engine computes 3 lanes where the composed
//!   path computes 9), plus the shared contested-region scan. This is the
//!   campaign-baseline shape and the acceptance gate (≥ 2× at 4000 ASes
//!   on the full 3-model grid).
//! * **rollout** — a mid-rollout deployment: no model collapse, so the
//!   measured gain is the shared-traversal amortization alone.
//!
//! ```text
//! bench_fused --asns 4000,40000 --seed 42 --out BENCH_fused.json
//! bench_fused --validate BENCH_fused.json   # schema drift check
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use sbgp_bench::sweep_rollout_steps;
use sbgp_core::{
    AttackDeltaEngine, AttackStrategy, CellSet, Deployment, FusedDeltaEngine, LpVariant, Policy,
    SecurityModel,
};
use sbgp_sim::{sample, Internet};
use sbgp_topology::AsId;

/// Timed repetitions per side; the minimum is reported.
const REPS: usize = 3;
/// The LP variants of the grid (Appendix K), Standard first.
const VARIANTS: [LpVariant; 3] = [LpVariant::Standard, LpVariant::LpK(2), LpVariant::LpInf];

struct Args {
    asns: Vec<usize>,
    seed: u64,
    out: PathBuf,
    validate: Option<PathBuf>,
}

fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut a = Args {
        asns: vec![4_000],
        seed: 42,
        out: PathBuf::from("BENCH_fused.json"),
        validate: None,
    };
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--asns" => {
                a.asns = take("--asns")?
                    .split(',')
                    .filter(|t| !t.is_empty())
                    .map(|t| t.trim().parse().map_err(|_| format!("bad size {t:?}")))
                    .collect::<Result<_, _>>()?
            }
            "--seed" => {
                a.seed = take("--seed")?
                    .parse()
                    .map_err(|_| "--seed wants a number".to_string())?
            }
            "--out" => a.out = PathBuf::from(take("--out")?),
            "--validate" => a.validate = Some(PathBuf::from(take("--validate")?)),
            "--help" | "-h" => return Err("help requested".into()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if a.asns.is_empty() {
        return Err("empty --asns list".into());
    }
    Ok(a)
}

/// Schema check for an emitted JSON (the CI drift gate).
fn validate(path: &std::path::Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    for key in [
        "\"bench\": \"fused\"",
        "\"grid\"",
        "\"cells\"",
        "\"asns\"",
        "\"regime\"",
        "\"models\"",
        "\"variants\"",
        "\"lanes\"",
        "\"pairs\"",
        "\"composed_ms\"",
        "\"fused_ms\"",
        "\"composed_pairs_per_sec\"",
        "\"fused_pairs_per_sec\"",
        "\"speedup\"",
        "\"computations\"",
        "\"collapsed_lanes\"",
        "\"forced_fallbacks\"",
        "\"gate\"",
    ] {
        if !text.contains(key) {
            return Err(format!("{}: missing {key}", path.display()));
        }
    }
    Ok(())
}

struct Cell {
    asns: usize,
    regime: &'static str,
    models: usize,
    lanes: usize,
    pairs: usize,
    composed_ms: f64,
    fused_ms: f64,
    computations: usize,
    collapsed: usize,
    fallbacks: usize,
}

impl Cell {
    fn speedup(&self) -> f64 {
        self.composed_ms / self.fused_ms.max(1e-9)
    }
}

/// Time one (size, regime, model-count) cell both ways.
fn run_cell(
    net: &Internet,
    dep: &Deployment,
    regime: &'static str,
    models: &[SecurityModel],
    dests: &[AsId],
    attackers: &[AsId],
) -> Cell {
    let policies: Vec<Policy> = models
        .iter()
        .flat_map(|&m| VARIANTS.map(|v| Policy::with_variant(m, v)))
        .collect();
    let pairs = dests.len() * attackers.len();

    // Side 1: the composed-delta path — one AttackDeltaEngine loop per
    // policy cell (PR 3's shape, what the campaign ran per model).
    let mut composed = std::time::Duration::MAX;
    let mut composed_counts = 0usize;
    let mut delta = AttackDeltaEngine::new(&net.graph);
    for _ in 0..REPS {
        let t0 = Instant::now();
        composed_counts = 0;
        for &policy in &policies {
            for &d in dests {
                delta.begin(d, dep, policy);
                for &m in attackers {
                    delta.attack(m, AttackStrategy::FakeLink);
                    composed_counts += delta.count_happy().0;
                }
            }
        }
        composed = composed.min(t0.elapsed());
    }

    // Side 2: the fused pass — every policy cell served from one snapshot
    // traversal per attacker.
    let cells = CellSet::per_policy(&policies, AttackStrategy::FakeLink);
    let mut fused_time = std::time::Duration::MAX;
    let mut fused_counts = 0usize;
    let mut computations = 0usize;
    let mut stats = sbgp_core::FusedStats::default();
    for _ in 0..REPS {
        // Fresh engine per rep so the reported stats cover exactly one
        // pass over the workload (construction stays outside the timer,
        // matching the composed side's reused engine).
        let mut fused = FusedDeltaEngine::new(&net.graph, cells.clone());
        let t1 = Instant::now();
        fused_counts = 0;
        for &d in dests {
            fused.begin(d, dep);
            for &m in attackers {
                fused.attack(m);
                for c in 0..policies.len() {
                    fused_counts += fused.count_happy(c).0;
                }
            }
        }
        fused_time = fused_time.min(t1.elapsed());
        computations = fused.computations();
        stats = fused.stats();
    }

    assert_eq!(
        composed_counts,
        fused_counts,
        "{regime}/{}-model: fused diverged from composed-delta outcomes",
        models.len()
    );
    Cell {
        asns: net.graph.len(),
        regime,
        models: models.len(),
        lanes: policies.len(),
        pairs,
        composed_ms: composed.as_secs_f64() * 1e3,
        fused_ms: fused_time.as_secs_f64() * 1e3,
        computations,
        collapsed: stats.collapsed_lanes,
        fallbacks: stats.forced_fallbacks,
    }
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!("usage: [--asns N,...] [--seed S] [--out FILE] [--validate FILE]");
            std::process::exit(2);
        }
    };
    if let Some(path) = &args.validate {
        match validate(path) {
            Ok(()) => {
                println!("{}: fused bench schema ok", path.display());
                return;
            }
            Err(msg) => {
                eprintln!("schema drift: {msg}");
                std::process::exit(1);
            }
        }
    }

    let mut cells: Vec<Cell> = Vec::new();
    for &asns in &args.asns {
        let t0 = Instant::now();
        let net = Internet::synthetic(asns, args.seed);
        // Scale the pair sample down on huge graphs so a 40k row stays in
        // minutes; the per-pair cost is what's compared, not the total.
        let (n_dests, n_attackers) = if asns > 10_000 { (2, 10) } else { (4, 25) };
        let attackers = sample::sample_non_stubs(&net, n_attackers, args.seed);
        let dests: Vec<AsId> = sample::sample_all(&net, n_dests, args.seed ^ 0xD)
            .into_iter()
            .filter(|d| !attackers.contains(d))
            .collect();
        assert!(!attackers.is_empty() && !dests.is_empty(), "empty samples");
        let rollout = sweep_rollout_steps(&net, 20).swap_remove(9);
        println!(
            "graph synthetic-{asns} seed {}: generated in {:.1} ms; {} destinations x {} attackers",
            args.seed,
            t0.elapsed().as_secs_f64() * 1e3,
            dests.len(),
            attackers.len()
        );
        let empty = Deployment::empty(net.len());
        for (regime, dep) in [("empty", &empty), ("rollout", &rollout)] {
            for k in 1..=SecurityModel::ALL.len() {
                let cell = run_cell(
                    &net,
                    dep,
                    regime,
                    &SecurityModel::ALL[..k],
                    &dests,
                    &attackers,
                );
                println!(
                    "{asns:>6} {regime:<8} {k} model(s) x {} variants: composed {:>9.1} ms, \
                     fused {:>9.1} ms, speedup {:>5.2}x ({} computations for {} lanes, \
                     {} collapsed, {} fallbacks)",
                    VARIANTS.len(),
                    cell.composed_ms,
                    cell.fused_ms,
                    cell.speedup(),
                    cell.computations,
                    cell.lanes,
                    cell.collapsed,
                    cell.fallbacks
                );
                cells.push(cell);
            }
        }
    }

    // The acceptance gate: the full 3-model grid at the smallest
    // requested size, empty deployment (the campaign-baseline shape).
    let gate = cells
        .iter()
        .find(|c| c.regime == "empty" && c.models == SecurityModel::ALL.len())
        .expect("the 3-model empty cell always runs");
    println!(
        "\ngate: {} ASes, empty deployment, {}-model x {}-variant grid: {:.2}x",
        gate.asns,
        gate.models,
        VARIANTS.len(),
        gate.speedup()
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"fused\",");
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"strategy\": \"fakelink\",");
    let _ = writeln!(
        json,
        "  \"grid\": {{\"models\": [\"sec1\", \"sec2\", \"sec3\"], \"variants\": [\"lp\", \"lp2\", \"lpinf\"]}},"
    );
    let _ = writeln!(json, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"asns\": {}, \"regime\": \"{}\", \"models\": {}, \"variants\": {}, \
             \"lanes\": {}, \"pairs\": {}, \"composed_ms\": {:.3}, \"fused_ms\": {:.3}, \
             \"composed_pairs_per_sec\": {:.3}, \"fused_pairs_per_sec\": {:.3}, \
             \"speedup\": {:.3}, \"computations\": {}, \"collapsed_lanes\": {}, \
             \"forced_fallbacks\": {}}}{}",
            c.asns,
            c.regime,
            c.models,
            VARIANTS.len(),
            c.lanes,
            c.pairs,
            c.composed_ms,
            c.fused_ms,
            c.pairs as f64 / (c.composed_ms / 1e3).max(1e-9),
            c.pairs as f64 / (c.fused_ms / 1e3).max(1e-9),
            c.speedup(),
            c.computations,
            c.collapsed,
            c.fallbacks,
            if i + 1 < cells.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"gate\": {{\"asns\": {}, \"regime\": \"empty\", \"models\": {}, \"speedup\": {:.3}}}",
        gate.asns,
        gate.models,
        gate.speedup()
    );
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("cannot write {}: {e}", args.out.display());
        std::process::exit(1);
    }
    println!("wrote {}", args.out.display());
    if let Err(msg) = validate(&args.out) {
        eprintln!("self-check failed: {msg}");
        std::process::exit(1);
    }
}
