//! Table 3: which phenomena occur under which security model.
use sbgp_bench::{render, Cli};

fn main() {
    let cli = Cli::parse();
    let net = cli.internet();
    cli.banner("Table 3 — phenomena by security model", &net);
    println!("{}", render::render_phenomena(&net, &cli.config));
}
