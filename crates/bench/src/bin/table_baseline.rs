//! §4.2: the origin-authentication baseline `H_{V,V}(∅)`.
use sbgp_bench::{render, Cli};

fn main() {
    let cli = Cli::parse();
    let net = cli.internet();
    cli.banner(
        "Table §4.2 — baseline security from origin authentication",
        &net,
    );
    println!("{}", render::render_baseline(&net, &cli.config));
}
