//! Library extension table: the strategic-attacker ladder (per-pair
//! optimal forged-path choice) and the colluding-pair comparison.
use sbgp_bench::{render, Cli};

fn main() {
    let cli = Cli::parse();
    let net = cli.internet();
    cli.banner("Extension — strategy ladder", &net);
    println!("{}", render::render_strategy_ladder(&net, &cli.config));
}
