//! Real-snapshot ingestion benchmark: the full `--file` pipeline at
//! internet scale — serialize a synthetic graph to CAIDA serial-1 text,
//! parse it back, compare the bulk sorted-edge CSR build against the
//! incremental HashMap builder path, then classify tiers and serve one
//! delta-engine destination group on the loaded snapshot. Emitted as
//! `BENCH_ingest.json` for the perf trajectory and the CI bench-smoke job.
//!
//! The headline gate is the adjacency build: [`GraphBuilder::from_edges`]
//! (collect → sort → dedup-scan → direct CSR fill) must beat the
//! incremental per-edge HashMap path by ≥ 2× at 100k ASes, with the two
//! graphs cross-checked identical segment by segment.
//!
//! `--emit-rel FILE` keeps the serialized snapshot on disk — the campaign
//! runner's `--file` fixture source.
//!
//! ```text
//! bench_ingest --asns 100000 --seed 42 --out BENCH_ingest.json
//! bench_ingest --asns 1000 --emit-rel snap.as-rel   # fixture for campaign --file
//! bench_ingest --validate BENCH_ingest.json         # schema drift check
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use sbgp_core::{AttackDeltaEngine, AttackStrategy, Deployment, Policy, SecurityModel};
use sbgp_sim::{sample, Internet};
use sbgp_topology::{io, AsId, GraphBuilder, Relationship};

/// Timed repetitions per stage; the minimum is reported.
const REPS: usize = 3;

struct Args {
    asns: Vec<usize>,
    seed: u64,
    out: PathBuf,
    validate: Option<PathBuf>,
    emit_rel: Option<PathBuf>,
}

fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut a = Args {
        asns: vec![100_000],
        seed: 42,
        out: PathBuf::from("BENCH_ingest.json"),
        validate: None,
        emit_rel: None,
    };
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--asns" => {
                a.asns = take("--asns")?
                    .split(',')
                    .filter(|t| !t.is_empty())
                    .map(|t| t.trim().parse().map_err(|_| format!("bad size {t:?}")))
                    .collect::<Result<_, _>>()?
            }
            "--seed" => {
                a.seed = take("--seed")?
                    .parse()
                    .map_err(|_| "--seed wants a number".to_string())?
            }
            "--out" => a.out = PathBuf::from(take("--out")?),
            "--validate" => a.validate = Some(PathBuf::from(take("--validate")?)),
            "--emit-rel" => a.emit_rel = Some(PathBuf::from(take("--emit-rel")?)),
            "--help" | "-h" => return Err("help requested".into()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if a.asns.is_empty() {
        return Err("empty --asns list".into());
    }
    if a.emit_rel.is_some() && a.asns.len() > 1 {
        return Err("--emit-rel wants exactly one --asns size (one snapshot per file)".into());
    }
    Ok(a)
}

/// Schema check for an emitted JSON (the CI drift gate).
fn validate(path: &std::path::Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    for key in [
        "\"bench\": \"ingest\"",
        "\"cells\"",
        "\"asns\"",
        "\"edges\"",
        "\"lines\"",
        "\"gen_ms\"",
        "\"write_ms\"",
        "\"parse_ms\"",
        "\"lines_per_sec\"",
        "\"bulk_build_ms\"",
        "\"hashmap_build_ms\"",
        "\"build_speedup\"",
        "\"load_ms\"",
        "\"content_providers\"",
        "\"group_ms\"",
        "\"attackers\"",
        "\"gate\"",
    ] {
        if !text.contains(key) {
            return Err(format!("{}: missing {key}", path.display()));
        }
    }
    Ok(())
}

struct Cell {
    asns: usize,
    edges: usize,
    lines: usize,
    gen_ms: f64,
    write_ms: f64,
    parse_ms: f64,
    bulk_ms: f64,
    hashmap_ms: f64,
    load_ms: f64,
    cps: usize,
    group_ms: f64,
    attackers: usize,
}

impl Cell {
    fn speedup(&self) -> f64 {
        self.hashmap_ms / self.bulk_ms.max(1e-9)
    }
}

/// Assert two graphs are identical: same labels and the same customer /
/// peer / provider segments for every AS.
fn assert_same_graph(a: &sbgp_topology::AsGraph, b: &sbgp_topology::AsGraph) {
    assert_eq!(a.len(), b.len());
    for v in a.ases() {
        assert_eq!(a.asn_label(v), b.asn_label(v), "{v} label");
        assert_eq!(a.customers(v), b.customers(v), "{v} customers");
        assert_eq!(a.peers(v), b.peers(v), "{v} peers");
        assert_eq!(a.providers(v), b.providers(v), "{v} providers");
    }
}

fn run_cell(asns: usize, seed: u64, rel_path: &std::path::Path) -> Cell {
    // Stage 0: the synthetic stand-in for a published snapshot.
    let t0 = Instant::now();
    let net = Internet::synthetic(asns, seed);
    let gen_ms = t0.elapsed().as_secs_f64() * 1e3;
    let cp_asns: Vec<u32> = net
        .content_providers
        .iter()
        .map(|&v| net.graph.asn_label(v))
        .collect();

    // Stage 1: serialize to serial-1 text on disk.
    let t0 = Instant::now();
    let text = io::write_relationships(&net.graph);
    if let Err(e) = std::fs::write(rel_path, &text) {
        eprintln!("cannot write relationship file {}: {e}", rel_path.display());
        std::process::exit(1);
    }
    let write_ms = t0.elapsed().as_secs_f64() * 1e3;
    let lines = text.lines().count();

    // Stage 2: parse it back (min of REPS).
    let mut parse = std::time::Duration::MAX;
    let mut parsed = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let g = match io::read_relationships_file(rel_path) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("cannot parse relationship file {}: {e}", rel_path.display());
                std::process::exit(1);
            }
        };
        parse = parse.min(t0.elapsed());
        parsed = Some(g);
    }
    let parsed = parsed.expect("REPS > 0");
    let parse_ms = parse.as_secs_f64() * 1e3;
    assert_eq!(parsed.len(), asns, "round trip dropped ASes");
    let edges = parsed.num_customer_provider_edges() + parsed.num_peer_edges();

    // Stage 3: the adjacency-build comparison on identical inputs — the
    // bulk sorted-edge CSR path vs the incremental per-edge HashMap path.
    let labels: Vec<u32> = parsed.ases().map(|v| parsed.asn_label(v)).collect();
    let edge_list: Vec<(AsId, AsId, Relationship)> = parsed.edges().collect();
    let mut bulk = std::time::Duration::MAX;
    let mut bulk_graph = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let g = GraphBuilder::from_edges(asns, labels.clone(), edge_list.iter().copied())
            .expect("bulk build");
        bulk = bulk.min(t0.elapsed());
        bulk_graph = Some(g);
    }
    let mut hashmap = std::time::Duration::MAX;
    let mut hashmap_graph = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let mut b = GraphBuilder::new(asns);
        b.set_asn_labels(labels.clone()).expect("label count");
        for &(x, y, rel) in &edge_list {
            b.add_edge(x, y, rel).expect("incremental add");
        }
        let g = b.build();
        hashmap = hashmap.min(t0.elapsed());
        hashmap_graph = Some(g);
    }
    let (bulk_graph, hashmap_graph) = (bulk_graph.unwrap(), hashmap_graph.unwrap());
    assert_same_graph(&bulk_graph, &hashmap_graph);
    assert_same_graph(&bulk_graph, &parsed);

    // Stage 4: the user-facing load — parse + hierarchy validation + tier
    // classification with real-ASN content providers.
    let mut load = std::time::Duration::MAX;
    let mut loaded = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let n = match Internet::from_file(rel_path, &cp_asns) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("cannot load snapshot {}: {e}", rel_path.display());
                std::process::exit(1);
            }
        };
        load = load.min(t0.elapsed());
        loaded = Some(n);
    }
    let loaded = loaded.expect("REPS > 0");
    let load_ms = load.as_secs_f64() * 1e3;
    assert_eq!(loaded.content_providers.len(), cp_asns.len());

    // Stage 5: one delta-engine destination group on the loaded snapshot
    // (the scale_smoke unit of work: a Tier-2 destination, non-stub
    // attackers, Tier-1 deployment).
    let attackers = sample::sample_non_stubs(&loaded, 40, seed ^ 0x5EED);
    let d = loaded.tiers.tier2()[0];
    let dep = Deployment::full_from_iter(loaded.len(), loaded.tiers.tier1().iter().copied());
    let policy = Policy::new(SecurityModel::Security2nd);
    let t0 = Instant::now();
    let mut delta = AttackDeltaEngine::new(&loaded.graph);
    delta.begin(d, &dep, policy);
    let mut served = 0usize;
    for &m in &attackers {
        if m == d {
            continue;
        }
        delta.attack(m, AttackStrategy::FakeLink);
        let (lower, upper) = delta.count_happy();
        assert!(lower <= upper && upper <= loaded.len() - 2);
        served += 1;
    }
    let group_ms = t0.elapsed().as_secs_f64() * 1e3;

    Cell {
        asns,
        edges,
        lines,
        gen_ms,
        write_ms,
        parse_ms,
        bulk_ms: bulk.as_secs_f64() * 1e3,
        hashmap_ms: hashmap.as_secs_f64() * 1e3,
        load_ms,
        cps: loaded.content_providers.len(),
        group_ms,
        attackers: served,
    }
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!(
                "usage: [--asns N,...] [--seed S] [--out FILE] [--emit-rel FILE] \
                 [--validate FILE]"
            );
            std::process::exit(2);
        }
    };
    if let Some(path) = &args.validate {
        match validate(path) {
            Ok(()) => {
                println!("{}: ingest bench schema ok", path.display());
                return;
            }
            Err(msg) => {
                eprintln!("schema drift: {msg}");
                std::process::exit(1);
            }
        }
    }

    let tmp_dir = std::env::temp_dir();
    let mut cells: Vec<Cell> = Vec::new();
    for &asns in &args.asns {
        // The serialized snapshot: kept when --emit-rel names it, scratch
        // otherwise.
        let rel_path = args.emit_rel.clone().unwrap_or_else(|| {
            tmp_dir.join(format!(
                "bench_ingest_{}_{}.as-rel",
                asns,
                std::process::id()
            ))
        });
        let cell = run_cell(asns, args.seed, &rel_path);
        println!(
            "{asns:>7} ASes ({} edges, {} lines): gen {:.0} ms, write {:.0} ms, \
             parse {:.1} ms, build bulk {:.1} ms vs hashmap {:.1} ms ({:.2}x), \
             load {:.1} ms, {}-attacker group {:.1} ms",
            cell.edges,
            cell.lines,
            cell.gen_ms,
            cell.write_ms,
            cell.parse_ms,
            cell.bulk_ms,
            cell.hashmap_ms,
            cell.speedup(),
            cell.load_ms,
            cell.attackers,
            cell.group_ms,
        );
        if args.emit_rel.is_none() {
            let _ = std::fs::remove_file(&rel_path);
        } else {
            println!("kept snapshot at {}", rel_path.display());
        }
        cells.push(cell);
    }

    // The acceptance gate: bulk ≥ 2× the HashMap path at the largest size.
    let gate = cells
        .iter()
        .max_by_key(|c| c.asns)
        .expect("at least one size");
    println!(
        "\ngate: {} ASes, bulk adjacency build {:.2}x the incremental HashMap path",
        gate.asns,
        gate.speedup()
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"ingest\",");
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(json, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"asns\": {}, \"edges\": {}, \"lines\": {}, \"gen_ms\": {:.3}, \
             \"write_ms\": {:.3}, \"parse_ms\": {:.3}, \"lines_per_sec\": {:.3}, \
             \"bulk_build_ms\": {:.3}, \"hashmap_build_ms\": {:.3}, \"build_speedup\": {:.3}, \
             \"load_ms\": {:.3}, \"content_providers\": {}, \"group_ms\": {:.3}, \
             \"attackers\": {}}}{}",
            c.asns,
            c.edges,
            c.lines,
            c.gen_ms,
            c.write_ms,
            c.parse_ms,
            c.lines as f64 / (c.parse_ms / 1e3).max(1e-9),
            c.bulk_ms,
            c.hashmap_ms,
            c.speedup(),
            c.load_ms,
            c.cps,
            c.group_ms,
            c.attackers,
            if i + 1 < cells.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"gate\": {{\"asns\": {}, \"build_speedup\": {:.3}}}",
        gate.asns,
        gate.speedup()
    );
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("cannot write {}: {e}", args.out.display());
        std::process::exit(1);
    }
    println!("wrote {}", args.out.display());
    if let Err(msg) = validate(&args.out) {
        eprintln!("self-check failed: {msg}");
        std::process::exit(1);
    }
}
