//! Figure 13: the fate of secure routes to the 17 content providers.
use sbgp_bench::{render, Cli};
use sbgp_core::SecurityModel;

fn main() {
    let cli = Cli::parse();
    let net = cli.internet();
    cli.banner(
        "Figure 13 — secure routes to CP destinations under attack",
        &net,
    );
    println!(
        "{}",
        render::render_figure13(&net, &cli.config, SecurityModel::Security3rd)
    );
}
