//! §4.7: partitions bucketed by source tier.
use sbgp_bench::{render, Cli};

fn main() {
    let cli = Cli::parse();
    let net = cli.internet();
    cli.banner("§4.7 — partitions by source tier", &net);
    println!("{}", render::render_by_source_tier(&net, &cli.config));
    println!("paper: every source tier (including Tier 1s) looks alike ⇒ S*BGP can still");
    println!("protect Tier 1s as sources even though it cannot protect them as destinations");
}
