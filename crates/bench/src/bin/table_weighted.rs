//! Library extension table: weighted.
use sbgp_bench::{render, Cli};

fn main() {
    let cli = Cli::parse();
    let net = cli.internet();
    cli.banner("Extension — weighted", &net);
    println!("{}", render::render_weighted(&net, &cli.config));
}
