//! Deployment-sweep benchmark: time a growing Tier-2 rollout evaluated
//! from scratch (one [`Engine::compute`] per step) against the incremental
//! [`SweepEngine`] path, cross-check that both produce identical happy
//! counts, and emit `BENCH_sweep.json` so the speedup lands in the perf
//! trajectory. The default shape is the acceptance scenario: a 4000-AS
//! graph swept over a 20-step monotone rollout.

use std::fmt::Write as _;
use std::time::Instant;

use sbgp_bench::{sweep_rollout_steps, Cli};
use sbgp_core::{AttackScenario, Deployment, Engine, Policy, SecurityModel, SweepEngine};
use sbgp_sim::sample;
use sbgp_topology::AsId;

const STEPS: usize = 20;
/// Timed repetitions per side; the minimum is reported (standard
/// noise-resistant wall-clock practice — both sides get the same deal).
const REPS: usize = 3;

struct ModelResult {
    model: SecurityModel,
    scratch_ms: f64,
    sweep_ms: f64,
    refixed_fraction: f64,
}

fn main() {
    let cli = Cli::parse();
    let net = cli.internet();
    cli.banner("Sweep bench — incremental vs from-scratch rollout", &net);

    let deps = sweep_rollout_steps(&net, STEPS);
    let attackers = sample::sample_non_stubs(&net, cli.config.attackers.min(3), cli.seed);
    let dests = sample::sample_all(&net, cli.config.destinations.min(2), cli.seed ^ 0xD);
    let pairs: Vec<(AsId, AsId)> = sample::pairs(&attackers, &dests);
    assert!(!pairs.is_empty(), "no (m, d) pairs sampled");
    println!(
        "rollout: {} steps to {} secure ASes; {} (m, d) pairs",
        deps.len(),
        deps.last().map(Deployment::secure_count).unwrap_or(0),
        pairs.len()
    );
    println!();

    let mut results = Vec::new();
    for model in SecurityModel::ALL {
        let policy = Policy::with_variant(model, cli.variant);

        let mut scratch = std::time::Duration::MAX;
        let mut scratch_counts = 0usize;
        let mut engine = Engine::new(&net.graph);
        for _ in 0..REPS {
            let t0 = Instant::now();
            scratch_counts = 0;
            for &(m, d) in &pairs {
                for dep in &deps {
                    let o = engine.compute(AttackScenario::attack(m, d), dep, policy);
                    scratch_counts += o.count_happy().0;
                }
            }
            scratch = scratch.min(t0.elapsed());
        }

        let mut swept = std::time::Duration::MAX;
        let mut sweep_counts = 0usize;
        let mut sweep = SweepEngine::new(&net.graph);
        for _ in 0..REPS {
            let t1 = Instant::now();
            sweep_counts = 0;
            for &(m, d) in &pairs {
                sweep.begin(AttackScenario::attack(m, d), policy);
                for dep in &deps {
                    sweep.advance(dep);
                    sweep_counts += sweep.count_happy().0;
                }
            }
            swept = swept.min(t1.elapsed());
        }

        assert_eq!(
            scratch_counts, sweep_counts,
            "{model}: sweep diverged from from-scratch outcomes"
        );
        let stats = sweep.stats();
        let evaluated = stats.steps().max(1) * net.graph.len();
        let r = ModelResult {
            model,
            scratch_ms: scratch.as_secs_f64() * 1e3,
            sweep_ms: swept.as_secs_f64() * 1e3,
            refixed_fraction: stats.refixed_ases as f64 / evaluated as f64,
        };
        println!(
            "{:<8} from-scratch {:>9.1} ms   sweep {:>9.1} ms   speedup {:>5.2}x   re-fixed {:>5.1}% of AS-steps   {} grow rounds / {} incr steps",
            r.model.label(),
            r.scratch_ms,
            r.sweep_ms,
            r.scratch_ms / r.sweep_ms.max(1e-9),
            r.refixed_fraction * 100.0,
            stats.grow_rounds,
            stats.incremental_steps
        );
        results.push(r);
    }

    let scratch_total: f64 = results.iter().map(|r| r.scratch_ms).sum();
    let sweep_total: f64 = results.iter().map(|r| r.sweep_ms).sum();
    let overall = scratch_total / sweep_total.max(1e-9);
    println!();
    println!("overall speedup: {overall:.2}x");

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"sweep\",");
    let _ = writeln!(json, "  \"asns\": {},", net.graph.len());
    let _ = writeln!(json, "  \"seed\": {},", cli.seed);
    let _ = writeln!(json, "  \"steps\": {},", deps.len());
    let _ = writeln!(json, "  \"pairs\": {},", pairs.len());
    let _ = writeln!(json, "  \"models\": [");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"model\": \"{}\", \"scratch_ms\": {:.3}, \"sweep_ms\": {:.3}, \"speedup\": {:.3}, \"refixed_fraction\": {:.5}}}{}",
            r.model.label(),
            r.scratch_ms,
            r.sweep_ms,
            r.scratch_ms / r.sweep_ms.max(1e-9),
            r.refixed_fraction,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"overall_speedup\": {overall:.3}");
    json.push_str("}\n");
    if let Err(e) = std::fs::write("BENCH_sweep.json", &json) {
        eprintln!("cannot write BENCH_sweep.json: {e}");
        std::process::exit(1);
    }
    println!("wrote BENCH_sweep.json");
}
