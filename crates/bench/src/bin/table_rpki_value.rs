//! Library extension table: rpki_value.
use sbgp_bench::{render, Cli};

fn main() {
    let cli = Cli::parse();
    let net = cli.internet();
    cli.banner("Extension — rpki_value", &net);
    println!("{}", render::render_rpki_value(&net, &cli.config));
}
