//! §5.3.1: who should adopt first?
use sbgp_bench::{render, Cli};

fn main() {
    let cli = Cli::parse();
    let net = cli.internet();
    cli.banner("§5.3.1 — early adopter comparison", &net);
    println!("{}", render::render_early_adopters(&net, &cli.config));
}
