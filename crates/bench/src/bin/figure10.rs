//! Figure 10: per-destination ΔH, S = all Tier 2s + their stubs.
use sbgp_bench::{render, Cli};
use sbgp_sim::experiments::per_destination;

fn main() {
    let cli = Cli::parse();
    let net = cli.internet();
    cli.banner(
        "Figure 10 — per-destination ΔH, Tier-2-only deployment",
        &net,
    );
    println!(
        "{}",
        render::render_per_destination(&per_destination::figure10(&net, &cli.config))
    );
    println!("paper: without secure Tier 1s the sec1-vs-sec2 gap narrows");
}
