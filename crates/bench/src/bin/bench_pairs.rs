//! Attacker-delta benchmark: time the acceptance workload (6 destinations
//! × 40 attackers × a 20-step monotone rollout) three ways — the per-pair
//! from-scratch loop (one [`Engine::compute`] per `(m, d, S_k)`), PR 2's
//! per-pair deployment sweep (one [`SweepEngine`] pass per `(m, d)`), and
//! the destination-major two-axis composition (one normal-conditions sweep
//! per destination, one [`AttackDeltaEngine`] patch per attacker per
//! step) — cross-check that all three produce identical happy counts, and
//! emit `BENCH_pairs.json` so the speedup lands in the perf trajectory.

use std::fmt::Write as _;
use std::time::Instant;

use sbgp_bench::{sweep_rollout_steps, Cli};
use sbgp_core::{
    AttackDeltaEngine, AttackScenario, AttackStrategy, Deployment, Engine, Policy, SecurityModel,
    SweepEngine,
};
use sbgp_sim::sample;
use sbgp_topology::AsId;

const STEPS: usize = 20;
/// The acceptance shape: 6 destinations × 40 attackers (scaled down only
/// when the graph cannot supply them).
const DESTINATIONS: usize = 6;
const ATTACKERS: usize = 40;
/// Timed repetitions per side; the minimum is reported (standard
/// noise-resistant wall-clock practice — every side gets the same deal).
const REPS: usize = 3;

struct ModelResult {
    model: SecurityModel,
    scratch_ms: f64,
    pair_sweep_ms: f64,
    delta_ms: f64,
    refixed_fraction: f64,
}

fn main() {
    let cli = Cli::parse();
    let net = cli.internet();
    cli.banner("Pairs bench — attacker-delta vs per-pair loops", &net);

    let deps = sweep_rollout_steps(&net, STEPS);
    let attackers = sample::sample_non_stubs(&net, ATTACKERS, cli.seed);
    let dests: Vec<AsId> = sample::sample_all(&net, DESTINATIONS, cli.seed ^ 0xD)
        .into_iter()
        .filter(|d| !attackers.contains(d))
        .collect();
    assert!(!attackers.is_empty() && !dests.is_empty(), "empty samples");
    println!(
        "rollout: {} steps to {} secure ASes; {} destinations x {} attackers",
        deps.len(),
        deps.last().map(Deployment::secure_count).unwrap_or(0),
        dests.len(),
        attackers.len()
    );
    println!();

    let mut results = Vec::new();
    for model in SecurityModel::ALL {
        let policy = Policy::with_variant(model, cli.variant);

        // Side 1: the per-pair from-scratch loop.
        let mut scratch = std::time::Duration::MAX;
        let mut scratch_counts = 0usize;
        let mut engine = Engine::new(&net.graph);
        for _ in 0..REPS {
            let t0 = Instant::now();
            scratch_counts = 0;
            for &d in &dests {
                for &m in &attackers {
                    for dep in &deps {
                        let o = engine.compute(AttackScenario::attack(m, d), dep, policy);
                        scratch_counts += o.count_happy().0;
                    }
                }
            }
            scratch = scratch.min(t0.elapsed());
        }

        // Side 2: PR 2's per-pair deployment sweep (attacker axis unshared).
        let mut pair_sweep = std::time::Duration::MAX;
        let mut pair_sweep_counts = 0usize;
        let mut sweep = SweepEngine::new(&net.graph);
        for _ in 0..REPS {
            let t1 = Instant::now();
            pair_sweep_counts = 0;
            for &d in &dests {
                for &m in &attackers {
                    sweep.begin(AttackScenario::attack(m, d), policy);
                    for dep in &deps {
                        sweep.advance(dep);
                        pair_sweep_counts += sweep.count_happy().0;
                    }
                }
            }
            pair_sweep = pair_sweep.min(t1.elapsed());
        }

        // Side 3: both axes composed, destination-major (the runners'
        // loop): the delta engine serves each pair's first step from the
        // destination's shared normal outcome, the sweep engine adopts it
        // and carries the remaining steps.
        let mut delta_time = std::time::Duration::MAX;
        let mut delta_counts = 0usize;
        let mut pair_sweep2 = SweepEngine::new(&net.graph);
        let mut delta = AttackDeltaEngine::new(&net.graph);
        for _ in 0..REPS {
            let t2 = Instant::now();
            delta_counts = 0;
            for &d in &dests {
                delta.begin(d, &deps[0], policy);
                for &m in &attackers {
                    let outcome = delta.attack(m, AttackStrategy::FakeLink);
                    let happy = outcome.count_happy();
                    delta_counts += happy.0;
                    pair_sweep2.begin_from(
                        AttackScenario::attack(m, d),
                        policy,
                        &deps[0],
                        outcome,
                        happy,
                    );
                    for dep in &deps[1..] {
                        pair_sweep2.advance(dep);
                        delta_counts += pair_sweep2.count_happy().0;
                    }
                }
            }
            delta_time = delta_time.min(t2.elapsed());
        }

        assert_eq!(
            scratch_counts, pair_sweep_counts,
            "{model}: pair-sweep diverged from from-scratch outcomes"
        );
        assert_eq!(
            scratch_counts, delta_counts,
            "{model}: delta diverged from from-scratch outcomes"
        );
        let stats = delta.stats();
        let evaluated = stats.attacks().max(1) * net.graph.len();
        let r = ModelResult {
            model,
            scratch_ms: scratch.as_secs_f64() * 1e3,
            pair_sweep_ms: pair_sweep.as_secs_f64() * 1e3,
            delta_ms: delta_time.as_secs_f64() * 1e3,
            refixed_fraction: stats.refixed_ases as f64 / evaluated as f64,
        };
        println!(
            "{:<8} scratch {:>9.1} ms   pair-sweep {:>9.1} ms   delta {:>9.1} ms   speedup {:>6.2}x (vs sweep {:>5.2}x)   re-fixed {:>5.2}% of AS-attacks   {} fallbacks / {} attacks",
            r.model.label(),
            r.scratch_ms,
            r.pair_sweep_ms,
            r.delta_ms,
            r.scratch_ms / r.delta_ms.max(1e-9),
            r.pair_sweep_ms / r.delta_ms.max(1e-9),
            r.refixed_fraction * 100.0,
            stats.full_recomputes,
            stats.attacks()
        );
        println!(
            "         {} grow rounds over {} delta attacks",
            stats.grow_rounds, stats.delta_attacks
        );
        results.push(r);
    }

    let scratch_total: f64 = results.iter().map(|r| r.scratch_ms).sum();
    let pair_sweep_total: f64 = results.iter().map(|r| r.pair_sweep_ms).sum();
    let delta_total: f64 = results.iter().map(|r| r.delta_ms).sum();
    let overall = scratch_total / delta_total.max(1e-9);
    let overall_vs_sweep = pair_sweep_total / delta_total.max(1e-9);
    println!();
    println!(
        "overall speedup: {overall:.2}x vs from-scratch, {overall_vs_sweep:.2}x vs per-pair sweep"
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"pairs\",");
    let _ = writeln!(json, "  \"asns\": {},", net.graph.len());
    let _ = writeln!(json, "  \"seed\": {},", cli.seed);
    let _ = writeln!(json, "  \"steps\": {},", deps.len());
    let _ = writeln!(json, "  \"destinations\": {},", dests.len());
    let _ = writeln!(json, "  \"attackers\": {},", attackers.len());
    let _ = writeln!(json, "  \"models\": [");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"model\": \"{}\", \"scratch_ms\": {:.3}, \"pair_sweep_ms\": {:.3}, \"delta_ms\": {:.3}, \"speedup\": {:.3}, \"speedup_vs_pair_sweep\": {:.3}, \"refixed_fraction\": {:.5}}}{}",
            r.model.label(),
            r.scratch_ms,
            r.pair_sweep_ms,
            r.delta_ms,
            r.scratch_ms / r.delta_ms.max(1e-9),
            r.pair_sweep_ms / r.delta_ms.max(1e-9),
            r.refixed_fraction,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"overall_speedup\": {overall:.3},");
    let _ = writeln!(
        json,
        "  \"overall_speedup_vs_pair_sweep\": {overall_vs_sweep:.3}"
    );
    json.push_str("}\n");
    if let Err(e) = std::fs::write("BENCH_pairs.json", &json) {
        eprintln!("cannot write BENCH_pairs.json: {e}");
        std::process::exit(1);
    }
    println!("wrote BENCH_pairs.json");
}
