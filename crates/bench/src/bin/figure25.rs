//! Appendix K Figure 25: Figures 4/5 under the LP2 policy variant.
use sbgp_bench::{render, Cli};
use sbgp_core::{LpVariant, SecurityModel};

fn main() {
    let mut cli = Cli::parse();
    cli.variant = LpVariant::LpK(2);
    let net = cli.internet();
    cli.banner("Figure 25 — partitions by destination tier under LP2", &net);
    println!(
        "{}",
        render::render_by_destination_tier(
            &net,
            &cli.config,
            SecurityModel::Security3rd,
            cli.variant
        )
    );
    println!(
        "{}",
        render::render_by_destination_tier(
            &net,
            &cli.config,
            SecurityModel::Security2nd,
            cli.variant
        )
    );
    println!("paper: under LP2 most high-tier destinations become immune (short peer routes win)");
}
