//! Library extension table: islands.
use sbgp_bench::{render, Cli};

fn main() {
    let cli = Cli::parse();
    let net = cli.internet();
    cli.banner("Extension — islands", &net);
    println!("{}", render::render_islands(&net, &cli.config));
}
