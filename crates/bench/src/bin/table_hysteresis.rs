//! Library extension table: hysteresis.
use sbgp_bench::{render, Cli};

fn main() {
    let cli = Cli::parse();
    let net = cli.internet();
    cli.banner("Extension — hysteresis", &net);
    println!("{}", render::render_hysteresis(&net, &cli.config));
}
