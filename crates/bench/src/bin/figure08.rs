//! Figure 8: the Tier 1+2+CP rollout over content-provider destinations.
use sbgp_bench::{render, Cli};
use sbgp_sim::experiments::rollout;
use sbgp_sim::scenario;

fn main() {
    let cli = Cli::parse();
    let net = cli.internet();
    cli.banner("Figure 8 — Tier 1+2+CP rollout, CP destinations", &net);
    println!(
        "{}",
        render::render_rollout_report(&rollout::figure8(&net, &cli.config), &cli.config, net.len())
    );
    println!("paper: ≥26% / 9.4% / 4% improvements for sec 1st/2nd/3rd at the last step");
    if cli.config.estimation().is_some() {
        println!();
        println!(
            "{}",
            render::render_estimated_rollout(
                &net,
                &cli.config,
                "Tier 1+2+CP rollout",
                &scenario::tier12_cp_rollout(&net),
            )
        );
    }
}
