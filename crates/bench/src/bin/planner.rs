//! The deployment-planner what-if service binary.
//!
//! Default mode: load the snapshot once (`--file` or synthetic), then
//! serve [`sbgp_sim::serve::Planner`] queries over length-prefixed JSON
//! frames on stdin/stdout until EOF or a `{"op":"shutdown"}` frame.
//! Diagnostics go to stderr; stdout carries frames only.
//!
//! ```text
//! planner --file snapshot.as-rel --cps 15169,20940 --prewarm 32
//! planner --asns 4000 --threads 8 --cache 512
//! planner --bench --asns 4000                 # cold vs warm latency -> BENCH_planner.json
//! planner --validate BENCH_planner.json       # schema drift check
//! ```
//!
//! `--bench` measures the cache's value: the same what-if query stream is
//! answered by a cold planner (every normal-conditions base computed) and
//! a warm one (every base adopted from the cache), min-of-3 each, and a
//! solo [`sbgp_core::AttackDeltaEngine`] cross-check pins that both
//! answers are bit-identical to first principles. The committed JSON
//! carries the measured speedup (gate: warm beats cold by ≥ 5×).

use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use sbgp_bench::Cli;
use sbgp_core::{AttackStrategy, Deployment, Policy, SecurityModel};
use sbgp_sim::serve::{Planner, PlannerConfig};
use sbgp_sim::{sample, scenario, Internet};

/// Timed repetitions per side; the minimum is reported.
const REPS: usize = 3;
/// The committed acceptance gate: warm must beat cold by this factor.
const GATE: f64 = 5.0;

struct Args {
    cache: usize,
    prewarm: usize,
    bench: bool,
    out: PathBuf,
    validate: Option<PathBuf>,
    cli: Cli,
}

fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut cache = 256usize;
    let mut prewarm = 0usize;
    let mut bench = false;
    let mut out = PathBuf::from("BENCH_planner.json");
    let mut validate = None;
    let mut rest: Vec<String> = Vec::new();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--cache" => {
                cache = take("--cache")?
                    .parse()
                    .map_err(|_| "--cache wants a number".to_string())?
            }
            "--prewarm" => {
                prewarm = take("--prewarm")?
                    .parse()
                    .map_err(|_| "--prewarm wants a number".to_string())?
            }
            "--bench" => bench = true,
            "--out" => out = PathBuf::from(take("--out")?),
            "--validate" => validate = Some(PathBuf::from(take("--validate")?)),
            other => {
                // Everything else is the shared experiment CLI
                // (--asns/--seed/--file/--cps/--threads/...). Flags that
                // carry values must travel with them.
                rest.push(other.to_string());
                if matches!(
                    other,
                    "--asns"
                        | "--seed"
                        | "--attackers"
                        | "--destinations"
                        | "--per-tier"
                        | "--threads"
                        | "--file"
                        | "--cps"
                        | "--strategy"
                        | "--ci"
                        | "--pairs"
                        | "--policy"
                ) {
                    rest.push(take(other)?);
                }
            }
        }
    }
    let cli = Cli::try_parse(rest)?;
    Ok(Args {
        cache,
        prewarm,
        bench,
        out,
        validate,
        cli,
    })
}

/// Schema check for an emitted JSON (the CI drift gate).
fn validate(path: &std::path::Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    for key in [
        "\"bench\": \"planner\"",
        "\"schema\": \"planner-bench-v1\"",
        "\"asns\"",
        "\"seed\"",
        "\"queries\"",
        "\"destinations\"",
        "\"attackers\"",
        "\"cold_ms\"",
        "\"warm_ms\"",
        "\"speedup\"",
        "\"cold_misses\"",
        "\"warm_hits\"",
        "\"solo_matches\"",
        "\"gate\"",
    ] {
        if !text.contains(key) {
            return Err(format!("{}: missing {key}", path.display()));
        }
    }
    Ok(())
}

fn json_f64(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = text.find(&pat)? + pat.len();
    let rest = text[start..].trim_start();
    let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// The bench what-if stream: a large Sec-1st deployment (all non-stubs
/// secure, so patches are cheap and base computations dominate the cold
/// pass), content-provider destinations, sampled attackers. Returns the
/// deployment, the query frames, and the `(attackers, destinations)`
/// pools for the solo cross-check.
#[allow(clippy::type_complexity)]
fn bench_queries(net: &Internet) -> (Deployment, Vec<String>, Vec<u32>, Vec<u32>) {
    // Destination-heavy, attacker-light: each destination costs the cold
    // pass a full normal-conditions computation, while the warm pass pays
    // only the patches. Secure destinations + insecure stub attackers
    // under Sec 1st keep the contested regions (and thus the patches)
    // tiny, so the measurement isolates the cache's value.
    let mut dest_pool: Vec<sbgp_topology::AsId> = net.content_providers.clone();
    for v in sample::sample_non_stubs(net, 64, 11) {
        if !dest_pool.contains(&v) {
            dest_pool.push(v);
        }
    }
    let dests: Vec<u32> = dest_pool.iter().take(48).map(|v| v.0).collect();
    let named = scenario::all_non_stubs(net);
    let mut secure: Vec<u32> = named.deployment.full_set().iter().map(|v| v.0).collect();
    for d in &dests {
        if !secure.contains(d) {
            secure.push(*d);
        }
    }
    let stub_pool: Vec<u32> = sample::sample_tier(net, sbgp_topology::tier::Tier::Stub, 40, 7)
        .into_iter()
        .filter(|m| !dest_pool.contains(m))
        .map(|v| v.0)
        .collect();
    let attackers: Vec<u32> = stub_pool[..2].to_vec();
    let extras: Vec<u32> = stub_pool[2..4].to_vec();
    let ids = |v: &[u32]| {
        v.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    // Three what-if deployments — the planner's actual workload: the
    // operator probes S, then S plus one candidate stub, then S plus a
    // different one. Each variant costs the cold pass a fresh base
    // computation per destination; the warm pass adopts every one of them
    // from the cache. One attacker per query keeps the patch work (paid
    // by both passes) from diluting the measurement.
    let mut secure_b = secure.clone();
    secure_b.push(extras[0]);
    let mut secure_c = secure.clone();
    secure_c.push(extras[1]);
    let queries = vec![
        format!(
            "{{\"op\":\"query\",\"id\":1,\"secure\":[{}],\"attackers\":[{}],\
             \"destinations\":[{}],\"models\":[\"sec1\"],\"strategies\":[\"fakelink\"]}}",
            ids(&secure),
            ids(&attackers[..1]),
            ids(&dests)
        ),
        format!(
            "{{\"op\":\"query\",\"id\":2,\"secure\":[{}],\"attackers\":[{}],\
             \"destinations\":[{}],\"models\":[\"sec1\"],\"strategies\":[\"fakelink\"]}}",
            ids(&secure_b),
            ids(&attackers[1..]),
            ids(&dests)
        ),
        format!(
            "{{\"op\":\"query\",\"id\":3,\"secure\":[{}],\"attackers\":[{}],\
             \"destinations\":[{}],\"models\":[\"sec1\"],\"strategies\":[\"fakelink\"]}}",
            ids(&secure_c),
            ids(&attackers[..1]),
            ids(&dests)
        ),
    ];
    (named.deployment, queries, attackers, dests)
}

fn run_bench(args: &Args) -> Result<(), String> {
    let net = args
        .cli
        .try_internet()
        .map_err(|e| format!("cannot load snapshot: {e}"))?;
    eprintln!(
        "planner bench: {} ({} ASes), cache {}, {} reps",
        net.name,
        net.len(),
        args.cache,
        REPS
    );
    let (dep, queries, attackers, dests) = bench_queries(&net);
    let cfg = PlannerConfig {
        cache_capacity: args.cache,
        prewarm: 0,
        parallelism: args.cli.config.parallelism,
    };

    // Cold: a fresh planner per rep — every base outcome is computed.
    let mut cold_ms = f64::INFINITY;
    let mut cold_replies: Vec<String> = Vec::new();
    let mut cold_misses = 0;
    for _ in 0..REPS {
        let mut planner = Planner::new(net.clone(), cfg);
        let t = Instant::now();
        let replies: Vec<String> = queries
            .iter()
            .map(|q| planner.handle(q).expect("reply"))
            .collect();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        if ms < cold_ms {
            cold_ms = ms;
        }
        cold_misses = planner.cache_stats().misses;
        cold_replies = replies;
    }

    // Warm: one planner, stream pre-run once, then timed repeats — every
    // base outcome is adopted from the cache.
    let mut planner = Planner::new(net.clone(), cfg);
    for q in &queries {
        planner.handle(q);
    }
    let before = planner.cache_stats();
    let mut warm_ms = f64::INFINITY;
    let mut warm_replies: Vec<String> = Vec::new();
    for _ in 0..REPS {
        let t = Instant::now();
        let replies: Vec<String> = queries
            .iter()
            .map(|q| planner.handle(q).expect("reply"))
            .collect();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        if ms < warm_ms {
            warm_ms = ms;
        }
        warm_replies = replies;
    }
    let after = planner.cache_stats();
    let warm_hits = after.hits - before.hits;
    if after.misses != before.misses {
        return Err("warm pass recomputed a base outcome".into());
    }
    if cold_replies != warm_replies {
        return Err("cold and warm replies differ — determinism contract broken".into());
    }

    // Solo cross-check: one (m, d) pair from first principles must match
    // the served fraction bit-for-bit.
    let m = sbgp_topology::AsId(attackers[0]);
    let d = sbgp_topology::AsId(dests[0]);
    let solo_q = format!(
        "{{\"op\":\"query\",\"id\":9,\"secure\":[{}],\"attackers\":[{}],\
         \"destinations\":[{}],\"models\":[\"sec1\"],\"strategies\":[\"fakelink\"]}}",
        dep.full_set()
            .iter()
            .map(|v| v.0.to_string())
            .collect::<Vec<_>>()
            .join(","),
        m.0,
        d.0
    );
    let reply = planner.handle(&solo_q).expect("reply");
    let mut delta = sbgp_core::AttackDeltaEngine::new(&net.graph);
    delta.begin(d, &dep, Policy::new(SecurityModel::Security1st));
    delta.attack(m, AttackStrategy::FakeLink);
    let (lo, hi) = delta.count_happy();
    let sources = (net.len() - 2) as f64;
    let want_lo = lo as f64 / sources;
    let want_hi = hi as f64 / sources;
    let got_lo = json_f64(&reply, "lower").ok_or("no lower in reply")?;
    let got_hi = json_f64(&reply, "upper").ok_or("no upper in reply")?;
    let solo_matches = got_lo == want_lo && got_hi == want_hi;
    if !solo_matches {
        return Err(format!(
            "solo cross-check failed: served ({got_lo}, {got_hi}) vs solo ({want_lo}, {want_hi})"
        ));
    }

    let speedup = cold_ms / warm_ms;
    let json = format!(
        "{{\n  \"bench\": \"planner\",\n  \"schema\": \"planner-bench-v1\",\n  \
         \"asns\": {},\n  \"seed\": {},\n  \"graph\": \"{}\",\n  \"queries\": {},\n  \
         \"destinations\": {},\n  \"attackers\": {},\n  \"cells\": 1,\n  \
         \"cold_ms\": {:.3},\n  \"warm_ms\": {:.3},\n  \"speedup\": {:.2},\n  \
         \"cold_misses\": {},\n  \"warm_hits\": {},\n  \"solo_matches\": {},\n  \
         \"gate\": {:.1}\n}}\n",
        net.len(),
        args.cli.seed,
        net.name,
        queries.len(),
        dests.len(),
        attackers.len(),
        cold_ms,
        warm_ms,
        speedup,
        cold_misses,
        warm_hits,
        solo_matches,
        GATE
    );
    std::fs::write(&args.out, &json).map_err(|e| format!("{}: {e}", args.out.display()))?;
    validate(&args.out)?;
    eprintln!(
        "cold {cold_ms:.1} ms, warm {warm_ms:.1} ms, speedup {speedup:.2}x (gate {GATE}x) -> {}",
        args.out.display()
    );
    if speedup < GATE {
        return Err(format!("speedup {speedup:.2}x below the {GATE}x gate"));
    }
    Ok(())
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!(
                "usage: planner [--cache N] [--prewarm N] [--bench] [--out FILE] \
                 [--validate FILE] [shared flags: --asns N --seed S --file AS-REL \
                 --cps ASN,... --threads T ...]"
            );
            std::process::exit(2);
        }
    };
    if let Some(path) = &args.validate {
        match validate(path) {
            Ok(()) => {
                println!("{}: planner-bench-v1 schema OK", path.display());
                return;
            }
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(1);
            }
        }
    }
    if args.bench {
        if let Err(msg) = run_bench(&args) {
            eprintln!("{msg}");
            std::process::exit(1);
        }
        return;
    }
    let net = match args.cli.try_internet() {
        Ok(net) => net,
        Err(e) => {
            eprintln!("cannot load snapshot: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "planner: serving {} ({} ASes) — cache {}, prewarm {}, {} thread(s)",
        net.name,
        net.len(),
        args.cache,
        args.prewarm,
        args.cli.config.parallelism.0
    );
    let mut planner = Planner::new(
        net,
        PlannerConfig {
            cache_capacity: args.cache,
            prewarm: args.prewarm,
            parallelism: args.cli.config.parallelism,
        },
    );
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut reader = stdin.lock();
    let mut writer = stdout.lock();
    if let Err(e) = planner.serve(&mut reader, &mut writer) {
        eprintln!("planner: stream error: {e}");
        std::process::exit(1);
    }
    let _ = writer.flush();
    let s = planner.cache_stats();
    eprintln!(
        "planner: done — {} hits, {} misses, {} evictions",
        s.hits, s.misses, s.evictions
    );
}
