//! Figure 3: immune/protectable/doomed shares per security model.
use sbgp_bench::{render, Cli};

fn main() {
    let cli = Cli::parse();
    let net = cli.internet();
    cli.banner("Figure 3 — partition shares per security model", &net);
    println!("{}", render::render_figure3(&net, &cli.config, cli.variant));
}
