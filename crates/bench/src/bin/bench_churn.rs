//! Churn benchmark: a wax-and-wane deployment trajectory (the Tier-2
//! ladder climbed to its peak and eroded back down) evaluated from
//! scratch (one [`Engine::compute`] per step) against the retraction-
//! capable [`SweepEngine`] path — cross-checked for identical happy
//! counts and emitted as `BENCH_churn.json` for the perf trajectory and
//! the CI bench-smoke job.
//!
//! The wane half is pure retractions, so its timings isolate the engine's
//! retraction path; the acceptance gate requires those steps to be at
//! least 2× faster than the full-recompute fallback at 4000 ASes.
//!
//! ```text
//! bench_churn --asns 4000 --seed 42 --out BENCH_churn.json
//! bench_churn --validate BENCH_churn.json   # schema drift check
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use sbgp_core::{AttackScenario, Engine, Policy, SecurityModel, SweepEngine, SweepStats};
use sbgp_sim::{sample, scenario, Internet};
use sbgp_topology::AsId;

/// Timed repetitions per side; the minimum is reported.
const REPS: usize = 3;
/// Gate threshold: retraction steps vs the full-recompute fallback.
const GATE_SPEEDUP: f64 = 2.0;
/// Gate applies at this scale and above (the acceptance scenario).
const GATE_ASNS: usize = 4_000;

struct Args {
    asns: usize,
    seed: u64,
    peak: usize,
    out: PathBuf,
    validate: Option<PathBuf>,
}

fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut a = Args {
        asns: 4_000,
        seed: 42,
        peak: 10,
        out: PathBuf::from("BENCH_churn.json"),
        validate: None,
    };
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--asns" => {
                a.asns = take("--asns")?
                    .parse()
                    .map_err(|_| "--asns wants a number".to_string())?
            }
            "--seed" => {
                a.seed = take("--seed")?
                    .parse()
                    .map_err(|_| "--seed wants a number".to_string())?
            }
            "--peak" => {
                a.peak = take("--peak")?
                    .parse()
                    .map_err(|_| "--peak wants a number".to_string())?;
                if a.peak < 2 {
                    return Err("--peak wants at least 2 (one wax + one wane step)".into());
                }
            }
            "--out" => a.out = PathBuf::from(take("--out")?),
            "--validate" => a.validate = Some(PathBuf::from(take("--validate")?)),
            "--help" | "-h" => return Err("help requested".into()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(a)
}

/// Schema check for an emitted JSON (the CI drift gate).
fn validate(path: &std::path::Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    for key in [
        "\"bench\": \"churn\"",
        "\"asns\"",
        "\"seed\"",
        "\"peak\"",
        "\"steps\"",
        "\"pairs\"",
        "\"models\"",
        "\"scratch_ms\"",
        "\"sweep_ms\"",
        "\"speedup\"",
        "\"wane_scratch_ms\"",
        "\"wane_sweep_ms\"",
        "\"retraction_speedup\"",
        "\"retracting_steps\"",
        "\"fallback_steps\"",
        "\"refixed_fraction\"",
        "\"overall_speedup\"",
        "\"gate\"",
    ] {
        if !text.contains(key) {
            return Err(format!("{}: missing {key}", path.display()));
        }
    }
    Ok(())
}

struct ModelResult {
    model: SecurityModel,
    scratch_ms: f64,
    sweep_ms: f64,
    wane_scratch_ms: f64,
    wane_sweep_ms: f64,
    stats: SweepStats,
}

impl ModelResult {
    fn speedup(&self) -> f64 {
        self.scratch_ms / self.sweep_ms.max(1e-9)
    }
    fn retraction_speedup(&self) -> f64 {
        self.wane_scratch_ms / self.wane_sweep_ms.max(1e-9)
    }
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!("usage: [--asns N] [--seed S] [--peak P] [--out FILE] [--validate FILE]");
            std::process::exit(2);
        }
    };
    if let Some(path) = &args.validate {
        match validate(path) {
            Ok(()) => {
                println!("{}: churn bench schema ok", path.display());
                return;
            }
            Err(msg) => {
                eprintln!("schema drift: {msg}");
                std::process::exit(1);
            }
        }
    }

    let t0 = Instant::now();
    let net = Internet::synthetic(args.asns, args.seed);
    let traj = scenario::churn_trajectory(&net, args.peak);
    // The wane half: indices peak..(2*peak-1), every one a pure retraction.
    let wane_from = args.peak;
    let attackers = sample::sample_non_stubs(&net, 3, args.seed);
    let dests: Vec<AsId> = sample::sample_all(&net, 2, args.seed ^ 0xD)
        .into_iter()
        .filter(|d| !attackers.contains(d))
        .collect();
    let pairs: Vec<(AsId, AsId)> = sample::pairs(&attackers, &dests);
    assert!(!pairs.is_empty(), "no (m, d) pairs sampled");
    println!(
        "graph synthetic-{} seed {}: generated in {:.1} ms",
        args.asns,
        args.seed,
        t0.elapsed().as_secs_f64() * 1e3
    );
    println!(
        "trajectory: {} steps (peak {}, {} retraction steps); {} (m, d) pairs",
        traj.len(),
        args.peak,
        traj.len() - wane_from,
        pairs.len()
    );
    println!();

    let mut results = Vec::new();
    for model in SecurityModel::ALL {
        let policy = Policy::with_variant(model, sbgp_core::LpVariant::Standard);

        // Side 1: every step from scratch — what the engine's fallback
        // does, and what a sweep without a retraction path would do for
        // every wane step.
        let mut scratch = Duration::MAX;
        let mut wane_scratch = Duration::MAX;
        let mut scratch_counts = 0usize;
        let mut engine = Engine::new(&net.graph);
        for _ in 0..REPS {
            let mut wane = Duration::ZERO;
            let t = Instant::now();
            scratch_counts = 0;
            for &(m, d) in &pairs {
                for (k, dep) in traj.iter().enumerate() {
                    let t_step = Instant::now();
                    let o = engine.compute(AttackScenario::attack(m, d), dep, policy);
                    scratch_counts += o.count_happy().0;
                    if k >= wane_from {
                        wane += t_step.elapsed();
                    }
                }
            }
            scratch = scratch.min(t.elapsed());
            wane_scratch = wane_scratch.min(wane);
        }

        // Side 2: one retraction-capable sweep per pair.
        let mut swept = Duration::MAX;
        let mut wane_swept = Duration::MAX;
        let mut sweep_counts = 0usize;
        let mut sweep = SweepEngine::new(&net.graph);
        let mut stats = SweepStats::default();
        for _ in 0..REPS {
            let before = sweep.stats();
            let mut wane = Duration::ZERO;
            let t = Instant::now();
            sweep_counts = 0;
            for &(m, d) in &pairs {
                sweep.begin(AttackScenario::attack(m, d), policy);
                for (k, dep) in traj.iter().enumerate() {
                    let t_step = Instant::now();
                    sweep.advance(dep);
                    sweep_counts += sweep.count_happy().0;
                    if k >= wane_from {
                        wane += t_step.elapsed();
                    }
                }
            }
            swept = swept.min(t.elapsed());
            wane_swept = wane_swept.min(wane);
            stats = sweep.stats().delta_since(&before);
        }

        assert_eq!(
            scratch_counts, sweep_counts,
            "{model}: churn sweep diverged from from-scratch outcomes"
        );
        let r = ModelResult {
            model,
            scratch_ms: scratch.as_secs_f64() * 1e3,
            sweep_ms: swept.as_secs_f64() * 1e3,
            wane_scratch_ms: wane_scratch.as_secs_f64() * 1e3,
            wane_sweep_ms: wane_swept.as_secs_f64() * 1e3,
            stats,
        };
        println!(
            "{:<8} scratch {:>9.1} ms   sweep {:>9.1} ms   speedup {:>5.2}x   \
             retraction steps {:>5.2}x   ({} retracting / {} monotone / {} fallback steps, \
             re-fixed {:>4.1}% of AS-steps)",
            r.model.label(),
            r.scratch_ms,
            r.sweep_ms,
            r.speedup(),
            r.retraction_speedup(),
            r.stats.retracting_steps,
            r.stats.monotone_steps,
            r.stats.fallback_steps,
            100.0 * r.stats.refixed_fraction(net.len())
        );
        results.push(r);
    }

    let scratch_total: f64 = results.iter().map(|r| r.scratch_ms).sum();
    let sweep_total: f64 = results.iter().map(|r| r.sweep_ms).sum();
    let overall = scratch_total / sweep_total.max(1e-9);
    let wane_scratch_total: f64 = results.iter().map(|r| r.wane_scratch_ms).sum();
    let wane_sweep_total: f64 = results.iter().map(|r| r.wane_sweep_ms).sum();
    let retraction = wane_scratch_total / wane_sweep_total.max(1e-9);
    println!();
    println!("overall speedup: {overall:.2}x; retraction steps vs fallback: {retraction:.2}x");

    let gated = args.asns >= GATE_ASNS;
    if gated {
        assert!(
            retraction >= GATE_SPEEDUP,
            "acceptance gate: retraction steps must be ≥{GATE_SPEEDUP}x the \
             full-recompute fallback at {GATE_ASNS}+ ASes, measured {retraction:.2}x"
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"churn\",");
    let _ = writeln!(json, "  \"asns\": {},", net.graph.len());
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"peak\": {},", args.peak);
    let _ = writeln!(json, "  \"steps\": {},", traj.len());
    let _ = writeln!(json, "  \"pairs\": {},", pairs.len());
    let _ = writeln!(json, "  \"models\": [");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"model\": \"{}\", \"scratch_ms\": {:.3}, \"sweep_ms\": {:.3}, \
             \"speedup\": {:.3}, \"wane_scratch_ms\": {:.3}, \"wane_sweep_ms\": {:.3}, \
             \"retraction_speedup\": {:.3}, \"retracting_steps\": {}, \
             \"monotone_steps\": {}, \"fallback_steps\": {}, \"refixed_fraction\": {:.5}}}{}",
            r.model.label(),
            r.scratch_ms,
            r.sweep_ms,
            r.speedup(),
            r.wane_scratch_ms,
            r.wane_sweep_ms,
            r.retraction_speedup(),
            r.stats.retracting_steps,
            r.stats.monotone_steps,
            r.stats.fallback_steps,
            r.stats.refixed_fraction(net.len()),
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"overall_speedup\": {overall:.3},");
    let _ = writeln!(
        json,
        "  \"gate\": {{\"asns\": {}, \"threshold\": {GATE_SPEEDUP}, \"enforced\": {gated}, \
         \"retraction_speedup\": {retraction:.3}}}",
        net.graph.len()
    );
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("cannot write {}: {e}", args.out.display());
        std::process::exit(1);
    }
    println!("wrote {}", args.out.display());
    if let Err(msg) = validate(&args.out) {
        eprintln!("self-check failed: {msg}");
        std::process::exit(1);
    }
}
