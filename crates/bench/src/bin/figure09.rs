//! Figure 9: per-destination ΔH, S = Tier 1s + Tier 2s + their stubs.
use sbgp_bench::{render, Cli};
use sbgp_sim::experiments::per_destination;

fn main() {
    let cli = Cli::parse();
    let net = cli.internet();
    cli.banner("Figure 9 — per-destination ΔH at the last T1+T2 step", &net);
    println!(
        "{}",
        render::render_per_destination(&per_destination::figure9(&net, &cli.config))
    );
}
