//! Regenerate the paper's entire evaluation in one run.
//!
//! Prints every figure/table in order on stdout; with `--asns`/sampling
//! flags the fidelity–runtime trade-off is yours (the paper's scale is
//! `--asns 4000`, plus the `--ixp` and LP2 variants where noted).

use std::time::Instant;

use sbgp_bench::{render, Cli};
use sbgp_core::{LpVariant, SecurityModel};
use sbgp_sim::experiments::{per_destination, rollout};

fn main() {
    let cli = Cli::parse();
    let net = cli.internet();
    cli.banner("Full evaluation — all figures and tables", &net);
    let t0 = Instant::now();

    let section = |name: &str, body: String| {
        println!("\n######## {name} ########\n");
        println!("{body}");
        println!("[{name} done at {:.1?}]", t0.elapsed());
    };

    section("§4.2 baseline", render::render_baseline(&net, &cli.config));
    // When the committed release-grid campaign JSON is present, quote its
    // CI-annotated estimates verbatim instead of re-deriving them here
    // (the full-universe numbers cost hours; the quotes are free).
    if let Ok(text) = std::fs::read_to_string("BENCH_campaign.json") {
        if let Some(body) = render::render_campaign_quotes(&text) {
            section("Campaign estimates (quoted from BENCH_campaign.json)", body);
        }
    }
    section(
        "Figure 3",
        render::render_figure3(&net, &cli.config, cli.variant),
    );
    section(
        "Figure 4",
        render::render_by_destination_tier(
            &net,
            &cli.config,
            SecurityModel::Security3rd,
            cli.variant,
        ),
    );
    section(
        "Figure 5",
        render::render_by_destination_tier(
            &net,
            &cli.config,
            SecurityModel::Security2nd,
            cli.variant,
        ),
    );
    section(
        "Figure 6",
        render::render_by_attacker_tier(&net, &cli.config, SecurityModel::Security3rd, cli.variant),
    );
    section(
        "§4.7 source tiers",
        render::render_by_source_tier(&net, &cli.config),
    );
    section(
        "Figure 7",
        render::render_rollout_report(&rollout::figure7(&net, &cli.config), &cli.config, net.len()),
    );
    section(
        "Figure 8",
        render::render_rollout_report(&rollout::figure8(&net, &cli.config), &cli.config, net.len()),
    );
    section(
        "Figure 9",
        render::render_per_destination(&per_destination::figure9(&net, &cli.config)),
    );
    section(
        "Figure 10",
        render::render_per_destination(&per_destination::figure10(&net, &cli.config)),
    );
    section(
        "Figure 11",
        render::render_rollout_report(
            &rollout::figure11(&net, &cli.config),
            &cli.config,
            net.len(),
        ),
    );
    section(
        "Figure 12",
        render::render_per_destination(&per_destination::figure12(&net, &cli.config)),
    );
    section(
        "§5.2.4 non-stubs",
        render::render_non_stubs(&net, &cli.config),
    );
    section(
        "Figure 13",
        render::render_figure13(&net, &cli.config, SecurityModel::Security3rd),
    );
    section(
        "§5.3.1 early adopters",
        render::render_early_adopters(&net, &cli.config),
    );
    section("Figure 16", render::render_figure16(&net, &cli.config));
    section("Table 3", render::render_phenomena(&net, &cli.config));
    section("Figure 1 (wedgie)", render::render_wedgie());
    section(
        "Non-monotone dynamics (churn)",
        render::render_churn(&net, &cli.config),
    );
    section(
        "Extension: RPKI value",
        render::render_rpki_value(&net, &cli.config),
    );
    section(
        "Extension: strategy ladder",
        render::render_strategy_ladder(&net, &cli.config),
    );
    section(
        "Extension: weighted metric",
        render::render_weighted(&net, &cli.config),
    );
    section(
        "Figure 24 (LP2)",
        render::render_figure3(&net, &cli.config, LpVariant::LpK(2)),
    );
    section(
        "Figure 25 (LP2)",
        render::render_by_destination_tier(
            &net,
            &cli.config,
            SecurityModel::Security2nd,
            LpVariant::LpK(2),
        ),
    );

    println!("\ntotal: {:.1?}", t0.elapsed());
}
