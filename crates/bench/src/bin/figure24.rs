//! Appendix K Figure 24: Figure 3 under the LP2 policy variant.
use sbgp_bench::{render, Cli};
use sbgp_core::LpVariant;

fn main() {
    let mut cli = Cli::parse();
    cli.variant = LpVariant::LpK(2);
    let net = cli.internet();
    cli.banner("Figure 24 — partition shares under LP2 (Appendix K)", &net);
    println!("{}", render::render_figure3(&net, &cli.config, cli.variant));
    println!("paper (LP2): smaller maximum gains than standard LP; more immune ASes");
}
