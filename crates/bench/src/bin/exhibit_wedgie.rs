//! §2.3 / Figure 1: the BGP wedgie from inconsistent SecP priorities.
use sbgp_bench::render;

fn main() {
    println!("=== Figure 1 — S*BGP wedgie (protocol-level simulation) ===\n");
    println!("{}", render::render_wedgie());
}
