//! Figure 16: root-cause decomposition of the metric change.
use sbgp_bench::{render, Cli};

fn main() {
    let cli = Cli::parse();
    let net = cli.internet();
    cli.banner("Figure 16 — root causes of metric changes", &net);
    println!("{}", render::render_figure16(&net, &cli.config));
}
