//! Figure 11: the Tier-2-only rollout.
use sbgp_bench::{render, Cli};
use sbgp_sim::experiments::rollout;
use sbgp_sim::scenario;

fn main() {
    let cli = Cli::parse();
    let net = cli.internet();
    cli.banner("Figure 11 — Tier 2 rollout", &net);
    println!(
        "{}",
        render::render_rollout_report(
            &rollout::figure11(&net, &cli.config),
            &cli.config,
            net.len()
        )
    );
    println!("paper: grows more slowly than Figure 7; smaller sec-1st gains");
    if cli.config.estimation().is_some() {
        println!();
        println!(
            "{}",
            render::render_estimated_rollout(
                &net,
                &cli.config,
                "Tier 2 rollout",
                &scenario::tier2_rollout(&net),
            )
        );
    }
}
