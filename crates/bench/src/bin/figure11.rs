//! Figure 11: the Tier-2-only rollout.
use sbgp_bench::{render, Cli};
use sbgp_sim::experiments::rollout;

fn main() {
    let cli = Cli::parse();
    let net = cli.internet();
    cli.banner("Figure 11 — Tier 2 rollout", &net);
    println!(
        "{}",
        render::render_rollout(&rollout::figure11(&net, &cli.config))
    );
    println!("paper: grows more slowly than Figure 7; smaller sec-1st gains");
}
