//! Non-monotone deployment dynamics: the wax-and-wane RPKI churn
//! trajectory (with the sweep engines' serving stats) and the Figure 2
//! protocol downgrade table.
use sbgp_bench::{render, Cli};

fn main() {
    let cli = Cli::parse();
    let net = cli.internet();
    cli.banner(
        "Non-monotone dynamics — RPKI churn and the protocol downgrade",
        &net,
    );
    println!("{}", render::render_churn(&net, &cli.config));
}
