//! Figure 12: per-destination ΔH with every non-stub secure (§5.2.4).
use sbgp_bench::{render, Cli};
use sbgp_sim::experiments::per_destination;

fn main() {
    let cli = Cli::parse();
    let net = cli.internet();
    cli.banner("Figure 12 — per-destination ΔH, all non-stubs secure", &net);
    println!(
        "{}",
        render::render_per_destination(&per_destination::figure12(&net, &cli.config))
    );
    println!("{}", render::render_non_stubs(&net, &cli.config));
}
