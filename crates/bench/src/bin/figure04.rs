//! Figure 4: partitions by destination tier, security 3rd.
use sbgp_bench::{render, Cli};
use sbgp_core::SecurityModel;

fn main() {
    let cli = Cli::parse();
    let net = cli.internet();
    cli.banner("Figure 4 — partitions by destination tier (Sec 3rd)", &net);
    println!(
        "{}",
        render::render_by_destination_tier(
            &net,
            &cli.config,
            SecurityModel::Security3rd,
            cli.variant
        )
    );
    println!("paper: ~80% of sources are doomed when a Tier 1 destination is attacked");
}
