//! The large-graph estimation campaign runner.
//!
//! Runs a (figure × asns × seed × model) grid of stratified-estimation
//! cells — synthetic graphs up to 40k ASes and beyond — with **per-cell
//! JSON checkpointing and resume**: every finished cell is written
//! atomically to the checkpoint directory, so a killed campaign restarted
//! with the same flags recomputes only the missing cells. The assembled
//! `BENCH_campaign.json` records wall-clock, pairs/sec and the CI-width
//! trajectory of every cell, and feeds the CI bench-smoke job.
//!
//! The model axis is **fused**: all models of one `(figure, asns, seed)`
//! group run through a single multi-cell estimator pass
//! (`estimate_metric_cells` & friends), so one snapshot traversal serves
//! every model's lane — and at zero validators the models collapse onto
//! one computation outright. Fused ≡ per-model bit for bit (pinned in
//! `sbgp_sim::stats`), and a cell's estimates are independent of which
//! lanes share its pass (the adaptive round schedule depends only on the
//! universe and seed), so checkpoints stay per-model cells with the
//! `campaign-cell-v1` schema and resume granularity is unchanged: a
//! restarted group fuses only its *missing* model cells.
//!
//! The graph axis is synthetic by default; `--file <as-rel>` swaps it for
//! a **parsed CAIDA snapshot next to its synthetic twin** — each seed runs
//! every figure × model cell on the parsed graph *and* on a synthetic
//! graph of the same size, so real-snapshot numbers always sit beside a
//! like-for-like baseline. Parsed cells carry the snapshot name in their
//! checkpoint id and an extra `"graph"` field in their JSON; synthetic
//! cells keep their existing ids and bytes, so old checkpoints and the
//! committed campaign JSON stay valid. `--cps <asn,asn,...>` names the
//! content providers by real ASN (resolved through the snapshot's
//! labels).
//!
//! `--workers N` swaps the in-process thread pool for a **supervised
//! fleet of N worker processes** (this binary re-invoked with
//! `--worker`), speaking length-prefixed JSON over stdin/stdout: worker
//! crashes, hangs and garbage replies walk a retry ladder (kill →
//! exponential-backoff respawn → reassign → after `--strikes` failures
//! mark the cell *degraded* and keep going), and the merge order is
//! group-exact, so an N-worker run is **bit-identical** to the
//! single-process run. Every checkpoint carries an FNV-1a content
//! checksum; resume quarantines torn/corrupted/zero-byte cells to
//! `<name>.json.quarantined` and recomputes them, and `--validate`
//! audits the checksums of an assembled campaign JSON. `--fault-plan`
//! arms deterministic fault injection (`sbgp_sim::faultpoint`; needs the
//! `fault-injection` build feature) to exercise all of the above.
//!
//! ```text
//! campaign --figures baseline,rollout --asns 4000,40000 --seeds 42 \
//!          --models sec1,sec2,sec3 --pairs 2000 --ci 0.01
//! campaign --file cyclops.as-rel --cps 15169,8075 --seeds 42
//! campaign --smoke                 # the tiny CI grid
//! campaign --smoke --workers 4     # same bytes, four worker processes
//! campaign --validate BENCH_campaign.json   # schema drift check
//! ```

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use sbgp_bench::sweep_rollout_steps;
use sbgp_core::{AttackStrategy, Deployment, Policy, SecurityModel};
use sbgp_sim::faultpoint;
use sbgp_sim::stats::{self, AdaptiveRun, EstimatorConfig, PairUniverse};
use sbgp_sim::supervise::{self, Supervisor, SupervisorConfig, WorkerMsg};
use sbgp_sim::{Internet, Parallelism};
use sbgp_topology::AsId;

/// Cell-file schema marker; bump on any layout change.
const CELL_SCHEMA: &str = "campaign-cell-v1";
/// Top-level schema marker.
const CAMPAIGN_SCHEMA: &str = "campaign-v1";

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Figure {
    /// `H_{V,V}(∅)` — the §4.2 baseline.
    Baseline,
    /// `H_{M',V}(S_k)` along a monotone Tier-2 rollout.
    Rollout,
    /// The per-pair optimal forged-path ladder at `S = ∅`.
    Ladder,
}

impl Figure {
    fn parse(s: &str) -> Result<Figure, String> {
        match s {
            "baseline" => Ok(Figure::Baseline),
            "rollout" => Ok(Figure::Rollout),
            "ladder" => Ok(Figure::Ladder),
            other => Err(format!(
                "unknown figure {other:?} (baseline|rollout|ladder)"
            )),
        }
    }

    fn name(self) -> &'static str {
        match self {
            Figure::Baseline => "baseline",
            Figure::Rollout => "rollout",
            Figure::Ladder => "ladder",
        }
    }
}

fn model_token(m: SecurityModel) -> &'static str {
    match m {
        SecurityModel::Security1st => "sec1",
        SecurityModel::Security2nd => "sec2",
        SecurityModel::Security3rd => "sec3",
    }
}

fn parse_model(s: &str) -> Result<SecurityModel, String> {
    match s {
        "sec1" => Ok(SecurityModel::Security1st),
        "sec2" => Ok(SecurityModel::Security2nd),
        "sec3" => Ok(SecurityModel::Security3rd),
        other => Err(format!("unknown model {other:?} (sec1|sec2|sec3)")),
    }
}

#[derive(Clone, Debug)]
struct Args {
    figures: Vec<Figure>,
    asns: Vec<usize>,
    seeds: Vec<u64>,
    models: Vec<SecurityModel>,
    ci: Option<f64>,
    pairs: u64,
    rollout_steps: usize,
    threads: Parallelism,
    checkpoint_dir: PathBuf,
    out: PathBuf,
    validate: Option<PathBuf>,
    file: Option<PathBuf>,
    cps: Vec<u32>,
    /// Number of supervised worker processes; 0 = in-process thread pool.
    workers: usize,
    /// Run as a supervised worker child (internal; set by the coordinator).
    worker: bool,
    /// Worker incarnation id (internal; distinguishes respawns in fault
    /// plans and diagnostics).
    worker_id: u64,
    fault_plan: Option<PathBuf>,
    watchdog_ms: u64,
    strikes: u32,
    backoff_ms: u64,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            figures: vec![Figure::Baseline, Figure::Rollout],
            asns: vec![4_000],
            seeds: vec![42],
            models: SecurityModel::ALL.to_vec(),
            ci: None,
            pairs: 2_000,
            rollout_steps: 5,
            threads: Parallelism::auto(),
            checkpoint_dir: PathBuf::from("campaign_ckpt"),
            out: PathBuf::from("BENCH_campaign.json"),
            validate: None,
            file: None,
            cps: Vec::new(),
            workers: 0,
            worker: false,
            worker_id: 0,
            fault_plan: None,
            watchdog_ms: 120_000,
            strikes: 3,
            backoff_ms: 50,
        }
    }
}

fn parse_list<T, E: std::fmt::Display>(
    s: &str,
    f: impl Fn(&str) -> Result<T, E>,
) -> Result<Vec<T>, String> {
    s.split(',')
        .filter(|t| !t.is_empty())
        .map(|t| f(t.trim()).map_err(|e| e.to_string()))
        .collect()
}

fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut a = Args::default();
    let mut asns_explicit = false;
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--figures" => a.figures = parse_list(&take("--figures")?, Figure::parse)?,
            "--asns" => {
                a.asns = parse_list(&take("--asns")?, |t| t.parse::<usize>())?;
                asns_explicit = true;
            }
            "--seeds" => a.seeds = parse_list(&take("--seeds")?, |t| t.parse::<u64>())?,
            "--models" => a.models = parse_list(&take("--models")?, parse_model)?,
            "--ci" => {
                let target: f64 = take("--ci")?
                    .parse()
                    .map_err(|_| "--ci wants a number".to_string())?;
                // Same contract as the shared figure CLI: a fractional
                // half-width, not percentage points.
                if !(target > 0.0 && target < 1.0) {
                    return Err(format!("--ci wants a half-width in (0, 1), got {target}"));
                }
                a.ci = Some(target);
            }
            "--pairs" => {
                a.pairs = take("--pairs")?
                    .parse()
                    .map_err(|_| "--pairs wants a number".to_string())?
            }
            "--rollout-steps" => {
                a.rollout_steps = take("--rollout-steps")?
                    .parse()
                    .map_err(|_| "--rollout-steps wants a number".to_string())?
            }
            "--threads" => {
                a.threads = Parallelism(
                    take("--threads")?
                        .parse()
                        .map_err(|_| "--threads wants a number".to_string())?,
                )
            }
            "--checkpoint-dir" => a.checkpoint_dir = PathBuf::from(take("--checkpoint-dir")?),
            "--out" => a.out = PathBuf::from(take("--out")?),
            "--validate" => a.validate = Some(PathBuf::from(take("--validate")?)),
            "--file" => a.file = Some(PathBuf::from(take("--file")?)),
            "--cps" => a.cps = parse_list(&take("--cps")?, |t| t.parse::<u32>())?,
            "--workers" => {
                a.workers = take("--workers")?
                    .parse()
                    .map_err(|_| "--workers wants a number".to_string())?
            }
            "--worker" => a.worker = true,
            "--worker-id" => {
                a.worker_id = take("--worker-id")?
                    .parse()
                    .map_err(|_| "--worker-id wants a number".to_string())?
            }
            "--fault-plan" => a.fault_plan = Some(PathBuf::from(take("--fault-plan")?)),
            "--watchdog-ms" => {
                a.watchdog_ms = take("--watchdog-ms")?
                    .parse()
                    .map_err(|_| "--watchdog-ms wants a number".to_string())?
            }
            "--strikes" => {
                a.strikes = take("--strikes")?
                    .parse()
                    .map_err(|_| "--strikes wants a number".to_string())?;
                if a.strikes == 0 {
                    return Err("--strikes wants at least 1".into());
                }
            }
            "--backoff-ms" => {
                a.backoff_ms = take("--backoff-ms")?
                    .parse()
                    .map_err(|_| "--backoff-ms wants a number".to_string())?
            }
            "--smoke" => {
                // The CI grid: small enough for a PR gate, still covering
                // two figures, every model, checkpoint + resume and the
                // full JSON schema. Writes to scratch paths so running it
                // from the repo root never clobbers the committed
                // release-grid BENCH_campaign.json (later --out /
                // --checkpoint-dir flags still override).
                a.figures = vec![Figure::Baseline, Figure::Rollout];
                a.asns = vec![400];
                a.seeds = vec![11];
                a.models = SecurityModel::ALL.to_vec();
                a.pairs = 300;
                a.rollout_steps = 3;
                a.out = PathBuf::from("BENCH_campaign_smoke.json");
                a.checkpoint_dir = PathBuf::from("campaign_smoke_ckpt");
            }
            "--help" | "-h" => return Err("help requested".into()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if a.figures.is_empty() || a.asns.is_empty() || a.seeds.is_empty() || a.models.is_empty() {
        return Err("empty grid axis".into());
    }
    if !a.cps.is_empty() && a.file.is_none() {
        return Err("--cps only makes sense with --file (real ASNs need a snapshot)".into());
    }
    if asns_explicit && a.file.is_some() {
        return Err("--asns conflicts with --file (the snapshot fixes the graph size)".into());
    }
    Ok(a)
}

/// Minimal field extraction from our own cell JSON (numbers only; the
/// files are machine-written, never hand-edited).
fn json_u64(text: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let start = text.find(&pat)? + pat.len();
    let rest = &text[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].split('.').next()?.parse().ok()
}

struct CellOutcome {
    id: String,
    json: String,
    wall_ms: f64,
    pairs: u64,
    resumed: bool,
    /// Some destination groups were lost to worker strikes; the cell's
    /// estimates cover only the surviving sample.
    degraded: bool,
}

/// Statistics tracked per pair for a figure — `"steps"` in the cell JSON,
/// and part of the resume-compatibility check.
fn expected_steps(figure: Figure, args: &Args) -> usize {
    match figure {
        Figure::Baseline => 1,
        Figure::Rollout => args.rollout_steps + 1, // ∅ first
        Figure::Ladder => AttackStrategy::LADDER.len() + 1, // rungs + optimal
    }
}

/// Render one cell's JSON object (two-space indent under `cells`).
///
/// `graph` is `Some(label)` for parsed-snapshot cells only; synthetic
/// cells omit the field entirely so their bytes (and the committed
/// release-grid JSON) are unchanged.
#[allow(clippy::too_many_arguments)]
fn cell_json(
    figure: Figure,
    asns: usize,
    seed: u64,
    model: SecurityModel,
    graph: Option<&str>,
    args: &Args,
    run: &AdaptiveRun,
    step_count: usize,
    wall_ms: f64,
) -> String {
    let pairs = run.sampled.len() as u64;
    let pairs_per_sec = pairs as f64 / (wall_ms / 1e3).max(1e-9);
    let mut j = String::new();
    let _ = writeln!(j, "    {{");
    let _ = writeln!(j, "      \"schema\": \"{CELL_SCHEMA}\",");
    let _ = writeln!(j, "      \"figure\": \"{}\",", figure.name());
    let _ = writeln!(j, "      \"asns\": {asns},");
    if let Some(g) = graph {
        let _ = writeln!(j, "      \"graph\": \"{g}\",");
    }
    let _ = writeln!(j, "      \"seed\": {seed},");
    let _ = writeln!(j, "      \"model\": \"{}\",", model_token(model));
    let _ = writeln!(j, "      \"steps\": {step_count},");
    let _ = writeln!(j, "      \"budget\": {},", args.pairs);
    match args.ci {
        Some(t) => {
            let _ = writeln!(j, "      \"ci_target\": {t},");
        }
        None => {
            let _ = writeln!(j, "      \"ci_target\": null,");
        }
    }
    let _ = writeln!(j, "      \"population\": {},", run.population);
    let _ = writeln!(j, "      \"strata\": {},", run.strata);
    let _ = writeln!(j, "      \"pairs\": {pairs},");
    if run.lost_groups > 0 || run.lost_pairs > 0 {
        // Supervised-run damage report: these groups exhausted the retry
        // ladder. The estimates below cover only the surviving sample;
        // resume never trusts a degraded cell, so a rerun repairs it.
        let _ = writeln!(j, "      \"degraded\": true,");
        let _ = writeln!(j, "      \"lost_groups\": {},", run.lost_groups);
        let _ = writeln!(j, "      \"lost_pairs\": {},", run.lost_pairs);
    }
    let _ = writeln!(j, "      \"wall_ms\": {wall_ms:.3},");
    let _ = writeln!(j, "      \"pairs_per_sec\": {pairs_per_sec:.3},");
    let _ = writeln!(j, "      \"max_halfwidth\": {:.6},", run.max_halfwidth());
    let _ = writeln!(j, "      \"ci_trajectory\": [");
    for (i, r) in run.rounds.iter().enumerate() {
        let _ = writeln!(
            j,
            "        {{\"pairs\": {}, \"max_halfwidth\": {:.6}}}{}",
            r.pairs,
            r.max_halfwidth,
            if i + 1 < run.rounds.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "      ],");
    let _ = writeln!(j, "      \"estimates\": [");
    for (k, e) in run.estimates.iter().enumerate() {
        let _ = writeln!(
            j,
            "        {{\"step\": {k}, \"lower\": {:.6}, \"upper\": {:.6}, \
             \"hw_lower\": {:.6}, \"hw_upper\": {:.6}}}{}",
            e.value.lower,
            e.value.upper,
            e.halfwidth.lower,
            e.halfwidth.upper,
            if k + 1 < run.estimates.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "      ]");
    let _ = write!(j, "    }}");
    // Self-embedded content checksum (the `"checksum":` line elides
    // itself from the hash), so resume and --validate can detect any
    // corruption of the surrounding bytes.
    let sum = supervise::checksum_hex(&j);
    let anchor = format!("      \"schema\": \"{CELL_SCHEMA}\",\n");
    let pos = j.find(&anchor).expect("schema line") + anchor.len();
    j.insert_str(pos, &format!("      \"checksum\": \"{sum}\",\n"));
    j
}

/// The checkpoint file name of one model cell. Parsed-snapshot cells
/// prefix the size with the snapshot label, so they never collide with
/// their synthetic twin's checkpoints (whose ids keep the historical
/// format).
fn cell_id(
    figure: Figure,
    asns: usize,
    seed: u64,
    model: SecurityModel,
    graph: Option<&str>,
) -> String {
    match graph {
        Some(g) => format!(
            "{}_{}-{}_{}_{}",
            figure.name(),
            g,
            asns,
            seed,
            model_token(model)
        ),
        None => format!("{}_{}_{}_{}", figure.name(), asns, seed, model_token(model)),
    }
}

/// Move a damaged checkpoint aside so it is never trusted again (and a
/// human can still autopsy it), then warn.
fn quarantine(path: &Path, cell_id: &str, why: &str) {
    let qpath = path.with_extension("json.quarantined");
    match std::fs::rename(path, &qpath) {
        Ok(()) => eprintln!(
            "warning: cell {cell_id}: checkpoint {why}; quarantined to {}, recomputing",
            qpath.display()
        ),
        Err(e) => eprintln!(
            "warning: cell {cell_id}: checkpoint {why}; quarantine rename failed ({e}), recomputing"
        ),
    }
}

/// Attempt to reuse one model cell from its checkpoint file.
///
/// Integrity comes first: a zero-byte file (a crashed `write(2)` that got
/// as far as `create`), a torn tail, or an embedded-checksum mismatch is
/// **quarantined** to `<name>.json.quarantined` and recomputed — resume
/// never trusts checkpoint bytes it cannot verify. A checkpoint that
/// predates content checksums, or one marked `"degraded"` by a supervised
/// run, is recomputed in place (the file itself is healthy).
fn try_resume(
    figure: Figure,
    net: &Internet,
    seed: u64,
    model: SecurityModel,
    graph: Option<&str>,
    args: &Args,
) -> Option<CellOutcome> {
    let cell_id = cell_id(figure, net.graph.len(), seed, model, graph);
    let path = args.checkpoint_dir.join(format!("{cell_id}.json"));
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
        Err(e) => {
            eprintln!("warning: cell {cell_id}: cannot read checkpoint: {e}; recomputing");
            return None;
        }
    };
    let complete = text.contains(&format!("\"schema\": \"{CELL_SCHEMA}\"")) && text.ends_with('}');
    let damage = if text.is_empty() {
        Some("is zero bytes (torn write)")
    } else if !complete {
        Some("is torn or not a campaign cell")
    } else {
        match supervise::verify_checksum(&text) {
            supervise::ChecksumStatus::Valid | supervise::ChecksumStatus::Missing => None,
            supervise::ChecksumStatus::Mismatch => Some("fails its content checksum"),
        }
    };
    if let Some(why) = damage {
        quarantine(&path, &cell_id, why);
        return None;
    }
    if matches!(
        supervise::verify_checksum(&text),
        supervise::ChecksumStatus::Missing
    ) {
        // Healthy pre-hardening checkpoint: recompute (don't quarantine)
        // so every trusted cell carries a checksum going forward.
        println!("cell {cell_id}: checkpoint predates content checksums, recomputing");
        return None;
    }
    if text.contains("\"degraded\": true") {
        println!("cell {cell_id}: checkpoint is degraded (lost groups), recomputing to repair");
        return None;
    }
    // A reusable checkpoint was also produced under the *same estimation
    // parameters* — we write these lines ourselves, so exact string
    // matches are a full check. A rerun with a different --pairs / --ci
    // / --rollout-steps recomputes the cell instead of silently reusing
    // stale estimates under a new grid header.
    let ci_line = match args.ci {
        Some(t) => format!("\"ci_target\": {t},"),
        None => "\"ci_target\": null,".to_string(),
    };
    let same_params = text.contains(&format!("\"budget\": {},", args.pairs))
        && text.contains(&ci_line)
        && text.contains(&format!("\"steps\": {},", expected_steps(figure, args)));
    if !same_params {
        println!("cell {cell_id}: checkpoint has different estimation parameters, recomputing");
        return None;
    }
    let wall_ms = json_u64(&text, "wall_ms").unwrap_or(0) as f64;
    let pairs = json_u64(&text, "pairs").unwrap_or(0);
    println!("cell {cell_id}: resumed from checkpoint");
    Some(CellOutcome {
        id: cell_id,
        json: text,
        wall_ms,
        pairs,
        resumed: true,
        degraded: false,
    })
}

/// Write one cell checkpoint atomically (tmp + rename), warning and
/// continuing on I/O failure — a lost checkpoint only costs a recompute
/// on the next resume, never the campaign. The `ckpt.write` /
/// `ckpt.rename` fault points tear, corrupt or drop the write under a
/// `--fault-plan` to prove exactly that.
fn write_checkpoint(dir: &Path, cell_id: &str, json: &str) {
    let path = dir.join(format!("{cell_id}.json"));
    let tmp = dir.join(format!("{cell_id}.json.tmp"));
    let mut content = json.to_string();
    match faultpoint::check("ckpt.write", cell_id) {
        Some(faultpoint::Fault::Torn) => {
            content.truncate(content.len() / 2);
            eprintln!("faultpoint: tearing checkpoint {cell_id}");
        }
        Some(faultpoint::Fault::Corrupt) => {
            // Flip one digit mid-file: still valid UTF-8 and JSON, but
            // the content checksum no longer matches.
            if let Some(pos) = content.rfind(|c: char| c.is_ascii_digit()) {
                let b = content.as_bytes()[pos];
                let flipped = (b'0' + (b - b'0' + 1) % 10) as char;
                content.replace_range(pos..pos + 1, &flipped.to_string());
            }
            eprintln!("faultpoint: corrupting checkpoint {cell_id}");
        }
        Some(faultpoint::Fault::Garbage) => {
            content = "garbage\n".to_string();
            eprintln!("faultpoint: scribbling over checkpoint {cell_id}");
        }
        Some(faultpoint::Fault::Err) => {
            eprintln!(
                "faultpoint: simulated ENOSPC writing checkpoint {cell_id}; \
                 continuing without checkpoint"
            );
            return;
        }
        None => {}
    }
    if let Err(e) = std::fs::write(&tmp, &content) {
        eprintln!(
            "warning: cannot write checkpoint {}: {e}; continuing without checkpoint",
            tmp.display()
        );
        return;
    }
    if faultpoint::check("ckpt.rename", cell_id).is_some() {
        // A crash between write and rename: the tmp file survives, the
        // final name never appears.
        eprintln!("faultpoint: simulated rename failure for checkpoint {cell_id}");
        return;
    }
    if let Err(e) = std::fs::rename(&tmp, &path) {
        eprintln!(
            "warning: cannot finalize checkpoint {}: {e}; continuing without checkpoint",
            path.display()
        );
    }
}

/// Run every model cell of one `(figure, graph, seed)` group — one fused
/// multi-cell estimator pass serving every model whose checkpoint is
/// missing or stale, while present cells resume untouched (each cell's
/// estimates don't depend on which lanes shared its pass, so partial
/// groups recompute only their gaps). Results are in `args.models`
/// order, one [`CellOutcome`] per model; wall-clock is attributed evenly
/// across the group's computed cells, so per-cell `pairs_per_sec`
/// reflects the fused amortization.
///
/// With `sup` set, the group's destination groups are sharded across the
/// supervised worker fleet instead of the in-process pool; merge order is
/// group-exact, so the estimates are bit-identical either way.
fn run_figure_group(
    figure: Figure,
    net: &Internet,
    seed: u64,
    graph: Option<&str>,
    args: &Args,
    sup: Option<&mut Supervisor>,
) -> Vec<CellOutcome> {
    let resumed: Vec<Option<CellOutcome>> = args
        .models
        .iter()
        .map(|&m| try_resume(figure, net, seed, m, graph, args))
        .collect();
    let missing: Vec<SecurityModel> = args
        .models
        .iter()
        .zip(&resumed)
        .filter(|(_, r)| r.is_none())
        .map(|(&m, _)| m)
        .collect();
    if missing.is_empty() {
        return resumed.into_iter().flatten().collect();
    }

    let est = {
        let mut e = EstimatorConfig::with_budget(args.pairs, seed);
        if let Some(t) = args.ci {
            e = e.with_ci(t);
        }
        e
    };
    // One policy cell per missing model; the fused estimators dedup them
    // through `AttackStrategy::canonical()` and the zero-validator model
    // collapse, and reproduce each model's solo estimator bit for bit.
    let policies: Vec<Policy> = missing.iter().map(|&m| Policy::new(m)).collect();
    let all: Vec<AsId> = net.graph.ases().collect();
    let non_stubs = net.tiers.non_stubs();
    let t0 = Instant::now();
    let runs: Vec<AdaptiveRun> = if let Some(sup) = sup {
        // Distributed path: the workers rebuild this exact graph and
        // evaluator from the group spec, stream raw Welford triples
        // back, and the coordinator merges them in group order — the
        // same merge sequence as the in-process pool, so the estimates
        // are bit-identical to `--workers 0`.
        let spec = group_spec_json(figure, net, seed, &missing, graph, args);
        let universe = match figure {
            Figure::Baseline => PairUniverse::new(net, &all, &all),
            Figure::Rollout | Figure::Ladder => PairUniverse::new(net, &non_stubs, &all),
        };
        let cell_stats = vec![expected_steps(figure, args); missing.len()];
        supervise::estimate_adaptive_supervised(&universe, &est, &cell_stats, &spec, sup)
    } else {
        match figure {
            Figure::Baseline => stats::estimate_metric_cells(
                net,
                &all,
                &all,
                &Deployment::empty(net.len()),
                &policies,
                AttackStrategy::FakeLink,
                &est,
                args.threads,
            ),
            Figure::Rollout => {
                let mut deps = vec![Deployment::empty(net.len())];
                deps.extend(sweep_rollout_steps(net, args.rollout_steps));
                debug_assert_eq!(deps.len(), expected_steps(figure, args));
                stats::estimate_metric_sweep_cells(
                    net,
                    &non_stubs,
                    &all,
                    &deps,
                    &policies,
                    AttackStrategy::FakeLink,
                    &est,
                    args.threads,
                )
            }
            Figure::Ladder => stats::estimate_strategy_ladder_cells(
                net,
                &non_stubs,
                &all,
                &Deployment::empty(net.len()),
                &policies,
                &AttackStrategy::LADDER,
                &est,
                args.threads,
            )
            .into_iter()
            .map(|l| {
                debug_assert_eq!(l.rungs.len() + 1, expected_steps(figure, args));
                l.run
            })
            .collect(),
        }
    };
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let share_ms = wall_ms / missing.len().max(1) as f64;
    let computed: Vec<CellOutcome> = missing
        .iter()
        .zip(&runs)
        .map(|(&model, run)| {
            let cell_id = cell_id(figure, net.graph.len(), seed, model, graph);
            let json = cell_json(
                figure,
                net.graph.len(),
                seed,
                model,
                graph,
                args,
                run,
                expected_steps(figure, args),
                share_ms,
            );
            // Atomic checkpoint: a kill mid-write leaves only the tmp
            // file behind.
            write_checkpoint(&args.checkpoint_dir, &cell_id, &json);
            let degraded = run.lost_groups > 0 || run.lost_pairs > 0;
            println!(
                "cell {cell_id}: {} pairs in {:.1} ms fused share ({:.0} pairs/s), max CI ±{:.3}pp{}",
                run.sampled.len(),
                share_ms,
                run.sampled.len() as f64 / (share_ms / 1e3).max(1e-9),
                100.0 * run.max_halfwidth(),
                if degraded {
                    format!(
                        " [DEGRADED: {} group(s), {} pair(s) lost]",
                        run.lost_groups, run.lost_pairs
                    )
                } else {
                    String::new()
                }
            );
            CellOutcome {
                id: cell_id,
                json,
                wall_ms: share_ms,
                pairs: run.sampled.len() as u64,
                resumed: false,
                degraded,
            }
        })
        .collect();
    // Stitch the freshly computed cells back into `args.models` order.
    let mut computed = computed.into_iter();
    resumed
        .into_iter()
        .map(|r| r.unwrap_or_else(|| computed.next().expect("one run per missing model")))
        .collect()
}

/// Schema check for an assembled campaign JSON (the CI drift gate).
fn validate(path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    for key in [
        &format!("\"schema\": \"{CAMPAIGN_SCHEMA}\"") as &str,
        &format!("\"schema\": \"{CELL_SCHEMA}\""),
        "\"grid\"",
        "\"cells\"",
        "\"totals\"",
        "\"figure\"",
        "\"asns\"",
        "\"seed\"",
        "\"model\"",
        "\"population\"",
        "\"strata\"",
        "\"pairs\"",
        "\"wall_ms\"",
        "\"pairs_per_sec\"",
        "\"max_halfwidth\"",
        "\"ci_trajectory\"",
        "\"estimates\"",
        "\"hw_lower\"",
        "\"hw_upper\"",
    ] {
        if !text.contains(key) {
            return Err(format!("{}: missing {key}", path.display()));
        }
    }
    // Audit the embedded content checksum of every cell block that has
    // one (pre-hardening campaign files carry none — still accepted).
    // Cell blocks sit at exactly four spaces of indent, so the scan
    // can't confuse them with the one-line trajectory/estimate objects.
    let mut cell: Vec<&str> = Vec::new();
    let mut in_cell = false;
    for line in text.lines() {
        if line == "    {" {
            in_cell = true;
            cell.clear();
        }
        if in_cell {
            cell.push(line);
            if line == "    }" || line == "    }," {
                in_cell = false;
                let mut block = cell.join("\n");
                if block.ends_with(',') {
                    block.pop(); // restore the exact checkpointed bytes
                }
                if supervise::verify_checksum(&block) == supervise::ChecksumStatus::Mismatch {
                    let id = block
                        .lines()
                        .find_map(|l| l.trim().strip_prefix("\"figure\": "))
                        .unwrap_or("?")
                        .trim_matches(|c| c == '"' || c == ',');
                    return Err(format!(
                        "{}: cell checksum mismatch (figure {id})",
                        path.display()
                    ));
                }
            }
        }
    }
    Ok(())
}

fn list_json<T: std::fmt::Display>(xs: &[T], quoted: bool) -> String {
    let mut s = String::from("[");
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        if quoted {
            let _ = write!(s, "\"{x}\"");
        } else {
            let _ = write!(s, "{x}");
        }
    }
    s.push(']');
    s
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!(
                "usage: [--figures baseline,rollout,ladder] [--asns N,...] [--seeds S,...] \
                 [--models sec1,sec2,sec3] [--ci H] [--pairs B] [--rollout-steps K] \
                 [--threads T] [--checkpoint-dir DIR] [--out FILE] [--smoke] \
                 [--file AS-REL [--cps ASN,...]] [--validate FILE] \
                 [--workers N [--watchdog-ms MS] [--strikes K] [--backoff-ms MS]] \
                 [--fault-plan FILE]"
            );
            std::process::exit(2);
        }
    };
    if args.worker {
        worker_main(&args);
    }
    faultpoint::set_role("coord");
    if let Some(plan) = &args.fault_plan {
        match faultpoint::load_plan(plan) {
            Ok(n) => println!("fault plan: {n} fault(s) armed from {}", plan.display()),
            Err(e) => {
                eprintln!("cannot load fault plan {}: {e}", plan.display());
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = &args.validate {
        match validate(path) {
            Ok(()) => {
                println!("{}: schema {CAMPAIGN_SCHEMA} ok", path.display());
                return;
            }
            Err(msg) => {
                eprintln!("schema drift: {msg}");
                std::process::exit(1);
            }
        }
    }

    if let Err(e) = std::fs::create_dir_all(&args.checkpoint_dir) {
        eprintln!(
            "cannot create checkpoint dir {}: {e}",
            args.checkpoint_dir.display()
        );
        std::process::exit(1);
    }
    println!(
        "campaign: {} figure(s) × {} × {} seed(s) × {} model(s), \
         budget {} pairs{}, checkpoints in {}{}",
        args.figures.len(),
        match &args.file {
            Some(p) => format!("snapshot {} + synthetic twin", p.display()),
            None => format!("{} size(s)", args.asns.len()),
        },
        args.seeds.len(),
        args.models.len(),
        args.pairs,
        args.ci
            .map(|t| format!(", CI target ±{:.2}pp", 100.0 * t))
            .unwrap_or_default(),
        args.checkpoint_dir.display(),
        if args.workers > 0 {
            format!(", {} supervised worker(s)", args.workers)
        } else {
            String::new()
        }
    );
    let mut sup: Option<Supervisor> = if args.workers > 0 {
        let exe = match std::env::current_exe() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("cannot locate own executable for worker spawn: {e}");
                std::process::exit(1);
            }
        };
        let mut argv = vec![exe.display().to_string(), "--worker".to_string()];
        if let Some(plan) = &args.fault_plan {
            argv.push("--fault-plan".to_string());
            argv.push(plan.display().to_string());
        }
        Some(Supervisor::new(SupervisorConfig {
            workers: args.workers,
            argv,
            watchdog: Duration::from_millis(args.watchdog_ms),
            strikes: args.strikes,
            backoff: Duration::from_millis(args.backoff_ms),
        }))
    } else {
        None
    };

    let mut cells: Vec<String> = Vec::new();
    let mut degraded_ids: Vec<String> = Vec::new();
    let (mut total_ms, mut total_pairs) = (0f64, 0u64);
    let (mut resumed, mut computed) = (0usize, 0usize);
    {
        // One figure × model sweep over a graph; appends its cells in
        // figure-major, model-minor order.
        let mut sweep = |net: &Internet, seed: u64, graph: Option<&str>| {
            for &figure in &args.figures {
                // All models of the figure in one fused pass (or all
                // resumed).
                for out in run_figure_group(figure, net, seed, graph, &args, sup.as_mut()) {
                    total_ms += out.wall_ms;
                    total_pairs += out.pairs;
                    if out.resumed {
                        resumed += 1;
                    } else {
                        computed += 1;
                    }
                    if out.degraded {
                        degraded_ids.push(out.id);
                    }
                    cells.push(out.json);
                }
            }
        };
        if let Some(path) = &args.file {
            // The parsed-snapshot axis: load once, then per seed run the
            // snapshot's cells followed by a synthetic twin of the same
            // size so the real graph always has a like-for-like baseline.
            let t0 = Instant::now();
            let parsed = match Internet::from_file(path, &args.cps) {
                Ok(net) => net,
                Err(e) => {
                    eprintln!("cannot load snapshot {}: {e}", path.display());
                    std::process::exit(1);
                }
            };
            // Checkpoint ids are file names: keep the label to safe chars.
            let label: String = parsed
                .name
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
                .collect();
            println!(
                "graph {} ({} ASes, {} CPs): parsed in {:.1} ms",
                parsed.name,
                parsed.len(),
                parsed.content_providers.len(),
                t0.elapsed().as_secs_f64() * 1e3
            );
            for &seed in &args.seeds {
                sweep(&parsed, seed, Some(&label));
                let t0 = Instant::now();
                let twin = Internet::synthetic(parsed.len(), seed);
                println!(
                    "graph synthetic-{} seed {seed} (twin): generated in {:.1} ms",
                    parsed.len(),
                    t0.elapsed().as_secs_f64() * 1e3
                );
                sweep(&twin, seed, None);
            }
        } else {
            for &asns in &args.asns {
                for &seed in &args.seeds {
                    // One graph per (asns, seed), shared by every figure ×
                    // model cell of the two inner loops.
                    let t0 = Instant::now();
                    let net = Internet::synthetic(asns, seed);
                    println!(
                        "graph synthetic-{asns} seed {seed}: generated in {:.1} ms",
                        t0.elapsed().as_secs_f64() * 1e3
                    );
                    sweep(&net, seed, None);
                }
            }
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"{CAMPAIGN_SCHEMA}\",");
    let _ = writeln!(json, "  \"grid\": {{");
    let figures: Vec<&str> = args.figures.iter().map(|f| f.name()).collect();
    let models: Vec<&str> = args.models.iter().map(|&m| model_token(m)).collect();
    let _ = writeln!(json, "    \"figures\": {},", list_json(&figures, true));
    if let Some(path) = &args.file {
        // Only parsed-snapshot runs carry these keys; the synthetic grid
        // (and the committed release JSON) is byte-for-byte unchanged.
        let _ = writeln!(json, "    \"snapshot\": \"{}\",", path.display());
        let _ = writeln!(json, "    \"cps\": {},", list_json(&args.cps, false));
    }
    let _ = writeln!(json, "    \"asns\": {},", list_json(&args.asns, false));
    let _ = writeln!(json, "    \"seeds\": {},", list_json(&args.seeds, false));
    let _ = writeln!(json, "    \"models\": {},", list_json(&models, true));
    match args.ci {
        Some(t) => {
            let _ = writeln!(json, "    \"ci\": {t},");
        }
        None => {
            let _ = writeln!(json, "    \"ci\": null,");
        }
    }
    let _ = writeln!(json, "    \"pairs\": {},", args.pairs);
    let _ = writeln!(json, "    \"rollout_steps\": {}", args.rollout_steps);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(json, "{c}{}", if i + 1 < cells.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ],");
    // Cells whose supervised run exhausted the retry ladder; the grid
    // still validates, and a rerun repairs them from their (untrusted)
    // degraded checkpoints.
    let _ = writeln!(json, "  \"degraded\": {},", list_json(&degraded_ids, true));
    let _ = writeln!(json, "  \"totals\": {{");
    let _ = writeln!(json, "    \"cells\": {},", cells.len());
    let _ = writeln!(json, "    \"computed_this_run\": {computed},");
    let _ = writeln!(json, "    \"resumed\": {resumed},");
    let _ = writeln!(json, "    \"degraded\": {},", degraded_ids.len());
    let _ = writeln!(json, "    \"pairs\": {total_pairs},");
    let _ = writeln!(json, "    \"wall_ms\": {total_ms:.3}");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("cannot write {}: {e}", args.out.display());
        std::process::exit(1);
    }
    println!(
        "wrote {} ({} cells: {computed} computed, {resumed} resumed, {} degraded; \
         {total_pairs} pairs, {:.1} s)",
        args.out.display(),
        cells.len(),
        degraded_ids.len(),
        total_ms / 1e3
    );
    if let Err(msg) = validate(&args.out) {
        eprintln!("self-check failed: {msg}");
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------------
// Supervised worker mode
// ---------------------------------------------------------------------------

/// The group identity the coordinator ships in its `init` frame: enough
/// for a worker to rebuild the exact graph, policies and deployments of
/// one `(figure, graph, seed)` fused pass. Single-line JSON; comparing
/// the strings *is* comparing the groups (the supervisor re-inits its
/// fleet only when the payload changes).
fn group_spec_json(
    figure: Figure,
    net: &Internet,
    seed: u64,
    models: &[SecurityModel],
    graph: Option<&str>,
    args: &Args,
) -> String {
    let mut s = format!(
        "{{\"figure\":\"{}\",\"asns\":{},\"seed\":{seed},\"models\":[",
        figure.name(),
        net.len()
    );
    for (i, &m) in models.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\"", model_token(m));
    }
    let _ = write!(s, "],\"steps\":{}", args.rollout_steps);
    if graph.is_some() {
        if let Some(path) = &args.file {
            let _ = write!(s, ",\"snapshot\":\"{}\"", path.display());
            let _ = write!(s, ",\"cps\":[");
            for (i, cp) in args.cps.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{cp}");
            }
            s.push(']');
        }
    }
    s.push('}');
    s
}

/// `"key":"value"` extraction from a compact (no-space) group spec.
fn spec_str<'t>(text: &'t str, key: &str) -> Option<&'t str> {
    let pat = format!("\"{key}\":\"");
    let start = text.find(&pat)? + pat.len();
    let end = text[start..].find('"')? + start;
    Some(&text[start..end])
}

/// `"key":123` extraction from a compact group spec.
fn spec_u64(text: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = text.find(&pat)? + pat.len();
    let rest = &text[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// `"key":[...]` — the raw bracket contents of a compact group spec.
fn spec_list<'t>(text: &'t str, key: &str) -> Option<&'t str> {
    let pat = format!("\"{key}\":[");
    let start = text.find(&pat)? + pat.len();
    let end = text[start..].find(']')? + start;
    Some(&text[start..end])
}

struct GroupSpec {
    figure: Figure,
    asns: usize,
    seed: u64,
    models: Vec<SecurityModel>,
    steps: usize,
    snapshot: Option<PathBuf>,
    cps: Vec<u32>,
}

fn parse_group_spec(text: &str) -> Result<GroupSpec, String> {
    let figure = Figure::parse(spec_str(text, "figure").ok_or("spec: no figure")?)?;
    let asns = spec_u64(text, "asns").ok_or("spec: no asns")? as usize;
    let seed = spec_u64(text, "seed").ok_or("spec: no seed")?;
    let models = spec_list(text, "models")
        .ok_or("spec: no models")?
        .split(',')
        .filter(|t| !t.is_empty())
        .map(|t| parse_model(t.trim_matches('"')))
        .collect::<Result<Vec<_>, _>>()?;
    let steps = spec_u64(text, "steps").ok_or("spec: no steps")? as usize;
    let snapshot = spec_str(text, "snapshot").map(PathBuf::from);
    let cps = match spec_list(text, "cps") {
        Some(list) => list
            .split(',')
            .filter(|t| !t.is_empty())
            .map(|t| t.parse::<u32>().map_err(|e| format!("spec: bad cp: {e}")))
            .collect::<Result<Vec<_>, _>>()?,
        None => Vec::new(),
    };
    Ok(GroupSpec {
        figure,
        asns,
        seed,
        models,
        steps,
        snapshot,
        cps,
    })
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    panic
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "panicked".to_string())
}

/// Serve evaluation tasks for one group until the coordinator re-inits
/// (returns the new payload), shuts us down, or disappears (returns
/// `None`). Stdout carries only protocol frames — diagnostics go to
/// stderr, which the coordinator leaves attached to its own.
///
/// A panic inside the fused kernels (real, or injected through the
/// `worker.eval` fault point) is caught, converted into an `error`
/// reply, and the scratch engines are rebuilt — one poisoned cell
/// evaluation never takes the worker down with it.
fn serve_tasks<E: stats::CellEval>(
    eval: &E,
    nstrata: usize,
    stdin: &mut impl Read,
    stdout: &mut impl Write,
) -> Option<String> {
    let cell_stats = eval.cell_stats();
    if supervise::write_frame(stdout, &supervise::encode_ready(&cell_stats, nstrata)).is_err() {
        return None;
    }
    let mut w = eval.make_worker();
    loop {
        let frame = match supervise::read_frame(stdin) {
            Ok(Some(f)) => f,
            _ => return None,
        };
        match supervise::parse_worker_msg(&frame) {
            Ok(WorkerMsg::Init(p)) => return Some(p),
            Ok(WorkerMsg::Shutdown) => return None,
            Ok(WorkerMsg::Task {
                id,
                dest,
                attackers,
            }) => {
                let key = format!("task{id}");
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if let Some(f) = faultpoint::check("worker.eval", &key) {
                        return Err(format!("injected {f:?} fault at worker.eval"));
                    }
                    Ok(supervise::eval_task_data(
                        eval, &mut w, nstrata, dest, &attackers,
                    ))
                }));
                let reply = match outcome {
                    Ok(Ok(data)) => supervise::encode_result(id, &data),
                    Ok(Err(msg)) => supervise::encode_error(id, &msg),
                    Err(panic) => {
                        // The scratch engines may be mid-update; rebuild.
                        w = eval.make_worker();
                        supervise::encode_error(id, &panic_message(panic))
                    }
                };
                let reply = match faultpoint::check("worker.reply", &key) {
                    // Wrong-schema reply: right type, missing data — the
                    // coordinator must strike it, not merge it.
                    Some(_) => format!("{{\"type\":\"result\",\"id\":{id}}}"),
                    None => reply,
                };
                if supervise::write_frame(stdout, &reply).is_err() {
                    return None;
                }
            }
            Err(e) => {
                // An unparseable coordinator frame (e.g. the injected
                // `coord.frame` garbage): we can't know which task it
                // carried, so stay silent and let the coordinator's
                // watchdog reassign it.
                eprintln!("worker: ignoring bad coordinator frame: {e}");
            }
        }
    }
}

/// The `--worker` child process: rebuild each group the coordinator
/// announces and serve its cell evaluations over stdin/stdout. Never
/// returns; exits 0 on shutdown/EOF, nonzero on a broken spec or graph.
fn worker_main(args: &Args) -> ! {
    faultpoint::set_role(&format!("worker{}", args.worker_id));
    if let Some(plan) = &args.fault_plan {
        if let Err(e) = faultpoint::load_plan(plan) {
            eprintln!(
                "worker {}: cannot load fault plan {}: {e}",
                args.worker_id,
                plan.display()
            );
            std::process::exit(2);
        }
    }
    let mut stdin = std::io::stdin().lock();
    let mut stdout = std::io::stdout().lock();
    let mut next_init: Option<String> = None;
    loop {
        let payload = match next_init.take() {
            Some(p) => p,
            None => match supervise::read_frame(&mut stdin) {
                Ok(Some(f)) => match supervise::parse_worker_msg(&f) {
                    Ok(WorkerMsg::Init(p)) => p,
                    Ok(WorkerMsg::Shutdown) => std::process::exit(0),
                    Ok(WorkerMsg::Task { .. }) => {
                        eprintln!("worker {}: task before init, ignoring", args.worker_id);
                        continue;
                    }
                    Err(e) => {
                        eprintln!("worker {}: ignoring bad frame: {e}", args.worker_id);
                        continue;
                    }
                },
                _ => std::process::exit(0), // EOF: the coordinator is gone
            },
        };
        let spec = match parse_group_spec(&payload) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("worker {}: bad group spec: {e}", args.worker_id);
                std::process::exit(2);
            }
        };
        let net = match &spec.snapshot {
            Some(path) => match Internet::from_file(path, &spec.cps) {
                Ok(net) => net,
                Err(e) => {
                    eprintln!(
                        "worker {}: cannot load snapshot {}: {e}",
                        args.worker_id,
                        path.display()
                    );
                    std::process::exit(1);
                }
            },
            None => Internet::synthetic(spec.asns, spec.seed),
        };
        let policies: Vec<Policy> = spec.models.iter().map(|&m| Policy::new(m)).collect();
        let all: Vec<AsId> = net.graph.ases().collect();
        let non_stubs = net.tiers.non_stubs();
        // Same pools, deployments and evaluators as the in-process path
        // of `run_figure_group` — that is what makes the streamed
        // accumulators merge to bit-identical estimates.
        next_init = match spec.figure {
            Figure::Baseline => {
                let universe = PairUniverse::new(&net, &all, &all);
                let deps = vec![Deployment::empty(net.len())];
                let eval =
                    stats::SweepCellsEval::new(&net, &deps, &policies, AttackStrategy::FakeLink);
                serve_tasks(&eval, universe.strata().len(), &mut stdin, &mut stdout)
            }
            Figure::Rollout => {
                let universe = PairUniverse::new(&net, &non_stubs, &all);
                let mut deps = vec![Deployment::empty(net.len())];
                deps.extend(sweep_rollout_steps(&net, spec.steps));
                let eval =
                    stats::SweepCellsEval::new(&net, &deps, &policies, AttackStrategy::FakeLink);
                serve_tasks(&eval, universe.strata().len(), &mut stdin, &mut stdout)
            }
            Figure::Ladder => {
                let universe = PairUniverse::new(&net, &non_stubs, &all);
                let dep = Deployment::empty(net.len());
                let eval =
                    stats::LadderCellsEval::new(&net, &dep, &policies, &AttackStrategy::LADDER);
                serve_tasks(&eval, universe.strata().len(), &mut stdin, &mut stdout)
            }
        };
        if next_init.is_none() {
            std::process::exit(0);
        }
    }
}
