//! Rendering of every figure/table as aligned text.
//!
//! Each `render_*` function runs the corresponding `sbgp-sim` experiment
//! and returns the printable report, so individual binaries and `run_all`
//! share one implementation.

use sbgp_core::{LpVariant, Policy, SecurityModel};
use sbgp_sim::experiments::{
    baseline, churn, estimation, extensions, partitions, per_destination, rollout, root_cause,
    strategic, ExperimentConfig,
};
use sbgp_sim::report::{
    delta_pair, pct, pct_bounds, pct_estimate, stacked_bar, sweep_stats_line, Table,
};
use sbgp_sim::scenario::NamedDeployment;
use sbgp_sim::stats::AdaptiveRun;
use sbgp_sim::Internet;

/// One-line summary of an adaptive run (sample size, rounds, final width).
fn run_summary(run: &AdaptiveRun) -> String {
    format!(
        "{} of {} pairs ({} strata, {} round(s)), max CI half-width ±{:.3}pp",
        run.sampled.len(),
        run.population,
        run.strata,
        run.rounds.len(),
        100.0 * run.max_halfwidth()
    )
}

/// §4.2's baseline table.
pub fn render_baseline(net: &Internet, cfg: &ExperimentConfig) -> String {
    let r = baseline::baseline_metric(net, cfg);
    let mut out = String::new();
    out.push_str("H_{V,V}(∅): security from origin authentication alone\n\n");
    let mut t = Table::new(["quantity", "value"]);
    t.row(["pairs evaluated", &r.pairs.to_string()]);
    t.row([
        "H lower bound".to_string(),
        format!("{} ± {:.1}pp", pct(r.metric.lower), 100.0 * r.stderr.lower),
    ]);
    t.row([
        "H upper bound".to_string(),
        format!("{} ± {:.1}pp", pct(r.metric.upper), 100.0 * r.stderr.upper),
    ]);
    out.push_str(&t.render());
    out.push_str("\npaper: ≥ 60% (UCLA graph), ≥ 62% (IXP-augmented graph)\n");
    if let Some(est) = cfg.estimation() {
        let run = estimation::estimated_baseline(net, cfg, &est);
        out.push_str("\nstratified estimate over the full m ≠ d universe (95% CI)\n\n");
        let mut t = Table::new(["quantity", "value"]);
        t.row(["H_{V,V}(∅)".to_string(), pct_estimate(&run.estimates[0])]);
        t.row(["sample".to_string(), run_summary(&run)]);
        out.push_str(&t.render());
    }
    out
}

/// Figure 3 (or Appendix K Figure 24 with `LpVariant::LpK(2)`).
pub fn render_figure3(net: &Internet, cfg: &ExperimentConfig, variant: LpVariant) -> String {
    let f = partitions::figure3(net, cfg, variant);
    let mut out = String::new();
    out.push_str("Average immune/protectable/doomed source fractions, all pairs\n\n");
    let mut t = Table::new([
        "model",
        "immune",
        "protectable",
        "doomed",
        "H(S) ≤",
        "bar █=immune ▒=protectable ·=doomed",
    ]);
    for (model, s) in &f.models {
        t.row([
            model.label().to_string(),
            pct(s.immune),
            pct(s.protectable),
            pct(s.doomed),
            pct(s.upper_bound()),
            stacked_bar(s.immune, s.protectable, s.doomed, 32),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nbaseline H(∅) = {} over {} pairs (the figure's heavy line)\n",
        pct_bounds(f.baseline),
        f.pairs
    ));
    out.push_str("paper: upper bounds ≈ 100% (1st), 89% (2nd), 75% (3rd); baseline ≥ 60%\n");
    out
}

/// Figures 4/5/6 and the §4.7 source-tier table share this layout.
pub fn render_tier_rows(title: &str, rows: &[partitions::TierRow], with_baseline: bool) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push_str("\n\n");
    let mut t = Table::new(["tier", "immune", "protectable", "doomed", "H(∅)", "bar"]);
    for r in rows {
        t.row([
            r.tier.label().to_string(),
            pct(r.share.immune),
            pct(r.share.protectable),
            pct(r.share.doomed),
            if with_baseline {
                pct_bounds(r.baseline)
            } else {
                "-".to_string()
            },
            stacked_bar(r.share.immune, r.share.protectable, r.share.doomed, 32),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Figure 4 (sec 3rd) / Figure 5 (sec 2nd) / Appendix K Figure 25.
pub fn render_by_destination_tier(
    net: &Internet,
    cfg: &ExperimentConfig,
    model: SecurityModel,
    variant: LpVariant,
) -> String {
    let rows = partitions::by_destination_tier(net, cfg, Policy::with_variant(model, variant));
    render_tier_rows(
        &format!(
            "Partitions by destination tier; {} / {variant}",
            model.label()
        ),
        &rows,
        true,
    )
}

/// Figure 6: partitions by attacker tier.
pub fn render_by_attacker_tier(
    net: &Internet,
    cfg: &ExperimentConfig,
    model: SecurityModel,
    variant: LpVariant,
) -> String {
    let rows = partitions::by_attacker_tier(net, cfg, Policy::with_variant(model, variant));
    render_tier_rows(
        &format!("Partitions by attacker tier; {} / {variant}", model.label()),
        &rows,
        true,
    )
}

/// §4.7: partitions by source tier.
pub fn render_by_source_tier(net: &Internet, cfg: &ExperimentConfig) -> String {
    let rows = partitions::by_source_tier(net, cfg, Policy::new(SecurityModel::Security3rd));
    render_tier_rows(
        "Partitions by source tier; Sec 3rd (paper: roughly uniform ≈60/15/25)",
        &rows,
        false,
    )
}

/// Figures 7(a)+(b), 8, 11, and the early-adopter table.
pub fn render_rollout(r: &rollout::RolloutResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} — ΔH = H(S) − H(∅) over {}\n\n",
        r.name, r.destinations
    ));
    let mut t = Table::new([
        "step",
        "|S|",
        "ΔH sec1",
        "ΔH sec2",
        "ΔH sec3",
        "simplex sec1",
        "simplex sec3",
        "d∈S sec1",
        "d∈S sec2",
        "d∈S sec3",
    ]);
    for p in &r.points {
        t.row([
            p.label.clone(),
            p.secure_count.to_string(),
            delta_pair(p.delta[0]),
            delta_pair(p.delta[1]),
            delta_pair(p.delta[2]),
            delta_pair(p.delta_simplex[0]),
            delta_pair(p.delta_simplex[2]),
            delta_pair(p.delta_secure_dest[0]),
            delta_pair(p.delta_secure_dest[1]),
            delta_pair(p.delta_secure_dest[2]),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\n(Δlo/Δhi = movement of the lower/upper tie-break bound; they are\n independent curves, not an interval)\n");
    out
}

/// [`render_rollout`] plus, under `--sweep-stats`, the serving-stats block
/// — the form the figure binaries and `run_all` print.
pub fn render_rollout_report(
    r: &rollout::RolloutResult,
    cfg: &ExperimentConfig,
    universe: usize,
) -> String {
    let mut out = render_rollout(r);
    if cfg.sweep_stats {
        out.push_str(&render_rollout_stats(r, universe));
    }
    out
}

/// The `--sweep-stats` companion to [`render_rollout`]: how this rollout's
/// sweep engines served their steps, per model. Appended only on request
/// so the flag-less golden outputs never move.
pub fn render_rollout_stats(r: &rollout::RolloutResult, universe: usize) -> String {
    let mut out = String::new();
    out.push_str("\nsweep-engine serving stats (--sweep-stats):\n");
    for (model, s) in SecurityModel::ALL.into_iter().zip(&r.stats) {
        out.push_str(&format!(
            "  {}: {}\n",
            model.label(),
            sweep_stats_line(s, universe)
        ));
    }
    out
}

/// Figures 9/10/12: the sorted per-destination improvement curves, printed
/// as deciles plus the paper's summary statistics.
pub fn render_per_destination(r: &per_destination::PerDestinationResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Per-destination ΔH sequences; S = {} ({} secure destinations sampled)\n\n",
        r.label, r.destinations
    ));
    let mut t = Table::new([
        "model", "p0", "p25", "p50", "p75", "p90", "p100", "avg H(S)", "<4% gain",
    ]);
    for s in &r.series {
        t.row([
            s.model.label().to_string(),
            pct(s.percentile_lower(0.0)),
            pct(s.percentile_lower(0.25)),
            pct(s.percentile_lower(0.5)),
            pct(s.percentile_lower(0.75)),
            pct(s.percentile_lower(0.9)),
            pct(s.percentile_lower(1.0)),
            pct_bounds(s.average_metric),
            pct(s.fraction_below(0.04)),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\npaper (Fig 9): sec 1st averages 96.8–97.9% absolute H over secure destinations;\n\
         most destinations see <4% gain under sec 2nd and 3rd\n",
    );
    out
}

/// Figure 13: the fate of secure routes to the 17 content providers.
pub fn render_figure13(net: &Internet, cfg: &ExperimentConfig, model: SecurityModel) -> String {
    let bars = root_cause::figure13(net, cfg, model);
    let mut out = String::new();
    out.push_str(&format!(
        "Secure routes to each CP destination during attack ({}; S = T1s + CPs + stubs)\n\n",
        model.label()
    ));
    let mut t = Table::new([
        "CP",
        "secure (normal)",
        "downgraded",
        "kept, already happy",
        "kept, protecting",
    ]);
    for b in &bars {
        t.row([
            format!("AS{}", net.graph.asn_label(b.cp)),
            pct(b.secure_normal),
            pct(b.downgraded),
            pct(b.kept_already_happy),
            pct(b.kept_protecting),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\npaper: most secure routes are lost to downgrades; almost all surviving ones\n\
         belong to sources that were already immune\n",
    );
    out
}

/// Figure 16: root-cause decomposition of the metric change.
pub fn render_figure16(net: &Internet, cfg: &ExperimentConfig) -> String {
    let rcs = root_cause::figure16(net, cfg);
    let mut out = String::new();
    out.push_str("Root causes at the last Tier 1+2 rollout step (fractions of sources)\n\n");
    let mut t = Table::new([
        "model",
        "secure (normal)",
        "downgraded",
        "wasted on happy",
        "protected",
        "collateral+",
        "collateral-",
        "ΔH (lower)",
    ]);
    for r in &rcs {
        t.row([
            r.model.label().to_string(),
            pct(r.secure_normal()),
            pct(r.downgraded()),
            pct(r.wasted()),
            pct(r.protected()),
            pct(r.collateral_benefit()),
            pct(r.collateral_damage()),
            pct(r.analysis.metric_change_lower()),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nidentity per model: ΔH = protected + collateral+ − collateral−\n\
         paper: downgrades dominate under sec 2nd/3rd; sec 1st converts secure routes\n\
         into protection and suffers only rare collateral damage\n",
    );
    out
}

/// Table 3: which phenomena occur in which model (validated empirically).
pub fn render_phenomena(net: &Internet, cfg: &ExperimentConfig) -> String {
    let rcs = root_cause::figure16(net, cfg);
    let mut out = String::new();
    out.push_str("Phenomena by security model (Table 3), measured at the last T1+T2 step\n\n");
    let mut t = Table::new(["phenomenon", "Sec 1st", "Sec 2nd", "Sec 3rd"]);
    let mark = |present: bool| if present { "✓" } else { "—" }.to_string();
    t.row([
        "protocol downgrade attacks".to_string(),
        // Theorem 3.1: only via attacker-on-route in sec 1st.
        mark(rcs[0].analysis.downgraded > rcs[0].analysis.downgraded_via_attacker),
        mark(rcs[1].analysis.downgraded > 0),
        mark(rcs[2].analysis.downgraded > 0),
    ]);
    t.row([
        "collateral benefits".to_string(),
        mark(rcs[0].analysis.collateral_benefit > 0),
        mark(rcs[1].analysis.collateral_benefit > 0),
        mark(rcs[2].analysis.collateral_benefit > 0),
    ]);
    t.row([
        "collateral damages".to_string(),
        mark(rcs[0].analysis.collateral_damage > 0),
        mark(rcs[1].analysis.collateral_damage > 0),
        mark(rcs[2].analysis.collateral_damage > 0),
    ]);
    out.push_str(&t.render());
    out.push_str(
        "\npaper's Table 3: downgrades in {2nd,3rd}; benefits in all; damages in {1st,2nd}\n",
    );
    out
}

/// The §2.3 / Figure 1 wedgie exhibit, driven by the protocol simulator.
pub fn render_wedgie() -> String {
    use sbgp_proto::wedgie;
    let mut out = String::new();
    out.push_str("BGP wedgie (Figure 1): mixed SecP priorities + link flap\n\n");
    for model in [SecurityModel::Security2nd, SecurityModel::Security3rd] {
        let (intended, after) = wedgie::run_wedgie_experiment(model);
        out.push_str(&format!(
            "A ranks security 1st, others rank {}: wedged = {}\n",
            model.label(),
            intended != after
        ));
    }
    // Consistent priorities recover (Theorem 2.1).
    let (graph, ids) = wedgie::wedgie_graph();
    let dep = wedgie::wedgie_deployment(&ids);
    let mut sim = sbgp_proto::Simulator::new(
        &graph,
        &dep,
        Policy::new(SecurityModel::Security1st),
        sbgp_core::AttackScenario::normal(ids.d),
    );
    sim.run(sbgp_proto::Schedule::Fifo, 100_000);
    let before = sim.next_hop_snapshot();
    sim.fail_link(ids.p, ids.d);
    sim.run(sbgp_proto::Schedule::Fifo, 100_000);
    sim.restore_link(ids.p, ids.d);
    sim.run(sbgp_proto::Schedule::Fifo, 100_000);
    out.push_str(&format!(
        "everyone ranks security 1st:            wedged = {}\n",
        before != sim.next_hop_snapshot()
    ));
    out.push_str(
        "\npaper: inconsistent SecP placement admits two stable states and the\n\
                  system sticks in the unintended one after the link recovers\n",
    );

    // The same hysteresis without any link failure: S*BGP participation
    // wanes and waxes (adoption churn) instead of the p–d link flapping.
    let churn = churn::wedgie_churn();
    out.push_str("\nadoption churn (no link ever fails: A leaves S, then rejoins):\n");
    for row in &churn.rows {
        out.push_str(&format!(
            "A ranks security 1st, others rank {}: wedged = {}, A stuck insecure = {}\n",
            row.b_model.label(),
            row.wedged,
            row.a_stuck_insecure
        ));
    }
    out.push_str(&format!(
        "engine (uniform sec 1st, retraction path): returns to intended = {}, \
         retracting steps = {}\n",
        churn.engine_recovers, churn.engine_stats.retracting_steps
    ));
    out.push_str(
        "\ncoverage waning and waxing is enough to wedge mixed priorities; the\n\
         engine's unique stable state (Theorem 2.1) has nothing to stick in\n",
    );
    out
}

/// The non-monotone dynamics exhibit: the wax-and-wane RPKI churn
/// trajectory with its sweep-engine serving stats, and the Figure 2
/// protocol downgrade per model.
pub fn render_churn(net: &Internet, cfg: &ExperimentConfig) -> String {
    let r = churn::rpki_churn(net, cfg);
    let mut out = String::new();
    out.push_str(
        "RPKI churn: the Tier-2 rollout ladder waxes to its peak and wanes back\n\
         (expiring ROAs, disabled validators); H_{M,D}(S_k) per step\n\n",
    );
    let mut t = Table::new(["step", "|S|", "H sec1", "H sec2", "H sec3"]);
    for p in &r.points {
        t.row([
            p.label.clone(),
            p.secure_count.to_string(),
            pct_bounds(p.metric[0]),
            pct_bounds(p.metric[1]),
            pct_bounds(p.metric[2]),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\n(the wane half retraces the wax half, so each step's metric equals its\n\
         mirror's — served through the engine's retraction path, not recomputed)\n",
    );
    out.push_str("\nsweep-engine serving stats:\n");
    for (model, s) in SecurityModel::ALL.into_iter().zip(&r.stats) {
        out.push_str(&format!(
            "  {}: {}\n",
            model.label(),
            sweep_stats_line(s, r.universe)
        ));
    }

    out.push_str("\nFigure 2 protocol downgrade (6-AS gadget, engine-checked):\n\n");
    let mut t = Table::new([
        "model",
        "secure (normal)",
        "secure (attacked)",
        "downgraded",
        "routes to attacker",
    ]);
    for row in churn::downgrade_attack() {
        let mark = |b: bool| if b { "yes" } else { "no" }.to_string();
        t.row([
            row.model.label().to_string(),
            mark(row.normal_secure),
            mark(row.attacked_secure),
            mark(row.downgraded),
            mark(row.victim_unhappy),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\npaper (Theorem 3.1): security 1st never downgrades; security 2nd/3rd\n\
         abandon the secure 1-hop route for a bogus 4-hop peer route\n",
    );
    out
}

/// §5.3.1 early-adopter table.
pub fn render_early_adopters(net: &Internet, cfg: &ExperimentConfig) -> String {
    let r = rollout::early_adopters(net, cfg);
    let mut out = String::new();
    out.push_str("Early-adopter choices (§5.3.1): avg ΔH over secure destinations d ∈ S\n\n");
    let mut t = Table::new(["scenario", "|S|", "sec1", "sec2", "sec3"]);
    for p in &r.points {
        t.row([
            p.label.clone(),
            p.secure_count.to_string(),
            delta_pair(p.delta_secure_dest[0]),
            delta_pair(p.delta_secure_dest[1]),
            delta_pair(p.delta_secure_dest[2]),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\npaper: T1s+stubs yield <0.2% under sec 2nd/3rd; the 13 largest T2s+stubs ≈1%\n\
         ⇒ Tier 2 ISPs make better early adopters than Tier 1s\n",
    );
    out
}

/// Figure 12 companion: §5.2.4's non-stub deployment summary.
pub fn render_non_stubs(net: &Internet, cfg: &ExperimentConfig) -> String {
    let r = rollout::non_stub_scenario(net, cfg);
    let mut out = render_rollout(&r);
    if cfg.sweep_stats {
        out.push_str(&render_rollout_stats(&r, net.len()));
    }
    out.push_str(
        "\npaper: 6.2% / 4.7% / 2.2% worst-case improvements for sec 1st/2nd/3rd; the\n\
         sec-2nd gains nearly reach sec 1st when Tier 1 destinations are not the focus\n",
    );
    out
}

/// The RPKI-value security ladder (library extension; §4.2 context).
pub fn render_rpki_value(net: &Internet, cfg: &ExperimentConfig) -> String {
    let rows = extensions::rpki_value(net, cfg);
    let mut out = String::new();
    out.push_str("How much does each defense layer buy? (happy-fraction bounds)\n\n");
    let mut t = Table::new(["defense level", "H"]);
    for r in &rows {
        t.row([r.label.clone(), pct_bounds(r.metric)]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\ncontext: the paper assumes RPKI is already deployed and asks what S*BGP\n         adds on top; this ladder shows the whole stack on one metric\n",
    );
    out
}

/// §8 hysteresis A/B (library extension).
pub fn render_hysteresis(net: &Internet, cfg: &ExperimentConfig) -> String {
    let rows = extensions::hysteresis(net, cfg);
    let mut out = String::new();
    out.push_str(
        "§8 mitigation: keep a secure route while it remains available\n(message-level simulation: converge, then launch the attack)\n\n",
    );
    let mut t = Table::new([
        "model",
        "attacks",
        "happy",
        "happy+hyst",
        "secure",
        "secure+hyst",
    ]);
    for r in &rows {
        let f = |x: usize, c: &sbgp_proto::SourceCensus| x as f64 / c.sources.max(1) as f64;
        t.row([
            r.model.label().to_string(),
            r.attacks.to_string(),
            pct(f(r.plain.happy, &r.plain)),
            pct(f(r.with_hysteresis.happy, &r.with_hysteresis)),
            pct(f(r.plain.secure, &r.plain)),
            pct(f(r.with_hysteresis.secure, &r.with_hysteresis)),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\nhysteresis converts would-be protocol downgrades into kept secure routes\n");
    out
}

/// §8 islands of security (library extension).
pub fn render_islands(net: &Internet, cfg: &ExperimentConfig) -> String {
    let rows = extensions::islands(net, cfg, SecurityModel::Security3rd);
    let mut out = String::new();
    out.push_str(
        "§8 mitigation: the secure core agrees to rank security 1st (\"island\"),\nwhile the rest of the world stays at security 3rd\n\n",
    );
    let mut t = Table::new(["priority assignment", "happy", "secure"]);
    for r in &rows {
        let n = r.census.sources.max(1) as f64;
        t.row([
            r.label.clone(),
            pct(r.census.happy as f64 / n),
            pct(r.census.secure as f64 / n),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\nthe island recovers part of the uniform-sec-1st benefit without asking\ninsecure ASes to change anything\n");
    out
}

/// The strategic-attacker tables (library extension): per-pair optimal
/// forged-path ladders, and the colluding-pair comparison.
pub fn render_strategy_ladder(net: &Internet, cfg: &ExperimentConfig) -> String {
    let mut out = String::new();
    out.push_str(
        "Strategic attackers (Goldberg et al. taxonomy): per-(m, d) optimal forged-path\n\
         choice over the k-hop ladder, and colluding announcer pairs\n\n",
    );
    for exp in strategic::ladder(net, cfg) {
        out.push_str(&format!("deployment: {}\n\n", exp.deployment_label));
        let mut t = Table::new([
            "model",
            "k=0 (hijack)",
            "k=1 (fake link)",
            "k=2",
            "k=3",
            "optimal",
            "wins k0/k1/k2/k3",
        ]);
        for (model, r) in &exp.rows {
            t.row([
                model.label().to_string(),
                pct_bounds(r.per_rung[0]),
                pct_bounds(r.per_rung[1]),
                pct_bounds(r.per_rung[2]),
                pct_bounds(r.per_rung[3]),
                pct_bounds(r.optimal),
                format!("{}/{}/{}/{}", r.wins[0], r.wins[1], r.wins[2], r.wins[3]),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out.push_str(
        "(k=0 is blocked by RPKI in the paper's setting; among RPKI-proof rungs the\n\
         shortest forged path maximizes damage, so \"optimal\" tracks k=1 — the paper's\n\
         fixed strategy is the strategic attacker's choice once k=0 is off the table)\n\n",
    );

    let c = strategic::collusion(net, cfg);
    out.push_str(&format!(
        "colluding pairs: {} attacker pairs, deployment: {}\n\n",
        c.sets, c.deployment_label
    ));
    let mut t = Table::new(["model", "solo avg", "best single", "colluding pair"]);
    for (model, r) in &c.rows {
        t.row([
            model.label().to_string(),
            pct_bounds(r.solo),
            pct_bounds(r.best_single),
            pct_bounds(r.colluding),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\n(collusion dividend = best single − colluding pair; sources exclude every\n\
         announcer, per the set-aware counting rule)\n",
    );
    if let Some(est) = cfg.estimation() {
        let l = estimation::estimated_ladder(net, cfg, &est);
        out.push_str(
            "\nstratified ladder estimate, sec 2nd at S = ∅, full M' × V universe (95% CI)\n\n",
        );
        let mut t = Table::new(["rung", "H estimate"]);
        for (strategy, e) in l.rungs.iter().zip(&l.per_rung) {
            t.row([strategy.to_string(), pct_estimate(e)]);
        }
        t.row(["optimal (per pair)".to_string(), pct_estimate(&l.optimal)]);
        out.push_str(&t.render());
        out.push_str(&format!("\nsample: {}\n", run_summary(&l.run)));
    }
    out
}

/// The `--ci`/`--pairs` companion to [`render_rollout`]: `H(S_k)` itself
/// (not the baseline delta) per step and model, each with its confidence
/// interval from the stratified estimator over the full `M' × V` universe.
pub fn render_estimated_rollout(
    net: &Internet,
    cfg: &ExperimentConfig,
    name: &str,
    steps: &[NamedDeployment],
) -> String {
    let Some(est) = cfg.estimation() else {
        return String::new();
    };
    let r = estimation::estimated_rollout(net, cfg, &est, name, steps);
    let mut out = String::new();
    out.push_str(&format!(
        "{} — stratified H(S) estimates over the full M' × V universe (95% CI)\n\n",
        r.name
    ));
    let mut t = Table::new(["step", "H sec1", "H sec2", "H sec3"]);
    for (k, label) in r.step_labels.iter().enumerate() {
        let cells: Vec<String> = r
            .models
            .iter()
            .map(|(_, run)| pct_estimate(&run.estimates[k]))
            .collect();
        t.row([
            label.clone(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }
    out.push_str(&t.render());
    for (model, run) in &r.models {
        out.push_str(&format!("\n{}: {}", model.label(), run_summary(run)));
    }
    out.push('\n');
    out
}

/// §4.5 traffic-weighted baseline (library extension).
pub fn render_weighted(net: &Internet, cfg: &ExperimentConfig) -> String {
    let rows = extensions::weighted_baseline(net, cfg);
    let mut out = String::new();
    out.push_str("Baseline H(∅) under source-traffic weighting (§4.5 caveat)\n\n");
    let mut t = Table::new(["weighting", "H(∅)"]);
    for (label, b) in &rows {
        t.row([label.clone(), pct_bounds(*b)]);
    }
    out.push_str(&t.render());
    out
}

/// Quote the CI-annotated estimates out of a committed campaign JSON
/// (`BENCH_campaign.json`) so `run_all` can print the release-grid
/// numbers **without re-deriving them**. Returns `None` unless the text
/// carries the `campaign-v1` schema and at least one cell.
///
/// The file is machine-written by the `campaign` binary (never
/// hand-edited), so line-oriented field extraction is a faithful parse.
pub fn render_campaign_quotes(json: &str) -> Option<String> {
    if !json.contains("\"schema\": \"campaign-v1\"") {
        return None;
    }
    fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let pat = format!("\"{key}\": ");
        let start = line.find(&pat)? + pat.len();
        let rest = &line[start..];
        // A quoted value ends at its closing quote — a `,` or `}` inside
        // the string (e.g. a figure label like "rollout, sec3") is part
        // of the value, not a terminator.
        if let Some(inner) = rest.strip_prefix('"') {
            return Some(&inner[..inner.find('"')?]);
        }
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
    struct Cell {
        figure: String,
        asns: String,
        seed: String,
        model: String,
        pairs: String,
        population: String,
        first: String,
        last: String,
        steps: usize,
    }
    let estimate = |line: &str| -> Option<String> {
        let lower: f64 = field(line, "lower")?.parse().ok()?;
        let upper: f64 = field(line, "upper")?.parse().ok()?;
        let hw: f64 = field(line, "hw_lower")?
            .parse::<f64>()
            .ok()?
            .max(field(line, "hw_upper")?.parse().ok()?);
        Some(format!(
            "{} ±{:.2}pp",
            pct_bounds(sbgp_core::Bounds { lower, upper }),
            100.0 * hw
        ))
    };
    let mut cells: Vec<Cell> = Vec::new();
    for line in json.lines() {
        let line = line.trim();
        if line.contains("\"schema\": \"campaign-cell-v1\"") {
            cells.push(Cell {
                figure: String::new(),
                asns: String::new(),
                seed: String::new(),
                model: String::new(),
                pairs: String::new(),
                population: String::new(),
                first: String::new(),
                last: String::new(),
                steps: 0,
            });
            continue;
        }
        let Some(cell) = cells.last_mut() else {
            continue;
        };
        if line.starts_with("\"figure\"") {
            cell.figure = field(line, "figure").unwrap_or_default().to_string();
        } else if line.starts_with("\"asns\"") {
            cell.asns = field(line, "asns").unwrap_or_default().to_string();
        } else if line.starts_with("\"seed\"") {
            cell.seed = field(line, "seed").unwrap_or_default().to_string();
        } else if line.starts_with("\"model\"") {
            cell.model = field(line, "model").unwrap_or_default().to_string();
        } else if line.starts_with("\"pairs\"") {
            cell.pairs = field(line, "pairs").unwrap_or_default().to_string();
        } else if line.starts_with("\"population\"") {
            cell.population = field(line, "population").unwrap_or_default().to_string();
        } else if line.starts_with("{\"step\"") {
            if let Some(e) = estimate(line) {
                if cell.steps == 0 {
                    cell.first = e.clone();
                }
                cell.last = e;
                cell.steps += 1;
            }
        }
    }
    cells.retain(|c| c.steps > 0 && !c.figure.is_empty());
    if cells.is_empty() {
        return None;
    }
    let mut out = String::new();
    out.push_str(
        "Release-grid stratified estimates, quoted verbatim from the committed\n\
         campaign JSON (95% CI; no re-derivation):\n\n",
    );
    let mut t = Table::new([
        "figure",
        "asns",
        "seed",
        "model",
        "pairs",
        "of",
        "H first step",
        "H last step",
    ]);
    for c in &cells {
        t.row([
            c.figure.clone(),
            c.asns.clone(),
            c.seed.clone(),
            c.model.clone(),
            c.pairs.clone(),
            c.population.clone(),
            c.first.clone(),
            if c.steps > 1 {
                c.last.clone()
            } else {
                "—".to_string()
            },
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\n(regenerate with `cargo run --release -p sbgp_bench --bin campaign`)\n");
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::render_campaign_quotes;

    /// Regression: quoted values carrying commas (PR 7 grid keys like
    /// `"cps": "15169,20940,8075"` and suffixed figure ids) used to be
    /// truncated at the first `,` by the field scanner.
    #[test]
    fn campaign_quotes_keep_commas_inside_quoted_values() {
        let json = r#"{
  "schema": "campaign-v1",
  "cells": [
    {
      "schema": "campaign-cell-v1",
      "figure": "rollout,cps=15169,20940,8075",
      "asns": 4000,
      "seed": 42,
      "model": "sec3",
      "population": 15996000,
      "pairs": 2000,
      "estimates": [
        {"step": 0, "lower": 0.620991, "upper": 0.786886, "hw_lower": 0.005558, "hw_upper": 0.005134},
        {"step": 1, "lower": 0.651200, "upper": 0.801100, "hw_lower": 0.004901, "hw_upper": 0.004700}
      ]
    }
  ]
}"#;
        let out = render_campaign_quotes(json).expect("schema + one cell present");
        assert!(
            out.contains("rollout,cps=15169,20940,8075"),
            "figure label truncated:\n{out}"
        );
        // Unquoted numeric fields still parse (both estimate rows made it).
        assert!(out.contains("2000"), "{out}");
        assert!(out.contains("±0.56pp"), "{out}");
        assert!(out.contains("±0.49pp"), "{out}");
    }

    #[test]
    fn campaign_quotes_require_schema_and_cells() {
        assert!(render_campaign_quotes("{}").is_none());
        assert!(render_campaign_quotes("{\"schema\": \"campaign-v1\"}").is_none());
    }
}
