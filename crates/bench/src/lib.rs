//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every binary in `src/bin/` reproduces one figure or table from the
//! paper. They share a tiny argument parser ([`Cli`]) and the rendering
//! code in [`render`], so `run_all` can regenerate the whole evaluation in
//! one go:
//!
//! ```text
//! cargo run --release -p sbgp_bench --bin figure03 -- --asns 8000
//! cargo run --release -p sbgp_bench --bin run_all -- --asns 4000 > EXPERIMENTS.txt
//! ```
//!
//! Common flags: `--asns N`, `--seed S`, `--attackers A`,
//! `--destinations D`, `--per-tier P`, `--threads T`, `--ixp`
//! (Appendix J graph), `--file <as-rel>` (run on a parsed CAIDA
//! serial-1/serial-2 snapshot instead of the synthetic generator) with
//! `--cps <asn,asn,...>` (the paper's explicit 17-content-provider list as
//! real ASNs, resolved through the snapshot's labels),
//! `--policy lp|lp2|lpinf` (Appendix K variants),
//! `--strategy fakelink|hijack|pathK` (the Goldberg et al. attack
//! taxonomy; honored by the rollout, per-destination and baseline
//! figures), and the estimation mode `--ci H` / `--pairs B` (stratified
//! estimates with confidence intervals, honored by the baseline, the
//! rollout figures and the strategy ladder; off by default so classic
//! output stays byte-identical), and `--sweep-stats` (append the
//! sweep engines' per-run serving stats — fallback rate, refixed
//! fraction, step directions — to the sweep-backed reports; also off by
//! default for the same reason).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod render;

use std::path::PathBuf;

use sbgp_core::{AttackStrategy, LpVariant};
use sbgp_sim::experiments::ExperimentConfig;
use sbgp_sim::{Internet, Parallelism};

/// The sweep-benchmark / campaign rollout workload — re-exported from
/// [`sbgp_sim::scenario`], where it moved so supervised campaign worker
/// processes can rebuild the coordinator's exact deployments.
pub use sbgp_sim::scenario::sweep_rollout_steps;

/// Parsed command-line options for the figure binaries.
#[derive(Clone, Debug)]
pub struct Cli {
    /// Synthetic graph size.
    pub asns: usize,
    /// Generator/sampler seed.
    pub seed: u64,
    /// Use the IXP-augmented graph (Appendix J).
    pub ixp: bool,
    /// Parse a real CAIDA serial-1/serial-2 snapshot instead of
    /// generating a synthetic graph.
    pub file: Option<PathBuf>,
    /// Content-provider list as real-world ASNs (the paper's explicit
    /// 17-CP list), resolved through the snapshot's preserved labels.
    pub cps: Vec<u32>,
    /// LP variant (Appendix K).
    pub variant: LpVariant,
    /// Sampling configuration.
    pub config: ExperimentConfig,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            asns: 4_000,
            seed: 42,
            ixp: false,
            file: None,
            cps: Vec::new(),
            variant: LpVariant::Standard,
            config: ExperimentConfig::default(),
        }
    }
}

impl Cli {
    /// Parse `std::env::args`, exiting with usage on errors or `--help`.
    pub fn parse() -> Cli {
        match Cli::try_parse(std::env::args().skip(1)) {
            Ok(cli) => cli,
            Err(msg) => {
                eprintln!("{msg}");
                eprintln!(
                    "usage: [--asns N] [--seed S] [--attackers A] [--destinations D] \
                     [--per-tier P] [--threads T] [--ixp] [--file AS-REL] \
                     [--cps ASN,ASN,...] [--policy lp|lp2|lpinf] \
                     [--strategy fakelink|hijack|pathK] [--ci H] [--pairs B] \
                     [--sweep-stats]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parse from an explicit iterator (testable).
    pub fn try_parse(args: impl IntoIterator<Item = String>) -> Result<Cli, String> {
        let mut cli = Cli::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let mut take = |name: &str| -> Result<String, String> {
                args.next().ok_or_else(|| format!("{name} needs a value"))
            };
            match arg.as_str() {
                "--asns" => cli.asns = parse_num(&take("--asns")?)?,
                "--seed" => cli.seed = parse_num(&take("--seed")?)?,
                "--attackers" => cli.config.attackers = parse_num(&take("--attackers")?)?,
                "--destinations" => cli.config.destinations = parse_num(&take("--destinations")?)?,
                "--per-tier" => cli.config.per_tier = parse_num(&take("--per-tier")?)?,
                "--threads" => {
                    cli.config.parallelism = Parallelism(parse_num(&take("--threads")?)?)
                }
                "--ixp" => cli.ixp = true,
                "--file" => cli.file = Some(PathBuf::from(take("--file")?)),
                "--cps" => {
                    let cps = take("--cps")?
                        .split(',')
                        .filter(|t| !t.is_empty())
                        .map(|t| parse_num(t.trim()))
                        .collect::<Result<Vec<u32>, String>>()?;
                    // A repeated ASN would double-count that content
                    // provider in every per-CP average; reject it with
                    // the offending positions instead of silently
                    // skewing the numbers.
                    for (i, asn) in cps.iter().enumerate() {
                        if let Some(j) = cps[..i].iter().position(|b| b == asn) {
                            return Err(format!(
                                "--cps lists ASN {asn} twice (items {} and {})",
                                j + 1,
                                i + 1
                            ));
                        }
                    }
                    cli.cps = cps;
                }
                "--strategy" => {
                    let value = take("--strategy")?;
                    let strategy = match value.as_str() {
                        "fakelink" | "fake-link" => AttackStrategy::FakeLink,
                        "hijack" => AttackStrategy::OriginHijack,
                        other => match other.strip_prefix("path") {
                            Some(k) => AttackStrategy::FakePath {
                                hops: parse_num(k)?,
                            },
                            None => return Err(format!("unknown strategy {other:?}")),
                        },
                    };
                    // `path1` IS the fake link (and `path0` the hijack):
                    // canonicalize so the non-default banner and any
                    // equality-keyed logic never treat identical behavior
                    // as a different strategy.
                    cli.config.strategy = strategy.canonical();
                }
                "--ci" => {
                    let target: f64 = parse_num(&take("--ci")?)?;
                    if !(target > 0.0 && target < 1.0) {
                        return Err(format!("--ci wants a half-width in (0, 1), got {target}"));
                    }
                    cli.config.ci_target = Some(target);
                }
                "--pairs" => cli.config.pair_budget = Some(parse_num(&take("--pairs")?)?),
                "--sweep-stats" => cli.config.sweep_stats = true,
                "--policy" => {
                    cli.variant = match take("--policy")?.as_str() {
                        "lp" => LpVariant::Standard,
                        "lp2" => LpVariant::LpK(2),
                        "lpinf" => LpVariant::LpInf,
                        other => return Err(format!("unknown policy {other:?}")),
                    }
                }
                "--help" | "-h" => return Err("help requested".into()),
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        cli.config.seed = cli.seed;
        if !cli.cps.is_empty() && cli.file.is_none() {
            return Err("--cps only makes sense with --file (synthetic graphs \
                        carry their own generated CP list)"
                .into());
        }
        if cli.file.is_some() && cli.ixp {
            return Err(
                "--ixp augments synthetic graphs and cannot be combined with --file".into(),
            );
        }
        Ok(cli)
    }

    /// Build the experiment topology, exiting with a diagnostic when a
    /// `--file` snapshot fails to load.
    pub fn internet(&self) -> Internet {
        match self.try_internet() {
            Ok(net) => net,
            Err(e) => {
                eprintln!(
                    "cannot load snapshot {}: {e}",
                    self.file
                        .as_deref()
                        .unwrap_or(std::path::Path::new("?"))
                        .display()
                );
                std::process::exit(1);
            }
        }
    }

    /// Build the experiment topology: the parsed `--file` snapshot when
    /// given (CPs resolved from the real-ASN `--cps` list), otherwise the
    /// synthetic generator (IXP-augmented under `--ixp`).
    pub fn try_internet(&self) -> Result<Internet, sbgp_topology::TopologyError> {
        if let Some(path) = &self.file {
            Internet::from_file(path, &self.cps)
        } else if self.ixp {
            Ok(Internet::synthetic_with_ixp(self.asns, self.seed))
        } else {
            Ok(Internet::synthetic(self.asns, self.seed))
        }
    }

    /// Print the standard experiment banner.
    pub fn banner(&self, title: &str, net: &Internet) {
        println!("=== {title} ===");
        println!(
            "graph: {} ({} ASes, {} c2p, {} p2p edges); seed {}; policy {}",
            net.name,
            net.graph.len(),
            net.graph.num_customer_provider_edges(),
            net.graph.num_peer_edges(),
            self.seed,
            self.variant,
        );
        println!(
            "sampling: {} attackers x {} destinations ({} per tier), {} thread(s)",
            self.config.attackers,
            self.config.destinations,
            self.config.per_tier,
            self.config.parallelism.0
        );
        // Only announced when non-default, so the legacy fake-link
        // banners (and their golden snapshots) stay byte-identical. The
        // qualifier matters: drivers that fix their own strategy (the
        // partition figures, the RPKI-value and strategy-ladder tables)
        // ignore the flag, and their numbers must not be misattributed.
        if self.config.strategy != AttackStrategy::FakeLink {
            println!(
                "attack strategy: {} (strategy-aware drivers only; partition/ladder \
                 tables fix their own)",
                self.config.strategy
            );
        }
        // Like the strategy line: only announced when requested, so the
        // flag-less banners (and their golden snapshots) never move.
        if let Some(est) = self.config.estimation() {
            match est.ci_target {
                Some(t) => println!(
                    "estimation: stratified, CI target ±{:.2}pp (95%), pair budget {}",
                    100.0 * t,
                    est.budget
                ),
                None => println!("estimation: stratified, pair budget {}", est.budget),
            }
        }
        println!();
    }
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad number {s:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        Cli::try_parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_and_flags() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.asns, 4_000);
        assert!(!cli.ixp);

        let cli = parse(&[
            "--asns",
            "1000",
            "--seed",
            "7",
            "--attackers",
            "9",
            "--ixp",
            "--policy",
            "lp2",
            "--threads",
            "3",
        ])
        .unwrap();
        assert_eq!(cli.asns, 1000);
        assert_eq!(cli.seed, 7);
        assert_eq!(cli.config.attackers, 9);
        assert_eq!(cli.config.seed, 7);
        assert!(cli.ixp);
        assert_eq!(cli.variant, LpVariant::LpK(2));
        assert_eq!(cli.config.parallelism, Parallelism(3));
        assert_eq!(cli.config.strategy, AttackStrategy::FakeLink);
    }

    #[test]
    fn strategy_flag_parses_the_ladder() {
        assert_eq!(
            parse(&["--strategy", "hijack"]).unwrap().config.strategy,
            AttackStrategy::OriginHijack
        );
        assert_eq!(
            parse(&["--strategy", "fakelink"]).unwrap().config.strategy,
            AttackStrategy::FakeLink
        );
        assert_eq!(
            parse(&["--strategy", "path3"]).unwrap().config.strategy,
            AttackStrategy::FakePath { hops: 3 }
        );
        // The degenerate forged paths canonicalize to the legacy variants,
        // so `--strategy path1` is exactly the default (no banner line).
        assert_eq!(
            parse(&["--strategy", "path0"]).unwrap().config.strategy,
            AttackStrategy::OriginHijack
        );
        assert_eq!(
            parse(&["--strategy", "path1"]).unwrap().config.strategy,
            AttackStrategy::FakeLink
        );
        assert!(parse(&["--strategy", "bogus"]).is_err());
        assert!(parse(&["--strategy", "pathx"]).is_err());
        assert!(parse(&["--strategy"]).is_err());
    }

    #[test]
    fn bad_input_is_rejected() {
        assert!(parse(&["--asns"]).is_err());
        assert!(parse(&["--asns", "x"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--policy", "lp9"]).is_err());
    }

    #[test]
    fn file_and_cps_flags_parse() {
        let cli = parse(&["--file", "snap.as-rel", "--cps", "15169,20940, 8075"]).unwrap();
        assert_eq!(
            cli.file.as_deref(),
            Some(std::path::Path::new("snap.as-rel"))
        );
        assert_eq!(cli.cps, vec![15169, 20940, 8075]);

        // --file alone is fine (empty CP list).
        let cli = parse(&["--file", "snap.as-rel"]).unwrap();
        assert!(cli.cps.is_empty());

        // --cps without --file, --file+--ixp, and junk ASNs are rejected.
        assert!(parse(&["--cps", "15169"]).is_err());
        assert!(parse(&["--file", "x", "--ixp"]).is_err());
        assert!(parse(&["--file", "x", "--cps", "google"]).is_err());
        assert!(parse(&["--file"]).is_err());
        assert!(parse(&["--cps"]).is_err());
    }

    #[test]
    fn duplicate_cps_are_a_located_error() {
        // A repeated ASN used to be double-counted as two content
        // providers; now the parse names the ASN and both positions.
        let err = parse(&["--file", "x", "--cps", "15169,20940,15169"]).unwrap_err();
        assert!(err.contains("15169"), "{err}");
        assert!(err.contains("items 1 and 3"), "{err}");
        // Whitespace variants collide too.
        assert!(parse(&["--file", "x", "--cps", "8075, 8075"]).is_err());
        // Distinct ASNs still parse.
        assert_eq!(
            parse(&["--file", "x", "--cps", "15169,20940"]).unwrap().cps,
            vec![15169, 20940]
        );
    }

    #[test]
    fn try_internet_loads_a_snapshot_with_resolved_cps() {
        let dir = std::env::temp_dir().join(format!("sbgp_cli_file_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mini.as-rel");
        std::fs::write(
            &path,
            "3356|15169|-1\n3356|174|0\n174|15169|-1\n701|3356|-1\n",
        )
        .unwrap();
        let cli = parse(&[
            "--file",
            path.to_str().unwrap(),
            "--cps",
            "15169",
            "--seed",
            "3",
        ])
        .unwrap();
        let net = cli.try_internet().unwrap();
        assert_eq!(net.name, "mini");
        assert_eq!(net.len(), 4);
        assert_eq!(net.content_providers.len(), 1);
        assert_eq!(net.graph.asn_label(net.content_providers[0]), 15169);
        // An unknown CP ASN is a load error, not a silent drop.
        let cli = parse(&["--file", path.to_str().unwrap(), "--cps", "64512"]).unwrap();
        assert!(cli.try_internet().is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn estimation_flags_parse_and_default_off() {
        let cli = parse(&[]).unwrap();
        assert!(cli.config.estimation().is_none());

        let cli = parse(&["--ci", "0.005"]).unwrap();
        assert_eq!(cli.config.ci_target, Some(0.005));
        let est = cli.config.estimation().unwrap();
        assert_eq!(est.ci_target, Some(0.005));

        let cli = parse(&["--sweep-stats"]).unwrap();
        assert!(cli.config.sweep_stats);
        assert!(!parse(&[]).unwrap().config.sweep_stats);

        let cli = parse(&["--pairs", "2500"]).unwrap();
        assert_eq!(cli.config.pair_budget, Some(2500));
        assert_eq!(cli.config.estimation().unwrap().budget, 2500);
        assert_eq!(cli.config.estimation().unwrap().ci_target, None);

        assert!(parse(&["--ci", "0"]).is_err());
        assert!(parse(&["--ci", "1.5"]).is_err());
        assert!(parse(&["--ci"]).is_err());
        assert!(parse(&["--pairs", "x"]).is_err());
    }
}
