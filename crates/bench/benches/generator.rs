//! Topology substrate performance: synthetic generation, IXP
//! augmentation, tier classification, serial-1 round-trips.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbgp_topology::gen::{augment_with_ixps, generate, InternetConfig, IxpConfig};
use sbgp_topology::tier::{TierConfig, TierMap};
use sbgp_topology::{io, stats::GraphStats};

fn generator_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    group.sample_size(10);
    for &n in &[2_000usize, 8_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(generate(&InternetConfig::sized(n, 3)).graph.num_edges()));
        });
    }
    group.finish();

    let base = generate(&InternetConfig::sized(4_000, 3));
    c.bench_function("ixp-augment/4000", |b| {
        b.iter(|| {
            let (g, added) = augment_with_ixps(&base.graph, &IxpConfig::scaled_to(4_000, 9));
            black_box((g.len(), added))
        });
    });
    c.bench_function("tier-classify/4000", |b| {
        b.iter(|| {
            black_box(
                TierMap::classify(&base.graph, &TierConfig::default())
                    .tier1()
                    .len(),
            )
        });
    });
    c.bench_function("stats/4000", |b| {
        b.iter(|| black_box(GraphStats::compute(&base.graph).stub_share()));
    });
    let text = io::write_relationships(&base.graph);
    c.bench_function("serial1-parse/4000", |b| {
        b.iter(|| black_box(io::parse_relationships(text.as_bytes()).unwrap().len()));
    });
}

criterion_group!(benches, generator_benches);
criterion_main!(benches);
