//! Attacker-delta performance: all attackers of one destination evaluated
//! per-pair from scratch versus patched from one shared normal-conditions
//! snapshot, in the two regimes the engine actually sees:
//!
//! * **contested** — a partially protected destination: fake-link balls
//!   cover a large share of the graph (measured ~25–40% of all ASes once
//!   downstream flag contamination counts), so the delta engine's scan
//!   mostly decides to fall back and the cost envelope is ≈ one compute
//!   plus a small scan premium;
//! * **protected** — everyone runs full S\*BGP under security 1st: every
//!   AS holds a secure route, the insecure bogus announcement loses
//!   everywhere, and each attacker is a near-empty patch.
//!
//! (`bench_pairs` emits the full two-axis rollout composition as
//! `BENCH_pairs.json`.)

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbgp_bench::sweep_rollout_steps;
use sbgp_core::{
    AttackDeltaEngine, AttackScenario, AttackStrategy, Deployment, Engine, Policy, SecurityModel,
};
use sbgp_sim::{sample, Internet};
use sbgp_topology::AsId;

fn pairs_benches(c: &mut Criterion) {
    let net = Internet::synthetic(4_000, 11);
    let contested = sweep_rollout_steps(&net, 20).swap_remove(19);
    let protected_all = Deployment::full_from_iter(net.len(), net.graph.ases());
    let d = net.tiers.tier2()[0];
    let attackers: Vec<AsId> = sample::sample_non_stubs(&net, 20, 3)
        .into_iter()
        .filter(|&m| m != d)
        .collect();

    let cells: [(&str, &Deployment, Vec<Policy>); 2] = [
        (
            "contested",
            &contested,
            SecurityModel::ALL.map(Policy::new).to_vec(),
        ),
        (
            "protected",
            &protected_all,
            vec![Policy::new(SecurityModel::Security1st)],
        ),
    ];

    let mut group = c.benchmark_group("pairs-20-attackers");
    group.sample_size(5);
    for (regime, dep, policies) in cells {
        for policy in policies {
            let label = format!("{regime}/{}", policy.model.label());
            group.bench_with_input(
                BenchmarkId::new("from-scratch", &label),
                &policy,
                |b, &policy| {
                    let mut engine = Engine::new(&net.graph);
                    b.iter(|| {
                        let mut happy = 0usize;
                        for &m in &attackers {
                            let o = engine.compute(AttackScenario::attack(m, d), dep, policy);
                            happy += o.count_happy().0;
                        }
                        black_box(happy)
                    });
                },
            );
            group.bench_with_input(BenchmarkId::new("delta", &label), &policy, |b, &policy| {
                let mut delta = AttackDeltaEngine::new(&net.graph);
                b.iter(|| {
                    let mut happy = 0usize;
                    delta.begin(d, dep, policy);
                    for &m in &attackers {
                        delta.attack(m, AttackStrategy::FakeLink);
                        happy += delta.count_happy().0;
                    }
                    black_box(happy)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, pairs_benches);
criterion_main!(benches);
