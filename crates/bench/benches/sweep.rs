//! Deployment-sweep performance: a 20-step monotone rollout evaluated from
//! scratch versus incrementally. The rollout loop is the dominant cost of
//! Figures 7–13, so this ratio is the headline number of the sweep
//! subsystem (`bench_sweep` emits it as `BENCH_sweep.json`).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbgp_bench::sweep_rollout_steps;
use sbgp_core::{AttackScenario, Engine, Policy, SecurityModel, SweepEngine};
use sbgp_sim::Internet;

fn sweep_benches(c: &mut Criterion) {
    let net = Internet::synthetic(4_000, 11);
    let deps = sweep_rollout_steps(&net, 20);
    let m = net.tiers.tier2()[0];
    let d = net.content_providers[0];
    let scenario = AttackScenario::attack(m, d);

    let mut group = c.benchmark_group("sweep-rollout-20");
    group.sample_size(5);
    for model in SecurityModel::ALL {
        let policy = Policy::new(model);
        group.bench_with_input(
            BenchmarkId::new("from-scratch", model.label()),
            &policy,
            |b, &policy| {
                let mut engine = Engine::new(&net.graph);
                b.iter(|| {
                    let mut happy = 0usize;
                    for dep in &deps {
                        happy += engine.compute(scenario, dep, policy).count_happy().0;
                    }
                    black_box(happy)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sweep", model.label()),
            &policy,
            |b, &policy| {
                let mut sweep = SweepEngine::new(&net.graph);
                b.iter(|| {
                    let mut happy = 0usize;
                    sweep.begin(scenario, policy);
                    for dep in &deps {
                        sweep.advance(dep);
                        happy += sweep.count_happy().0;
                    }
                    black_box(happy)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, sweep_benches);
criterion_main!(benches);
