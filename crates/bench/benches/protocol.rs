//! Message-level simulator performance: protocol convergence cost vs the
//! closed-form engine (the engine should win by orders of magnitude, which
//! is why the paper computes outcomes instead of simulating updates).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbgp_core::{AttackScenario, Deployment, Engine, Policy, SecurityModel};
use sbgp_proto::{Schedule, Simulator};
use sbgp_sim::Internet;

fn protocol_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("convergence");
    group.sample_size(10);
    for &n in &[200usize, 800] {
        let net = Internet::synthetic(n, 5);
        let dep = Deployment::full_from_iter(n, net.tiers.tier1().iter().copied());
        let d = net.content_providers[0];
        let m = net.tiers.tier2()[0];
        group.bench_with_input(BenchmarkId::new("message-level", n), &n, |b, _| {
            b.iter(|| {
                let mut sim = Simulator::new(
                    &net.graph,
                    &dep,
                    Policy::new(SecurityModel::Security2nd),
                    AttackScenario::attack(m, d),
                );
                black_box(sim.run(Schedule::Fifo, 10_000_000))
            });
        });
        group.bench_with_input(BenchmarkId::new("engine", n), &n, |b, _| {
            let mut engine = Engine::new(&net.graph);
            b.iter(|| {
                let o = engine.compute(
                    AttackScenario::attack(m, d),
                    &dep,
                    Policy::new(SecurityModel::Security2nd),
                );
                black_box(o.count_happy())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, protocol_benches);
criterion_main!(benches);
