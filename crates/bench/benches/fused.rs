//! Fused multi-cell marginal cost: what one *additional* policy lane
//! costs when every lane rides the same snapshot traversal. The envelope
//! pinned here: at zero validators the full 9-lane grid (3 models × 3 LP
//! variants) must cost far closer to the 3 distinct computations it
//! collapses to than to 9 composed-delta loops — the per-lane marginal
//! cost is a bitset update in the shared scan plus one `count_happy`
//! readout, not a traversal.
//!
//! (`bench_fused` emits the composed-vs-fused comparison with the
//! exactness cross-check as `BENCH_fused.json`.)

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbgp_core::{
    AttackDeltaEngine, AttackStrategy, CellSet, Deployment, FusedDeltaEngine, LpVariant, Policy,
    SecurityModel,
};
use sbgp_sim::{sample, Internet};
use sbgp_topology::AsId;

const VARIANTS: [LpVariant; 3] = [LpVariant::Standard, LpVariant::LpK(2), LpVariant::LpInf];

fn fused_benches(c: &mut Criterion) {
    let net = Internet::synthetic(4_000, 11);
    let empty = Deployment::empty(net.len());
    let d = net.tiers.tier2()[0];
    let attackers: Vec<AsId> = sample::sample_non_stubs(&net, 20, 3)
        .into_iter()
        .filter(|&m| m != d)
        .collect();

    let mut group = c.benchmark_group("fused-20-attackers");
    group.sample_size(5);
    for models in 1..=SecurityModel::ALL.len() {
        let policies: Vec<Policy> = SecurityModel::ALL[..models]
            .iter()
            .flat_map(|&m| VARIANTS.map(|v| Policy::with_variant(m, v)))
            .collect();
        let label = format!("{}x{}-lanes", models, VARIANTS.len());

        group.bench_with_input(
            BenchmarkId::new("composed", &label),
            &policies,
            |b, policies| {
                let mut delta = AttackDeltaEngine::new(&net.graph);
                b.iter(|| {
                    let mut happy = 0usize;
                    for &policy in policies {
                        delta.begin(d, &empty, policy);
                        for &m in &attackers {
                            delta.attack(m, AttackStrategy::FakeLink);
                            happy += delta.count_happy().0;
                        }
                    }
                    black_box(happy)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fused", &label),
            &policies,
            |b, policies| {
                let cells = CellSet::per_policy(policies, AttackStrategy::FakeLink);
                let mut fused = FusedDeltaEngine::new(&net.graph, cells);
                b.iter(|| {
                    let mut happy = 0usize;
                    fused.begin(d, &empty);
                    for &m in &attackers {
                        fused.attack(m);
                        for c in 0..policies.len() {
                            happy += fused.count_happy(c).0;
                        }
                    }
                    black_box(happy)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fused_benches);
criterion_main!(benches);
