//! Core-engine performance: one routing outcome is the unit of work every
//! experiment multiplies by |M|·|D|, so its cost is the whole story.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbgp_core::{
    AttackScenario, Deployment, Engine, PairAnalyzer, PartitionComputer, Policy, SecurityModel,
};
use sbgp_sim::Internet;
use sbgp_topology::AsId;

fn engine_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(20);
    for &n in &[1_000usize, 4_000, 8_000] {
        let net = Internet::synthetic(n, 11);
        let dep = Deployment::full_from_iter(n, net.tiers.tier1().iter().copied());
        let m = net.tiers.tier2()[0];
        let d = net.content_providers[0];
        for model in SecurityModel::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("attack-{}", model.label()), n),
                &n,
                |b, _| {
                    let mut engine = Engine::new(&net.graph);
                    b.iter(|| {
                        let o =
                            engine.compute(AttackScenario::attack(m, d), &dep, Policy::new(model));
                        black_box(o.count_happy())
                    });
                },
            );
        }
    }
    group.finish();

    let net = Internet::synthetic(4_000, 11);
    let m = net.tiers.tier2()[0];
    let d = net.content_providers[0];
    let dep = Deployment::full_from_iter(net.len(), net.tiers.tier1().iter().copied());

    c.bench_function("partition/sec2-4000", |b| {
        let mut pc = PartitionComputer::new(&net.graph);
        b.iter(|| black_box(pc.counts(m, d, Policy::new(SecurityModel::Security2nd))));
    });
    c.bench_function("analysis/three-run-4000", |b| {
        let mut an = PairAnalyzer::new(&net.graph);
        b.iter(|| black_box(an.analyze(m, d, &dep, Policy::new(SecurityModel::Security2nd))));
    });
    c.bench_function("engine/normal-4000", |b| {
        let mut engine = Engine::new(&net.graph);
        b.iter(|| {
            let o = engine.compute(
                AttackScenario::normal(AsId(d.0)),
                &dep,
                Policy::new(SecurityModel::Security2nd),
            );
            black_box(o.count_secure_sources())
        });
    });
}

criterion_group!(benches, engine_benches);
criterion_main!(benches);
