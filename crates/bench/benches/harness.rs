//! End-to-end harness throughput: the metric over a pair batch, as used by
//! every figure binary.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use sbgp_core::{Policy, SecurityModel};
use sbgp_sim::{runner, sample, scenario, Internet, Parallelism};

fn harness_benches(c: &mut Criterion) {
    let net = Internet::synthetic(4_000, 11);
    let attackers = sample::sample_non_stubs(&net, 8, 1);
    let dests = sample::sample_all(&net, 12, 2);
    let pairs = sample::pairs(&attackers, &dests);
    let step = scenario::tier12_step(&net, 13, 37);

    let mut group = c.benchmark_group("metric-96-pairs");
    group.sample_size(10);
    for model in SecurityModel::ALL {
        group.bench_function(model.label(), |b| {
            b.iter(|| {
                black_box(runner::metric(
                    &net,
                    &pairs,
                    &step.deployment,
                    Policy::new(model),
                    Parallelism(1),
                ))
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("per-figure");
    group.sample_size(10);
    group.bench_function("figure13-one-cp", |b| {
        let cp = net.content_providers[0];
        let cp_pairs: Vec<_> = attackers.iter().map(|&m| (m, cp)).collect();
        b.iter(|| {
            black_box(runner::analysis(
                &net,
                &cp_pairs,
                &step.deployment,
                Policy::new(SecurityModel::Security3rd),
                Parallelism(1),
            ))
        });
    });
    group.bench_function("partitions-one-tier", |b| {
        b.iter(|| {
            black_box(runner::partitions(
                &net,
                &pairs,
                Policy::new(SecurityModel::Security2nd),
                Parallelism(1),
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, harness_benches);
criterion_main!(benches);
