//! The §2.3 / Figure 1 **BGP wedgie** gadget.
//!
//! When ASes place SecP at *different* positions, the routing system can
//! have several stable states, and a transient link failure can wedge it in
//! an unintended one. This module packages a minimal gadget with exactly
//! the paper's mechanism:
//!
//! ```text
//!        p ──▶ owns the only "real" transit to d
//!        ▲
//!        │ (provider)
//!        B      B ranks security *below* LP (security 2nd/3rd)
//!        ▲
//!        │ (provider)
//!        A      A ranks security 1st, runs S*BGP
//!        ▲
//!        │ (provider)
//!        e      e is the one insecure AS; e is also d's provider
//! ```
//!
//! Edges: `d → p` (customer), `B → p`, `A → B`, `e → A`, `d → e`. Everyone
//! but `e` deploys S\*BGP.
//!
//! * **Intended state**: `A` uses its *secure* provider route `A–B–p–d`
//!   (security 1st beats LP), so it exports nothing to `B`; `B` uses
//!   `B–p–d`.
//! * **Unintended state**: `A` uses the insecure customer route `A–e–d`
//!   and exports it upward; `B` prefers the *customer* route `B–A–e–d`
//!   (LP beats security for `B`), and then `A` can never return to the
//!   secure route because `B`'s only announcement through it is looped.
//!
//! Failing and restoring the `p–d` link moves the system from the intended
//! state to the unintended one, where it sticks — the wedgie.

use sbgp_core::{AttackScenario, Deployment, Policy, SecurityModel};
use sbgp_topology::{AsGraph, AsId, GraphBuilder};

use crate::{Schedule, Simulator};

/// Node ids of the gadget, for readable assertions and demos.
#[derive(Clone, Copy, Debug)]
pub struct WedgieIds {
    /// The destination (the paper's AS 3).
    pub d: AsId,
    /// The transit provider whose link to `d` fails (AS 31027).
    pub p: AsId,
    /// The ISP that ranks security below LP (AS 29518).
    pub b: AsId,
    /// The ISP that ranks security 1st (AS 31283).
    pub a: AsId,
    /// The one insecure AS (AS 8928).
    pub e: AsId,
}

/// Build the wedgie topology.
pub fn wedgie_graph() -> (AsGraph, WedgieIds) {
    let ids = WedgieIds {
        d: AsId(0),
        p: AsId(1),
        b: AsId(2),
        a: AsId(3),
        e: AsId(4),
    };
    let mut builder = GraphBuilder::new(5);
    builder.add_provider(ids.d, ids.p).unwrap();
    builder.add_provider(ids.b, ids.p).unwrap();
    builder.add_provider(ids.a, ids.b).unwrap();
    builder.add_provider(ids.e, ids.a).unwrap();
    builder.add_provider(ids.d, ids.e).unwrap();
    (builder.build(), ids)
}

/// The deployment: everyone secure except `e`.
pub fn wedgie_deployment(ids: &WedgieIds) -> Deployment {
    Deployment::full_from_iter(5, [ids.d, ids.p, ids.b, ids.a])
}

/// Build a simulator with the paper's mixed priorities: `A` ranks security
/// 1st, everyone else ranks it `b_model` (2nd or 3rd).
pub fn wedgie_simulator<'g>(
    graph: &'g AsGraph,
    ids: &WedgieIds,
    deployment: &Deployment,
    b_model: SecurityModel,
) -> Simulator<'g> {
    let mut sim = Simulator::new(
        graph,
        deployment,
        Policy::new(b_model),
        AttackScenario::normal(ids.d),
    );
    sim.set_rank(ids.a, SecurityModel::Security1st);
    sim
}

/// Run the full Figure 1 experiment: converge, fail `p–d`, reconverge,
/// restore, reconverge. Returns `(intended, after_recovery)` next-hop
/// snapshots; a wedgie occurred iff they differ.
pub fn run_wedgie_experiment(b_model: SecurityModel) -> (Vec<Option<AsId>>, Vec<Option<AsId>>) {
    let (graph, ids) = wedgie_graph();
    let deployment = wedgie_deployment(&ids);
    let mut sim = wedgie_simulator(&graph, &ids, &deployment, b_model);

    sim.run(Schedule::Fifo, 100_000);
    assert!(sim.unstable_ases().is_empty(), "initial convergence");
    let intended = sim.next_hop_snapshot();

    sim.fail_link(ids.p, ids.d);
    sim.run(Schedule::Fifo, 100_000);

    sim.restore_link(ids.p, ids.d);
    sim.run(Schedule::Fifo, 100_000);
    assert!(sim.unstable_ases().is_empty(), "post-recovery convergence");
    let after = sim.next_hop_snapshot();

    (intended, after)
}

/// The deployment of the waned phase of the churn experiment: `a`'s S\*BGP
/// participation has lapsed (an expired ROA, a validator outage) while
/// everyone else keeps running.
pub fn wedgie_wane_deployment(ids: &WedgieIds) -> Deployment {
    Deployment::full_from_iter(5, [ids.d, ids.p, ids.b])
}

/// Run the wedgie as *adoption churn* instead of a link flap: converge,
/// retract `a` from `S` via [`Simulator::set_deployment`], reconverge,
/// restore `a`, reconverge. Returns `(intended, after_recovery)` next-hop
/// snapshots; a wedgie occurred iff they differ.
///
/// The mechanism is the same hysteresis as Figure 1's: during the lapse
/// nothing is secure from `A`'s perspective, so LP sends it to the insecure
/// customer route `A–e–d`, `B` grabs the resulting customer route
/// `B–A–e–d`, and when `A` re-joins, `B` (routing *through* `A`) exports
/// nothing back to it — the secure provider route is gone from `A`'s RIB
/// and the system sticks. No link ever failed: coverage waning and waxing
/// is enough.
pub fn run_wedgie_churn_experiment(
    b_model: SecurityModel,
) -> (Vec<Option<AsId>>, Vec<Option<AsId>>) {
    let (graph, ids) = wedgie_graph();
    let full = wedgie_deployment(&ids);
    let waned = wedgie_wane_deployment(&ids);
    let mut sim = wedgie_simulator(&graph, &ids, &full, b_model);

    sim.run(Schedule::Fifo, 100_000);
    assert!(sim.unstable_ases().is_empty(), "initial convergence");
    let intended = sim.next_hop_snapshot();

    sim.set_deployment(&waned);
    sim.run(Schedule::Fifo, 100_000);

    sim.set_deployment(&full);
    sim.run(Schedule::Fifo, 100_000);
    assert!(sim.unstable_ases().is_empty(), "post-restore convergence");
    let after = sim.next_hop_snapshot();

    (intended, after)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intended_state_uses_the_secure_route() {
        let (graph, ids) = wedgie_graph();
        let deployment = wedgie_deployment(&ids);
        let mut sim = wedgie_simulator(&graph, &ids, &deployment, SecurityModel::Security2nd);
        sim.run(Schedule::Fifo, 100_000);
        let a = sim.selected(ids.a).unwrap();
        assert!(a.secure, "A uses its secure provider route");
        assert_eq!(a.route.path, vec![ids.b, ids.p, ids.d]);
        let b = sim.selected(ids.b).unwrap();
        assert_eq!(b.route.path, vec![ids.p, ids.d]);
    }

    #[test]
    fn failure_and_recovery_wedges_the_system() {
        for model in [SecurityModel::Security2nd, SecurityModel::Security3rd] {
            let (intended, after) = run_wedgie_experiment(model);
            assert_ne!(intended, after, "{model}: system must be wedged");
        }
    }

    #[test]
    fn wedged_state_is_the_customer_route() {
        let (graph, ids) = wedgie_graph();
        let deployment = wedgie_deployment(&ids);
        let mut sim = wedgie_simulator(&graph, &ids, &deployment, SecurityModel::Security2nd);
        sim.run(Schedule::Fifo, 100_000);
        sim.fail_link(ids.p, ids.d);
        sim.run(Schedule::Fifo, 100_000);
        // During the outage, A falls back to the insecure customer route
        // and B happily takes it.
        let a = sim.selected(ids.a).unwrap();
        assert_eq!(a.route.path, vec![ids.e, ids.d]);
        let b = sim.selected(ids.b).unwrap();
        assert_eq!(b.route.path, vec![ids.a, ids.e, ids.d]);

        sim.restore_link(ids.p, ids.d);
        sim.run(Schedule::Fifo, 100_000);
        // B sticks with the customer route; A cannot recover the secure
        // one (B's announcement through it is looped).
        let b = sim.selected(ids.b).unwrap();
        assert_eq!(b.route.path, vec![ids.a, ids.e, ids.d], "B is wedged");
        let a = sim.selected(ids.a).unwrap();
        assert!(!a.secure, "A is stuck on the insecure route");
    }

    #[test]
    fn adoption_churn_wedges_the_system() {
        for model in [SecurityModel::Security2nd, SecurityModel::Security3rd] {
            let (intended, after) = run_wedgie_churn_experiment(model);
            assert_ne!(intended, after, "{model}: churn must wedge the system");
        }
    }

    #[test]
    fn churn_wedged_state_is_the_customer_route() {
        let (graph, ids) = wedgie_graph();
        let full = wedgie_deployment(&ids);
        let waned = wedgie_wane_deployment(&ids);
        let mut sim = wedgie_simulator(&graph, &ids, &full, SecurityModel::Security2nd);
        sim.run(Schedule::Fifo, 100_000);

        sim.set_deployment(&waned);
        sim.run(Schedule::Fifo, 100_000);
        // During the lapse, nothing is secure from A's view: LP rules.
        let a = sim.selected(ids.a).unwrap();
        assert_eq!(a.route.path, vec![ids.e, ids.d]);

        sim.set_deployment(&full);
        sim.run(Schedule::Fifo, 100_000);
        assert!(sim.unstable_ases().is_empty());
        let b = sim.selected(ids.b).unwrap();
        assert_eq!(b.route.path, vec![ids.a, ids.e, ids.d], "B is wedged");
        let a = sim.selected(ids.a).unwrap();
        assert_eq!(a.route.path, vec![ids.e, ids.d]);
        assert!(!a.secure, "A is stuck on the insecure route");
    }

    #[test]
    fn consistent_priorities_do_not_wedge() {
        // With everyone (including A) on the same model, the state after
        // recovery matches the intended state — Theorem 2.1's guarantee.
        for model in SecurityModel::ALL {
            let (graph, ids) = wedgie_graph();
            let deployment = wedgie_deployment(&ids);
            let mut sim = Simulator::new(
                &graph,
                &deployment,
                Policy::new(model),
                AttackScenario::normal(ids.d),
            );
            sim.run(Schedule::Fifo, 100_000);
            let intended = sim.next_hop_snapshot();
            sim.fail_link(ids.p, ids.d);
            sim.run(Schedule::Fifo, 100_000);
            sim.restore_link(ids.p, ids.d);
            sim.run(Schedule::Fifo, 100_000);
            assert_eq!(sim.next_hop_snapshot(), intended, "{model} wedged");
        }
    }
}
