//! Event-driven, message-level BGP/S\*BGP protocol simulator.
//!
//! Where `sbgp-core`'s engine computes stable routing states directly (the
//! paper's Appendix B algorithms), this crate *simulates the protocol*:
//! per-AS RIBs, explicit announcements and withdrawals, a decision process,
//! and valley-free export filters. It exists for three reasons:
//!
//! 1. **Validation.** Theorem 2.1 says the staged algorithms compute the
//!    unique stable state; the property-test suite runs both and checks
//!    they agree on random topologies, deployments and attacks.
//! 2. **Heterogeneous policies.** The engine assumes all ASes place SecP at
//!    the same position. The simulator allows per-AS ranks, which is what
//!    §2.3's *BGP wedgie* (Figure 1) needs: inconsistent SecP priorities
//!    create multiple stable states and non-reverting failures.
//! 3. **Dynamics.** Link failure and recovery ([`Simulator::fail_link`],
//!    [`Simulator::restore_link`]) let experiments walk between stable
//!    states, as in Figure 1.
//!
//! As the reference oracle for the engine's generalized threat model, the
//! simulator speaks the full strategy family: `k`-hop forged paths (whose
//! fabricated intermediate hops come from the top of the AS-id space, so
//! genuine loop prevention never fires on them) and colluding announcer
//! sets, each member flooding its own forged path at once.
//!
//! The simulator is deliberately simple (no timers, no MRAI, one prefix):
//! each message is `(from, to, announcement-or-withdrawal)`; processing a
//! message updates the receiver's RIB, reruns its decision process and
//! emits updates per the export rule. A run ends when the queue drains
//! (convergence) or a message budget is exhausted (reported as possible
//! divergence).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sbgp_core::policy::preference_key;
use sbgp_core::{AttackScenario, Deployment, LpVariant, Policy, SecurityModel};
use sbgp_topology::{AsGraph, AsId, NeighborClass};

/// [`preference_key`] output plus the lowest-neighbor-id tie-break; the
/// full comparison key of the decision process. Lower is better.
type RankedKey = ((u32, u32, u32), u32);

/// The bogus route `strategy` makes `attacker` announce against `d`: the
/// zero-hop `"m"` for an origin hijack, the one-hop `"m, d"` for the
/// paper's fake link, and `"m, x₁ … x_{k-1}, d"` for a `k`-hop forged
/// path. The intermediate hops are *fabricated* AS ids taken from the top
/// of the id space, so no genuine AS ever appears among them and BGP loop
/// prevention never discards the announcement at a real AS — matching the
/// engine, which models only the claimed length.
fn forged_route(attacker: AsId, d: AsId, strategy: sbgp_core::AttackStrategy) -> Route {
    let hops = strategy.root_depth();
    let mut path = Vec::with_capacity(hops as usize + 1);
    path.push(attacker);
    for j in 1..hops {
        path.push(AsId(u32::MAX - (j - 1)));
    }
    if hops >= 1 {
        path.push(d);
    }
    Route {
        path,
        signed: false,
    }
}

/// A route as carried in announcements: the sender's full AS path
/// (sender first, destination last) and whether it was carried over S\*BGP
/// end-to-end so far.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Route {
    /// AS path, `[next_hop, …, destination]`.
    pub path: Vec<AsId>,
    /// True when every hop so far signed the announcement (and the origin
    /// at least signs). The attacker's bogus path is never signed.
    pub signed: bool,
}

impl Route {
    /// Model length of this route at a *receiving* AS (the destination
    /// itself counts 1, matching the engine's `len(neighbor) + 1`).
    pub fn length(&self) -> u32 {
        self.path.len() as u32
    }

    /// True when the path traverses (or claims to traverse) `v`.
    pub fn contains(&self, v: AsId) -> bool {
        self.path.contains(&v)
    }
}

/// What an AS currently uses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Selected {
    /// The neighbor the route was learned from.
    pub neighbor: AsId,
    /// The route as announced by that neighbor.
    pub route: Route,
    /// LP class of the route at this AS.
    pub class: NeighborClass,
    /// True when secure from this AS's perspective (it validates and the
    /// announcement was signed end-to-end).
    pub secure: bool,
}

/// Message processing order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Strict FIFO (deterministic).
    Fifo,
    /// Seeded random message selection — different seeds explore different
    /// BGP activation orders, which is how multiple stable states are
    /// discovered.
    Random(u64),
}

/// Why a run stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The queue drained: the network is in a stable state.
    Converged {
        /// Messages processed before quiescence.
        messages: usize,
    },
    /// The message budget was exhausted — the configuration may oscillate
    /// (possible with inconsistent SecP priorities, cf. §2.3).
    BudgetExhausted,
}

/// A pending link activation: the receiver will read the sender's
/// *current* adj-out entry. Carrying no payload models BGP's implicit
/// supersede semantics and keeps per-link FIFO ordering trivially intact
/// even under random schedules (BGP sessions run over TCP; updates on one
/// session are never reordered).
#[derive(Clone, Copy, Debug)]
struct Message {
    from: AsId,
    to: AsId,
}

/// Counts over source ASes in a simulator state (see
/// [`Simulator::census`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SourceCensus {
    /// Total sources (everyone but the roots).
    pub sources: usize,
    /// Sources on legitimate routes.
    pub happy: usize,
    /// Sources routing to the attacker.
    pub unhappy: usize,
    /// Sources with no route.
    pub routeless: usize,
    /// Sources on secure routes.
    pub secure: usize,
}

/// The protocol simulator for one destination (and optional attacker).
#[derive(Debug)]
pub struct Simulator<'g> {
    graph: &'g AsGraph,
    deployment: Deployment,
    variant: LpVariant,
    /// Per-AS SecP placement (only consulted for validating ASes).
    ranks: Vec<SecurityModel>,
    scenario: AttackScenario,
    /// `rib_in[v]` — latest route announced by each neighbor (dense map
    /// aligned with the graph's neighbor slices).
    rib_in: Vec<Vec<Option<Route>>>,
    /// What `v` last sent to each of its neighbors (same alignment).
    adj_out: Vec<Vec<Option<Route>>>,
    selected: Vec<Option<Selected>>,
    queue: VecDeque<Message>,
    /// Disabled (failed) links, stored with both orientations.
    failed: Vec<(AsId, AsId)>,
    messages_processed: usize,
    /// §8's proposed mitigation: when enabled, an AS holds on to a secure
    /// route it is already using instead of immediately switching to a
    /// "better" insecure one, as long as the secure route stays available.
    hysteresis: bool,
}

impl<'g> Simulator<'g> {
    /// Create a simulator; every AS uses `policy.model` as its SecP rank
    /// (override per AS with [`Simulator::set_rank`]).
    pub fn new(
        graph: &'g AsGraph,
        deployment: &Deployment,
        policy: Policy,
        scenario: AttackScenario,
    ) -> Simulator<'g> {
        assert_eq!(deployment.universe(), graph.len());
        let n = graph.len();
        let mut sim = Simulator {
            graph,
            deployment: deployment.clone(),
            variant: policy.variant,
            ranks: vec![policy.model; n],
            scenario,
            rib_in: (0..n)
                .map(|i| vec![None; graph.degree(AsId(i as u32))])
                .collect(),
            adj_out: (0..n)
                .map(|i| vec![None; graph.degree(AsId(i as u32))])
                .collect(),
            selected: vec![None; n],
            queue: VecDeque::new(),
            failed: Vec::new(),
            messages_processed: 0,
            hysteresis: false,
        };
        sim.announce_roots();
        sim
    }

    /// Override the SecP placement of one AS (for §2.3 mixed-priority
    /// experiments). Must be called before [`Simulator::run`] to affect the
    /// initial convergence.
    pub fn set_rank(&mut self, v: AsId, model: SecurityModel) {
        self.ranks[v.index()] = model;
    }

    /// Enable the paper's §8 "hysteresis" proposal: a secure route in use
    /// is not dropped for an insecure alternative while it remains
    /// available. Protocol downgrades then require actually losing the
    /// secure route, not merely being offered a shinier bogus one.
    pub fn set_hysteresis(&mut self, on: bool) {
        self.hysteresis = on;
    }

    /// Swap the deployment *live*: deliver S\*BGP adoption churn (joins,
    /// retractions, full → simplex downgrades, the destination un-signing)
    /// to an already-converged network and let the change ripple through
    /// ordinary BGP messages. Only two things in the message-level model
    /// read the deployment — the origin's signing bit (baked into `d`'s
    /// announcement) and each AS's `validates` bit (read during selection
    /// and re-signing) — so the swap re-announces the origin when its
    /// signing flipped and re-runs the decision process of every AS whose
    /// `validates` bit flipped; everything downstream propagates via the
    /// queue. Call [`Simulator::run`] afterwards to converge.
    ///
    /// An AS whose own `validates` bit flips re-evaluates from scratch:
    /// hysteresis never pins a route across an administrative validation
    /// flip at the deciding AS itself, since what "secure" means to that AS
    /// just changed.
    ///
    /// # Panics
    ///
    /// Panics when the universe size changes.
    pub fn set_deployment(&mut self, deployment: &Deployment) {
        assert_eq!(deployment.universe(), self.graph.len());
        let old = std::mem::replace(&mut self.deployment, deployment.clone());
        let d = self.scenario.destination;
        if self.deployment.signs_origin(d) != old.signs_origin(d) {
            let d_route = Route {
                path: vec![d],
                signed: self.deployment.signs_origin(d),
            };
            for (slot, &u) in self.graph.neighbors(d).iter().enumerate() {
                if !self.scenario.is_attacker(u) {
                    self.adj_out[d.index()][slot] = Some(d_route.clone());
                    self.queue.push_back(Message { from: d, to: u });
                }
            }
        }
        for v in self.graph.ases() {
            if v == d || self.scenario.is_attacker(v) {
                continue;
            }
            if self.deployment.validates(v) == old.validates(v) {
                continue;
            }
            // Unconditional re-decide + re-export: even when the best path
            // is unchanged, its secure bit (and hence the signed bit of
            // everything `v` re-announces) may have flipped, and `export`
            // already suppresses updates that change nothing.
            self.selected[v.index()] = self.best_route(v);
            self.export(v);
        }
    }

    /// Turn `attacker` hostile *now*: it withdraws whatever it advertised
    /// as an honest participant and floods the bogus announcement of
    /// `strategy` to all neighbors. Models the realistic sequence
    /// "converge under normal conditions, then the attack starts", which is
    /// what makes hysteresis meaningful.
    ///
    /// # Panics
    ///
    /// Panics if an attacker is already present or `attacker` is the
    /// destination.
    pub fn launch_attack(&mut self, attacker: AsId, strategy: sbgp_core::AttackStrategy) {
        assert!(self.scenario.attacker.is_none(), "attack already running");
        assert_ne!(attacker, self.scenario.destination);
        let d = self.scenario.destination;
        // Rebuild the scenario through the constructor rather than
        // assigning the attacker field: a scenario that was disarmed
        // (attacker cleared on a colluding set) may still carry stale
        // accomplices, and re-arming the field alone would resurrect them
        // as announcers that never actually announced.
        let mut scenario = AttackScenario::attack(attacker, d).with_strategy(strategy);
        scenario.mark = self.scenario.mark;
        self.scenario = scenario;
        self.selected[attacker.index()] = None;
        let bogus = forged_route(attacker, d, strategy);
        for (slot, &u) in self.graph.neighbors(attacker).iter().enumerate() {
            if u == d {
                // The destination ignores routes to itself; withdraw.
                self.adj_out[attacker.index()][slot] = None;
            } else {
                self.adj_out[attacker.index()][slot] = Some(bogus.clone());
            }
            self.queue.push_back(Message {
                from: attacker,
                to: u,
            });
        }
    }

    fn neighbor_slot(&self, v: AsId, u: AsId) -> usize {
        self.graph
            .neighbors(v)
            .iter()
            .position(|&x| x == u)
            .expect("u must be a neighbor of v")
    }

    fn link_is_up(&self, a: AsId, b: AsId) -> bool {
        !self
            .failed
            .iter()
            .any(|&(x, y)| (x, y) == (a, b) || (x, y) == (b, a))
    }

    /// Install the root announcements in the roots' adj-out and queue the
    /// corresponding link activations: `d` originates, and every announcer
    /// (one attacker, or a whole colluding set) floods its forged path.
    fn announce_roots(&mut self) {
        let d = self.scenario.destination;
        let d_route = Route {
            path: vec![d],
            signed: self.deployment.signs_origin(d),
        };
        for (slot, &u) in self.graph.neighbors(d).iter().enumerate() {
            if !self.scenario.is_attacker(u) {
                self.adj_out[d.index()][slot] = Some(d_route.clone());
                self.queue.push_back(Message { from: d, to: u });
            }
        }
        for m in self.scenario.attackers() {
            let bogus = forged_route(m, d, self.scenario.strategy);
            for (slot, &u) in self.graph.neighbors(m).iter().enumerate() {
                if u != d {
                    self.adj_out[m.index()][slot] = Some(bogus.clone());
                    self.queue.push_back(Message { from: m, to: u });
                }
            }
        }
    }

    /// Process messages until quiescence or until `budget` messages have
    /// been handled.
    pub fn run(&mut self, schedule: Schedule, budget: usize) -> RunOutcome {
        let mut rng = match schedule {
            Schedule::Fifo => None,
            Schedule::Random(seed) => Some(StdRng::seed_from_u64(seed)),
        };
        let mut processed = 0usize;
        while let Some(msg) = self.next_message(&mut rng) {
            if processed >= budget {
                self.queue.push_front(msg);
                return RunOutcome::BudgetExhausted;
            }
            processed += 1;
            self.messages_processed += 1;
            self.deliver(msg);
        }
        RunOutcome::Converged {
            messages: processed,
        }
    }

    fn next_message(&mut self, rng: &mut Option<StdRng>) -> Option<Message> {
        if self.queue.is_empty() {
            return None;
        }
        match rng {
            None => self.queue.pop_front(),
            Some(r) => {
                let i = r.random_range(0..self.queue.len());
                self.queue.swap(0, i);
                self.queue.pop_front()
            }
        }
    }

    fn deliver(&mut self, msg: Message) {
        if !self.link_is_up(msg.from, msg.to) {
            return; // Message lost with the link.
        }
        let to = msg.to;
        // Roots never select routes: the destination is the origin and
        // announcers ignore real routing information.
        if to == self.scenario.destination || self.scenario.is_attacker(to) {
            return;
        }
        // The payload is whatever the sender currently advertises on this
        // link (implicit supersede).
        let from_slot = self.neighbor_slot(msg.from, to);
        let route = self.adj_out[msg.from.index()][from_slot].clone();
        let slot = self.neighbor_slot(to, msg.from);
        if self.rib_in[to.index()][slot] == route {
            return;
        }
        self.rib_in[to.index()][slot] = route;
        self.reselect(to);
    }

    /// Rerun `v`'s decision process; on change, emit updates per Ex.
    fn reselect(&mut self, v: AsId) {
        let mut best = self.best_route(v);
        // Hysteresis: keep a secure route in use if it is still on offer
        // and the challenger is insecure.
        if self.hysteresis {
            if let Some(cur) = &self.selected[v.index()] {
                let challenger_insecure = best.as_ref().map(|b| !b.secure).unwrap_or(true);
                if cur.secure && challenger_insecure && self.still_available(v, cur) {
                    best = self.selected[v.index()].clone();
                }
            }
        }
        if best == self.selected[v.index()] {
            return;
        }
        self.selected[v.index()] = best;
        self.export(v);
    }

    /// Is `cur` still exactly what its neighbor advertises to `v`?
    fn still_available(&self, v: AsId, cur: &Selected) -> bool {
        let slot = self.neighbor_slot(v, cur.neighbor);
        self.rib_in[v.index()][slot].as_ref() == Some(&cur.route)
    }

    /// The decision process: pick the best loop-free route in `rib_in`.
    ///
    /// `RankedKey` is the policy preference key plus the lowest-neighbor-id
    /// tie-break; see [`preference_key`].
    fn best_route(&self, v: AsId) -> Option<Selected> {
        let vi = v.index();
        let validating = self.deployment.validates(v);
        let policy = Policy::with_variant(self.ranks[vi], self.variant);
        let mut best: Option<(RankedKey, Selected)> = None;
        for (slot, &u) in self.graph.neighbors(v).iter().enumerate() {
            let Some(route) = &self.rib_in[vi][slot] else {
                continue;
            };
            if route.contains(v) {
                continue; // BGP loop prevention.
            }
            let class = self.graph.classify(v, u).expect("adjacent");
            let secure = validating && route.signed;
            let key = preference_key(
                policy,
                validating,
                class_rank(class),
                route.length(),
                route.signed,
            );
            // Deterministic tie-break: lowest neighbor id (the paper's TB
            // is arbitrary intradomain criteria; any fixed rule is a valid
            // instantiation).
            let full_key = (key, u.0);
            let better = match &best {
                None => true,
                Some((k, _)) => full_key < *k,
            };
            if better {
                best = Some((
                    full_key,
                    Selected {
                        neighbor: u,
                        route: route.clone(),
                        class,
                        secure,
                    },
                ));
            }
        }
        best.map(|(_, s)| s)
    }

    /// Send updates/withdrawals to neighbors per the export rule Ex.
    fn export(&mut self, v: AsId) {
        let vi = v.index();
        let (own_route, export_everywhere) = match &self.selected[vi] {
            Some(sel) => {
                let mut path = Vec::with_capacity(sel.route.path.len() + 1);
                path.push(v);
                path.extend_from_slice(&sel.route.path);
                let signed = sel.secure; // v re-signs only when it validates and the path was signed.
                (
                    Some(Route { path, signed }),
                    sel.class == NeighborClass::Customer,
                )
            }
            None => (None, false),
        };
        let neighbors: Vec<(usize, AsId)> = self
            .graph
            .neighbors(v)
            .iter()
            .copied()
            .enumerate()
            .collect();
        for (slot, u) in neighbors {
            let class = self.graph.classify(v, u).expect("adjacent");
            // Ex: customer routes go to everyone; other routes (and the
            // origin's own announcement, which roots handle separately) go
            // to customers only.
            let allowed = export_everywhere || class == NeighborClass::Customer;
            let to_send = if allowed { own_route.clone() } else { None };
            // Never announce a route back into its own next hop... BGP
            // would, but it is always rejected by loop prevention; sending
            // it is harmless yet noisy. Standard split-horizon-free BGP
            // sends it; we suppress only the trivial echo to the next hop.
            let to_send = match (&to_send, &self.selected[vi]) {
                (Some(_), Some(sel)) if sel.neighbor == u => None,
                _ => to_send,
            };
            if self.adj_out[vi][slot] != to_send {
                self.adj_out[vi][slot] = to_send;
                self.queue.push_back(Message { from: v, to: u });
            }
        }
    }

    /// Fail the link between `a` and `b`: both sides lose whatever they
    /// learned over it and re-run their decision processes.
    pub fn fail_link(&mut self, a: AsId, b: AsId) {
        assert!(self.graph.are_adjacent(a, b), "no such link");
        if !self.link_is_up(a, b) {
            return;
        }
        self.failed.push((a, b));
        for (x, y) in [(a, b), (b, a)] {
            if x == self.scenario.destination || self.scenario.is_attacker(x) {
                // Roots keep announcing; their adj_out entry just dies.
                continue;
            }
            let slot = self.neighbor_slot(x, y);
            if self.rib_in[x.index()][slot].is_some() {
                self.rib_in[x.index()][slot] = None;
                self.reselect(x);
            }
        }
    }

    /// Restore a previously failed link; both endpoints re-advertise
    /// whatever their adj-out currently holds for it (adj-out stayed
    /// maintained during the outage; only delivery was suppressed).
    pub fn restore_link(&mut self, a: AsId, b: AsId) {
        let before = self.failed.len();
        self.failed
            .retain(|&(x, y)| !((x, y) == (a, b) || (x, y) == (b, a)));
        if self.failed.len() == before {
            return;
        }
        self.queue.push_back(Message { from: a, to: b });
        self.queue.push_back(Message { from: b, to: a });
    }

    /// The route `v` currently uses.
    pub fn selected(&self, v: AsId) -> Option<&Selected> {
        self.selected[v.index()].as_ref()
    }

    /// True when `v` currently routes to the legitimate destination (its
    /// path avoids every announcer).
    pub fn is_happy(&self, v: AsId) -> Option<bool> {
        let sel = self.selected[v.index()].as_ref()?;
        Some(!self.scenario.attackers().any(|m| sel.route.contains(m)))
    }

    /// Total messages processed so far.
    pub fn messages_processed(&self) -> usize {
        self.messages_processed
    }

    /// Count happy / secure / routeless sources in the current state.
    pub fn census(&self) -> SourceCensus {
        let mut c = SourceCensus::default();
        for v in self.graph.ases() {
            if !self.scenario.is_source(v) {
                continue;
            }
            c.sources += 1;
            match self.is_happy(v) {
                Some(true) => c.happy += 1,
                Some(false) => c.unhappy += 1,
                None => c.routeless += 1,
            }
            if self.selected(v).map(|s| s.secure).unwrap_or(false) {
                c.secure += 1;
            }
        }
        c
    }

    /// What `from` last announced to `to` (diagnostics; `None` both when
    /// nothing was sent and when the route was withdrawn).
    pub fn rib_in_entry(&self, to: AsId, from: AsId) -> Option<&Route> {
        let slot = self.neighbor_slot(to, from);
        self.rib_in[to.index()][slot].as_ref()
    }

    /// Verify the global stability condition of \[GSW02\]: no AS can improve
    /// on its selected route given what neighbors currently advertise to
    /// it. Returns the ids of unstable ASes (empty = stable state).
    pub fn unstable_ases(&self) -> Vec<AsId> {
        let mut out = Vec::new();
        for v in self.graph.ases() {
            if !self.scenario.is_source(v) {
                continue;
            }
            let best = self.best_route(v);
            if best != self.selected[v.index()] {
                out.push(v);
            }
        }
        out
    }

    /// Snapshot of every AS's selected next hop (for comparing stable
    /// states).
    pub fn next_hop_snapshot(&self) -> Vec<Option<AsId>> {
        self.selected
            .iter()
            .map(|s| s.as_ref().map(|s| s.neighbor))
            .collect()
    }
}

fn class_rank(class: NeighborClass) -> u8 {
    match class {
        NeighborClass::Customer => 0,
        NeighborClass::Peer => 1,
        NeighborClass::Provider => 2,
    }
}

pub mod wedgie;

#[cfg(test)]
mod tests {
    use super::*;
    use sbgp_topology::GraphBuilder;

    fn chain() -> AsGraph {
        // d(0) <- p(1) <- t(2); d also has customer c(3).
        let mut b = GraphBuilder::new(4);
        b.add_provider(AsId(0), AsId(1)).unwrap();
        b.add_provider(AsId(1), AsId(2)).unwrap();
        b.add_provider(AsId(3), AsId(0)).unwrap();
        b.build()
    }

    #[test]
    fn converges_on_a_chain() {
        let g = chain();
        let dep = Deployment::empty(4);
        let mut sim = Simulator::new(
            &g,
            &dep,
            Policy::new(SecurityModel::Security3rd),
            AttackScenario::normal(AsId(0)),
        );
        let out = sim.run(Schedule::Fifo, 10_000);
        assert!(matches!(out, RunOutcome::Converged { .. }));
        assert!(sim.unstable_ases().is_empty());
        let p = sim.selected(AsId(1)).unwrap();
        assert_eq!(p.route.path, vec![AsId(0)]);
        assert_eq!(p.class, NeighborClass::Customer);
        let t = sim.selected(AsId(2)).unwrap();
        assert_eq!(t.route.path, vec![AsId(1), AsId(0)]);
        let c = sim.selected(AsId(3)).unwrap();
        assert_eq!(c.class, NeighborClass::Provider);
    }

    #[test]
    fn attacker_attracts_by_fake_edge() {
        // d(0) <- s(1); m(2) is s's customer.
        let mut b = GraphBuilder::new(3);
        b.add_provider(AsId(1), AsId(0)).unwrap();
        b.add_provider(AsId(2), AsId(1)).unwrap();
        let g = b.build();
        let dep = Deployment::empty(3);
        let mut sim = Simulator::new(
            &g,
            &dep,
            Policy::new(SecurityModel::Security3rd),
            AttackScenario::attack(AsId(2), AsId(0)),
        );
        sim.run(Schedule::Fifo, 10_000);
        assert!(sim.unstable_ases().is_empty());
        let s = sim.selected(AsId(1)).unwrap();
        // LP: customer route "m, d" beats the provider route "d".
        assert_eq!(s.route.path, vec![AsId(2), AsId(0)]);
        assert_eq!(sim.is_happy(AsId(1)), Some(false));
    }

    #[test]
    fn secure_routes_are_signed_end_to_end() {
        let g = chain();
        let dep = Deployment::full_from_iter(4, [AsId(0), AsId(1), AsId(2)]);
        let mut sim = Simulator::new(
            &g,
            &dep,
            Policy::new(SecurityModel::Security1st),
            AttackScenario::normal(AsId(0)),
        );
        sim.run(Schedule::Fifo, 10_000);
        assert!(sim.selected(AsId(1)).unwrap().secure);
        assert!(sim.selected(AsId(2)).unwrap().secure);
        // c(3) is not in S: not secure from its own perspective.
        assert!(!sim.selected(AsId(3)).unwrap().secure);
    }

    #[test]
    fn deployment_churn_ripples_signing_bits() {
        // Converge fully secure, then retract the transit hop p(1): t(2)'s
        // route must lose its end-to-end security, and re-joining must
        // restore it — the retraction ripple is ordinary BGP messaging.
        let g = chain();
        let full = Deployment::full_from_iter(4, [AsId(0), AsId(1), AsId(2)]);
        let shrunk = Deployment::full_from_iter(4, [AsId(0), AsId(2)]);
        let mut sim = Simulator::new(
            &g,
            &full,
            Policy::new(SecurityModel::Security1st),
            AttackScenario::normal(AsId(0)),
        );
        sim.run(Schedule::Fifo, 10_000);
        assert!(sim.selected(AsId(2)).unwrap().secure);

        sim.set_deployment(&shrunk);
        let out = sim.run(Schedule::Fifo, 10_000);
        assert!(matches!(out, RunOutcome::Converged { .. }));
        assert!(sim.unstable_ases().is_empty());
        assert!(!sim.selected(AsId(1)).unwrap().secure, "p left S");
        assert!(
            !sim.selected(AsId(2)).unwrap().secure,
            "t's route now has an unsigned transit hop"
        );
        // The churned state must equal a fresh convergence at the final
        // deployment (the chain has a unique stable state).
        let mut fresh = Simulator::new(
            &g,
            &shrunk,
            Policy::new(SecurityModel::Security1st),
            AttackScenario::normal(AsId(0)),
        );
        fresh.run(Schedule::Fifo, 10_000);
        for v in g.ases() {
            assert_eq!(sim.selected(v), fresh.selected(v), "churn vs fresh at {v}");
        }

        sim.set_deployment(&full);
        sim.run(Schedule::Fifo, 10_000);
        assert!(sim.selected(AsId(2)).unwrap().secure, "re-join restores");
    }

    #[test]
    fn destination_unsigning_churn_withdraws_security() {
        let g = chain();
        let full = Deployment::full_from_iter(4, [AsId(0), AsId(1), AsId(2)]);
        let unsigned = Deployment::full_from_iter(4, [AsId(1), AsId(2)]);
        let mut sim = Simulator::new(
            &g,
            &full,
            Policy::new(SecurityModel::Security2nd),
            AttackScenario::normal(AsId(0)),
        );
        sim.run(Schedule::Fifo, 10_000);
        assert!(sim.selected(AsId(1)).unwrap().secure);

        sim.set_deployment(&unsigned);
        sim.run(Schedule::Fifo, 10_000);
        assert!(sim.unstable_ases().is_empty());
        for v in [AsId(1), AsId(2), AsId(3)] {
            assert!(
                !sim.selected(v).unwrap().secure,
                "{v}: no route is secure once d stops signing"
            );
            assert!(sim.is_happy(v).unwrap(), "{v}: reachability is unaffected");
        }
    }

    #[test]
    fn link_failure_and_recovery_reconverge() {
        let g = chain();
        let dep = Deployment::empty(4);
        let mut sim = Simulator::new(
            &g,
            &dep,
            Policy::new(SecurityModel::Security3rd),
            AttackScenario::normal(AsId(0)),
        );
        sim.run(Schedule::Fifo, 10_000);
        let before = sim.next_hop_snapshot();

        sim.fail_link(AsId(0), AsId(1));
        sim.run(Schedule::Fifo, 10_000);
        assert!(sim.selected(AsId(1)).is_none(), "p lost its only route");
        assert!(sim.selected(AsId(2)).is_none(), "t transitively");

        sim.restore_link(AsId(0), AsId(1));
        sim.run(Schedule::Fifo, 10_000);
        assert_eq!(sim.next_hop_snapshot(), before, "chain has a unique state");
        assert!(sim.unstable_ases().is_empty());
    }

    #[test]
    fn budget_exhaustion_is_reported_and_resumable() {
        let g = chain();
        let dep = Deployment::empty(4);
        let mut sim = Simulator::new(
            &g,
            &dep,
            Policy::new(SecurityModel::Security3rd),
            AttackScenario::normal(AsId(0)),
        );
        assert_eq!(sim.run(Schedule::Fifo, 1), RunOutcome::BudgetExhausted);
        // Resuming finishes the job.
        assert!(matches!(
            sim.run(Schedule::Fifo, 100_000),
            RunOutcome::Converged { .. }
        ));
        assert!(sim.unstable_ases().is_empty());
        assert!(sim.messages_processed() >= 1);
    }

    #[test]
    fn random_schedule_is_deterministic_per_seed() {
        let g = chain();
        let dep = Deployment::empty(4);
        let run = |seed| {
            let mut sim = Simulator::new(
                &g,
                &dep,
                Policy::new(SecurityModel::Security3rd),
                AttackScenario::normal(AsId(0)),
            );
            let out = sim.run(Schedule::Random(seed), 100_000);
            let msgs = match out {
                RunOutcome::Converged { messages } => messages,
                other => panic!("{other:?}"),
            };
            (msgs, sim.next_hop_snapshot())
        };
        assert_eq!(run(7), run(7), "same seed, same trajectory");
    }

    #[test]
    fn launched_attack_matches_cold_start() {
        // Converging first and then launching the attack must reach the
        // same stable state as starting with the attacker present
        // (Theorem 2.1: the stable state is unique).
        let mut b = GraphBuilder::new(4);
        b.add_provider(AsId(1), AsId(0)).unwrap();
        b.add_provider(AsId(2), AsId(1)).unwrap();
        b.add_provider(AsId(3), AsId(1)).unwrap();
        let g = b.build();
        let dep = Deployment::empty(4);
        let policy = Policy::new(SecurityModel::Security3rd);

        let mut cold = Simulator::new(&g, &dep, policy, AttackScenario::attack(AsId(2), AsId(0)));
        cold.run(Schedule::Fifo, 100_000);

        let mut warm = Simulator::new(&g, &dep, policy, AttackScenario::normal(AsId(0)));
        warm.run(Schedule::Fifo, 100_000);
        warm.launch_attack(AsId(2), sbgp_core::AttackStrategy::FakeLink);
        warm.run(Schedule::Fifo, 100_000);

        assert_eq!(cold.next_hop_snapshot(), warm.next_hop_snapshot());
        assert!(warm.unstable_ases().is_empty());
    }

    #[test]
    fn hysteresis_blocks_the_figure2_downgrade() {
        // Figure 2 gadget: the victim (1) downgrades under security 3rd —
        // unless hysteresis lets it keep the secure route it was using.
        let mut b = GraphBuilder::new(6);
        b.add_provider(AsId(1), AsId(0)).unwrap();
        b.add_peering(AsId(1), AsId(2)).unwrap();
        b.add_peering(AsId(0), AsId(2)).unwrap();
        b.add_provider(AsId(3), AsId(2)).unwrap();
        b.add_provider(AsId(4), AsId(3)).unwrap();
        b.add_provider(AsId(5), AsId(0)).unwrap();
        let g = b.build();
        let dep = Deployment::full_from_iter(6, [AsId(0), AsId(1), AsId(2)]);
        let policy = Policy::new(SecurityModel::Security3rd);

        for (hysteresis, expect_secure) in [(false, false), (true, true)] {
            let mut sim = Simulator::new(&g, &dep, policy, AttackScenario::normal(AsId(0)));
            sim.set_hysteresis(hysteresis);
            sim.run(Schedule::Fifo, 100_000);
            assert!(
                sim.selected(AsId(1)).unwrap().secure,
                "secure before attack"
            );

            sim.launch_attack(AsId(4), sbgp_core::AttackStrategy::FakeLink);
            sim.run(Schedule::Fifo, 100_000);
            let victim = sim.selected(AsId(1)).unwrap();
            assert_eq!(
                victim.secure, expect_secure,
                "hysteresis={hysteresis}: victim secure={}",
                victim.secure
            );
            let census = sim.census();
            assert_eq!(census.sources, 4);
            if hysteresis {
                assert_eq!(sim.is_happy(AsId(1)), Some(true));
                assert!(census.secure >= 1);
            }
        }
    }

    #[test]
    fn forged_paths_claim_the_right_lengths() {
        use sbgp_core::AttackStrategy;
        let (m, d) = (AsId(3), AsId(0));
        assert_eq!(
            forged_route(m, d, AttackStrategy::OriginHijack).path,
            vec![m]
        );
        assert_eq!(
            forged_route(m, d, AttackStrategy::FakeLink).path,
            vec![m, d]
        );
        for hops in 0..5u8 {
            let r = forged_route(m, d, AttackStrategy::FakePath { hops });
            assert_eq!(r.length(), u32::from(hops) + 1);
            assert!(!r.signed);
            assert!(r.contains(m));
            assert_eq!(r.path.last() == Some(&d), hops >= 1, "tail claims d");
            // Fabricated hops sit at the top of the id space: no real AS.
            if hops >= 2 {
                for &x in &r.path[1..r.path.len() - 1] {
                    assert!(x.0 > u32::MAX - 8, "fabricated hop {x}");
                }
            }
        }
    }

    #[test]
    fn longer_forged_paths_attract_less() {
        // d(0) <- p(1) <- t(2), with a bystander w(3) also buying from t.
        // m(4) peers with t. A short forged path ties or beats t's 2-hop
        // customer route; a long one loses on length.
        let mut b = GraphBuilder::new(5);
        b.add_provider(AsId(0), AsId(1)).unwrap();
        b.add_provider(AsId(1), AsId(2)).unwrap();
        b.add_provider(AsId(3), AsId(2)).unwrap();
        b.add_peering(AsId(4), AsId(2)).unwrap();
        let g = b.build();
        let dep = Deployment::empty(5);
        let policy = Policy::new(SecurityModel::Security3rd);
        let t_unhappy = |hops: u8| {
            let mut sim = Simulator::new(
                &g,
                &dep,
                policy,
                AttackScenario::attack(AsId(4), AsId(0))
                    .with_strategy(sbgp_core::AttackStrategy::FakePath { hops }),
            );
            sim.run(Schedule::Fifo, 100_000);
            assert!(sim.unstable_ases().is_empty());
            sim.is_happy(AsId(2)) == Some(false)
        };
        // Under standard LP the bogus peer offer never beats t's customer
        // route, whatever its claimed length; under LP2 the claimed length
        // decides, so the strategy choice becomes meaningful.
        assert!(!t_unhappy(1), "standard LP: customer route survives");
        let lp2 = Policy::with_variant(SecurityModel::Security3rd, sbgp_core::LpVariant::LpK(2));
        let t_unhappy_lp2 = |hops: u8| {
            let mut sim = Simulator::new(
                &g,
                &dep,
                lp2,
                AttackScenario::attack(AsId(4), AsId(0))
                    .with_strategy(sbgp_core::AttackStrategy::FakePath { hops }),
            );
            sim.run(Schedule::Fifo, 100_000);
            assert!(sim.unstable_ases().is_empty());
            sim.is_happy(AsId(2)) == Some(false)
        };
        // LP2: P(1) (hijack at t's peer) beats C(2); a 3-hop forged path
        // arrives as P(4) and loses to C(2). Strategy choice matters.
        assert!(t_unhappy_lp2(0), "short forged path wins under LP2");
        assert!(!t_unhappy_lp2(3), "long forged path loses under LP2");
    }

    #[test]
    fn colluding_announcers_flood_together() {
        // Two provider branches off d, each with a source whose legitimate
        // route is provider-class: a branch's own attacker captures it
        // with a customer-class forged path; colluding captures both.
        // ids: 0=d; 1=x (provider of d), 2=s1 (customer of x), 3=m1
        // (customer of s1); 4=y, 5=s2, 6=m2 mirror the branch.
        let mut b = GraphBuilder::new(7);
        b.add_provider(AsId(0), AsId(1)).unwrap();
        b.add_provider(AsId(2), AsId(1)).unwrap();
        b.add_provider(AsId(3), AsId(2)).unwrap();
        b.add_provider(AsId(0), AsId(4)).unwrap();
        b.add_provider(AsId(5), AsId(4)).unwrap();
        b.add_provider(AsId(6), AsId(5)).unwrap();
        let g = b.build();
        let dep = Deployment::empty(7);
        let policy = Policy::new(SecurityModel::Security3rd);

        let mut solo = Simulator::new(&g, &dep, policy, AttackScenario::attack(AsId(3), AsId(0)));
        solo.run(Schedule::Fifo, 100_000);
        assert_eq!(solo.is_happy(AsId(2)), Some(false), "s1 captured by m1");
        assert_eq!(solo.is_happy(AsId(5)), Some(true), "s2 safe from m1");

        let scenario = AttackScenario::colluding(&[AsId(3), AsId(6)], AsId(0));
        let mut sim = Simulator::new(&g, &dep, policy, scenario);
        sim.run(Schedule::Fifo, 100_000);
        assert!(sim.unstable_ases().is_empty());
        assert_eq!(sim.is_happy(AsId(2)), Some(false), "s1 captured by m1");
        assert_eq!(sim.is_happy(AsId(5)), Some(false), "s2 captured by m2");
        assert_eq!(sim.is_happy(AsId(1)), Some(true), "x keeps the short route");
        let c = sim.census();
        assert_eq!(c.sources, 4, "both colluders leave the source pool");
        assert_eq!(c.unhappy, 2);
        assert_eq!(c.happy, 2);
    }

    #[test]
    fn launch_attack_never_rearms_stale_accomplices() {
        // A colluding scenario disarmed by clearing the primary attacker
        // must stay disarmed when launch_attack installs a new attacker:
        // the old accomplice never announced and must count as a source.
        let mut b = GraphBuilder::new(5);
        b.add_provider(AsId(1), AsId(0)).unwrap();
        b.add_provider(AsId(2), AsId(1)).unwrap();
        b.add_provider(AsId(3), AsId(1)).unwrap();
        b.add_provider(AsId(4), AsId(1)).unwrap();
        let g = b.build();
        let dep = Deployment::empty(5);
        let mut scenario = AttackScenario::colluding(&[AsId(2), AsId(3)], AsId(0));
        scenario.attacker = None; // the documented disarm path
        let mut sim = Simulator::new(&g, &dep, Policy::new(SecurityModel::Security3rd), scenario);
        sim.run(Schedule::Fifo, 100_000);
        assert_eq!(sim.census().sources, 4, "disarmed: everyone is a source");
        sim.launch_attack(AsId(4), sbgp_core::AttackStrategy::FakeLink);
        sim.run(Schedule::Fifo, 100_000);
        let c = sim.census();
        assert_eq!(c.sources, 3, "only the new attacker leaves the pool");
        // A stale-armed accomplice would be a mute root with no route; an
        // ordinary source selects one (here the bogus customer route that
        // beats s(1)'s provider route, like every other source).
        assert!(sim.selected(AsId(3)).is_some(), "accomplice routes again");
        assert_eq!(sim.is_happy(AsId(3)), Some(false));
        assert_eq!(c.routeless, 0);
        assert!(sim.unstable_ases().is_empty());
    }

    #[test]
    fn census_counts_are_consistent() {
        let mut b = GraphBuilder::new(4);
        b.add_provider(AsId(1), AsId(0)).unwrap();
        b.add_provider(AsId(2), AsId(1)).unwrap();
        // 3 is isolated.
        let g = b.build();
        let dep = Deployment::empty(4);
        let mut sim = Simulator::new(
            &g,
            &dep,
            Policy::new(SecurityModel::Security3rd),
            AttackScenario::attack(AsId(2), AsId(0)),
        );
        sim.run(Schedule::Fifo, 100_000);
        let c = sim.census();
        assert_eq!(c.sources, 2);
        assert_eq!(c.happy + c.unhappy + c.routeless, c.sources);
        assert_eq!(c.routeless, 1, "the isolated AS");
    }

    #[test]
    fn random_schedules_converge_to_the_same_state_when_consistent() {
        // Theorem 2.1 smoke test on a small mesh.
        let mut b = GraphBuilder::new(6);
        b.add_provider(AsId(0), AsId(1)).unwrap();
        b.add_provider(AsId(0), AsId(2)).unwrap();
        b.add_peering(AsId(1), AsId(2)).unwrap();
        b.add_provider(AsId(1), AsId(3)).unwrap();
        b.add_provider(AsId(2), AsId(3)).unwrap();
        b.add_provider(AsId(4), AsId(1)).unwrap();
        b.add_provider(AsId(5), AsId(2)).unwrap();
        b.add_peering(AsId(4), AsId(5)).unwrap();
        let g = b.build();
        let dep = Deployment::full_from_iter(6, [AsId(0), AsId(1), AsId(4)]);
        let mut first: Option<Vec<Option<AsId>>> = None;
        for seed in 0..8u64 {
            let mut sim = Simulator::new(
                &g,
                &dep,
                Policy::new(SecurityModel::Security2nd),
                AttackScenario::attack(AsId(5), AsId(0)),
            );
            let out = sim.run(Schedule::Random(seed), 100_000);
            assert!(matches!(out, RunOutcome::Converged { .. }));
            assert!(sim.unstable_ases().is_empty());
            let snap = sim.next_hop_snapshot();
            match &first {
                None => first = Some(snap),
                Some(f) => assert_eq!(&snap, f, "seed {seed} diverged"),
            }
        }
    }
}
