//! **Max-k-Security** (§5.1, Theorem 5.1, Appendix I).
//!
//! *Given an AS graph, an attacker–destination pair `(m, d)` and a budget
//! `k`, find the `k` ASes whose S\*BGP deployment maximizes the number of
//! happy sources.* The paper proves this NP-hard in all three routing
//! models by reduction from Set Cover (Figure 18); this crate implements:
//!
//! * [`SetCoverInstance`] and the Figure 18 [`reduce`] gadget, which
//!   translates a cover instance into a `Max-k-Security` instance such
//!   that a `γ`-cover exists iff `k = n + γ + 1` secure ASes can make
//!   every source happy;
//! * [`happy_lower_bound`] — the objective (adversarial tie-breaking, the
//!   paper's lower-bound convention, which the gadget's "TB prefers `m`"
//!   requirement matches exactly);
//! * [`brute_force`] — exact optimizer by exhaustive subset enumeration
//!   (small graphs only);
//! * [`greedy`] — the natural polynomial-time heuristic, for comparing
//!   against [`brute_force`] and for picking early adopters in examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sbgp_core::{AttackScenario, Deployment, Engine, Policy};
use sbgp_topology::{AsGraph, AsId, GraphBuilder};

/// A Set Cover instance: `sets` over the universe `{0, …, universe−1}`.
#[derive(Clone, Debug)]
pub struct SetCoverInstance {
    /// Universe size `n`.
    pub universe: usize,
    /// The family `F` of subsets.
    pub sets: Vec<Vec<usize>>,
}

impl SetCoverInstance {
    /// Does this family of set indices cover the universe?
    pub fn is_cover(&self, chosen: &[usize]) -> bool {
        let mut covered = vec![false; self.universe];
        for &s in chosen {
            for &e in &self.sets[s] {
                covered[e] = true;
            }
        }
        covered.iter().all(|&c| c)
    }

    /// Smallest cover size, by exhaustive search (small instances only).
    pub fn minimum_cover(&self) -> Option<usize> {
        let w = self.sets.len();
        assert!(w <= 20, "exhaustive cover search limited to 20 sets");
        for size in 0..=w {
            let mut found = false;
            for_each_subset(w, size, |chosen| {
                if !found && self.is_cover(chosen) {
                    found = true;
                }
            });
            if found {
                return Some(size);
            }
        }
        None
    }
}

/// The Figure 18 gadget: ids of the constructed Max-k-Security instance.
#[derive(Clone, Debug)]
pub struct Gadget {
    /// The constructed AS graph.
    pub graph: AsGraph,
    /// The legitimate destination.
    pub destination: AsId,
    /// The attacker.
    pub attacker: AsId,
    /// One AS per universe element.
    pub elements: Vec<AsId>,
    /// One AS per set in the family.
    pub sets: Vec<AsId>,
}

/// Build the Figure 18 reduction for a Set Cover instance.
///
/// Layout: the destination `d` is a customer of every *set* AS `s_j`; each
/// set AS is a customer of the *element* ASes of the elements it contains;
/// the attacker `m` is a customer of every element AS. All perceivable
/// routes at an element AS are two-hop customer routes (the bogus "m, d"
/// claims length 2), so under adversarial tie-breaking an element AS is
/// happy iff it has a **secure** route — which requires `d`, the element,
/// and some covering set AS to all be secure.
pub fn reduce(instance: &SetCoverInstance) -> Gadget {
    let n = instance.universe;
    let w = instance.sets.len();
    // ids: 0 = d, 1 = m, 2..2+w = set ASes, 2+w.. = element ASes.
    let mut b = GraphBuilder::new(2 + w + n);
    let destination = AsId(0);
    let attacker = AsId(1);
    let sets: Vec<AsId> = (0..w).map(|j| AsId(2 + j as u32)).collect();
    let elements: Vec<AsId> = (0..n).map(|i| AsId(2 + w as u32 + i as u32)).collect();

    for (j, members) in instance.sets.iter().enumerate() {
        // d is a customer of s_j.
        b.add_provider(destination, sets[j]).expect("d -> set");
        for &e in members {
            assert!(e < n, "element out of range");
            // s_j is a customer of e's AS.
            b.add_provider(sets[j], elements[e])
                .expect("set -> element");
        }
    }
    for &e in &elements {
        // m is a customer of every element AS.
        b.add_provider(attacker, e).expect("m -> element");
    }

    Gadget {
        graph: b.build(),
        destination,
        attacker,
        elements,
        sets,
    }
}

/// Count surely-happy sources (the adversarial-tie-break lower bound of
/// §4.1) for deployment `S`.
pub fn happy_lower_bound(
    graph: &AsGraph,
    m: AsId,
    d: AsId,
    secure: &[AsId],
    policy: Policy,
) -> usize {
    let deployment = Deployment::full_from_iter(graph.len(), secure.iter().copied());
    let mut engine = Engine::new(graph);
    let outcome = engine.compute(AttackScenario::attack(m, d), &deployment, policy);
    outcome.count_happy().0
}

/// Result of an optimizer run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Optimized {
    /// The best deployment found (size ≤ k).
    pub secure: Vec<AsId>,
    /// Surely-happy sources it achieves.
    pub happy: usize,
}

/// Exact Max-k-Security by exhaustive enumeration over all `k`-subsets of
/// `V \ {m}`.
///
/// # Panics
///
/// Panics when `C(|V|−1, k)` would exceed ~2 million subsets.
pub fn brute_force(graph: &AsGraph, m: AsId, d: AsId, k: usize, policy: Policy) -> Optimized {
    let candidates: Vec<AsId> = graph.ases().filter(|&v| v != m).collect();
    let combos = binomial(candidates.len(), k);
    assert!(
        combos <= 2_000_000,
        "brute force infeasible: C({}, {k}) = {combos}",
        candidates.len()
    );
    let deployment_len = graph.len();
    let mut engine = Engine::new(graph);
    let mut best = Optimized {
        secure: Vec::new(),
        happy: 0,
    };
    for_each_subset(candidates.len(), k, |chosen| {
        let secure: Vec<AsId> = chosen.iter().map(|&i| candidates[i]).collect();
        let deployment = Deployment::full_from_iter(deployment_len, secure.iter().copied());
        let outcome = engine.compute(AttackScenario::attack(m, d), &deployment, policy);
        let happy = outcome.count_happy().0;
        if happy > best.happy {
            best = Optimized { secure, happy };
        }
    });
    best
}

/// Greedy Max-k-Security: repeatedly secure the AS that maximizes the
/// happy lower bound. Polynomial (`O(k · |V| · (|V|+|E|))`) but, per
/// Theorem 5.1, not optimal in general.
pub fn greedy(graph: &AsGraph, m: AsId, d: AsId, k: usize, policy: Policy) -> Optimized {
    let mut engine = Engine::new(graph);
    let mut secure: Vec<AsId> = Vec::with_capacity(k);
    let mut deployment = Deployment::empty(graph.len());
    let mut best_happy = {
        let o = engine.compute(AttackScenario::attack(m, d), &deployment, policy);
        o.count_happy().0
    };
    for _ in 0..k {
        let mut round_best: Option<(usize, AsId)> = None;
        for v in graph.ases() {
            if v == m || deployment.validates(v) {
                continue;
            }
            let mut trial = deployment.clone();
            trial.insert_full(v);
            let o = engine.compute(AttackScenario::attack(m, d), &trial, policy);
            let happy = o.count_happy().0;
            if round_best.map(|(h, _)| happy > h).unwrap_or(true) {
                round_best = Some((happy, v));
            }
        }
        let Some((happy, v)) = round_best else { break };
        deployment.insert_full(v);
        secure.push(v);
        best_happy = best_happy.max(happy);
    }
    Optimized {
        secure,
        happy: best_happy,
    }
}

/// Visit every `size`-subset of `{0, …, n−1}` (lexicographic).
fn for_each_subset(n: usize, size: usize, mut visit: impl FnMut(&[usize])) {
    if size > n {
        return;
    }
    let mut idx: Vec<usize> = (0..size).collect();
    loop {
        visit(&idx);
        // Advance to the next combination.
        let mut i = size;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if idx[i] != i + n - size {
                break;
            }
            if i == 0 {
                return;
            }
        }
        idx[i] += 1;
        for j in i + 1..size {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc * (n - i) as u128 / (i + 1) as u128;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgp_core::SecurityModel;

    fn policies() -> [Policy; 3] {
        [
            Policy::new(SecurityModel::Security1st),
            Policy::new(SecurityModel::Security2nd),
            Policy::new(SecurityModel::Security3rd),
        ]
    }

    /// {0,1}, {1,2}, {0,2}: minimum cover is 2.
    fn triangle_instance() -> SetCoverInstance {
        SetCoverInstance {
            universe: 3,
            sets: vec![vec![0, 1], vec![1, 2], vec![0, 2]],
        }
    }

    #[test]
    fn subset_enumeration_is_complete() {
        let mut count = 0;
        for_each_subset(5, 3, |s| {
            assert_eq!(s.len(), 3);
            count += 1;
        });
        assert_eq!(count, 10);
        assert_eq!(binomial(5, 3), 10);
        assert_eq!(binomial(40, 2), 780);
    }

    #[test]
    fn minimum_cover_on_triangle() {
        assert_eq!(triangle_instance().minimum_cover(), Some(2));
    }

    #[test]
    fn uncoverable_instance() {
        let inst = SetCoverInstance {
            universe: 2,
            sets: vec![vec![0]],
        };
        assert_eq!(inst.minimum_cover(), None);
    }

    #[test]
    fn gadget_structure_matches_figure18() {
        let g = reduce(&triangle_instance());
        assert_eq!(g.graph.len(), 2 + 3 + 3);
        // d's providers are the set ASes; m's providers are the elements.
        assert_eq!(g.graph.providers(g.destination), g.sets.as_slice());
        assert_eq!(g.graph.providers(g.attacker), g.elements.as_slice());
        // Set AS 0 = {0,1}: its providers are elements 0 and 1.
        assert_eq!(
            g.graph.providers(g.sets[0]),
            &[g.elements[0], g.elements[1]]
        );
    }

    #[test]
    fn cover_gives_all_happy_and_below_budget_does_not() {
        let inst = triangle_instance();
        let gamma = inst.minimum_cover().unwrap();
        let gadget = reduce(&inst);
        let (n, w) = (inst.universe, inst.sets.len());
        let all_sources = n + w;

        for policy in policies() {
            // k = n + γ + 1 suffices: d, the elements, and a cover.
            let mut secure = vec![gadget.destination];
            secure.extend(&gadget.elements);
            secure.push(gadget.sets[0]);
            secure.push(gadget.sets[1]); // {0,1} ∪ {1,2} covers.
            let happy = happy_lower_bound(
                &gadget.graph,
                gadget.attacker,
                gadget.destination,
                &secure,
                policy,
            );
            assert_eq!(happy, all_sources, "{policy}: cover must win");

            // Exhaustive check: no (n + γ) deployment achieves it.
            let best = brute_force(
                &gadget.graph,
                gadget.attacker,
                gadget.destination,
                n + gamma,
                policy,
            );
            assert!(
                best.happy < all_sources,
                "{policy}: {} secure ASes cannot protect everyone",
                n + gamma
            );

            // ... while the optimum at n + γ + 1 does.
            let best = brute_force(
                &gadget.graph,
                gadget.attacker,
                gadget.destination,
                n + gamma + 1,
                policy,
            );
            assert_eq!(best.happy, all_sources, "{policy}");
        }
    }

    #[test]
    fn element_ases_are_torn_without_security() {
        // With S = ∅ every element AS has equally-good two-hop customer
        // routes to d and to m: the adversarial bound counts them unhappy,
        // while set ASes stay happy (customer beats provider).
        let gadget = reduce(&triangle_instance());
        let happy = happy_lower_bound(
            &gadget.graph,
            gadget.attacker,
            gadget.destination,
            &[],
            Policy::new(SecurityModel::Security3rd),
        );
        assert_eq!(happy, 3, "only the set ASes are surely happy");
    }

    #[test]
    fn greedy_is_bounded_by_brute_force() {
        let inst = SetCoverInstance {
            universe: 3,
            sets: vec![vec![0], vec![1], vec![2], vec![0, 1, 2]],
        };
        let gadget = reduce(&inst);
        for k in 1..=5 {
            let g = greedy(
                &gadget.graph,
                gadget.attacker,
                gadget.destination,
                k,
                Policy::new(SecurityModel::Security3rd),
            );
            let b = brute_force(
                &gadget.graph,
                gadget.attacker,
                gadget.destination,
                k,
                Policy::new(SecurityModel::Security3rd),
            );
            assert!(
                g.happy <= b.happy,
                "k={k}: greedy {} > brute {}",
                g.happy,
                b.happy
            );
            assert!(g.secure.len() <= k);
        }
    }

    #[test]
    fn greedy_is_suboptimal_exactly_as_the_theorem_predicts() {
        // A secure route needs d + an element + a covering set to be
        // secured *simultaneously*, so single-AS marginal gains are zero
        // and the myopic greedy wastes budget on the wrong sets — while
        // the exact optimizer protects everyone with the same budget.
        // This is the submodularity failure behind Theorem 5.1.
        let inst = SetCoverInstance {
            universe: 3,
            sets: vec![vec![0], vec![0, 1, 2]],
        };
        let gadget = reduce(&inst);
        let k = inst.universe + 2; // d + 3 elements + the big set
        let policy = Policy::new(SecurityModel::Security2nd);
        let b = brute_force(
            &gadget.graph,
            gadget.attacker,
            gadget.destination,
            k,
            policy,
        );
        assert_eq!(
            b.happy,
            inst.universe + inst.sets.len(),
            "optimum protects all"
        );
        let g = greedy(
            &gadget.graph,
            gadget.attacker,
            gadget.destination,
            k,
            policy,
        );
        assert!(
            g.happy < b.happy,
            "greedy {} should fall short of the optimum {}",
            g.happy,
            b.happy
        );
    }
}
