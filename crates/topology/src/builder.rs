//! Validated construction of [`AsGraph`]s from edge lists.

use std::collections::HashMap;

use crate::error::TopologyError;
use crate::graph::{AsGraph, AsId, Relationship};

/// Incremental, validated builder for [`AsGraph`].
///
/// Duplicate declarations of the same relationship are idempotent;
/// contradictory declarations (e.g. `a` peers `b` and `a` is provider of
/// `b`) are rejected. Peering between two ASes that already have a
/// customer/provider edge is likewise rejected — the routing models assume a
/// single relationship per adjacency.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    /// Relationship per normalized pair `(min, max)`; the flag records
    /// whether `min` is the customer (`true`) or the provider (`false`) for
    /// customer→provider edges.
    edges: HashMap<(u32, u32), EdgeKind>,
    asn_labels: Vec<u32>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EdgeKind {
    /// `min` pair member is the customer of `max`.
    MinIsCustomer,
    /// `max` pair member is the customer of `min`.
    MaxIsCustomer,
    Peer,
}

impl GraphBuilder {
    /// Create a builder for a graph of `n` ASes with ids `0..n`.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: HashMap::new(),
            asn_labels: Vec::new(),
        }
    }

    /// Number of ASes this builder was created with.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the builder covers zero ASes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Attach real-world ASN labels (index = AS id). Lengths other than `n`
    /// are rejected at [`build`](Self::build) time via truncation/padding
    /// being refused — pass exactly `n` labels.
    pub fn set_asn_labels(&mut self, labels: Vec<u32>) {
        self.asn_labels = labels;
    }

    fn check(&self, a: AsId, b: AsId) -> Result<(), TopologyError> {
        for id in [a, b] {
            if id.index() >= self.n {
                return Err(TopologyError::IdOutOfRange { id, len: self.n });
            }
        }
        if a == b {
            return Err(TopologyError::SelfLoop(a));
        }
        Ok(())
    }

    fn insert(&mut self, a: AsId, b: AsId, kind: EdgeKind) -> Result<(), TopologyError> {
        self.check(a, b)?;
        let (key, kind) = if a.0 <= b.0 {
            ((a.0, b.0), kind)
        } else {
            let flipped = match kind {
                EdgeKind::MinIsCustomer => EdgeKind::MaxIsCustomer,
                EdgeKind::MaxIsCustomer => EdgeKind::MinIsCustomer,
                EdgeKind::Peer => EdgeKind::Peer,
            };
            ((b.0, a.0), flipped)
        };
        match self.edges.insert(key, kind) {
            None => Ok(()),
            Some(prev) if prev == kind => Ok(()),
            Some(_) => Err(TopologyError::ConflictingRelationship(a, b)),
        }
    }

    /// Declare that `customer` buys transit from `provider`.
    pub fn add_provider(&mut self, customer: AsId, provider: AsId) -> Result<(), TopologyError> {
        self.insert(customer, provider, EdgeKind::MinIsCustomer)
    }

    /// Declare a settlement-free peering between `a` and `b`.
    pub fn add_peering(&mut self, a: AsId, b: AsId) -> Result<(), TopologyError> {
        self.insert(a, b, EdgeKind::Peer)
    }

    /// Declare an edge by [`Relationship`], read from `a`'s perspective
    /// (`a` is the customer for [`Relationship::CustomerToProvider`]).
    pub fn add_edge(&mut self, a: AsId, b: AsId, rel: Relationship) -> Result<(), TopologyError> {
        match rel {
            Relationship::CustomerToProvider => self.add_provider(a, b),
            Relationship::PeerToPeer => self.add_peering(a, b),
        }
    }

    /// True when the pair already has an edge of any kind.
    pub fn has_edge(&self, a: AsId, b: AsId) -> bool {
        let key = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        self.edges.contains_key(&key)
    }

    /// Finalize into a CSR [`AsGraph`].
    pub fn build(self) -> AsGraph {
        let n = self.n;
        // Per-AS neighbor lists in the three classes.
        let mut customers: Vec<Vec<AsId>> = vec![Vec::new(); n];
        let mut peers: Vec<Vec<AsId>> = vec![Vec::new(); n];
        let mut providers: Vec<Vec<AsId>> = vec![Vec::new(); n];
        let mut num_c2p = 0usize;
        let mut num_p2p = 0usize;

        for (&(lo, hi), &kind) in &self.edges {
            let (lo, hi) = (AsId(lo), AsId(hi));
            match kind {
                EdgeKind::MinIsCustomer => {
                    // lo is customer of hi.
                    providers[lo.index()].push(hi);
                    customers[hi.index()].push(lo);
                    num_c2p += 1;
                }
                EdgeKind::MaxIsCustomer => {
                    providers[hi.index()].push(lo);
                    customers[lo.index()].push(hi);
                    num_c2p += 1;
                }
                EdgeKind::Peer => {
                    peers[lo.index()].push(hi);
                    peers[hi.index()].push(lo);
                    num_p2p += 1;
                }
            }
        }

        let mut offsets = Vec::with_capacity(n + 1);
        let mut cust_end = Vec::with_capacity(n);
        let mut peer_end = Vec::with_capacity(n);
        let mut neighbors = Vec::with_capacity(2 * (num_c2p + num_p2p));
        offsets.push(0u32);
        for v in 0..n {
            customers[v].sort_unstable();
            peers[v].sort_unstable();
            providers[v].sort_unstable();
            neighbors.extend_from_slice(&customers[v]);
            cust_end.push(neighbors.len() as u32);
            neighbors.extend_from_slice(&peers[v]);
            peer_end.push(neighbors.len() as u32);
            neighbors.extend_from_slice(&providers[v]);
            offsets.push(neighbors.len() as u32);
        }

        let asn_labels = if self.asn_labels.len() == n {
            self.asn_labels
        } else {
            Vec::new()
        };

        AsGraph {
            offsets,
            cust_end,
            peer_end,
            neighbors,
            asn_labels,
            num_c2p,
            num_p2p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        let err = b.add_provider(AsId(0), AsId(5)).unwrap_err();
        assert!(matches!(err, TopologyError::IdOutOfRange { .. }));
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        let err = b.add_peering(AsId(1), AsId(1)).unwrap_err();
        assert_eq!(err, TopologyError::SelfLoop(AsId(1)));
    }

    #[test]
    fn duplicate_same_relationship_is_idempotent() {
        let mut b = GraphBuilder::new(2);
        b.add_provider(AsId(0), AsId(1)).unwrap();
        b.add_provider(AsId(0), AsId(1)).unwrap();
        let g = b.build();
        assert_eq!(g.num_customer_provider_edges(), 1);
    }

    #[test]
    fn duplicate_reversed_declaration_conflicts() {
        let mut b = GraphBuilder::new(2);
        b.add_provider(AsId(0), AsId(1)).unwrap();
        let err = b.add_provider(AsId(1), AsId(0)).unwrap_err();
        assert!(matches!(err, TopologyError::ConflictingRelationship(..)));
    }

    #[test]
    fn peering_conflicts_with_transit() {
        let mut b = GraphBuilder::new(2);
        b.add_peering(AsId(0), AsId(1)).unwrap();
        let err = b.add_provider(AsId(0), AsId(1)).unwrap_err();
        assert!(matches!(err, TopologyError::ConflictingRelationship(..)));
    }

    #[test]
    fn symmetric_peering_declaration_is_idempotent() {
        let mut b = GraphBuilder::new(2);
        b.add_peering(AsId(0), AsId(1)).unwrap();
        b.add_peering(AsId(1), AsId(0)).unwrap();
        let g = b.build();
        assert_eq!(g.num_peer_edges(), 1);
        assert_eq!(g.peers(AsId(0)), &[AsId(1)]);
        assert_eq!(g.peers(AsId(1)), &[AsId(0)]);
    }

    #[test]
    fn has_edge_sees_both_orders() {
        let mut b = GraphBuilder::new(3);
        b.add_provider(AsId(2), AsId(1)).unwrap();
        assert!(b.has_edge(AsId(1), AsId(2)));
        assert!(b.has_edge(AsId(2), AsId(1)));
        assert!(!b.has_edge(AsId(0), AsId(1)));
    }

    #[test]
    fn labels_survive_build() {
        let mut b = GraphBuilder::new(2);
        b.add_peering(AsId(0), AsId(1)).unwrap();
        b.set_asn_labels(vec![3356, 174]);
        let g = b.build();
        assert_eq!(g.asn_label(AsId(0)), 3356);
        assert_eq!(g.asn_label(AsId(1)), 174);
    }
}
