//! Validated construction of [`AsGraph`]s from edge lists.

use std::collections::HashMap;

use crate::error::TopologyError;
use crate::graph::{AsGraph, AsId, Relationship};

/// Incremental, validated builder for [`AsGraph`].
///
/// Duplicate declarations of the same relationship are idempotent;
/// contradictory declarations (e.g. `a` peers `b` and `a` is provider of
/// `b`) are rejected. Peering between two ASes that already have a
/// customer/provider edge is likewise rejected — the routing models assume a
/// single relationship per adjacency.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    /// Relationship per normalized pair `(min, max)`; the flag records
    /// whether `min` is the customer (`true`) or the provider (`false`) for
    /// customer→provider edges.
    edges: HashMap<(u32, u32), EdgeKind>,
    asn_labels: Vec<u32>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EdgeKind {
    /// `min` pair member is the customer of `max`.
    MinIsCustomer,
    /// `max` pair member is the customer of `min`.
    MaxIsCustomer,
    Peer,
}

impl GraphBuilder {
    /// Create a builder for a graph of `n` ASes with ids `0..n`.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: HashMap::new(),
            asn_labels: Vec::new(),
        }
    }

    /// Number of ASes this builder was created with.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the builder covers zero ASes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Attach real-world ASN labels (index = AS id). Pass exactly `n`
    /// labels; any other length is rejected here with
    /// [`TopologyError::LabelCountMismatch`] (an empty vector is also
    /// accepted and clears the labels, the synthetic-graph state where
    /// every AS is labeled by its own id).
    pub fn set_asn_labels(&mut self, labels: Vec<u32>) -> Result<(), TopologyError> {
        if !labels.is_empty() && labels.len() != self.n {
            return Err(TopologyError::LabelCountMismatch {
                labels: labels.len(),
                len: self.n,
            });
        }
        self.asn_labels = labels;
        Ok(())
    }

    fn check(&self, a: AsId, b: AsId) -> Result<(), TopologyError> {
        for id in [a, b] {
            if id.index() >= self.n {
                return Err(TopologyError::IdOutOfRange { id, len: self.n });
            }
        }
        if a == b {
            return Err(TopologyError::SelfLoop(a));
        }
        Ok(())
    }

    fn insert(&mut self, a: AsId, b: AsId, kind: EdgeKind) -> Result<(), TopologyError> {
        self.check(a, b)?;
        let (key, kind) = if a.0 <= b.0 {
            ((a.0, b.0), kind)
        } else {
            let flipped = match kind {
                EdgeKind::MinIsCustomer => EdgeKind::MaxIsCustomer,
                EdgeKind::MaxIsCustomer => EdgeKind::MinIsCustomer,
                EdgeKind::Peer => EdgeKind::Peer,
            };
            ((b.0, a.0), flipped)
        };
        match self.edges.insert(key, kind) {
            None => Ok(()),
            Some(prev) if prev == kind => Ok(()),
            Some(_) => Err(TopologyError::ConflictingRelationship(a, b)),
        }
    }

    /// Declare that `customer` buys transit from `provider`.
    pub fn add_provider(&mut self, customer: AsId, provider: AsId) -> Result<(), TopologyError> {
        self.insert(customer, provider, EdgeKind::MinIsCustomer)
    }

    /// Declare a settlement-free peering between `a` and `b`.
    pub fn add_peering(&mut self, a: AsId, b: AsId) -> Result<(), TopologyError> {
        self.insert(a, b, EdgeKind::Peer)
    }

    /// Declare an edge by [`Relationship`], read from `a`'s perspective
    /// (`a` is the customer for [`Relationship::CustomerToProvider`]).
    pub fn add_edge(&mut self, a: AsId, b: AsId, rel: Relationship) -> Result<(), TopologyError> {
        match rel {
            Relationship::CustomerToProvider => self.add_provider(a, b),
            Relationship::PeerToPeer => self.add_peering(a, b),
        }
    }

    /// Bulk construction: the batch equivalent of [`new`](Self::new) +
    /// [`add_edge`](Self::add_edge) per edge + [`set_asn_labels`]
    /// (Self::set_asn_labels) + [`build`](Self::build), producing a
    /// bit-identical [`AsGraph`] without the per-edge hash-map probe that
    /// dominates incremental build time past ~60k ASes.
    ///
    /// Edges are collected, normalized into packed `(min, max)` keys,
    /// sorted with one unstable integer sort, deduplicated and
    /// conflict-checked in a single linear scan, and written straight into
    /// the CSR arrays (the sort order makes every per-AS segment come out
    /// sorted without per-vertex sorting passes). Validation matches the
    /// incremental path exactly: out-of-range ids, self-loops, and
    /// contradictory duplicate declarations are rejected; exact repeats
    /// are deduplicated. `asn_labels` must be empty or exactly `n` long.
    pub fn from_edges<I>(n: usize, asn_labels: Vec<u32>, edges: I) -> Result<AsGraph, TopologyError>
    where
        I: IntoIterator<Item = (AsId, AsId, Relationship)>,
    {
        if !asn_labels.is_empty() && asn_labels.len() != n {
            return Err(TopologyError::LabelCountMismatch {
                labels: asn_labels.len(),
                len: n,
            });
        }
        // Kind tags ordered so contradictory declarations of one pair sort
        // adjacently right after the pair's exact repeats.
        const MIN_IS_CUSTOMER: u8 = 0;
        const MAX_IS_CUSTOMER: u8 = 1;
        const PEER: u8 = 2;

        let edges = edges.into_iter();
        let mut packed: Vec<(u64, u8)> = Vec::with_capacity(edges.size_hint().0);
        for (a, b, rel) in edges {
            for id in [a, b] {
                if id.index() >= n {
                    return Err(TopologyError::IdOutOfRange { id, len: n });
                }
            }
            if a == b {
                return Err(TopologyError::SelfLoop(a));
            }
            let (lo, hi, kind) = match (a.0 <= b.0, rel) {
                (true, Relationship::CustomerToProvider) => (a.0, b.0, MIN_IS_CUSTOMER),
                (false, Relationship::CustomerToProvider) => (b.0, a.0, MAX_IS_CUSTOMER),
                (true, Relationship::PeerToPeer) => (a.0, b.0, PEER),
                (false, Relationship::PeerToPeer) => (b.0, a.0, PEER),
            };
            packed.push((((lo as u64) << 32) | hi as u64, kind));
        }
        packed.sort_unstable();
        packed.dedup();
        // After dedup, two entries sharing a pair key are necessarily
        // contradictory declarations of that pair.
        for w in packed.windows(2) {
            if w[0].0 == w[1].0 {
                let (lo, hi) = (AsId((w[0].0 >> 32) as u32), AsId(w[0].0 as u32));
                return Err(TopologyError::ConflictingRelationship(lo, hi));
            }
        }

        // Per-class degree counts, then one prefix-sum pass for the CSR
        // segment bounds.
        let mut cust_deg = vec![0u32; n];
        let mut peer_deg = vec![0u32; n];
        let mut prov_deg = vec![0u32; n];
        let mut num_c2p = 0usize;
        let mut num_p2p = 0usize;
        for &(key, kind) in &packed {
            let (lo, hi) = ((key >> 32) as usize, key as u32 as usize);
            match kind {
                MIN_IS_CUSTOMER => {
                    prov_deg[lo] += 1;
                    cust_deg[hi] += 1;
                    num_c2p += 1;
                }
                MAX_IS_CUSTOMER => {
                    prov_deg[hi] += 1;
                    cust_deg[lo] += 1;
                    num_c2p += 1;
                }
                _ => {
                    peer_deg[lo] += 1;
                    peer_deg[hi] += 1;
                    num_p2p += 1;
                }
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut cust_end = Vec::with_capacity(n);
        let mut peer_end = Vec::with_capacity(n);
        let mut total = 0u32;
        for v in 0..n {
            offsets.push(total);
            let ce = total + cust_deg[v];
            let pe = ce + peer_deg[v];
            total = pe + prov_deg[v];
            cust_end.push(ce);
            peer_end.push(pe);
        }
        offsets.push(total);

        // Direct fill. Iterating the sorted edge list once appends every
        // vertex's neighbors in ascending id order within each class
        // segment: for a vertex v, edges where v is the `max` member (their
        // neighbors are < v) arrive before edges where v is the `min`
        // member (neighbors > v), and each group arrives ascending — so the
        // merged segment is sorted, matching the incremental path's
        // per-vertex `sort_unstable` output exactly.
        let mut cust_cur: Vec<u32> = offsets[..n].to_vec();
        let mut peer_cur = cust_end.clone();
        let mut prov_cur = peer_end.clone();
        let mut neighbors = vec![AsId(0); total as usize];
        for &(key, kind) in &packed {
            let (lo, hi) = ((key >> 32) as usize, key as u32 as usize);
            let mut put = |cur: &mut [u32], at: usize, neighbor: usize| {
                neighbors[cur[at] as usize] = AsId(neighbor as u32);
                cur[at] += 1;
            };
            match kind {
                MIN_IS_CUSTOMER => {
                    put(&mut prov_cur, lo, hi);
                    put(&mut cust_cur, hi, lo);
                }
                MAX_IS_CUSTOMER => {
                    put(&mut prov_cur, hi, lo);
                    put(&mut cust_cur, lo, hi);
                }
                _ => {
                    put(&mut peer_cur, lo, hi);
                    put(&mut peer_cur, hi, lo);
                }
            }
        }

        Ok(AsGraph {
            offsets,
            cust_end,
            peer_end,
            neighbors,
            asn_labels,
            num_c2p,
            num_p2p,
        })
    }

    /// True when the pair already has an edge of any kind.
    pub fn has_edge(&self, a: AsId, b: AsId) -> bool {
        let key = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        self.edges.contains_key(&key)
    }

    /// Finalize into a CSR [`AsGraph`].
    pub fn build(self) -> AsGraph {
        let n = self.n;
        // Per-AS neighbor lists in the three classes.
        let mut customers: Vec<Vec<AsId>> = vec![Vec::new(); n];
        let mut peers: Vec<Vec<AsId>> = vec![Vec::new(); n];
        let mut providers: Vec<Vec<AsId>> = vec![Vec::new(); n];
        let mut num_c2p = 0usize;
        let mut num_p2p = 0usize;

        for (&(lo, hi), &kind) in &self.edges {
            let (lo, hi) = (AsId(lo), AsId(hi));
            match kind {
                EdgeKind::MinIsCustomer => {
                    // lo is customer of hi.
                    providers[lo.index()].push(hi);
                    customers[hi.index()].push(lo);
                    num_c2p += 1;
                }
                EdgeKind::MaxIsCustomer => {
                    providers[hi.index()].push(lo);
                    customers[lo.index()].push(hi);
                    num_c2p += 1;
                }
                EdgeKind::Peer => {
                    peers[lo.index()].push(hi);
                    peers[hi.index()].push(lo);
                    num_p2p += 1;
                }
            }
        }

        let mut offsets = Vec::with_capacity(n + 1);
        let mut cust_end = Vec::with_capacity(n);
        let mut peer_end = Vec::with_capacity(n);
        let mut neighbors = Vec::with_capacity(2 * (num_c2p + num_p2p));
        offsets.push(0u32);
        for v in 0..n {
            customers[v].sort_unstable();
            peers[v].sort_unstable();
            providers[v].sort_unstable();
            neighbors.extend_from_slice(&customers[v]);
            cust_end.push(neighbors.len() as u32);
            neighbors.extend_from_slice(&peers[v]);
            peer_end.push(neighbors.len() as u32);
            neighbors.extend_from_slice(&providers[v]);
            offsets.push(neighbors.len() as u32);
        }

        // `set_asn_labels` already refused any vector that is neither
        // empty nor exactly `n` long.
        let asn_labels = self.asn_labels;

        AsGraph {
            offsets,
            cust_end,
            peer_end,
            neighbors,
            asn_labels,
            num_c2p,
            num_p2p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        let err = b.add_provider(AsId(0), AsId(5)).unwrap_err();
        assert!(matches!(err, TopologyError::IdOutOfRange { .. }));
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        let err = b.add_peering(AsId(1), AsId(1)).unwrap_err();
        assert_eq!(err, TopologyError::SelfLoop(AsId(1)));
    }

    #[test]
    fn duplicate_same_relationship_is_idempotent() {
        let mut b = GraphBuilder::new(2);
        b.add_provider(AsId(0), AsId(1)).unwrap();
        b.add_provider(AsId(0), AsId(1)).unwrap();
        let g = b.build();
        assert_eq!(g.num_customer_provider_edges(), 1);
    }

    #[test]
    fn duplicate_reversed_declaration_conflicts() {
        let mut b = GraphBuilder::new(2);
        b.add_provider(AsId(0), AsId(1)).unwrap();
        let err = b.add_provider(AsId(1), AsId(0)).unwrap_err();
        assert!(matches!(err, TopologyError::ConflictingRelationship(..)));
    }

    #[test]
    fn peering_conflicts_with_transit() {
        let mut b = GraphBuilder::new(2);
        b.add_peering(AsId(0), AsId(1)).unwrap();
        let err = b.add_provider(AsId(0), AsId(1)).unwrap_err();
        assert!(matches!(err, TopologyError::ConflictingRelationship(..)));
    }

    #[test]
    fn symmetric_peering_declaration_is_idempotent() {
        let mut b = GraphBuilder::new(2);
        b.add_peering(AsId(0), AsId(1)).unwrap();
        b.add_peering(AsId(1), AsId(0)).unwrap();
        let g = b.build();
        assert_eq!(g.num_peer_edges(), 1);
        assert_eq!(g.peers(AsId(0)), &[AsId(1)]);
        assert_eq!(g.peers(AsId(1)), &[AsId(0)]);
    }

    #[test]
    fn has_edge_sees_both_orders() {
        let mut b = GraphBuilder::new(3);
        b.add_provider(AsId(2), AsId(1)).unwrap();
        assert!(b.has_edge(AsId(1), AsId(2)));
        assert!(b.has_edge(AsId(2), AsId(1)));
        assert!(!b.has_edge(AsId(0), AsId(1)));
    }

    #[test]
    fn labels_survive_build() {
        let mut b = GraphBuilder::new(2);
        b.add_peering(AsId(0), AsId(1)).unwrap();
        b.set_asn_labels(vec![3356, 174]).unwrap();
        let g = b.build();
        assert_eq!(g.asn_label(AsId(0)), 3356);
        assert_eq!(g.asn_label(AsId(1)), 174);
    }

    #[test]
    fn wrong_length_labels_are_rejected_in_the_setter() {
        let mut b = GraphBuilder::new(3);
        let err = b.set_asn_labels(vec![3356, 174]).unwrap_err();
        assert_eq!(err, TopologyError::LabelCountMismatch { labels: 2, len: 3 });
        // An empty vector clears the labels (synthetic-graph state).
        b.set_asn_labels(Vec::new()).unwrap();
        let g = b.build();
        assert_eq!(g.asn_label(AsId(2)), 2);
    }

    #[test]
    fn from_edges_matches_incremental_build() {
        let edges = [
            (AsId(3), AsId(1), Relationship::CustomerToProvider),
            (AsId(0), AsId(2), Relationship::PeerToPeer),
            (AsId(2), AsId(0), Relationship::PeerToPeer), // symmetric repeat
            (AsId(1), AsId(0), Relationship::CustomerToProvider),
            (AsId(3), AsId(1), Relationship::CustomerToProvider), // exact repeat
            (AsId(3), AsId(2), Relationship::CustomerToProvider),
        ];
        let mut b = GraphBuilder::new(4);
        b.set_asn_labels(vec![701, 3356, 174, 21740]).unwrap();
        for &(x, y, rel) in &edges {
            b.add_edge(x, y, rel).unwrap();
        }
        let g = b.build();
        let h = GraphBuilder::from_edges(4, vec![701, 3356, 174, 21740], edges).unwrap();
        for v in g.ases() {
            assert_eq!(g.customers(v), h.customers(v), "{v} customers");
            assert_eq!(g.peers(v), h.peers(v), "{v} peers");
            assert_eq!(g.providers(v), h.providers(v), "{v} providers");
            assert_eq!(g.asn_label(v), h.asn_label(v), "{v} label");
        }
        assert_eq!(
            g.num_customer_provider_edges(),
            h.num_customer_provider_edges()
        );
        assert_eq!(g.num_peer_edges(), h.num_peer_edges());
    }

    #[test]
    fn from_edges_rejects_what_the_incremental_path_rejects() {
        let conflict = [
            (AsId(0), AsId(1), Relationship::CustomerToProvider),
            (AsId(1), AsId(0), Relationship::CustomerToProvider),
        ];
        assert!(matches!(
            GraphBuilder::from_edges(2, Vec::new(), conflict),
            Err(TopologyError::ConflictingRelationship(..))
        ));
        let mixed = [
            (AsId(0), AsId(1), Relationship::PeerToPeer),
            (AsId(0), AsId(1), Relationship::CustomerToProvider),
        ];
        assert!(matches!(
            GraphBuilder::from_edges(2, Vec::new(), mixed),
            Err(TopologyError::ConflictingRelationship(..))
        ));
        assert!(matches!(
            GraphBuilder::from_edges(
                2,
                Vec::new(),
                [(AsId(0), AsId(5), Relationship::PeerToPeer)]
            ),
            Err(TopologyError::IdOutOfRange { .. })
        ));
        assert!(matches!(
            GraphBuilder::from_edges(
                2,
                Vec::new(),
                [(AsId(1), AsId(1), Relationship::PeerToPeer)]
            ),
            Err(TopologyError::SelfLoop(AsId(1)))
        ));
        assert!(matches!(
            GraphBuilder::from_edges(3, vec![1, 2], std::iter::empty()),
            Err(TopologyError::LabelCountMismatch { labels: 2, len: 3 })
        ));
    }
}
