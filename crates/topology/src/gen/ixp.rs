//! IXP peering augmentation (the paper's §2.2 / Appendix J robustness graph).
//!
//! Empirical AS graphs miss most peer–peer links established at Internet
//! eXchange Points. The paper constructs an upper bound on the missing
//! peering by full-meshing every pair of ASes that are members of the same
//! IXP (552 933 extra edges on the 2012 snapshot). We reproduce the
//! construction with synthetic IXP member lists: a handful of very large
//! exchanges and many small ones, membership skewed toward ASes that
//! already peer (mid-tier ISPs, content providers, stubs-x).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{AsGraph, AsId, GraphBuilder};

/// Configuration for [`augment_with_ixps`].
#[derive(Clone, Debug)]
pub struct IxpConfig {
    /// Number of exchanges to synthesize (paper's member list: 332 IXPs).
    pub ixp_count: usize,
    /// Mean membership size; actual sizes follow a heavy-tailed draw so a
    /// few exchanges are much larger (as with AMS-IX/DE-CIX in reality).
    pub mean_members: usize,
    /// RNG seed for membership sampling.
    pub seed: u64,
}

impl Default for IxpConfig {
    fn default() -> Self {
        IxpConfig {
            ixp_count: 40,
            mean_members: 24,
            seed: 0x1f9,
        }
    }
}

impl IxpConfig {
    /// Scale the default configuration to a graph of `n` ASes, keeping the
    /// paper's rough proportionality (332 IXPs / 10 835 memberships on a
    /// 39 056-AS graph).
    pub fn scaled_to(n: usize, seed: u64) -> Self {
        IxpConfig {
            ixp_count: (n / 120).max(4),
            mean_members: 24,
            seed,
        }
    }
}

/// Augment `graph` with full-mesh peering at synthetic IXPs.
///
/// Returns the augmented graph (AS ids unchanged) and the number of
/// peer–peer edges added. Pairs already adjacent keep their existing
/// relationship, exactly as in the paper ("connecting every pair of ASes
/// present in the same IXP that were not already connected").
pub fn augment_with_ixps(graph: &AsGraph, config: &IxpConfig) -> (AsGraph, usize) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = graph.len();

    // Membership propensity: ASes that already peer, provide transit or
    // multihome are the ones present at exchanges. Weight = 1 + peer degree
    // + customer degree; pure single-homed stubs get weight 1 and are
    // therefore rare members, matching reality.
    let mut weights: Vec<u64> = Vec::with_capacity(n);
    let mut total = 0u64;
    for v in graph.ases() {
        let w = 1 + 4 * graph.peer_degree(v) as u64 + 2 * graph.customer_degree(v) as u64;
        total += w;
        weights.push(total);
    }

    let mut b = GraphBuilder::new(n);
    for (a, c, rel) in graph.edges() {
        b.add_edge(a, c, rel).expect("copying existing edge");
    }

    let mut added = 0usize;
    let mut members: Vec<AsId> = Vec::new();
    for _ in 0..config.ixp_count {
        // Heavy-tailed membership size: mean/2 .. ~6x mean.
        let size = heavy_tailed_size(&mut rng, config.mean_members);
        members.clear();
        let mut guard = 0usize;
        while members.len() < size && guard < 40 * size {
            guard += 1;
            let v = weighted_pick(&mut rng, &weights, total);
            if !members.contains(&v) {
                members.push(v);
            }
        }
        // Full mesh among members (upper bound on real peering).
        for i in 0..members.len() {
            for j in 0..i {
                if !b.has_edge(members[i], members[j]) {
                    b.add_peering(members[i], members[j]).expect("ixp peer");
                    added += 1;
                }
            }
        }
    }

    (b.build(), added)
}

fn heavy_tailed_size(rng: &mut StdRng, mean: usize) -> usize {
    // Pareto-ish: u^{-0.7} scaled so the median sits near `mean`.
    let u: f64 = rng.random_range(0.05f64..1.0);
    let scale = mean as f64 * 0.78;
    (scale * u.powf(-0.7)).round().max(2.0) as usize
}

fn weighted_pick(rng: &mut StdRng, cumulative: &[u64], total: u64) -> AsId {
    let x = rng.random_range(0..total);
    let idx = cumulative.partition_point(|&c| c <= x);
    AsId(idx as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::internet::{generate, InternetConfig};

    #[test]
    fn augmentation_only_adds_peer_edges() {
        let base = generate(&InternetConfig::sized(1_500, 11)).graph;
        let (aug, added) = augment_with_ixps(&base, &IxpConfig::scaled_to(1_500, 3));
        assert!(added > 0, "no edges added");
        assert_eq!(
            aug.num_customer_provider_edges(),
            base.num_customer_provider_edges()
        );
        assert_eq!(aug.num_peer_edges(), base.num_peer_edges() + added);
        // Existing relationships are preserved verbatim.
        for v in base.ases() {
            assert_eq!(base.providers(v), aug.providers(v), "{v} providers");
            assert_eq!(base.customers(v), aug.customers(v), "{v} customers");
        }
    }

    #[test]
    fn augmentation_is_deterministic() {
        let base = generate(&InternetConfig::sized(800, 5)).graph;
        let cfg = IxpConfig::scaled_to(800, 9);
        let (a, na) = augment_with_ixps(&base, &cfg);
        let (b, nb) = augment_with_ixps(&base, &cfg);
        assert_eq!(na, nb);
        for v in a.ases() {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }

    #[test]
    fn membership_is_biased_away_from_plain_stubs() {
        let base = generate(&InternetConfig::sized(2_000, 13)).graph;
        let (aug, _) = augment_with_ixps(&base, &IxpConfig::scaled_to(2_000, 1));
        // Gained peerings per class.
        let mut stub_gain = 0usize;
        let mut other_gain = 0usize;
        let mut stubs = 0usize;
        let mut others = 0usize;
        for v in base.ases() {
            let gain = aug.peer_degree(v) - base.peer_degree(v);
            if base.customer_degree(v) == 0 && base.peer_degree(v) == 0 {
                stub_gain += gain;
                stubs += 1;
            } else {
                other_gain += gain;
                others += 1;
            }
        }
        let stub_rate = stub_gain as f64 / stubs.max(1) as f64;
        let other_rate = other_gain as f64 / others.max(1) as f64;
        assert!(
            other_rate > 4.0 * stub_rate,
            "stub rate {stub_rate}, other rate {other_rate}"
        );
    }
}
