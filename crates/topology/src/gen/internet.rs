//! Tiered preferential-attachment Internet generator.
//!
//! Ids are assigned so that every provider has a smaller id than its
//! customers' stubs — concretely, transit ASes are created top-down and
//! each AS only buys transit from ASes created before it. This guarantees an
//! acyclic provider hierarchy (a Gao–Rexford prerequisite) by construction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tier::TierConfig;
use crate::{AsGraph, AsId, GraphBuilder};

/// Configuration for [`generate`].
///
/// Defaults are calibrated so that, at any size, the generated graph keeps
/// the UCLA-2012 shape the paper relies on: 13 transit-free Tier 1s in a
/// peering clique, ~100 large Tier 2s, 17 content providers with rich
/// peering, ~85 % stubs, and a customer→provider : peer–peer edge ratio
/// near the snapshot's 73 442 : 62 129 ≈ 1.18.
#[derive(Clone, Debug)]
pub struct InternetConfig {
    /// Total number of ASes.
    pub total_ases: usize,
    /// Number of transit-free Tier-1 ASes (paper: 13), fully peer-meshed.
    pub tier1_count: usize,
    /// Number of large transit ISPs attached directly below the Tier 1s
    /// (paper's Tier 2 population: 100).
    pub tier2_count: usize,
    /// Number of content-provider ASes (paper: 17).
    pub cp_count: usize,
    /// Fraction of all ASes that are stubs (no customers; paper: ~0.85).
    pub stub_fraction: f64,
    /// Fraction of stubs that get peering links ("stubs-x").
    pub stub_x_fraction: f64,
    /// Mean providers per stub (multihoming level).
    pub mean_stub_providers: f64,
    /// Mean providers per mid-tier transit AS.
    pub mean_mid_providers: f64,
    /// Mean peer links initiated per mid-tier transit AS.
    pub mid_peer_mean: f64,
    /// Mean peer links initiated per Tier-2 AS.
    pub tier2_peer_mean: f64,
    /// Mean peer links per content provider (CPs peer aggressively).
    pub cp_peer_mean: f64,
    /// Mean peer links per stub-x.
    pub stub_x_peer_mean: f64,
    /// Probability that a mid-tier transit AS buys directly from a Tier 1
    /// (instead of from the Tier-2/mid layer). Kept small: the real
    /// Internet's hierarchy is several levels deep, which is what makes
    /// the paper's Tier-1 phenomena (§4.6–4.7) appear.
    pub mid_t1_bias: f64,
    /// Probability that a stub buys directly from a Tier 1.
    pub stub_t1_bias: f64,
    /// RNG seed; equal configs generate identical graphs.
    pub seed: u64,
}

impl Default for InternetConfig {
    fn default() -> Self {
        InternetConfig {
            total_ases: 8_000,
            tier1_count: 13,
            tier2_count: 100,
            cp_count: 17,
            stub_fraction: 0.85,
            stub_x_fraction: 0.16,
            mean_stub_providers: 1.8,
            mean_mid_providers: 2.2,
            mid_peer_mean: 8.0,
            tier2_peer_mean: 14.0,
            cp_peer_mean: 25.0,
            stub_x_peer_mean: 1.8,
            mid_t1_bias: 0.10,
            stub_t1_bias: 0.06,
            seed: 20130812, // SIGCOMM'13 started August 12, 2013.
        }
    }
}

impl InternetConfig {
    /// A convenience constructor: default shape at a given size and seed.
    pub fn sized(total_ases: usize, seed: u64) -> Self {
        InternetConfig {
            total_ases,
            seed,
            ..InternetConfig::default()
        }
    }
}

/// Output of [`generate`]: the graph plus the structural roles the
/// generator chose, ready to seed tier classification.
#[derive(Clone, Debug)]
pub struct GeneratedInternet {
    /// The topology.
    pub graph: AsGraph,
    /// Ids of the generated Tier-1 clique.
    pub tier1: Vec<AsId>,
    /// Ids of the generated content providers.
    pub content_providers: Vec<AsId>,
    /// The configuration the graph was generated from.
    pub config: InternetConfig,
}

impl GeneratedInternet {
    /// Tier-classification parameters matching this generated graph
    /// (Table 1 counts, with the generator's CP list plugged in).
    pub fn tier_config(&self) -> TierConfig {
        TierConfig {
            tier1_count: self.config.tier1_count,
            content_providers: self.content_providers.clone(),
            ..TierConfig::default()
        }
    }
}

/// Draw a count with the given mean: `floor(mean)` plus one with
/// probability `frac(mean)`, never below `min`.
fn draw_count(rng: &mut StdRng, mean: f64, min: usize) -> usize {
    let base = mean.floor() as usize;
    let extra = usize::from(rng.random_bool(mean.fract().clamp(0.0, 1.0)));
    (base + extra).max(min)
}

/// Degree-weighted provider sampler.
///
/// `pool` holds one entry per transit AS plus one entry per customer it has
/// acquired, so uniform sampling from the pool is preferential attachment
/// ("rich get richer"), which yields the heavy-tailed customer-degree
/// distribution the paper's tier taxonomy presumes.
struct AttachmentPool {
    pool: Vec<AsId>,
}

impl AttachmentPool {
    fn new() -> Self {
        AttachmentPool { pool: Vec::new() }
    }

    fn add_transit(&mut self, v: AsId) {
        // A single seed entry keeps the rich-get-richer dynamic sharp,
        // matching the heavy-tailed customer degrees of real AS graphs.
        self.pool.push(v);
    }

    fn record_customer(&mut self, provider: AsId) {
        self.pool.push(provider);
    }

    fn sample(&self, rng: &mut StdRng) -> AsId {
        self.pool[rng.random_range(0..self.pool.len())]
    }
}

/// Generate a synthetic Internet per `config`.
///
/// # Panics
///
/// Panics when the configuration is degenerate (fewer total ASes than the
/// fixed tiers require, or fractions outside `[0, 1]`).
pub fn generate(config: &InternetConfig) -> GeneratedInternet {
    let c = config;
    assert!(
        c.total_ases >= c.tier1_count + c.tier2_count + c.cp_count + 10,
        "total_ases too small for the configured tier counts"
    );
    assert!((0.0..=1.0).contains(&c.stub_fraction), "stub_fraction");
    assert!((0.0..=1.0).contains(&c.stub_x_fraction), "stub_x_fraction");

    let mut rng = StdRng::seed_from_u64(c.seed);
    let n = c.total_ases;
    let fixed = c.tier1_count + c.tier2_count + c.cp_count;
    // Keep a minimum mid-tier layer even at small sizes, otherwise the
    // configured stub fraction would leave no transit hierarchy at all.
    let min_mid = (n / 50).max(10);
    let stub_count = (((n as f64) * c.stub_fraction) as usize).min(n - fixed - min_mid);
    let mid_count = n - fixed - stub_count;

    // Id layout (creation order; providers always have smaller ids):
    //   [0, t1) tier-1 | [t1, t1+t2) tier-2 | mids | CPs | stubs.
    let t1_end = c.tier1_count;
    let t2_end = t1_end + c.tier2_count;
    let mid_end = t2_end + mid_count;
    let cp_end = mid_end + c.cp_count;

    let mut b = GraphBuilder::new(n);
    // The attachment pool holds only the Tier-2/mid transit layer. Tier 1s
    // are reached through the `*_t1_bias` probabilities instead: in the
    // real Internet most ASes buy transit from regional ISPs, which is what
    // gives the hierarchy its depth (and the paper its Tier-1 results).
    let mut pool = AttachmentPool::new();
    // Transit ASes eligible as peer partners (everything but T1s/stubs/CPs).
    let mut peerable: Vec<AsId> = Vec::new();

    // --- Tier 1 clique -----------------------------------------------------
    for i in 0..t1_end {
        let v = AsId(i as u32);
        for j in 0..i {
            b.add_peering(v, AsId(j as u32)).expect("t1 mesh");
        }
    }

    // --- Tier 2 ------------------------------------------------------------
    for i in t1_end..t2_end {
        let v = AsId(i as u32);
        let nprov = draw_count(&mut rng, 1.9, 1).min(c.tier1_count);
        let mut chosen = 0usize;
        let mut guard = 0usize;
        while chosen < nprov && guard < 64 {
            guard += 1;
            let p = AsId(rng.random_range(0..t1_end as u32));
            if !b.has_edge(v, p) {
                b.add_provider(v, p).expect("t2 provider");
                chosen += 1;
            }
        }
        let npeer = draw_count(&mut rng, c.tier2_peer_mean, 0);
        attach_peers(&mut b, &mut rng, v, npeer, &peerable);
        pool.add_transit(v);
        peerable.push(v);
    }

    // --- Mid-tier transit --------------------------------------------------
    for i in t2_end..mid_end {
        let v = AsId(i as u32);
        let nprov = draw_count(&mut rng, c.mean_mid_providers, 1);
        attach_providers(&mut b, &mut rng, &mut pool, v, nprov, c.mid_t1_bias, t1_end);
        let npeer = draw_count(&mut rng, c.mid_peer_mean, 0);
        attach_peers(&mut b, &mut rng, v, npeer, &peerable);
        pool.add_transit(v);
        peerable.push(v);
    }

    // --- Content providers ---------------------------------------------
    let mut content_providers = Vec::with_capacity(c.cp_count);
    for i in mid_end..cp_end {
        let v = AsId(i as u32);
        content_providers.push(v);
        // Every real hypergiant buys Tier-1 transit; guarantee one T1
        // provider, then add further providers from the general pool.
        let t1 = AsId(rng.random_range(0..t1_end as u32));
        b.add_provider(v, t1).expect("cp t1 provider");
        let nprov = draw_count(&mut rng, 1.6, 1);
        attach_providers(&mut b, &mut rng, &mut pool, v, nprov, 0.15, t1_end);
        let npeer = draw_count(&mut rng, c.cp_peer_mean, 3);
        attach_peers(&mut b, &mut rng, v, npeer, &peerable);
        // CPs are not transit providers: not added to the pool.
    }

    // --- Stubs ---------------------------------------------------------
    let stub_x_target = ((stub_count as f64) * c.stub_x_fraction) as usize;
    for i in cp_end..n {
        let v = AsId(i as u32);
        let nprov = draw_count(&mut rng, c.mean_stub_providers, 1);
        attach_providers(
            &mut b,
            &mut rng,
            &mut pool,
            v,
            nprov,
            c.stub_t1_bias,
            t1_end,
        );
        if i - cp_end < stub_x_target {
            let npeer = draw_count(&mut rng, c.stub_x_peer_mean, 1);
            // Stubs-x peer with transit ASes or with other already-built
            // stubs-x; use the peerable list plus earlier stub-x ids.
            let mut partners = peerable.clone();
            partners.extend(((cp_end as u32)..(i as u32)).map(AsId));
            attach_peers(&mut b, &mut rng, v, npeer, &partners);
        }
    }

    GeneratedInternet {
        graph: b.build(),
        tier1: (0..t1_end as u32).map(AsId).collect(),
        content_providers,
        config: config.clone(),
    }
}

/// Attach `count` distinct providers: each draw picks a Tier 1 uniformly
/// with probability `t1_bias`, otherwise a transit AS preferentially from
/// `pool`.
fn attach_providers(
    b: &mut GraphBuilder,
    rng: &mut StdRng,
    pool: &mut AttachmentPool,
    v: AsId,
    count: usize,
    t1_bias: f64,
    t1_count: usize,
) {
    let mut chosen = 0usize;
    let mut guard = 0usize;
    while chosen < count && guard < 20 * (count + 1) {
        guard += 1;
        let p = if rng.random_bool(t1_bias.clamp(0.0, 1.0)) {
            AsId(rng.random_range(0..t1_count as u32))
        } else {
            pool.sample(rng)
        };
        if p != v && !b.has_edge(v, p) {
            b.add_provider(v, p).expect("provider edge");
            if p.index() >= t1_count {
                pool.record_customer(p);
            }
            chosen += 1;
        }
    }
}

/// Attach up to `count` peering links from `v` to members of `partners`.
fn attach_peers(b: &mut GraphBuilder, rng: &mut StdRng, v: AsId, count: usize, partners: &[AsId]) {
    if partners.is_empty() {
        return;
    }
    let mut chosen = 0usize;
    let mut guard = 0usize;
    while chosen < count && guard < 20 * (count + 1) {
        guard += 1;
        let p = partners[rng.random_range(0..partners.len())];
        if p != v && !b.has_edge(v, p) {
            b.add_peering(v, p).expect("peer edge");
            chosen += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::{Tier, TierMap};

    fn small() -> GeneratedInternet {
        generate(&InternetConfig::sized(2_000, 7))
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate(&InternetConfig::sized(1_000, 42));
        let b = generate(&InternetConfig::sized(1_000, 42));
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        for v in a.graph.ases() {
            assert_eq!(a.graph.neighbors(v), b.graph.neighbors(v));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&InternetConfig::sized(1_000, 1));
        let b = generate(&InternetConfig::sized(1_000, 2));
        let same = a
            .graph
            .ases()
            .all(|v| a.graph.neighbors(v) == b.graph.neighbors(v));
        assert!(!same);
    }

    #[test]
    fn structural_invariants() {
        let g = small().graph;
        assert!(g.provider_hierarchy_is_acyclic());
        assert!(g.is_connected());
        // Everyone but the tier-1 clique has a provider.
        for v in g.ases() {
            if v.index() >= 13 {
                assert!(g.provider_degree(v) >= 1, "{v} has no provider");
            } else {
                assert_eq!(g.provider_degree(v), 0, "{v} is tier-1");
            }
        }
    }

    #[test]
    fn shape_matches_paper_statistics() {
        let gen = small();
        let g = &gen.graph;
        let stubs = g
            .ases()
            .filter(|&v| g.customer_degree(v) == 0 && g.peer_degree(v) == 0)
            .count();
        let stub_x = g
            .ases()
            .filter(|&v| g.customer_degree(v) == 0 && g.peer_degree(v) > 0)
            .count();
        let stub_share = (stubs + stub_x) as f64 / g.len() as f64;
        // CPs and a few mids are customer-less too, so allow slack above 85%.
        assert!(
            (0.80..=0.92).contains(&stub_share),
            "stub share {stub_share}"
        );
        // UCLA 2012: c2p/p2p = 73442/62129 ~ 1.18. Accept a generous band.
        let ratio = g.num_customer_provider_edges() as f64 / g.num_peer_edges() as f64;
        assert!((0.7..=2.0).contains(&ratio), "c2p/p2p ratio {ratio}");
    }

    #[test]
    fn tier_classification_recovers_generator_roles() {
        let gen = small();
        let tiers = TierMap::classify(&gen.graph, &gen.tier_config());
        for &t1 in &gen.tier1 {
            assert_eq!(tiers.tier(t1), Tier::Tier1);
        }
        for &cp in &gen.content_providers {
            assert_eq!(tiers.tier(cp), Tier::Cp);
        }
        assert_eq!(tiers.tier1().len(), 13);
        assert_eq!(tiers.tier2().len(), 100);
        // Tier 2 should be dominated by the generator's tier-2 id range,
        // which received preferential attachment from the start.
        let early_t2 = tiers
            .tier2()
            .iter()
            .filter(|v| v.index() < 13 + 100 + 200)
            .count();
        assert!(early_t2 > 50, "only {early_t2} early tier-2s");
    }

    #[test]
    fn customer_degree_is_heavy_tailed() {
        let g = small().graph;
        let mut degrees: Vec<usize> = g.ases().map(|v| g.customer_degree(v)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = degrees.iter().sum();
        let top20: usize = degrees.iter().take(20).sum();
        // The top 20 transit ASes (1% of the graph) should carry a
        // disproportionate share of all customer links — heavy tail.
        assert!(
            top20 * 4 > total,
            "top-20 carry {top20} of {total} customer links"
        );
    }
}
