//! Seeded synthetic topology generators.
//!
//! The paper runs on the UCLA Cyclops AS graph of 2012-09-24 (39 056 ASes,
//! 73 442 customer→provider and 62 129 peer–peer links) and on an
//! IXP-augmented variant with ~553 k extra peer edges. Neither snapshot is
//! redistributable here, so [`internet`] builds a structurally equivalent
//! graph: a Tier-1 clique, a preferential-attachment transit hierarchy, a
//! small set of richly-peered content providers and an ~85 % stub edge —
//! the features the paper's results actually depend on. [`ixp`] reproduces
//! the Appendix J augmentation by synthesizing IXP memberships and
//! full-meshing co-members.
//!
//! Everything is deterministic under the configured seed.

pub mod internet;
pub mod ixp;

pub use internet::{generate, GeneratedInternet, InternetConfig};
pub use ixp::{augment_with_ixps, IxpConfig};
