//! Topology summary statistics (for reports and generator calibration).

use std::fmt;

use crate::tier::{Tier, TierMap, FIGURE_TIER_ORDER};
use crate::AsGraph;

/// Summary statistics of an AS graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of ASes.
    pub ases: usize,
    /// Customer→provider edge count.
    pub c2p_edges: usize,
    /// Peer–peer edge count.
    pub p2p_edges: usize,
    /// Number of stub ASes (no customers, no peers).
    pub stubs: usize,
    /// Number of stub-x ASes (no customers, some peers).
    pub stubs_x: usize,
    /// Maximum customer degree.
    pub max_customer_degree: usize,
    /// Maximum peer degree.
    pub max_peer_degree: usize,
    /// Mean providers per AS that has any provider.
    pub mean_providers: f64,
}

impl GraphStats {
    /// Compute statistics for `graph`.
    pub fn compute(graph: &AsGraph) -> GraphStats {
        let mut stubs = 0;
        let mut stubs_x = 0;
        let mut max_cd = 0;
        let mut max_pd = 0;
        let mut prov_sum = 0usize;
        let mut prov_count = 0usize;
        for v in graph.ases() {
            let cd = graph.customer_degree(v);
            let pd = graph.peer_degree(v);
            let pr = graph.provider_degree(v);
            if cd == 0 {
                if pd == 0 {
                    stubs += 1;
                } else {
                    stubs_x += 1;
                }
            }
            max_cd = max_cd.max(cd);
            max_pd = max_pd.max(pd);
            if pr > 0 {
                prov_sum += pr;
                prov_count += 1;
            }
        }
        GraphStats {
            ases: graph.len(),
            c2p_edges: graph.num_customer_provider_edges(),
            p2p_edges: graph.num_peer_edges(),
            stubs,
            stubs_x,
            max_customer_degree: max_cd,
            max_peer_degree: max_pd,
            mean_providers: prov_sum as f64 / prov_count.max(1) as f64,
        }
    }

    /// Fraction of ASes that are stubs of either kind.
    pub fn stub_share(&self) -> f64 {
        (self.stubs + self.stubs_x) as f64 / self.ases.max(1) as f64
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ASes:              {}", self.ases)?;
        writeln!(f, "c2p edges:         {}", self.c2p_edges)?;
        writeln!(f, "p2p edges:         {}", self.p2p_edges)?;
        writeln!(
            f,
            "stubs / stubs-x:   {} / {} ({:.1}% of ASes)",
            self.stubs,
            self.stubs_x,
            100.0 * self.stub_share()
        )?;
        writeln!(f, "max cust degree:   {}", self.max_customer_degree)?;
        writeln!(f, "max peer degree:   {}", self.max_peer_degree)?;
        write!(f, "mean providers:    {:.2}", self.mean_providers)
    }
}

/// Per-tier AS counts in the paper's figure order.
pub fn tier_census(tiers: &TierMap, n: usize) -> Vec<(Tier, usize)> {
    let mut counts = FIGURE_TIER_ORDER
        .iter()
        .map(|&t| (t, 0usize))
        .collect::<Vec<_>>();
    for i in 0..n {
        let t = tiers.tier(crate::AsId(i as u32));
        let slot = counts.iter_mut().find(|(tt, _)| *tt == t).expect("tier");
        slot.1 += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, InternetConfig};
    use crate::tier::TierMap;

    #[test]
    fn stats_add_up() {
        let gen = generate(&InternetConfig::sized(1_200, 21));
        let s = GraphStats::compute(&gen.graph);
        assert_eq!(s.ases, 1_200);
        assert_eq!(s.c2p_edges, gen.graph.num_customer_provider_edges());
        assert!(s.stub_share() > 0.7);
        assert!(s.mean_providers >= 1.0);
        let shown = s.to_string();
        assert!(shown.contains("ASes:"));
    }

    #[test]
    fn census_covers_everyone() {
        let gen = generate(&InternetConfig::sized(1_200, 21));
        let tiers = TierMap::classify(&gen.graph, &gen.tier_config());
        let census = tier_census(&tiers, gen.graph.len());
        let total: usize = census.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 1_200);
    }
}
