//! Error type for topology construction and parsing.

use std::fmt;

use crate::AsId;

/// Errors raised while building or parsing a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// An edge references an AS id outside `0..n`.
    IdOutOfRange {
        /// The offending id.
        id: AsId,
        /// Number of ASes the builder was created with.
        len: usize,
    },
    /// An AS was connected to itself.
    SelfLoop(AsId),
    /// The same AS pair was added twice with conflicting relationships.
    ConflictingRelationship(AsId, AsId),
    /// A relationship file line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An ASN-label vector of the wrong length was attached to a builder.
    LabelCountMismatch {
        /// Number of labels supplied.
        labels: usize,
        /// Number of ASes the builder was created with.
        len: usize,
    },
    /// A real-world ASN (e.g. from a `--cps` list) has no AS in the graph.
    UnknownAsn(u32),
    /// The customer→provider hierarchy of a parsed snapshot contains a
    /// cycle, violating the Gao–Rexford prerequisite.
    CyclicProviderHierarchy,
    /// Underlying I/O failure while reading a relationship file.
    Io(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::IdOutOfRange { id, len } => {
                write!(f, "{id} is out of range for a graph of {len} ASes")
            }
            TopologyError::SelfLoop(id) => write!(f, "{id} cannot be its own neighbor"),
            TopologyError::ConflictingRelationship(a, b) => {
                write!(f, "conflicting relationships declared between {a} and {b}")
            }
            TopologyError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            TopologyError::LabelCountMismatch { labels, len } => {
                write!(f, "{labels} ASN labels attached to a graph of {len} ASes")
            }
            TopologyError::UnknownAsn(asn) => {
                write!(f, "no AS in the graph carries ASN {asn}")
            }
            TopologyError::CyclicProviderHierarchy => {
                write!(
                    f,
                    "the customer\u{2192}provider hierarchy contains a cycle \
                     (Gao\u{2013}Rexford stability requires an acyclic hierarchy)"
                )
            }
            TopologyError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for TopologyError {}

impl From<std::io::Error> for TopologyError {
    fn from(e: std::io::Error) -> Self {
        TopologyError::Io(e.to_string())
    }
}
