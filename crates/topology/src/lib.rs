//! AS-level topology substrate for the SIGCOMM'13 "Is the Juice Worth the
//! Squeeze?" reproduction.
//!
//! This crate provides everything the routing layers need to know about the
//! Internet's structure:
//!
//! * [`AsGraph`] — a compact, immutable AS-level graph annotated with
//!   Gao–Rexford business relationships (customer→provider and peer–peer),
//!   stored in CSR form so the routing engine can walk neighbor classes
//!   without hashing.
//! * [`GraphBuilder`] — validated construction from edge lists.
//! * [`tier`] — the paper's Table 1 taxonomy (Tier 1/2/3, content providers,
//!   small content providers, stubs, stubs-x, SMDG).
//! * [`gen`] — seeded synthetic Internet generators calibrated to the
//!   UCLA 2012 snapshot used by the paper, plus IXP peering augmentation
//!   (the paper's Appendix J robustness graph).
//! * [`io`] — CAIDA serial-1 relationship-file parsing and serialization, so
//!   real snapshots can be substituted for the synthetic graphs.
//! * [`cone`] — customer cones and valley-free distances, the structural
//!   quantities behind the paper's Tier-1 findings.
//! * [`prune`] — the paper's §2.2 preprocessing (recursive removal of
//!   provider-less low-degree ASes).
//! * [`AsSet`] — a dense bitset over AS ids shared by all downstream crates
//!   (deployment sets, visited sets, ...).
//!
//! The graph is deliberately a plain data structure: no interior mutability,
//! no lifetimes beyond a shared borrow, no macro tricks. Everything the
//! routing engine touches per-(attacker, destination) run is an index into a
//! flat array.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
mod graph;
mod set;

pub mod cone;
pub mod gen;
pub mod io;
pub mod prune;
pub mod stats;
pub mod tier;

pub use builder::GraphBuilder;
pub use error::TopologyError;
pub use graph::{AsGraph, AsId, NeighborClass, Relationship};
pub use set::AsSet;
