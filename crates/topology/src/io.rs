//! CAIDA serial-1 relationship-file I/O.
//!
//! Format (one edge per line, `#` comments):
//!
//! ```text
//! <provider-asn>|<customer-asn>|-1
//! <peer-asn>|<peer-asn>|0
//! ```
//!
//! Real-world ASNs are remapped to dense [`AsId`]s in first-appearance
//! order; the original numbers are preserved as [`AsGraph::asn_label`]s.
//! This is the format of CAIDA's `as-rel` releases and of the UCLA Cyclops
//! snapshots the paper used, so published snapshots can be dropped in as a
//! replacement for the synthetic generator.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

use crate::{AsGraph, AsId, GraphBuilder, Relationship, TopologyError};

/// Parse a serial-1 relationship document from any reader.
pub fn parse_relationships<R: Read>(reader: R) -> Result<AsGraph, TopologyError> {
    let reader = BufReader::new(reader);
    let mut ids: HashMap<u32, AsId> = HashMap::new();
    let mut labels: Vec<u32> = Vec::new();
    let mut edges: Vec<(AsId, AsId, Relationship)> = Vec::new();
    // Relationship of each normalized ASN pair as first declared, plus its
    // line number: exact repeats are deduplicated, *contradictory* repeats
    // (peer vs transit, or the transit direction reversed) are rejected
    // here — with both line numbers — instead of surfacing later from the
    // builder without any location, or worse, silently double-counting.
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum DeclaredRel {
        /// The named ASN is the provider of the pair's other member.
        ProviderIs(u32),
        Peer,
    }
    let mut seen: HashMap<(u32, u32), (DeclaredRel, usize)> = HashMap::new();

    let mut intern = |asn: u32, labels: &mut Vec<u32>| -> AsId {
        *ids.entry(asn).or_insert_with(|| {
            let id = AsId(labels.len() as u32);
            labels.push(asn);
            id
        })
    };

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('|');
        let (a, b, rel) = match (parts.next(), parts.next(), parts.next()) {
            (Some(a), Some(b), Some(rel)) => (a, b, rel),
            _ => {
                return Err(TopologyError::Parse {
                    line: lineno + 1,
                    message: format!("expected 'a|b|rel', got {line:?}"),
                })
            }
        };
        let parse_asn = |s: &str| -> Result<u32, TopologyError> {
            s.trim().parse().map_err(|_| TopologyError::Parse {
                line: lineno + 1,
                message: format!("bad ASN {s:?}"),
            })
        };
        let a = parse_asn(a)?;
        let b = parse_asn(b)?;
        let declared = match rel.trim() {
            // serial-1: "a|b|-1" means a is the *provider* of b.
            "-1" => DeclaredRel::ProviderIs(a),
            "0" => DeclaredRel::Peer,
            other => {
                return Err(TopologyError::Parse {
                    line: lineno + 1,
                    message: format!("unknown relationship code {other:?}"),
                })
            }
        };
        if a == b {
            return Err(TopologyError::Parse {
                line: lineno + 1,
                message: format!("self-loop on AS{a}"),
            });
        }
        let key = (a.min(b), a.max(b));
        match seen.get(&key) {
            Some(&(prev, _)) if prev == declared => continue, // exact repeat
            Some(&(_, prev_line)) => {
                return Err(TopologyError::Parse {
                    line: lineno + 1,
                    message: format!(
                        "conflicting duplicate of the {a}|{b} edge \
                         (first declared on line {prev_line})"
                    ),
                })
            }
            None => {
                seen.insert(key, (declared, lineno + 1));
            }
        }
        let a = intern(a, &mut labels);
        let b = intern(b, &mut labels);
        match declared {
            DeclaredRel::ProviderIs(_) => edges.push((b, a, Relationship::CustomerToProvider)),
            DeclaredRel::Peer => edges.push((a, b, Relationship::PeerToPeer)),
        }
    }

    let mut builder = GraphBuilder::new(labels.len());
    builder.set_asn_labels(labels);
    for (a, b, rel) in edges {
        builder.add_edge(a, b, rel)?;
    }
    Ok(builder.build())
}

/// Parse a serial-1 relationship file from disk.
pub fn read_relationships_file(path: &Path) -> Result<AsGraph, TopologyError> {
    let file = std::fs::File::open(path)?;
    parse_relationships(file)
}

/// Serialize `graph` to serial-1 text (using ASN labels when present).
pub fn write_relationships(graph: &AsGraph) -> String {
    let mut out = String::new();
    out.push_str("# serial-1 AS relationships: <provider>|<customer>|-1, <peer>|<peer>|0\n");
    for (a, b, rel) in graph.edges() {
        let (la, lb) = (graph.asn_label(a), graph.asn_label(b));
        match rel {
            // `a` is the customer in our edge iterator.
            Relationship::CustomerToProvider => {
                writeln!(out, "{lb}|{la}|-1").expect("string write")
            }
            Relationship::PeerToPeer => writeln!(out, "{la}|{lb}|0").expect("string write"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, InternetConfig};

    const SAMPLE: &str = "\
# a comment
3356|21740|-1
174|21740|0

3356|174|0
701|3356|-1
";

    #[test]
    fn parses_sample() {
        let g = parse_relationships(SAMPLE.as_bytes()).unwrap();
        assert_eq!(g.len(), 4);
        assert_eq!(g.num_customer_provider_edges(), 2);
        assert_eq!(g.num_peer_edges(), 2);
        // Find ids via labels.
        let id_of = |asn: u32| g.ases().find(|&v| g.asn_label(v) == asn).unwrap();
        let (l3, enom, cogent, uunet) = (id_of(3356), id_of(21740), id_of(174), id_of(701));
        assert_eq!(g.providers(enom), &[l3]);
        assert!(g.peers(enom).contains(&cogent));
        assert!(g.peers(l3).contains(&cogent));
        assert_eq!(g.providers(l3), &[uunet]);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(matches!(
            parse_relationships("1|2".as_bytes()),
            Err(TopologyError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            parse_relationships("1|2|7".as_bytes()),
            Err(TopologyError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            parse_relationships("x|2|0".as_bytes()),
            Err(TopologyError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn rejects_conflicts_with_line_numbers() {
        // A reversed transit declaration contradicts the first line; the
        // parser must say so (with both line numbers) rather than letting
        // the builder fail later without location information.
        for doc in [
            "1|2|-1\n2|1|-1\n", // provider direction reversed
            "1|2|-1\n1|2|0\n",  // transit vs peering
            "1|2|0\n2|1|-1\n",  // peering vs transit, reversed order
        ] {
            match parse_relationships(doc.as_bytes()) {
                Err(TopologyError::Parse { line: 2, message }) => {
                    assert!(message.contains("line 1"), "{message}");
                    assert!(message.contains("conflicting duplicate"), "{message}");
                }
                other => panic!("{doc:?}: expected a line-2 parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn exact_duplicates_are_deduplicated() {
        // Repeating the same declaration (in either direction for peers)
        // must not double the adjacency.
        let doc = "1|2|-1\n1|2|-1\n3|4|0\n4|3|0\n";
        let g = parse_relationships(doc.as_bytes()).unwrap();
        assert_eq!(g.num_customer_provider_edges(), 1);
        assert_eq!(g.num_peer_edges(), 1);
        let id_of = |asn: u32| g.ases().find(|&v| g.asn_label(v) == asn).unwrap();
        assert_eq!(g.customers(id_of(1)).len(), 1);
        assert_eq!(g.peers(id_of(3)).len(), 1);
    }

    #[test]
    fn rejects_self_loops_with_location() {
        assert!(matches!(
            parse_relationships("7|7|0\n".as_bytes()),
            Err(TopologyError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn round_trips_generated_graph() {
        let g = generate(&InternetConfig::sized(600, 3)).graph;
        let text = write_relationships(&g);
        let g2 = parse_relationships(text.as_bytes()).unwrap();
        assert_eq!(g.len(), g2.len());
        assert_eq!(
            g.num_customer_provider_edges(),
            g2.num_customer_provider_edges()
        );
        assert_eq!(g.num_peer_edges(), g2.num_peer_edges());
        // Compare adjacency via labels (ids may be permuted).
        let mut to_g2 = std::collections::HashMap::new();
        for v in g2.ases() {
            to_g2.insert(g2.asn_label(v), v);
        }
        for v in g.ases() {
            let v2 = to_g2[&g.asn_label(v)];
            let mut provs: Vec<u32> = g.providers(v).iter().map(|&p| g.asn_label(p)).collect();
            let mut provs2: Vec<u32> = g2.providers(v2).iter().map(|&p| g2.asn_label(p)).collect();
            provs.sort_unstable();
            provs2.sort_unstable();
            assert_eq!(provs, provs2, "{v} providers");
        }
    }
}
