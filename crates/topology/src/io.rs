//! CAIDA serial-1/serial-2 relationship-file I/O.
//!
//! Format (one edge per line, `#` comments):
//!
//! ```text
//! <provider-asn>|<customer-asn>|-1
//! <peer-asn>|<peer-asn>|0
//! <provider-asn>|<customer-asn>|-1|<source>     (serial-2)
//! ```
//!
//! Serial-2 releases append one provenance column — the inference source,
//! one of `bgp`, `mlp` or `ixp` — which is accepted and ignored; any other
//! trailing column (or a fifth column) is rejected with a located parse
//! error rather than silently dropped, so junk files cannot masquerade as
//! valid snapshots.
//!
//! Real-world ASNs are remapped to dense [`AsId`]s in first-appearance
//! order; the original numbers are preserved as [`AsGraph::asn_label`]s.
//! This is the format of CAIDA's `as-rel` releases and of the UCLA Cyclops
//! snapshots the paper used, so published snapshots can be dropped in as a
//! replacement for the synthetic generator.
//!
//! **Caveat:** the relationship format carries edges only, so an AS with no
//! edges at all is unrepresentable — a write→parse round trip drops
//! edge-less ASes. Real snapshots never contain them (an AS with no
//! relationships is not observable in BGP), and the synthetic generator
//! never produces them.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::Read;
use std::path::Path;

use crate::{AsGraph, AsId, GraphBuilder, Relationship, TopologyError};

/// The provenance tokens serial-2 releases append as a fourth column.
const SERIAL2_SOURCES: [&str; 3] = ["bgp", "mlp", "ixp"];

/// Parse a serial-1 or serial-2 relationship document from any reader.
pub fn parse_relationships<R: Read>(mut reader: R) -> Result<AsGraph, TopologyError> {
    // Slurp the document, then pre-size every container from a cheap
    // line-counting pass: at 100k+ ASes the re-hash/re-allocation churn of
    // growing the intern and dedup maps from empty is measurable, and the
    // text itself is small (a full Internet snapshot is a few MB).
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    let data_lines = text
        .lines()
        .filter(|l| {
            let l = l.trim();
            !l.is_empty() && !l.starts_with('#')
        })
        .count();

    let mut ids: HashMap<u32, AsId> = HashMap::with_capacity(data_lines);
    let mut labels: Vec<u32> = Vec::with_capacity(data_lines / 2 + 1);
    let mut edges: Vec<(AsId, AsId, Relationship)> = Vec::with_capacity(data_lines);
    // Relationship of each normalized ASN pair as first declared, plus its
    // line number: exact repeats are deduplicated, *contradictory* repeats
    // (peer vs transit, or the transit direction reversed) are rejected
    // here — with both line numbers — instead of surfacing later from the
    // builder without any location, or worse, silently double-counting.
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum DeclaredRel {
        /// The named ASN is the provider of the pair's other member.
        ProviderIs(u32),
        Peer,
    }
    let mut seen: HashMap<(u32, u32), (DeclaredRel, usize)> = HashMap::new();

    let mut intern = |asn: u32, labels: &mut Vec<u32>| -> AsId {
        *ids.entry(asn).or_insert_with(|| {
            let id = AsId(labels.len() as u32);
            labels.push(asn);
            id
        })
    };

    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('|');
        let (a, b, rel) = match (parts.next(), parts.next(), parts.next()) {
            (Some(a), Some(b), Some(rel)) => (a, b, rel),
            _ => {
                return Err(TopologyError::Parse {
                    line: lineno + 1,
                    message: format!("expected 'a|b|rel', got {line:?}"),
                })
            }
        };
        // Serial-2 appends exactly one provenance column; anything else
        // trailing is junk and must not parse as a valid snapshot.
        match (parts.next(), parts.next()) {
            (None, _) => {}
            (Some(source), None) if SERIAL2_SOURCES.contains(&source.trim()) => {}
            (Some(source), None) => {
                return Err(TopologyError::Parse {
                    line: lineno + 1,
                    message: format!(
                        "unknown trailing column {source:?} (serial-2 allows one \
                         source column: bgp|mlp|ixp)"
                    ),
                })
            }
            (Some(_), Some(_)) => {
                return Err(TopologyError::Parse {
                    line: lineno + 1,
                    message: format!("too many '|' columns in {line:?}"),
                })
            }
        }
        let parse_asn = |s: &str| -> Result<u32, TopologyError> {
            s.trim().parse().map_err(|_| TopologyError::Parse {
                line: lineno + 1,
                message: format!("bad ASN {s:?}"),
            })
        };
        let a = parse_asn(a)?;
        let b = parse_asn(b)?;
        let declared = match rel.trim() {
            // serial-1: "a|b|-1" means a is the *provider* of b.
            "-1" => DeclaredRel::ProviderIs(a),
            "0" => DeclaredRel::Peer,
            other => {
                return Err(TopologyError::Parse {
                    line: lineno + 1,
                    message: format!("unknown relationship code {other:?}"),
                })
            }
        };
        if a == b {
            return Err(TopologyError::Parse {
                line: lineno + 1,
                message: format!("self-loop on AS{a}"),
            });
        }
        let key = (a.min(b), a.max(b));
        match seen.get(&key) {
            Some(&(prev, _)) if prev == declared => continue, // exact repeat
            Some(&(_, prev_line)) => {
                return Err(TopologyError::Parse {
                    line: lineno + 1,
                    message: format!(
                        "conflicting duplicate of the {a}|{b} edge \
                         (first declared on line {prev_line})"
                    ),
                })
            }
            None => {
                seen.insert(key, (declared, lineno + 1));
            }
        }
        let a = intern(a, &mut labels);
        let b = intern(b, &mut labels);
        match declared {
            DeclaredRel::ProviderIs(_) => edges.push((b, a, Relationship::CustomerToProvider)),
            DeclaredRel::Peer => edges.push((a, b, Relationship::PeerToPeer)),
        }
    }

    // Bulk sorted-edge CSR build: the `seen` map above already guarantees
    // the edge list is duplicate-free and conflict-free, so this cannot
    // fail on relationships — it only re-checks structure (and the label
    // count, which matches by construction).
    GraphBuilder::from_edges(labels.len(), labels, edges)
}

/// Parse a serial-1/serial-2 relationship file from disk.
pub fn read_relationships_file(path: &Path) -> Result<AsGraph, TopologyError> {
    let file = std::fs::File::open(path)?;
    parse_relationships(file)
}

/// Serialize `graph` to serial-1 text (using ASN labels when present).
///
/// The format carries edges only: an AS with no edges at all does not
/// appear in the output, so parsing it back drops such ASes (see the
/// module docs). Every connected graph round-trips exactly.
pub fn write_relationships(graph: &AsGraph) -> String {
    let mut out = String::new();
    out.push_str("# serial-1 AS relationships: <provider>|<customer>|-1, <peer>|<peer>|0\n");
    for (a, b, rel) in graph.edges() {
        let (la, lb) = (graph.asn_label(a), graph.asn_label(b));
        match rel {
            // `a` is the customer in our edge iterator.
            Relationship::CustomerToProvider => {
                writeln!(out, "{lb}|{la}|-1").expect("string write")
            }
            Relationship::PeerToPeer => writeln!(out, "{la}|{lb}|0").expect("string write"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, InternetConfig};

    const SAMPLE: &str = "\
# a comment
3356|21740|-1
174|21740|0

3356|174|0
701|3356|-1
";

    #[test]
    fn parses_sample() {
        let g = parse_relationships(SAMPLE.as_bytes()).unwrap();
        assert_eq!(g.len(), 4);
        assert_eq!(g.num_customer_provider_edges(), 2);
        assert_eq!(g.num_peer_edges(), 2);
        // Find ids via labels.
        let id_of = |asn: u32| g.ases().find(|&v| g.asn_label(v) == asn).unwrap();
        let (l3, enom, cogent, uunet) = (id_of(3356), id_of(21740), id_of(174), id_of(701));
        assert_eq!(g.providers(enom), &[l3]);
        assert!(g.peers(enom).contains(&cogent));
        assert!(g.peers(l3).contains(&cogent));
        assert_eq!(g.providers(l3), &[uunet]);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(matches!(
            parse_relationships("1|2".as_bytes()),
            Err(TopologyError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            parse_relationships("1|2|7".as_bytes()),
            Err(TopologyError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            parse_relationships("x|2|0".as_bytes()),
            Err(TopologyError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn rejects_conflicts_with_line_numbers() {
        // A reversed transit declaration contradicts the first line; the
        // parser must say so (with both line numbers) rather than letting
        // the builder fail later without location information.
        for doc in [
            "1|2|-1\n2|1|-1\n", // provider direction reversed
            "1|2|-1\n1|2|0\n",  // transit vs peering
            "1|2|0\n2|1|-1\n",  // peering vs transit, reversed order
        ] {
            match parse_relationships(doc.as_bytes()) {
                Err(TopologyError::Parse { line: 2, message }) => {
                    assert!(message.contains("line 1"), "{message}");
                    assert!(message.contains("conflicting duplicate"), "{message}");
                }
                other => panic!("{doc:?}: expected a line-2 parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn exact_duplicates_are_deduplicated() {
        // Repeating the same declaration (in either direction for peers)
        // must not double the adjacency.
        let doc = "1|2|-1\n1|2|-1\n3|4|0\n4|3|0\n";
        let g = parse_relationships(doc.as_bytes()).unwrap();
        assert_eq!(g.num_customer_provider_edges(), 1);
        assert_eq!(g.num_peer_edges(), 1);
        let id_of = |asn: u32| g.ases().find(|&v| g.asn_label(v) == asn).unwrap();
        assert_eq!(g.customers(id_of(1)).len(), 1);
        assert_eq!(g.peers(id_of(3)).len(), 1);
    }

    #[test]
    fn serial2_source_column_is_accepted() {
        let doc = "3356|21740|-1|bgp\n174|3356|0|mlp\n174|21740|0|ixp\n";
        let g = parse_relationships(doc.as_bytes()).unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.num_customer_provider_edges(), 1);
        assert_eq!(g.num_peer_edges(), 2);
    }

    #[test]
    fn junk_trailing_columns_are_rejected_with_location() {
        for doc in [
            "1|2|0|junk\n",      // unknown source token
            "1|2|-1|\n",         // empty source column
            "1|2|-1|bgp|more\n", // five columns
            "1|2|0|bgp|bgp\n",   // five columns, all known tokens
        ] {
            match parse_relationships(doc.as_bytes()) {
                Err(TopologyError::Parse { line: 1, .. }) => {}
                other => panic!("{doc:?}: expected a line-1 parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_self_loops_with_location() {
        assert!(matches!(
            parse_relationships("7|7|0\n".as_bytes()),
            Err(TopologyError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn round_trips_generated_graph() {
        let g = generate(&InternetConfig::sized(600, 3)).graph;
        let text = write_relationships(&g);
        let g2 = parse_relationships(text.as_bytes()).unwrap();
        assert_eq!(g.len(), g2.len());
        assert_eq!(
            g.num_customer_provider_edges(),
            g2.num_customer_provider_edges()
        );
        assert_eq!(g.num_peer_edges(), g2.num_peer_edges());
        // Compare adjacency via labels (ids may be permuted).
        let mut to_g2 = std::collections::HashMap::new();
        for v in g2.ases() {
            to_g2.insert(g2.asn_label(v), v);
        }
        for v in g.ases() {
            let v2 = to_g2[&g.asn_label(v)];
            let mut provs: Vec<u32> = g.providers(v).iter().map(|&p| g.asn_label(p)).collect();
            let mut provs2: Vec<u32> = g2.providers(v2).iter().map(|&p| g2.asn_label(p)).collect();
            provs.sort_unstable();
            provs2.sort_unstable();
            assert_eq!(provs, provs2, "{v} providers");
        }
    }
}
