//! Customer cones and valley-free distances.
//!
//! Two structural quantities drive most of the paper's findings:
//!
//! * the **customer cone** of an AS — everyone reachable by walking
//!   provider→customer edges down from it. Tier 1 attackers are weak
//!   (§4.7) because only their cone can hear their announcement as a
//!   customer/peer route; Tier 1 destinations are doomed (§4.6) because
//!   *nobody* has them in a cone (their up-closure is empty);
//! * the **valley-free distance** — the length of the shortest
//!   export-compliant (customer chains up, at most one peer edge, provider
//!   chains down) path, which is what the SP step compares and what makes
//!   the bogus `"m, d"` announcement one hop worse than the truth.
//!
//! These are diagnostics over a plain graph (no routing policies applied),
//! useful for calibrating synthetic topologies and explaining experiment
//! results.

use std::collections::VecDeque;

use crate::{AsGraph, AsId, AsSet};

/// Compute the customer cone of `root`: `root` itself plus every AS
/// reachable via provider→customer edges. Returned as an [`AsSet`].
pub fn customer_cone(graph: &AsGraph, root: AsId) -> AsSet {
    let mut cone = AsSet::new(graph.len());
    cone.insert(root);
    let mut queue = vec![root];
    while let Some(u) = queue.pop() {
        for &c in graph.customers(u) {
            if cone.insert(c) {
                queue.push(c);
            }
        }
    }
    cone
}

/// Customer-cone sizes for every AS, in `O(V · cone)` worst case but
/// computed with an upward frontier so typical hierarchies cost far less.
/// For large graphs prefer calling [`customer_cone`] for the few ASes of
/// interest.
pub fn cone_sizes(graph: &AsGraph) -> Vec<usize> {
    graph
        .ases()
        .map(|v| customer_cone(graph, v).count())
        .collect()
}

/// State tracked by the valley-free BFS: how far down the "mountain" a
/// path has come (per Gao–Rexford, a valley-free path is a sequence of
/// customer→provider steps, at most one peer step, then
/// provider→customer steps).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Phase {
    /// Still climbing customer→provider edges.
    Up = 0,
    /// Used the single peer edge.
    Peered = 1,
    /// Descending provider→customer edges.
    Down = 2,
}

/// Shortest valley-free distances **to** `destination` from every AS —
/// i.e. the length of the best export-compliant AS path each source could
/// use, ignoring routing policy preferences. `u32::MAX` marks sources with
/// no valley-free path.
///
/// This is a 3-phase BFS over the reversed path: walking *backwards* from
/// the destination, a path that a source can use climbs
/// customer→provider first (seen from the destination side), crosses at
/// most one peer edge, then descends.
pub fn valley_free_distances(graph: &AsGraph, destination: AsId) -> Vec<u32> {
    let n = graph.len();
    // dist[phase][v]
    let mut dist = vec![[u32::MAX; 3]; n];
    let mut queue: VecDeque<(AsId, Phase)> = VecDeque::new();
    dist[destination.index()][Phase::Up as usize] = 0;
    queue.push_back((destination, Phase::Up));

    while let Some((u, phase)) = queue.pop_front() {
        let du = dist[u.index()][phase as usize];
        let mut relax = |v: AsId, next_phase: Phase, queue: &mut VecDeque<(AsId, Phase)>| {
            let slot = &mut dist[v.index()][next_phase as usize];
            if *slot == u32::MAX {
                *slot = du + 1;
                queue.push_back((v, next_phase));
            }
        };
        match phase {
            Phase::Up => {
                // Still on the customer-chain prefix (as seen from d):
                // extend to providers, or take the one peer edge, or start
                // descending.
                for &p in graph.providers(u) {
                    relax(p, Phase::Up, &mut queue);
                }
                for &q in graph.peers(u) {
                    relax(q, Phase::Peered, &mut queue);
                }
                for &c in graph.customers(u) {
                    relax(c, Phase::Down, &mut queue);
                }
            }
            Phase::Peered | Phase::Down => {
                for &c in graph.customers(u) {
                    relax(c, Phase::Down, &mut queue);
                }
            }
        }
    }

    dist.into_iter()
        .map(|per_phase| per_phase.into_iter().min().unwrap_or(u32::MAX))
        .collect()
}

/// Summary of a distance distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistanceStats {
    /// Sources with a valley-free path.
    pub reachable: usize,
    /// Mean distance among reachable sources (excluding the destination).
    pub mean: f64,
    /// Maximum finite distance.
    pub max: u32,
}

/// Summarize [`valley_free_distances`] output.
pub fn distance_stats(distances: &[u32], destination: AsId) -> DistanceStats {
    let mut reachable = 0usize;
    let mut sum = 0u64;
    let mut max = 0u32;
    for (i, &d) in distances.iter().enumerate() {
        if i == destination.index() || d == u32::MAX {
            continue;
        }
        reachable += 1;
        sum += d as u64;
        max = max.max(d);
    }
    DistanceStats {
        reachable,
        mean: sum as f64 / reachable.max(1) as f64,
        max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, InternetConfig};
    use crate::GraphBuilder;

    fn diamond() -> AsGraph {
        // 0 at top; 1, 2 below it (peers of each other); 3 below both.
        let mut b = GraphBuilder::new(4);
        b.add_provider(AsId(1), AsId(0)).unwrap();
        b.add_provider(AsId(2), AsId(0)).unwrap();
        b.add_peering(AsId(1), AsId(2)).unwrap();
        b.add_provider(AsId(3), AsId(1)).unwrap();
        b.add_provider(AsId(3), AsId(2)).unwrap();
        b.build()
    }

    #[test]
    fn cones_match_hierarchy() {
        let g = diamond();
        let top = customer_cone(&g, AsId(0));
        assert_eq!(top.count(), 4);
        let mid = customer_cone(&g, AsId(1));
        assert_eq!(mid.iter().collect::<Vec<_>>(), vec![AsId(1), AsId(3)]);
        let leaf = customer_cone(&g, AsId(3));
        assert_eq!(leaf.count(), 1);
        assert_eq!(cone_sizes(&g), vec![4, 2, 2, 1]);
    }

    #[test]
    fn valley_free_distances_respect_export() {
        // d(0) peers a(1); a peers b(2): no valley-free path 2 -> 0
        // (two peer edges). b's customer c(3): also unreachable.
        let mut bld = GraphBuilder::new(4);
        bld.add_peering(AsId(0), AsId(1)).unwrap();
        bld.add_peering(AsId(1), AsId(2)).unwrap();
        bld.add_provider(AsId(3), AsId(2)).unwrap();
        let g = bld.build();
        let d = valley_free_distances(&g, AsId(0));
        assert_eq!(d[1], 1, "direct peer");
        assert_eq!(d[2], u32::MAX, "peer-peer valley");
        assert_eq!(d[3], u32::MAX);
    }

    #[test]
    fn valley_free_distance_uses_one_peer_hop() {
        let g = diamond();
        let d = valley_free_distances(&g, AsId(1));
        assert_eq!(d[0], 1, "provider of d");
        assert_eq!(d[2], 1, "peer of d");
        assert_eq!(d[3], 1, "customer of d");
        // From 0 to 3? destination 3:
        let d3 = valley_free_distances(&g, AsId(3));
        assert_eq!(d3[1], 1);
        assert_eq!(d3[0], 2, "down through 1 or 2");
        assert_eq!(d3[2], 1);
    }

    #[test]
    fn distances_agree_with_engine_route_lengths() {
        // On a generated graph, the baseline engine's normal-conditions
        // route lengths can never beat the valley-free distance (the
        // engine respects LP, which may force longer routes, but never
        // shorter-than-possible ones).
        let net = generate(&InternetConfig::sized(600, 9));
        let d = net.content_providers[0];
        let dist = valley_free_distances(&net.graph, d);
        let stats = distance_stats(&dist, d);
        assert_eq!(stats.reachable, net.graph.len() - 1, "connected graph");
        assert!(stats.mean > 1.0 && stats.mean < 10.0, "mean {}", stats.mean);
        assert!(stats.max < 20);
    }

    #[test]
    fn tier1_has_empty_up_closure_but_big_cone() {
        // The §4.6 asymmetry in structural terms.
        let net = generate(&InternetConfig::sized(1_000, 9));
        let t1 = net.tier1[0];
        let cone = customer_cone(&net.graph, t1);
        assert!(cone.count() > 50, "T1 cone {}", cone.count());
        // Nobody has a T1 in their cone except the T1 itself.
        assert_eq!(net.graph.provider_degree(t1), 0);
    }
}
