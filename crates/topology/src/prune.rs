//! Graph preprocessing per the paper's §2.2.
//!
//! The paper prepared the UCLA snapshot by "recursively removing all ASes
//! that had no providers \[and\] had low degree (and were not Tier 1 ISPs)".
//! [`prune_orphans`] implements exactly that fixpoint; [`largest_component`]
//! restricts a graph to its largest connected component, which published
//! snapshots occasionally need.

use crate::{AsGraph, AsId, GraphBuilder};

/// Result of a pruning pass: the reduced graph and, for each new id, the id
/// it had in the input graph.
#[derive(Clone, Debug)]
pub struct Pruned {
    /// The reduced graph.
    pub graph: AsGraph,
    /// `old_id[new.index()]` is the input-graph id of each surviving AS.
    pub old_id: Vec<AsId>,
}

impl Pruned {
    /// Map an input-graph id to the pruned graph, if it survived.
    pub fn new_id(&self, old: AsId) -> Option<AsId> {
        // old_id is sorted because retained ids keep their relative order.
        self.old_id.binary_search(&old).ok().map(|i| AsId(i as u32))
    }
}

/// Recursively remove provider-less ASes whose total degree is below
/// `min_degree`, never removing ids listed in `keep` (the Tier-1 clique).
pub fn prune_orphans(graph: &AsGraph, min_degree: usize, keep: &[AsId]) -> Pruned {
    let n = graph.len();
    let mut removed = vec![false; n];
    let mut keep_mask = vec![false; n];
    for &k in keep {
        keep_mask[k.index()] = true;
    }

    // Fixpoint: removing an AS lowers neighbors' degrees and can orphan
    // ASes whose only provider was removed.
    let mut changed = true;
    while changed {
        changed = false;
        for v in graph.ases() {
            if removed[v.index()] || keep_mask[v.index()] {
                continue;
            }
            let provider_count = graph
                .providers(v)
                .iter()
                .filter(|p| !removed[p.index()])
                .count();
            let degree = graph
                .neighbors(v)
                .iter()
                .filter(|u| !removed[u.index()])
                .count();
            if provider_count == 0 && degree < min_degree {
                removed[v.index()] = true;
                changed = true;
            }
        }
    }

    rebuild(graph, &removed)
}

/// Restrict `graph` to its largest connected component.
pub fn largest_component(graph: &AsGraph) -> Pruned {
    let n = graph.len();
    let mut comp = vec![u32::MAX; n];
    let mut sizes: Vec<usize> = Vec::new();
    let mut stack = Vec::new();
    for v in graph.ases() {
        if comp[v.index()] != u32::MAX {
            continue;
        }
        let c = sizes.len() as u32;
        sizes.push(0);
        comp[v.index()] = c;
        stack.push(v);
        while let Some(u) = stack.pop() {
            sizes[c as usize] += 1;
            for &w in graph.neighbors(u) {
                if comp[w.index()] == u32::MAX {
                    comp[w.index()] = c;
                    stack.push(w);
                }
            }
        }
    }
    let biggest = sizes
        .iter()
        .enumerate()
        .max_by_key(|(_, &s)| s)
        .map(|(i, _)| i as u32)
        .unwrap_or(0);
    let removed: Vec<bool> = comp.iter().map(|&c| c != biggest).collect();
    rebuild(graph, &removed)
}

fn rebuild(graph: &AsGraph, removed: &[bool]) -> Pruned {
    let mut old_id = Vec::new();
    let mut new_id = vec![AsId(u32::MAX); graph.len()];
    for v in graph.ases() {
        if !removed[v.index()] {
            new_id[v.index()] = AsId(old_id.len() as u32);
            old_id.push(v);
        }
    }
    let mut b = GraphBuilder::new(old_id.len());
    let labels: Vec<u32> = old_id.iter().map(|&v| graph.asn_label(v)).collect();
    b.set_asn_labels(labels)
        .expect("one label per surviving AS by construction");
    for (a, c, rel) in graph.edges() {
        if !removed[a.index()] && !removed[c.index()] {
            b.add_edge(new_id[a.index()], new_id[c.index()], rel)
                .expect("rebuilding pruned graph");
        }
    }
    Pruned {
        graph: b.build(),
        old_id,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0-1 form a peered core; 2 hangs off 0; 3 and 4 are provider-less
    /// low-degree orphans (4 only connected to 3).
    fn orphan_graph() -> AsGraph {
        let mut b = GraphBuilder::new(5);
        b.add_peering(AsId(0), AsId(1)).unwrap();
        b.add_provider(AsId(2), AsId(0)).unwrap();
        b.add_peering(AsId(3), AsId(1)).unwrap();
        b.add_provider(AsId(4), AsId(3)).unwrap();
        b.build()
    }

    #[test]
    fn prune_removes_orphans_recursively() {
        let g = orphan_graph();
        // 3 has no providers and degree 2 (< 3): removed. That orphans 4
        // (its only provider was 3, degree drops to 0): removed too.
        let pruned = prune_orphans(&g, 3, &[AsId(0), AsId(1)]);
        assert_eq!(pruned.graph.len(), 3);
        assert_eq!(pruned.old_id, vec![AsId(0), AsId(1), AsId(2)]);
        assert_eq!(pruned.new_id(AsId(2)), Some(AsId(2)));
        assert_eq!(pruned.new_id(AsId(3)), None);
    }

    #[test]
    fn keep_list_protects_tier1() {
        let g = orphan_graph();
        let pruned = prune_orphans(&g, 3, &[AsId(0), AsId(1), AsId(3)]);
        // 3 survives, so 4 keeps its provider; but 4 itself has no
        // providers? No: 4's provider is 3, which survives, so 4 stays.
        assert_eq!(pruned.graph.len(), 5);
    }

    #[test]
    fn largest_component_selected() {
        let mut b = GraphBuilder::new(6);
        b.add_peering(AsId(0), AsId(1)).unwrap();
        b.add_provider(AsId(2), AsId(0)).unwrap();
        b.add_peering(AsId(3), AsId(4)).unwrap();
        // 5 is isolated.
        let g = b.build();
        let lc = largest_component(&g);
        assert_eq!(lc.graph.len(), 3);
        assert_eq!(lc.old_id, vec![AsId(0), AsId(1), AsId(2)]);
    }

    #[test]
    fn labels_follow_pruning() {
        let mut b = GraphBuilder::new(3);
        b.set_asn_labels(vec![100, 200, 300]).unwrap();
        b.add_peering(AsId(0), AsId(1)).unwrap();
        // 2 isolated.
        let g = b.build();
        let lc = largest_component(&g);
        assert_eq!(lc.graph.asn_label(AsId(0)), 100);
        assert_eq!(lc.graph.asn_label(AsId(1)), 200);
    }
}
