//! The compact AS-level graph.

use std::fmt;

/// Identifier of an AS inside an [`AsGraph`].
///
/// Ids are dense indices `0..graph.len()`, *not* real-world AS numbers.
/// Real ASNs from parsed relationship files are kept in
/// [`AsGraph::asn_label`] so output can refer to them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AsId(pub u32);

impl AsId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for AsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Display for AsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Business relationship of an edge, read from the first AS's perspective.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Relationship {
    /// The first AS pays the second for transit (customer → provider).
    CustomerToProvider,
    /// Settlement-free peering.
    PeerToPeer,
}

/// How a neighbor relates to a given AS, from that AS's point of view.
///
/// This is the granularity at which the BGP decision process (the `LP` step
/// of §2.2.1) ranks routes: routes learned from customers beat routes
/// learned from peers beat routes learned from providers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NeighborClass {
    /// The neighbor is a customer of this AS (it pays us).
    Customer,
    /// The neighbor is a settlement-free peer.
    Peer,
    /// The neighbor is a provider of this AS (we pay it).
    Provider,
}

/// An immutable AS-level topology with business relationships.
///
/// Neighbors of every AS are stored in one flat array, grouped per AS into
/// three contiguous, sorted segments — customers, then peers, then
/// providers — so the routing engine can iterate exactly the class it needs
/// (e.g. "all providers of the current BFS frontier") with no branching or
/// hashing.
///
/// Construct via [`crate::GraphBuilder`], [`crate::gen`] or [`crate::io`].
#[derive(Clone, Debug)]
pub struct AsGraph {
    /// `offsets[v]..cust_end[v]` — customers of `v` in `neighbors`.
    pub(crate) offsets: Vec<u32>,
    /// End (absolute index) of `v`'s customer segment.
    pub(crate) cust_end: Vec<u32>,
    /// End (absolute index) of `v`'s peer segment; providers run to
    /// `offsets[v + 1]`.
    pub(crate) peer_end: Vec<u32>,
    /// Flat, per-segment-sorted neighbor array.
    pub(crate) neighbors: Vec<AsId>,
    /// Optional real-world AS numbers (one per id); empty for synthetic
    /// graphs.
    pub(crate) asn_labels: Vec<u32>,
    /// Number of customer→provider edges.
    pub(crate) num_c2p: usize,
    /// Number of peer–peer edges.
    pub(crate) num_p2p: usize,
}

impl AsGraph {
    /// Number of ASes.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the graph has no ASes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over all AS ids.
    pub fn ases(&self) -> impl Iterator<Item = AsId> + '_ {
        (0..self.len() as u32).map(AsId)
    }

    /// Number of customer→provider edges.
    #[inline]
    pub fn num_customer_provider_edges(&self) -> usize {
        self.num_c2p
    }

    /// Number of peer–peer edges.
    #[inline]
    pub fn num_peer_edges(&self) -> usize {
        self.num_p2p
    }

    /// Total number of (undirected) adjacencies.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_c2p + self.num_p2p
    }

    /// The customers of `v` (sorted by id).
    #[inline]
    pub fn customers(&self, v: AsId) -> &[AsId] {
        let i = v.index();
        &self.neighbors[self.offsets[i] as usize..self.cust_end[i] as usize]
    }

    /// The peers of `v` (sorted by id).
    #[inline]
    pub fn peers(&self, v: AsId) -> &[AsId] {
        let i = v.index();
        &self.neighbors[self.cust_end[i] as usize..self.peer_end[i] as usize]
    }

    /// The providers of `v` (sorted by id).
    #[inline]
    pub fn providers(&self, v: AsId) -> &[AsId] {
        let i = v.index();
        &self.neighbors[self.peer_end[i] as usize..self.offsets[i + 1] as usize]
    }

    /// All neighbors of `v` regardless of class.
    #[inline]
    pub fn neighbors(&self, v: AsId) -> &[AsId] {
        let i = v.index();
        &self.neighbors[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Neighbors of `v` in a given class.
    pub fn neighbors_in_class(&self, v: AsId, class: NeighborClass) -> &[AsId] {
        match class {
            NeighborClass::Customer => self.customers(v),
            NeighborClass::Peer => self.peers(v),
            NeighborClass::Provider => self.providers(v),
        }
    }

    /// Number of customers of `v` ("customer degree", the paper's measure of
    /// AS size).
    #[inline]
    pub fn customer_degree(&self, v: AsId) -> usize {
        self.customers(v).len()
    }

    /// Number of peers of `v` ("peering degree").
    #[inline]
    pub fn peer_degree(&self, v: AsId) -> usize {
        self.peers(v).len()
    }

    /// Number of providers of `v`.
    #[inline]
    pub fn provider_degree(&self, v: AsId) -> usize {
        self.providers(v).len()
    }

    /// Total degree of `v`.
    #[inline]
    pub fn degree(&self, v: AsId) -> usize {
        self.neighbors(v).len()
    }

    /// How `to` relates to `from`, if they are adjacent.
    ///
    /// Runs a binary search in each of `from`'s (sorted) segments.
    pub fn classify(&self, from: AsId, to: AsId) -> Option<NeighborClass> {
        if self.customers(from).binary_search(&to).is_ok() {
            Some(NeighborClass::Customer)
        } else if self.peers(from).binary_search(&to).is_ok() {
            Some(NeighborClass::Peer)
        } else if self.providers(from).binary_search(&to).is_ok() {
            Some(NeighborClass::Provider)
        } else {
            None
        }
    }

    /// True when `a` and `b` share an edge of any kind.
    pub fn are_adjacent(&self, a: AsId, b: AsId) -> bool {
        self.classify(a, b).is_some()
    }

    /// The real-world ASN label for `v`, when the graph was parsed from a
    /// relationship file. Synthetic graphs label each AS with its own id.
    pub fn asn_label(&self, v: AsId) -> u32 {
        if self.asn_labels.is_empty() {
            v.0
        } else {
            self.asn_labels[v.index()]
        }
    }

    /// Iterate over every edge once, as `(a, b, relationship)` with the
    /// relationship read from `a`'s side (`a` is the customer for
    /// [`Relationship::CustomerToProvider`]; for peering, `a < b`).
    pub fn edges(&self) -> impl Iterator<Item = (AsId, AsId, Relationship)> + '_ {
        self.ases().flat_map(move |v| {
            let provs = self
                .providers(v)
                .iter()
                .map(move |&p| (v, p, Relationship::CustomerToProvider));
            let peers = self
                .peers(v)
                .iter()
                .filter(move |&&p| v < p)
                .map(move |&p| (v, p, Relationship::PeerToPeer));
            provs.chain(peers)
        })
    }

    /// True when the customer→provider edges form a DAG (no AS is,
    /// transitively, its own provider). The Gao–Rexford stability conditions
    /// assume this; all generated graphs satisfy it by construction and
    /// parsed graphs can be checked with this method.
    pub fn provider_hierarchy_is_acyclic(&self) -> bool {
        // Kahn's algorithm over customer→provider edges.
        let n = self.len();
        let mut indeg = vec![0u32; n]; // number of customers (incoming in provider direction)
        for v in self.ases() {
            indeg[v.index()] = self.customer_degree(v) as u32;
        }
        let mut queue: Vec<AsId> = self.ases().filter(|&v| indeg[v.index()] == 0).collect();
        let mut seen = 0usize;
        while let Some(v) = queue.pop() {
            seen += 1;
            for &p in self.providers(v) {
                indeg[p.index()] -= 1;
                if indeg[p.index()] == 0 {
                    queue.push(p);
                }
            }
        }
        seen == n
    }

    /// True when the graph is connected, ignoring edge directions.
    pub fn is_connected(&self) -> bool {
        let n = self.len();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![AsId(0)];
        seen[0] = true;
        let mut count = 0usize;
        while let Some(v) = stack.pop() {
            count += 1;
            for &u in self.neighbors(v) {
                if !seen[u.index()] {
                    seen[u.index()] = true;
                    stack.push(u);
                }
            }
        }
        count == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn diamond() -> AsGraph {
        // 0 is provider of 1 and 2; 1 and 2 peer; 3 is customer of both 1 and 2.
        let mut b = GraphBuilder::new(4);
        b.add_provider(AsId(1), AsId(0)).unwrap();
        b.add_provider(AsId(2), AsId(0)).unwrap();
        b.add_peering(AsId(1), AsId(2)).unwrap();
        b.add_provider(AsId(3), AsId(1)).unwrap();
        b.add_provider(AsId(3), AsId(2)).unwrap();
        b.build()
    }

    #[test]
    fn segments_are_consistent() {
        let g = diamond();
        assert_eq!(g.len(), 4);
        assert_eq!(g.customers(AsId(0)), &[AsId(1), AsId(2)]);
        assert_eq!(g.providers(AsId(0)), &[] as &[AsId]);
        assert_eq!(g.peers(AsId(1)), &[AsId(2)]);
        assert_eq!(g.providers(AsId(3)), &[AsId(1), AsId(2)]);
        assert_eq!(g.customers(AsId(3)), &[] as &[AsId]);
        assert_eq!(g.num_customer_provider_edges(), 4);
        assert_eq!(g.num_peer_edges(), 1);
    }

    #[test]
    fn classify_is_symmetric_in_the_right_way() {
        let g = diamond();
        assert_eq!(g.classify(AsId(0), AsId(1)), Some(NeighborClass::Customer));
        assert_eq!(g.classify(AsId(1), AsId(0)), Some(NeighborClass::Provider));
        assert_eq!(g.classify(AsId(1), AsId(2)), Some(NeighborClass::Peer));
        assert_eq!(g.classify(AsId(2), AsId(1)), Some(NeighborClass::Peer));
        assert_eq!(g.classify(AsId(0), AsId(3)), None);
    }

    #[test]
    fn edge_iterator_visits_each_edge_once() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 5);
        let c2p = edges
            .iter()
            .filter(|(_, _, r)| *r == Relationship::CustomerToProvider)
            .count();
        assert_eq!(c2p, 4);
    }

    #[test]
    fn acyclic_and_connected() {
        let g = diamond();
        assert!(g.provider_hierarchy_is_acyclic());
        assert!(g.is_connected());
    }

    #[test]
    fn cycle_detection_finds_provider_loops() {
        let mut b = GraphBuilder::new(3);
        b.add_provider(AsId(0), AsId(1)).unwrap();
        b.add_provider(AsId(1), AsId(2)).unwrap();
        b.add_provider(AsId(2), AsId(0)).unwrap();
        let g = b.build();
        assert!(!g.provider_hierarchy_is_acyclic());
    }

    #[test]
    fn degree_accessors() {
        let g = diamond();
        assert_eq!(g.customer_degree(AsId(0)), 2);
        assert_eq!(g.peer_degree(AsId(1)), 1);
        assert_eq!(g.provider_degree(AsId(3)), 2);
        assert_eq!(g.degree(AsId(1)), 3);
    }
}
