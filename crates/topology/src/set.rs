//! A dense bitset over AS ids.

use std::fmt;

use crate::AsId;

/// Dense bitset keyed by [`AsId`], used for deployment sets, visited marks
/// and sampling masks throughout the workspace.
#[derive(Clone, PartialEq, Eq)]
pub struct AsSet {
    words: Vec<u64>,
    len: usize,
}

impl AsSet {
    /// An empty set over a universe of `n` ASes.
    pub fn new(n: usize) -> Self {
        AsSet {
            words: vec![0; n.div_ceil(64)],
            len: n,
        }
    }

    /// A set containing every AS of an `n`-AS universe.
    pub fn full(n: usize) -> Self {
        let mut s = AsSet::new(n);
        for i in 0..n {
            s.insert(AsId(i as u32));
        }
        s
    }

    /// Build from an iterator of members.
    pub fn from_iter(n: usize, iter: impl IntoIterator<Item = AsId>) -> Self {
        let mut s = AsSet::new(n);
        for id in iter {
            s.insert(id);
        }
        s
    }

    /// Size of the universe (not the membership count).
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Insert `id`; returns true when it was newly inserted.
    pub fn insert(&mut self, id: AsId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Remove `id`; returns true when it was present.
    pub fn remove(&mut self, id: AsId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: AsId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no AS is a member.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Remove all members, keeping the universe size.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &AsSet) {
        assert_eq!(self.len, other.len, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place set difference (`self \ other`).
    pub fn difference_with(&mut self, other: &AsSet) {
        assert_eq!(self.len, other.len, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &AsSet) {
        assert_eq!(self.len, other.len, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// True when every member of `other` is also a member of `self`.
    pub fn is_superset(&self, other: &AsSet) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| b & !a == 0)
    }

    /// Iterate over members of `self` that are *not* members of `prev`, in
    /// increasing id order — the ASes "added since" an older snapshot of
    /// the same universe.
    pub fn iter_added<'a>(&'a self, prev: &'a AsSet) -> impl Iterator<Item = AsId> + 'a {
        assert_eq!(self.len, prev.len, "universe mismatch");
        self.words
            .iter()
            .zip(&prev.words)
            .enumerate()
            .flat_map(|(wi, (&now, &old))| {
                let mut w = now & !old;
                std::iter::from_fn(move || {
                    if w == 0 {
                        None
                    } else {
                        let b = w.trailing_zeros();
                        w &= w - 1;
                        Some(AsId((wi * 64) as u32 + b))
                    }
                })
            })
    }

    /// Iterate over members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = AsId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros();
                    w &= w - 1;
                    Some(AsId((wi * 64) as u32 + b))
                }
            })
        })
    }
}

impl fmt::Debug for AsSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<AsId> for AsSet {
    /// Collect into a set whose universe is just large enough for the
    /// largest member. Prefer [`AsSet::from_iter`] with an explicit universe
    /// when interoperating with a graph.
    fn from_iter<T: IntoIterator<Item = AsId>>(iter: T) -> Self {
        let ids: Vec<AsId> = iter.into_iter().collect();
        let n = ids.iter().map(|id| id.index() + 1).max().unwrap_or(0);
        AsSet::from_iter(n, ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = AsSet::new(130);
        assert!(s.insert(AsId(0)));
        assert!(s.insert(AsId(64)));
        assert!(s.insert(AsId(129)));
        assert!(!s.insert(AsId(129)));
        assert!(s.contains(AsId(64)));
        assert!(!s.contains(AsId(63)));
        assert_eq!(s.count(), 3);
        assert!(s.remove(AsId(64)));
        assert!(!s.remove(AsId(64)));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let members = [AsId(5), AsId(64), AsId(65), AsId(127), AsId(128)];
        let s = AsSet::from_iter(200, members);
        let got: Vec<AsId> = s.iter().collect();
        assert_eq!(got, members);
    }

    #[test]
    fn set_algebra() {
        let a = AsSet::from_iter(10, [AsId(1), AsId(2), AsId(3)]);
        let b = AsSet::from_iter(10, [AsId(3), AsId(4)]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), 4);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![AsId(1), AsId(2)]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![AsId(3)]);
    }

    #[test]
    fn superset_and_added() {
        let old = AsSet::from_iter(130, [AsId(1), AsId(64)]);
        let new = AsSet::from_iter(130, [AsId(1), AsId(64), AsId(65), AsId(129)]);
        assert!(new.is_superset(&old));
        assert!(!old.is_superset(&new));
        assert!(new.is_superset(&new));
        assert_eq!(
            new.iter_added(&old).collect::<Vec<_>>(),
            vec![AsId(65), AsId(129)]
        );
        assert_eq!(old.iter_added(&new).count(), 0);
    }

    #[test]
    fn full_and_clear() {
        let mut s = AsSet::full(70);
        assert_eq!(s.count(), 70);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.universe(), 70);
    }
}
