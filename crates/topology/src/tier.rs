//! The paper's Table 1 tier taxonomy.
//!
//! | Tier | Definition (Table 1) |
//! |------|----------------------|
//! | Tier 1 | 13 ASes with high customer degree & no providers |
//! | Tier 2 | 100 top ASes by customer degree & with providers |
//! | Tier 3 | Next 100 ASes by customer degree & with providers |
//! | CPs | 17 content-provider ASes (explicit list) |
//! | Small CPs | Top 300 ASes by peering degree (other than T1/T2/T3/CP) |
//! | Stubs-x | ASes with peers but no customers |
//! | Stubs | ASes with no customers & no peers |
//! | SMDG | Remaining non-stub ASes |
//!
//! Precedence follows the table's row order: an AS qualifying for several
//! rows is assigned the first one. In particular a customer-less AS with a
//! very high peering degree is a *Small CP*, not a stub-x.

use crate::{AsGraph, AsId, AsSet, TopologyError};

/// Tier of an AS per the paper's Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// Large transit-free ISPs.
    Tier1,
    /// Top-100 customer-degree ASes with providers.
    Tier2,
    /// Next-100 customer-degree ASes with providers.
    Tier3,
    /// The 17 content providers (Google, Akamai, ... in the paper).
    Cp,
    /// Top-300 remaining ASes by peering degree.
    SmallCp,
    /// Mid-graph ASes: non-stubs not in any class above.
    Smdg,
    /// Customer-less ASes that do have peers.
    StubX,
    /// Customer-less, peer-less edge ASes.
    Stub,
}

/// All tiers in the order used by the paper's per-tier figures
/// (STUB, STUB-X, SMDG, SMCP, CP, T3, T2, T1).
pub const FIGURE_TIER_ORDER: [Tier; 8] = [
    Tier::Stub,
    Tier::StubX,
    Tier::Smdg,
    Tier::SmallCp,
    Tier::Cp,
    Tier::Tier3,
    Tier::Tier2,
    Tier::Tier1,
];

impl Tier {
    /// Short label used in reports (matches the paper's axis labels).
    pub fn label(self) -> &'static str {
        match self {
            Tier::Tier1 => "T1",
            Tier::Tier2 => "T2",
            Tier::Tier3 => "T3",
            Tier::Cp => "CP",
            Tier::SmallCp => "SMCP",
            Tier::Smdg => "SMDG",
            Tier::StubX => "STUB-X",
            Tier::Stub => "STUB",
        }
    }

    /// True for the two stub classes (no customers).
    pub fn is_stub(self) -> bool {
        matches!(self, Tier::Stub | Tier::StubX)
    }
}

/// Parameters of the classification; defaults mirror Table 1.
#[derive(Clone, Debug)]
pub struct TierConfig {
    /// Number of Tier-1 ASes to select.
    pub tier1_count: usize,
    /// Number of Tier-2 ASes.
    pub tier2_count: usize,
    /// Number of Tier-3 ASes.
    pub tier3_count: usize,
    /// Number of small content providers.
    pub small_cp_count: usize,
    /// Explicit content-provider ids (the paper's 17 CP list).
    pub content_providers: Vec<AsId>,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            tier1_count: 13,
            tier2_count: 100,
            tier3_count: 100,
            small_cp_count: 300,
            content_providers: Vec::new(),
        }
    }
}

impl TierConfig {
    /// Table 1 defaults with the content-provider list given as
    /// *real-world ASNs* (the paper's explicit 17-CP list), resolved into
    /// dense ids through `graph`'s [`AsGraph::asn_label`]s.
    ///
    /// This is the entry point for parsed snapshots, where ids are
    /// first-appearance interning order and mean nothing outside the
    /// graph. An ASN no AS carries is a hard [`TopologyError::UnknownAsn`]
    /// — a CP list that silently shrank would skew every per-CP figure.
    /// Works on synthetic graphs too, where each AS is labeled by its own
    /// id.
    pub fn with_content_provider_asns(
        graph: &AsGraph,
        cp_asns: &[u32],
    ) -> Result<TierConfig, TopologyError> {
        let by_label: std::collections::HashMap<u32, AsId> =
            graph.ases().map(|v| (graph.asn_label(v), v)).collect();
        let mut content_providers = Vec::with_capacity(cp_asns.len());
        for &asn in cp_asns {
            match by_label.get(&asn) {
                // A repeated ASN is kept once (first occurrence) — a
                // doubled id would count that CP twice in every per-CP
                // average. The CLI rejects duplicates up front; this
                // guards every other caller.
                Some(&v) if !content_providers.contains(&v) => content_providers.push(v),
                Some(_) => {}
                None => return Err(TopologyError::UnknownAsn(asn)),
            }
        }
        Ok(TierConfig {
            content_providers,
            ..TierConfig::default()
        })
    }
}

/// The computed tier of every AS, plus per-tier member lists.
#[derive(Clone, Debug)]
pub struct TierMap {
    tiers: Vec<Tier>,
    /// Tier-1 ids, sorted by descending customer degree.
    tier1: Vec<AsId>,
    /// Tier-2 ids, sorted by descending customer degree.
    tier2: Vec<AsId>,
    /// Tier-3 ids, sorted by descending customer degree.
    tier3: Vec<AsId>,
    /// Content-provider ids.
    cps: Vec<AsId>,
}

impl TierMap {
    /// Classify every AS of `graph` per Table 1.
    pub fn classify(graph: &AsGraph, config: &TierConfig) -> TierMap {
        let n = graph.len();
        let mut tiers = vec![Tier::Smdg; n];
        let mut assigned = AsSet::new(n);

        // Tier 1: provider-free ASes, by descending customer degree.
        let mut t1_candidates: Vec<AsId> = graph
            .ases()
            .filter(|&v| graph.provider_degree(v) == 0 && graph.customer_degree(v) > 0)
            .collect();
        t1_candidates.sort_by_key(|&v| (std::cmp::Reverse(graph.customer_degree(v)), v));
        t1_candidates.truncate(config.tier1_count);
        for &v in &t1_candidates {
            tiers[v.index()] = Tier::Tier1;
            assigned.insert(v);
        }

        // Tier 2 and 3: top ASes by customer degree *with* providers.
        let mut with_providers: Vec<AsId> = graph
            .ases()
            .filter(|&v| {
                graph.provider_degree(v) > 0
                    && graph.customer_degree(v) > 0
                    && !assigned.contains(v)
            })
            .collect();
        with_providers.sort_by_key(|&v| (std::cmp::Reverse(graph.customer_degree(v)), v));
        let tier2: Vec<AsId> = with_providers
            .iter()
            .copied()
            .take(config.tier2_count)
            .collect();
        let tier3: Vec<AsId> = with_providers
            .iter()
            .copied()
            .skip(config.tier2_count)
            .take(config.tier3_count)
            .collect();
        for &v in &tier2 {
            tiers[v.index()] = Tier::Tier2;
            assigned.insert(v);
        }
        for &v in &tier3 {
            tiers[v.index()] = Tier::Tier3;
            assigned.insert(v);
        }

        // Content providers: explicit list (skip any already classified
        // higher, as the paper's CPs are below the large transit tiers).
        let mut cps = Vec::new();
        for &v in &config.content_providers {
            if v.index() < n && !assigned.contains(v) {
                tiers[v.index()] = Tier::Cp;
                assigned.insert(v);
                cps.push(v);
            }
        }

        // Small CPs: top remaining ASes by peering degree.
        let mut by_peering: Vec<AsId> = graph
            .ases()
            .filter(|&v| !assigned.contains(v) && graph.peer_degree(v) > 0)
            .collect();
        by_peering.sort_by_key(|&v| (std::cmp::Reverse(graph.peer_degree(v)), v));
        for &v in by_peering.iter().take(config.small_cp_count) {
            tiers[v.index()] = Tier::SmallCp;
            assigned.insert(v);
        }

        // Stubs, stubs-x, SMDG for the rest.
        for v in graph.ases() {
            if assigned.contains(v) {
                continue;
            }
            tiers[v.index()] = if graph.customer_degree(v) > 0 {
                Tier::Smdg
            } else if graph.peer_degree(v) > 0 {
                Tier::StubX
            } else {
                Tier::Stub
            };
        }

        TierMap {
            tiers,
            tier1: t1_candidates,
            tier2,
            tier3,
            cps,
        }
    }

    /// Tier of a single AS.
    #[inline]
    pub fn tier(&self, v: AsId) -> Tier {
        self.tiers[v.index()]
    }

    /// Tier-1 ASes, sorted by descending customer degree.
    pub fn tier1(&self) -> &[AsId] {
        &self.tier1
    }

    /// Tier-2 ASes, sorted by descending customer degree.
    pub fn tier2(&self) -> &[AsId] {
        &self.tier2
    }

    /// Tier-3 ASes, sorted by descending customer degree.
    pub fn tier3(&self) -> &[AsId] {
        &self.tier3
    }

    /// Content-provider ASes.
    pub fn content_providers(&self) -> &[AsId] {
        &self.cps
    }

    /// All members of a tier, in id order.
    pub fn members(&self, tier: Tier) -> Vec<AsId> {
        self.tiers
            .iter()
            .enumerate()
            .filter(|(_, &t)| t == tier)
            .map(|(i, _)| AsId(i as u32))
            .collect()
    }

    /// Number of ASes in a tier.
    pub fn count(&self, tier: Tier) -> usize {
        self.tiers.iter().filter(|&&t| t == tier).count()
    }

    /// True when `v` is a stub of either kind — equivalently, when `v` is
    /// excluded from the paper's non-stub attacker set `M'`.
    pub fn is_stub(&self, v: AsId) -> bool {
        self.tier(v).is_stub()
    }

    /// The paper's non-stub attacker population `M'` (every AS that is not a
    /// stub or stub-x), in id order.
    pub fn non_stubs(&self) -> Vec<AsId> {
        self.tiers
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_stub())
            .map(|(i, _)| AsId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// Small topology exercising every tier class.
    ///
    /// 0,1: provider-free cores (T1). 2: big ISP with providers (T2).
    /// 3: smaller ISP (T3, given counts of 1 each). 4: CP (explicit).
    /// 5: high-peering customer-less AS (small CP). 6: SMDG transit.
    /// 7: stub-x. 8,9,10,11: stubs.
    fn sample() -> (AsGraph, TierMap) {
        let mut b = GraphBuilder::new(12);
        b.add_peering(AsId(0), AsId(1)).unwrap();
        // 2 buys from 0 and 1 and has many customers.
        b.add_provider(AsId(2), AsId(0)).unwrap();
        b.add_provider(AsId(2), AsId(1)).unwrap();
        // 3 buys from 2, has one customer.
        b.add_provider(AsId(3), AsId(2)).unwrap();
        // 4: content provider, customer of 0, peers with 2.
        b.add_provider(AsId(4), AsId(0)).unwrap();
        b.add_peering(AsId(4), AsId(2)).unwrap();
        // 5: customer-less with two peers.
        b.add_provider(AsId(5), AsId(1)).unwrap();
        b.add_peering(AsId(5), AsId(4)).unwrap();
        b.add_peering(AsId(5), AsId(3)).unwrap();
        // 6: transit AS under 3.
        b.add_provider(AsId(6), AsId(3)).unwrap();
        // 7: stub-x (peer, no customers).
        b.add_provider(AsId(7), AsId(2)).unwrap();
        b.add_peering(AsId(7), AsId(6)).unwrap();
        // stubs under 2 and 6.
        for s in 8..12 {
            b.add_provider(AsId(s), AsId(2)).unwrap();
        }
        b.add_provider(AsId(8), AsId(6)).unwrap();
        let g = b.build();
        let cfg = TierConfig {
            tier1_count: 2,
            tier2_count: 1,
            tier3_count: 1,
            small_cp_count: 1,
            content_providers: vec![AsId(4)],
        };
        let tm = TierMap::classify(&g, &cfg);
        (g, tm)
    }

    #[test]
    fn classification_matches_table1() {
        let (_, tm) = sample();
        assert_eq!(tm.tier(AsId(0)), Tier::Tier1);
        assert_eq!(tm.tier(AsId(1)), Tier::Tier1);
        assert_eq!(tm.tier(AsId(2)), Tier::Tier2);
        assert_eq!(tm.tier(AsId(3)), Tier::Tier3);
        assert_eq!(tm.tier(AsId(4)), Tier::Cp);
        assert_eq!(tm.tier(AsId(5)), Tier::SmallCp);
        assert_eq!(tm.tier(AsId(6)), Tier::Smdg);
        assert_eq!(tm.tier(AsId(7)), Tier::StubX);
        for s in 8..12 {
            assert_eq!(tm.tier(AsId(s)), Tier::Stub, "AS{s}");
        }
    }

    #[test]
    fn member_lists_are_consistent() {
        let (_, tm) = sample();
        assert_eq!(tm.tier1(), &[AsId(0), AsId(1)]);
        assert_eq!(tm.tier2(), &[AsId(2)]);
        assert_eq!(tm.tier3(), &[AsId(3)]);
        assert_eq!(tm.content_providers(), &[AsId(4)]);
        assert_eq!(tm.count(Tier::Stub), 4);
        assert_eq!(tm.members(Tier::StubX), vec![AsId(7)]);
    }

    #[test]
    fn non_stub_attacker_population() {
        let (_, tm) = sample();
        let m: Vec<AsId> = tm.non_stubs();
        // Everything except 7..=11 (note: 5 is a SmallCp even though it has
        // no customers — Table 1 row precedence).
        assert_eq!(
            m,
            vec![
                AsId(0),
                AsId(1),
                AsId(2),
                AsId(3),
                AsId(4),
                AsId(5),
                AsId(6)
            ]
        );
    }

    #[test]
    fn tier1_requires_no_providers() {
        let (g, tm) = sample();
        for &t1 in tm.tier1() {
            assert_eq!(g.provider_degree(t1), 0);
        }
    }

    #[test]
    fn content_provider_asns_resolve_through_labels() {
        let mut b = GraphBuilder::new(3);
        b.add_provider(AsId(1), AsId(0)).unwrap();
        b.add_provider(AsId(2), AsId(0)).unwrap();
        b.set_asn_labels(vec![3356, 15169, 20940]).unwrap();
        let g = b.build();
        let cfg = TierConfig::with_content_provider_asns(&g, &[20940, 15169]).unwrap();
        assert_eq!(cfg.content_providers, vec![AsId(2), AsId(1)]);
        assert_eq!(cfg.tier1_count, TierConfig::default().tier1_count);
        assert!(matches!(
            TierConfig::with_content_provider_asns(&g, &[64512]),
            Err(TopologyError::UnknownAsn(64512))
        ));
        // A repeated ASN resolves to one CP, first occurrence kept.
        let cfg = TierConfig::with_content_provider_asns(&g, &[20940, 15169, 20940]).unwrap();
        assert_eq!(cfg.content_providers, vec![AsId(2), AsId(1)]);
        // Synthetic graphs label each AS by its own id.
        let mut b = GraphBuilder::new(2);
        b.add_peering(AsId(0), AsId(1)).unwrap();
        let g = b.build();
        let cfg = TierConfig::with_content_provider_asns(&g, &[1]).unwrap();
        assert_eq!(cfg.content_providers, vec![AsId(1)]);
    }

    #[test]
    fn figure_order_covers_all_tiers() {
        let mut v = FIGURE_TIER_ORDER.to_vec();
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 8);
    }
}
