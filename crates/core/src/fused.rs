//! Fused multi-cell engine pass: one snapshot traversal serves every
//! policy cell of a `(destination, deployment)` pair.
//!
//! The paper's headline figures evaluate the *same* `(d, S)` pair under
//! every security model × LP variant × attack-strategy rung, and the
//! contested regions of those policy cells overlap heavily: the bogus
//! announcement spreads through the same neighborhoods, just priced by a
//! slightly different preference order per cell. [`FusedDeltaEngine`]
//! exploits that overlap along three independent axes:
//!
//! 1. **Cell dedup.** A [`CellSet`] canonicalizes every cell's strategy
//!    through [`AttackStrategy::canonical`], so the `path1`/fake-link and
//!    `path0`/hijack spellings can never run the same cell twice; input
//!    indices map onto deduped *lanes*.
//! 2. **Model collapse.** At a deployment with **zero validating ASes**
//!    (`Deployment::full_count() == 0` — every Baseline cell and the first
//!    rungs of every rollout sweep), policies differing only in their
//!    security model are behaviorally identical: `preference_key`'s
//!    non-validating arm ignores the model, no secure offer can ever be
//!    assembled (a secure push requires the *receiver* to validate), and
//!    the models' drain schedules differ only in stages that act on the
//!    empty secure queues. The unique stable state (Theorem 2.1) of such
//!    lanes therefore coincides bit for bit, and the fused pass runs one
//!    *computation* for the whole model group. `tests/fused_equivalence.rs`
//!    pins this equivalence against per-cell engines.
//! 3. **Shared contested-region discovery.** For the computations that do
//!    remain distinct, one multi-lane forward scan
//!    ([`crate::region::MultiScan`]) walks the snapshot neighborhood once
//!    with a per-frontier-entry lane bitmask and discovers every lane's
//!    seed ball simultaneously — the **shared-region invariant**: the scan
//!    is a per-lane *superset/subset-tolerant seeding*, never an exactness
//!    input, because the verify-and-grow loop reaches local consistency
//!    from any seed set and Theorem 2.1 uniqueness then forces the same
//!    stable outcome. Only fallback decisions and statistics may differ
//!    from what each lane's private scan would have produced.
//!
//! **Per-lane fallback exactness.** When the shared scan proves a lane's
//! ball exceeds its adjacency-mass budget, that lane alone is served by a
//! full single-cell [`Engine::compute`]
//! ([`AttackDeltaEngine::attack_set_full`]); the other lanes keep their
//! patches. Fused results are therefore `≡` per-cell results bit for bit
//! in every case — the fused pass only ever changes *how* an outcome is
//! reached, never *which* outcome.

use sbgp_topology::{AsGraph, AsId};

use crate::attack::AttackStrategy;
use crate::delta::{AttackDeltaEngine, CachedBase, DeltaStats};
use crate::deployment::Deployment;
use crate::outcome::Outcome;
use crate::policy::Policy;
use crate::region::{MultiScan, ScanLane};

/// One policy cell of a fused pass: a complete routing policy plus the
/// attack-strategy rung every announcer uses. Construction canonicalizes
/// the strategy spelling.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PolicyCell {
    /// The routing policy (security model × LP variant).
    pub policy: Policy,
    /// The announcers' forged-path rung, canonicalized.
    pub strategy: AttackStrategy,
}

impl PolicyCell {
    /// A cell with `strategy` collapsed through
    /// [`AttackStrategy::canonical`].
    pub fn new(policy: Policy, strategy: AttackStrategy) -> PolicyCell {
        PolicyCell {
            policy,
            strategy: strategy.canonical(),
        }
    }
}

/// A deduplicated set of policy cells evaluated together by one fused
/// pass. Input cell order is preserved: input index `i` maps to lane
/// [`CellSet::lane_of`]`(i)`, and duplicate spellings (same policy, same
/// canonical strategy) share a lane instead of running twice.
#[derive(Clone, Debug)]
pub struct CellSet {
    lanes: Vec<PolicyCell>,
    lane_of: Vec<usize>,
}

impl CellSet {
    /// Dedup `cells` (in first-seen order) into lanes.
    ///
    /// # Panics
    ///
    /// Panics when `cells` is empty or deduplicates to more than 64 lanes
    /// (the fused scan packs lane membership into a `u64`).
    pub fn new(cells: &[PolicyCell]) -> CellSet {
        assert!(!cells.is_empty(), "a CellSet needs at least one cell");
        let mut lanes: Vec<PolicyCell> = Vec::new();
        let mut lane_of = Vec::with_capacity(cells.len());
        for &c in cells {
            let c = PolicyCell::new(c.policy, c.strategy);
            let j = lanes.iter().position(|&l| l == c).unwrap_or_else(|| {
                lanes.push(c);
                lanes.len() - 1
            });
            lane_of.push(j);
        }
        assert!(
            lanes.len() <= 64,
            "at most 64 unique cells per fused pass, got {}",
            lanes.len()
        );
        CellSet { lanes, lane_of }
    }

    /// The row-major `policies × strategies` grid as a cell set.
    pub fn grid(policies: &[Policy], strategies: &[AttackStrategy]) -> CellSet {
        let cells: Vec<PolicyCell> = policies
            .iter()
            .flat_map(|&p| strategies.iter().map(move |&s| PolicyCell::new(p, s)))
            .collect();
        CellSet::new(&cells)
    }

    /// A single-strategy set, one cell per policy.
    pub fn per_policy(policies: &[Policy], strategy: AttackStrategy) -> CellSet {
        CellSet::grid(policies, &[strategy])
    }

    /// The unique lanes, in first-seen input order.
    pub fn lanes(&self) -> &[PolicyCell] {
        &self.lanes
    }

    /// Number of unique lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Number of input cells (before dedup).
    pub fn input_len(&self) -> usize {
        self.lane_of.len()
    }

    /// The lane serving input cell `i`.
    pub fn lane_of(&self, i: usize) -> usize {
        self.lane_of[i]
    }
}

/// How a fused engine's lanes were served (cumulative across begins).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FusedStats {
    /// Cells fixed ([`FusedDeltaEngine::begin`] calls).
    pub begins: usize,
    /// Lanes that shared a sibling computation outright (model collapse).
    pub collapsed_lanes: usize,
    /// Base outcomes adopted from a sibling computation of the same
    /// policy group instead of being recomputed (strategy-only siblings).
    pub shared_bases: usize,
    /// Per-computation attacks served from the shared multi-lane scan.
    pub seeded_attacks: usize,
    /// Per-computation attacks the shared scan already proved over budget
    /// (served by a full compute without any patch work).
    pub forced_fallbacks: usize,
    /// Base outcomes adopted from an *external* cache
    /// ([`FusedDeltaEngine::begin_with_bases`]) instead of being computed.
    pub cached_bases: usize,
}

/// One distinct computation of the current cell: the policy it actually
/// runs (the representative of its collapsed model group), its strategy,
/// and the computation whose normal-conditions base it shares.
#[derive(Clone, Copy, Debug)]
struct Comp {
    policy: Policy,
    strategy: AttackStrategy,
    base: usize,
}

/// The fused multi-cell attacker-delta engine: an [`AttackDeltaEngine`]
/// per *distinct* computation of a [`CellSet`], driven by one shared
/// contested-region traversal per attack. See the module docs for the
/// sharing axes and the exactness argument.
///
/// Create one per worker and reuse it across destinations:
/// [`FusedDeltaEngine::begin`] fixes the `(destination, deployment)` pair
/// for every cell at once, then each [`FusedDeltaEngine::attack`] /
/// [`FusedDeltaEngine::attack_set`] serves all cells; results are read
/// back per *input* cell index.
#[derive(Debug)]
pub struct FusedDeltaEngine<'g> {
    graph: &'g AsGraph,
    cells: CellSet,
    /// One engine per computation, grown lazily; `engines[..comps.len()]`
    /// are live for the current cell.
    engines: Vec<AttackDeltaEngine<'g>>,
    comps: Vec<Comp>,
    /// Lane index → computation index, rebuilt per begin (model collapse
    /// depends on the deployment).
    comp_of: Vec<usize>,
    scan: MultiScan,
    seeds: Vec<Vec<AsId>>,
    over: Vec<bool>,
    destination: AsId,
    deployment: Option<Deployment>,
    stats: FusedStats,
}

impl<'g> FusedDeltaEngine<'g> {
    /// Create a fused engine for `graph` serving `cells`.
    pub fn new(graph: &'g AsGraph, cells: CellSet) -> FusedDeltaEngine<'g> {
        FusedDeltaEngine {
            graph,
            cells,
            engines: Vec::new(),
            comps: Vec::new(),
            comp_of: Vec::new(),
            scan: MultiScan::new(graph.len()),
            seeds: Vec::new(),
            over: Vec::new(),
            destination: AsId(0),
            deployment: None,
            stats: FusedStats::default(),
        }
    }

    /// The cell set this engine serves.
    pub fn cells(&self) -> &CellSet {
        &self.cells
    }

    /// The topology this engine runs on.
    pub fn graph(&self) -> &'g AsGraph {
        self.graph
    }

    /// Distinct computations of the current cell (after model collapse);
    /// meaningful only after [`FusedDeltaEngine::begin`].
    pub fn computations(&self) -> usize {
        self.comps.len()
    }

    /// Cumulative fused-pass statistics.
    pub fn stats(&self) -> FusedStats {
        self.stats
    }

    /// Summed statistics of the per-computation delta engines.
    pub fn delta_stats(&self) -> DeltaStats {
        let mut sum = DeltaStats::default();
        for e in &self.engines {
            let s = e.stats();
            sum.base_computes += s.base_computes;
            sum.adopted_bases += s.adopted_bases;
            sum.delta_attacks += s.delta_attacks;
            sum.full_recomputes += s.full_recomputes;
            sum.refixed_ases += s.refixed_ases;
            sum.grow_rounds += s.grow_rounds;
        }
        sum
    }

    /// Fix the `(destination, deployment)` pair for every cell: group the
    /// lanes into distinct computations (collapsing models when the
    /// deployment has no validators), compute each policy group's
    /// normal-conditions base once, and share it across the group.
    pub fn begin(&mut self, destination: AsId, deployment: &Deployment) {
        self.begin_with_bases(destination, deployment, |_| None);
    }

    /// As [`FusedDeltaEngine::begin`], adopting externally cached base
    /// states where available: for each distinct base computation,
    /// `base(policy)` may supply a [`CachedBase`] exported earlier from
    /// the **same** `(destination, deployment, policy)` cell, which is
    /// then re-adopted through [`AttackDeltaEngine::begin_from_base`]
    /// instead of recomputed.
    ///
    /// This is the planner service's cache-adoption hook. Exactness is the
    /// caller's contract: a supplied base must be bit-identical to what a
    /// fresh computation of that cell would produce (which holds
    /// trivially when it *was* produced by one — the engines are
    /// deterministic), so results are bit-identical at any cache state.
    /// Freshly computed bases can be harvested afterwards via
    /// [`FusedDeltaEngine::export_bases`].
    ///
    /// # Panics
    ///
    /// Panics when a supplied base carries an attacker, covers a
    /// different graph size, or names a different destination.
    pub fn begin_with_bases<'b, F>(&mut self, destination: AsId, deployment: &Deployment, base: F)
    where
        F: FnMut(Policy) -> Option<&'b CachedBase>,
    {
        let mut lookup = base;
        self.stats.begins += 1;
        self.destination = destination;
        let collapse = deployment.full_count() == 0;
        let same_policy = |a: Policy, b: Policy| a == b || (collapse && a.variant == b.variant);
        let lane_cells: Vec<PolicyCell> = self.cells.lanes().to_vec();
        self.comps.clear();
        self.comp_of.clear();
        for cell in lane_cells {
            match self
                .comps
                .iter()
                .position(|c| same_policy(c.policy, cell.policy) && c.strategy == cell.strategy)
            {
                Some(ci) => {
                    // A behaviorally identical computation already exists:
                    // this lane rides it outright.
                    self.comp_of.push(ci);
                    self.stats.collapsed_lanes += 1;
                }
                None => {
                    let base = self
                        .comps
                        .iter()
                        .position(|c| same_policy(c.policy, cell.policy))
                        .unwrap_or(self.comps.len());
                    self.comps.push(Comp {
                        policy: cell.policy,
                        strategy: cell.strategy,
                        base,
                    });
                    self.comp_of.push(self.comps.len() - 1);
                }
            }
        }
        while self.engines.len() < self.comps.len() {
            self.engines.push(AttackDeltaEngine::new(self.graph));
        }
        self.seeds.resize_with(self.comps.len(), Vec::new);
        self.over.resize(self.comps.len(), false);
        for ci in 0..self.comps.len() {
            let Comp { policy, base, .. } = self.comps[ci];
            if base == ci {
                if let Some(cached) = lookup(policy) {
                    assert_eq!(
                        cached.outcome().destination(),
                        destination,
                        "cached base outcome names a different destination"
                    );
                    self.engines[ci].begin_from_base(cached, deployment, policy);
                    self.stats.cached_bases += 1;
                } else {
                    self.engines[ci].begin(destination, deployment, policy);
                }
            } else {
                // Strategy-only sibling: the normal-conditions outcome
                // does not depend on the strategy, adopt the group base.
                debug_assert!(base < ci);
                let (head, tail) = self.engines.split_at_mut(ci);
                tail[0].begin_from_normal(head[base].normal_outcome(), deployment, policy);
                self.stats.shared_bases += 1;
            }
        }
        self.deployment = Some(deployment.clone());
    }

    /// Serve `attacker` for every cell (see
    /// [`FusedDeltaEngine::attack_set`]).
    pub fn attack(&mut self, attacker: AsId) {
        self.attack_set(&[attacker]);
    }

    /// Serve a colluding announcer set for every cell: one shared
    /// multi-lane scan discovers all computations' seed balls, then each
    /// computation patches (or, over budget, fully recomputes) its lane.
    ///
    /// # Panics
    ///
    /// Panics before [`FusedDeltaEngine::begin`], or when `attackers`
    /// violates [`crate::AttackScenario::colluding`]'s preconditions.
    pub fn attack_set(&mut self, attackers: &[AsId]) {
        let deployment = self
            .deployment
            .as_ref()
            .expect("FusedDeltaEngine::begin not called");
        let ncomp = self.comps.len();
        let mut lanes: Vec<ScanLane<'_>> = Vec::with_capacity(ncomp);
        for (comp, engine) in self.comps.iter().zip(&self.engines) {
            lanes.push(ScanLane {
                policy: comp.policy,
                root_depth: comp.strategy.root_depth(),
                cell_keys: engine.cell_keys(),
                budget: engine.mass_budget(),
            });
        }
        self.scan.run(
            self.graph,
            self.destination,
            attackers,
            deployment,
            &lanes,
            &mut self.seeds[..ncomp],
            &mut self.over[..ncomp],
        );
        drop(lanes);
        for ci in 0..ncomp {
            let strategy = self.comps[ci].strategy;
            if self.over[ci] {
                self.stats.forced_fallbacks += 1;
                self.engines[ci].attack_set_full(attackers, strategy);
            } else {
                self.stats.seeded_attacks += 1;
                self.engines[ci].attack_set_seeded(attackers, strategy, &self.seeds[ci]);
            }
        }
    }

    fn engine_for(&self, cell: usize) -> &AttackDeltaEngine<'g> {
        &self.engines[self.comp_of[self.cells.lane_of(cell)]]
    }

    /// The last served outcome of input cell `cell` — bit-identical to
    /// what a dedicated [`AttackDeltaEngine`] (and hence
    /// [`Engine::compute`]) returns for that cell.
    pub fn outcome(&self, cell: usize) -> &Outcome {
        self.engine_for(cell).last_outcome()
    }

    /// Happy-source bounds of the last served attack of input cell `cell`.
    pub fn count_happy(&self, cell: usize) -> (usize, usize) {
        self.engine_for(cell).count_happy()
    }

    /// The normal-conditions outcome of input cell `cell`.
    pub fn normal_outcome(&self, cell: usize) -> &Outcome {
        self.engine_for(cell).normal_outcome()
    }

    /// Happy bounds of input cell `cell`'s normal-conditions outcome.
    pub fn normal_happy(&self, cell: usize) -> (usize, usize) {
        self.engine_for(cell).normal_happy()
    }

    /// As [`FusedDeltaEngine::outcome`], indexed by *lane* (unique cell)
    /// instead of input cell — for drivers that iterate
    /// [`CellSet::lanes`] directly (e.g. handing each lane to a
    /// [`crate::SweepEngine`]).
    pub fn lane_outcome(&self, lane: usize) -> &Outcome {
        self.engines[self.comp_of[lane]].last_outcome()
    }

    /// As [`FusedDeltaEngine::count_happy`], indexed by lane.
    pub fn lane_happy(&self, lane: usize) -> (usize, usize) {
        self.engines[self.comp_of[lane]].count_happy()
    }

    /// The current cell's distinct base computations as
    /// `(policy, exported base)` pairs — one per computation that owns its
    /// own base (model collapse reports the group's representative
    /// policy). This is the harvest side of
    /// [`FusedDeltaEngine::begin_with_bases`]: a caching layer keeps the
    /// bases it did not supply and re-adopts them on later queries.
    pub fn export_bases(&self) -> impl Iterator<Item = (Policy, CachedBase)> + '_ {
        self.comps
            .iter()
            .enumerate()
            .filter(|(ci, c)| c.base == *ci)
            .map(|(ci, c)| (c.policy, self.engines[ci].export_base()))
    }
}

// `Engine` is only mentioned in docs; keep the link target alive.
#[allow(unused_imports)]
use crate::engine::Engine;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::AttackScenario;
    use crate::policy::{LpVariant, SecurityModel};
    use sbgp_topology::GraphBuilder;

    /// The Figure 2 downgrade gadget plus a second provider chain.
    fn gadget() -> AsGraph {
        let mut b = GraphBuilder::new(8);
        b.add_provider(AsId(1), AsId(0)).unwrap();
        b.add_peering(AsId(1), AsId(2)).unwrap();
        b.add_peering(AsId(0), AsId(2)).unwrap();
        b.add_provider(AsId(3), AsId(2)).unwrap();
        b.add_provider(AsId(4), AsId(3)).unwrap();
        b.add_provider(AsId(5), AsId(0)).unwrap();
        b.add_provider(AsId(6), AsId(5)).unwrap();
        b.add_provider(AsId(7), AsId(6)).unwrap();
        b.build()
    }

    fn all_policies() -> Vec<Policy> {
        let mut out = Vec::new();
        for model in SecurityModel::ALL {
            for variant in [LpVariant::Standard, LpVariant::LpK(2)] {
                out.push(Policy::with_variant(model, variant));
            }
        }
        out
    }

    #[test]
    fn cell_set_dedups_canonical_spellings() {
        let p = Policy::new(SecurityModel::Security3rd);
        let cells = CellSet::new(&[
            PolicyCell::new(p, AttackStrategy::FakePath { hops: 1 }),
            PolicyCell::new(p, AttackStrategy::FakeLink),
            PolicyCell::new(p, AttackStrategy::FakePath { hops: 0 }),
            PolicyCell::new(p, AttackStrategy::OriginHijack),
            PolicyCell::new(p, AttackStrategy::FakePath { hops: 2 }),
        ]);
        assert_eq!(cells.input_len(), 5);
        assert_eq!(
            cells.lane_count(),
            3,
            "fake-link and hijack spellings collapse"
        );
        assert_eq!(cells.lane_of(0), cells.lane_of(1));
        assert_eq!(cells.lane_of(2), cells.lane_of(3));
    }

    #[test]
    fn fused_matches_per_cell_engines_everywhere() {
        let g = gadget();
        let cells = CellSet::grid(
            &all_policies(),
            &[
                AttackStrategy::FakeLink,
                AttackStrategy::FakePath { hops: 2 },
            ],
        );
        let deps = [
            Deployment::empty(8),
            Deployment::full_from_iter(8, [AsId(0), AsId(1), AsId(2)]),
        ];
        let mut fused = FusedDeltaEngine::new(&g, cells.clone());
        let mut solo = AttackDeltaEngine::new(&g);
        for dep in &deps {
            for d in [AsId(0), AsId(2)] {
                fused.begin(d, dep);
                for m in 0..8u32 {
                    let m = AsId(m);
                    if m == d {
                        continue;
                    }
                    fused.attack(m);
                    for (i, cell) in cells.lanes().iter().enumerate() {
                        solo.begin(d, dep, cell.policy);
                        solo.attack(m, cell.strategy);
                        let want = solo.last_outcome();
                        let got = fused.outcome(i);
                        for v in g.ases() {
                            assert_eq!(
                                got.route(v),
                                want.route(v),
                                "cell {cell:?} d={d} m={m} at {v}"
                            );
                            assert_eq!(got.next_hop(v), want.next_hop(v), "cell {cell:?}");
                        }
                        assert_eq!(
                            fused.count_happy(i),
                            solo.count_happy(),
                            "cell {cell:?} d={d} m={m}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn models_collapse_without_validators() {
        let g = gadget();
        let policies: Vec<Policy> = SecurityModel::ALL.map(Policy::new).to_vec();
        let cells = CellSet::per_policy(&policies, AttackStrategy::FakeLink);
        let mut fused = FusedDeltaEngine::new(&g, cells);
        fused.begin(AsId(0), &Deployment::empty(8));
        assert_eq!(fused.computations(), 1, "three models, one computation");
        // Simplex-only deployments still collapse: signing without
        // validation never assembles a secure route.
        let mut dep = Deployment::empty(8);
        dep.insert_simplex(AsId(0));
        fused.begin(AsId(0), &dep);
        assert_eq!(fused.computations(), 1);
        // A single validator splits the models apart again.
        fused.begin(AsId(0), &Deployment::full_from_iter(8, [AsId(1)]));
        assert_eq!(fused.computations(), 3);
    }

    #[test]
    fn compute_cells_matches_engine_compute() {
        let g = gadget();
        let cells = CellSet::grid(
            &all_policies(),
            &[AttackStrategy::OriginHijack, AttackStrategy::FakeLink],
        );
        let dep = Deployment::full_from_iter(8, [AsId(0), AsId(2)]);
        let mut engine = Engine::new(&g);
        let mut fresh = Engine::new(&g);
        let mut multi = crate::MultiOutcome::new();
        for attackers in [vec![], vec![AsId(4)], vec![AsId(3), AsId(6)]] {
            engine.compute_cells(AsId(0), &attackers, &dep, &cells, &mut multi);
            assert_eq!(multi.lane_count(), cells.lane_count());
            for (j, cell) in cells.lanes().iter().enumerate() {
                let scenario = if attackers.is_empty() {
                    AttackScenario::normal(AsId(0))
                } else {
                    AttackScenario::colluding(&attackers, AsId(0)).with_strategy(cell.strategy)
                };
                let want = fresh.compute(scenario, &dep, cell.policy);
                let got = multi.lane(j);
                for v in g.ases() {
                    assert_eq!(got.route(v), want.route(v), "lane {j} at {v}");
                    assert_eq!(got.next_hop(v), want.next_hop(v), "lane {j} at {v}");
                }
                assert_eq!(multi.happy(j), want.count_happy(), "lane {j}");
            }
            // Lane 0 is never dirty against itself.
            for v in g.ases() {
                assert_eq!(multi.dirty_mask(v) & 1, 0);
            }
        }
    }
}
