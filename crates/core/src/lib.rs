//! Core library for the SIGCOMM'13 *"BGP Security in Partial Deployment: Is
//! the Juice Worth the Squeeze?"* reproduction.
//!
//! This crate implements the paper's primary contribution — a framework for
//! quantifying how much security a *partial* S\*BGP deployment adds over
//! RPKI origin authentication:
//!
//! * [`policy`] — the three S\*BGP routing-policy models (**security 1st /
//!   2nd / 3rd**, §2.2.2) over the standard Gao–Rexford decision process,
//!   plus the Appendix K `LPk` local-preference variants.
//! * [`deployment`] — which ASes are secure, including **simplex S\*BGP**
//!   at stubs (§5.3.2: origin-signing without validation).
//! * [`attack`] — the threat model of §3.1 generalized along Goldberg et
//!   al.'s strategy taxonomy: `k`-hop forged paths (the paper's `"m, d"`
//!   fake link is `k = 1`, the pre-RPKI origin hijack `k = 0`) announced
//!   via legacy BGP by one attacker or a small set of colluding
//!   announcers.
//! * [`engine`] — the multi-stage two-rooted BFS of Appendix B that
//!   computes the unique stable routing outcome for a given (attacker,
//!   destination, deployment, policy) in `O(V + E)`.
//! * [`outcome`] — per-AS results: route class, length, security, and the
//!   happy/unhappy classification with tie-break lower/upper bounds
//!   (§4.1, Appendix C).
//! * [`partition`] — the doomed / protectable / immune partition of §4.3 /
//!   Appendix E, which bounds the metric over *every possible* deployment.
//! * [`analysis`] — protocol downgrades (§3.2, Appendix F), collateral
//!   benefits and damages (§6.1), and the root-cause decomposition of
//!   metric changes (§6.2, Figure 16).
//! * [`metric`] — the security metric `H_{M,D}(S)` of §4.1.
//! * [`sweep`] — the incremental deployment-sweep engine: for a fixed
//!   `(m, d, policy)`, recompute outcomes along a monotonically growing
//!   secure set by re-fixing only a dirty region (rollout curves cost a
//!   fraction of from-scratch recomputation).
//! * [`delta`] — the attacker-delta engine: for a fixed `(d, S, policy)`,
//!   compute the normal-conditions outcome once and serve every attacker
//!   `m ∈ M` by re-fixing only the contested region around its bogus
//!   announcement, with a touched-list snapshot restore between attackers.
//! * [`fused`] — the fused multi-cell pass: one traversal serves every
//!   policy cell (model × LP variant × strategy rung) of a
//!   `(destination, deployment)` pair at once, collapsing behaviorally
//!   identical cells and sharing the contested-region discovery, with a
//!   per-lane fallback to the single-cell engines that keeps fused
//!   results bit-identical to per-cell computes.
//!
//! [`sweep`] and [`delta`] are the two axes of one amortization hierarchy
//! (deployment × attacker); `sbgp-sim` composes them destination-major —
//! the delta engine anchors each `(m, d)` pair's first step off the
//! destination's shared normal outcome, and a sweep adopted from that
//! patch ([`SweepEngine::begin_from`]) carries the remaining deployment
//! steps — so a whole rollout costs one base fix per destination plus one
//! anchor patch and `|S|−1` small sweep patches per pair.
//!
//! The crate is single-threaded by design; [`Engine`], [`SweepEngine`] and
//! [`AttackDeltaEngine`] instances hold reusable scratch and the
//! `sbgp-sim` crate runs one per worker thread to parallelize over
//! destinations and (attacker, destination) pairs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod attack;
pub mod delta;
pub mod deployment;
pub mod engine;
pub mod fused;
pub mod metric;
pub mod outcome;
pub mod partition;
pub mod policy;
mod region;
pub mod sweep;

pub use analysis::{PairAnalysis, PairAnalyzer};
pub use attack::{AttackScenario, AttackStrategy, MAX_ATTACKERS};
pub use delta::{AttackDeltaEngine, CachedBase, DeltaStats};
pub use deployment::Deployment;
pub use engine::Engine;
pub use fused::{CellSet, FusedDeltaEngine, FusedStats, PolicyCell};
pub use metric::{Bounds, HappyCount};
pub use outcome::{MultiOutcome, Outcome, RootFlags, RouteClass, RouteInfo};
pub use partition::{Fate, PartitionComputer, PartitionCounts};
pub use policy::{LpVariant, Policy, SecurityModel};
pub use sweep::{SweepEngine, SweepStats};

/// Re-export of the topology substrate this crate builds on.
pub use sbgp_topology as topology;
