//! Per-AS routing outcomes and the happy/unhappy classification (§4.1).
//!
//! The routing models determine each AS's choice only up to the arbitrary
//! intradomain tie-break **TB**, so the engine records, for every AS, the
//! *set* of equally-best routes (the paper's `BPR` set) — which by
//! construction all share the same class, length and security status — and
//! whether members of that set lead to the legitimate destination, the
//! attacker, or both. That three-way classification yields the lower and
//! upper bounds on the number of happy ASes used throughout the paper
//! (Appendix C).
//!
//! Storage layout: the per-AS root flags, the security bit and the
//! mark-traversal bit all live in one `flags` byte (see [`FLAG_ROOTS`],
//! [`FLAG_SECURE`], [`FLAG_VIA_MARK`]), so the engine's inner rescan loop
//! reads a single byte stream instead of three parallel arrays.
//!
//! For fused multi-cell passes, [`MultiOutcome`] stacks one such outcome
//! per policy-cell *lane* (lane-major) and keeps a per-AS cross-cell dirty
//! bitset recording which lanes still differ from the shared lane 0 — see
//! its type-level docs for the layout and the sharing invariant.

use sbgp_topology::AsId;

use crate::attack::MAX_ATTACKERS;

/// Which roots the equally-best routes of an AS lead to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RootFlags(pub(crate) u8);

/// Mask of the two root-reachability bits inside a packed flags byte.
pub(crate) const FLAG_ROOTS: u8 = 0b0011;
/// Packed-flags bit: the AS's equally-best routes are secure end-to-end.
pub(crate) const FLAG_SECURE: u8 = 0b0100;
/// Packed-flags bit: some equally-best route traverses the scenario mark.
pub(crate) const FLAG_VIA_MARK: u8 = 0b1000;

/// Pack root flags, the security bit and the mark bit into one byte.
#[inline]
pub(crate) fn pack_flags(root_flags: u8, secure: bool, via_mark: bool) -> u8 {
    debug_assert_eq!(root_flags & !FLAG_ROOTS, 0, "root flags overflow");
    root_flags | (u8::from(secure) << 2) | (u8::from(via_mark) << 3)
}

impl RootFlags {
    /// No route at all.
    pub const NONE: RootFlags = RootFlags(0);
    /// Every equally-best route reaches the legitimate destination.
    pub const TO_D: RootFlags = RootFlags(1);
    /// Every equally-best route reaches the attacker.
    pub const TO_M: RootFlags = RootFlags(2);
    /// The tie-break decides between legitimate and bogus routes.
    pub const MIXED: RootFlags = RootFlags(3);

    /// Some equally-best route reaches the destination.
    #[inline]
    pub fn may_reach_destination(self) -> bool {
        self.0 & 1 != 0
    }

    /// Some equally-best route reaches the attacker.
    #[inline]
    pub fn may_reach_attacker(self) -> bool {
        self.0 & 2 != 0
    }

    /// Happy under *every* tie-break: all best routes are legitimate.
    #[inline]
    pub fn surely_happy(self) -> bool {
        self == RootFlags::TO_D
    }

    /// Unhappy under every tie-break: all best routes are bogus.
    #[inline]
    pub fn surely_unhappy(self) -> bool {
        self == RootFlags::TO_M
    }

    /// Union of two flag sets.
    #[inline]
    pub fn union(self, other: RootFlags) -> RootFlags {
        RootFlags(self.0 | other.0)
    }
}

/// The LP class of an AS's chosen route (its next hop's relationship).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RouteClass {
    /// The AS *is* a root (the destination, or the attacker pretending).
    Origin,
    /// Route learned from a customer.
    Customer,
    /// Route learned from a peer.
    Peer,
    /// Route learned from a provider.
    Provider,
}

impl RouteClass {
    /// The LP rank used by [`crate::policy::preference_key`]
    /// (customer 0 ≺ peer 1 ≺ provider 2).
    pub fn rank(self) -> u8 {
        match self {
            RouteClass::Origin => 0,
            RouteClass::Customer => 0,
            RouteClass::Peer => 1,
            RouteClass::Provider => 2,
        }
    }
}

/// Resolved routing information for one AS.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouteInfo {
    /// LP class of the (equally-best) routes.
    pub class: RouteClass,
    /// AS-path length, counting the bogus "m, d" announcement as length 1
    /// at `m` itself (so `m`'s neighbors see length 2).
    pub length: u32,
    /// True when the routes are secure end-to-end from this AS's view.
    pub secure: bool,
    /// Which roots the routes lead to.
    pub flags: RootFlags,
}

/// The stable routing outcome for one `(attacker, destination, deployment,
/// policy)` instance, for every AS in the graph.
///
/// Produced by [`crate::Engine::compute`]; the buffers live inside the
/// engine and are reused across runs, so the outcome borrows the engine.
/// `Clone` exists so serving layers can retain an outcome past the
/// engine's next run — e.g. the planner service caches normal-conditions
/// outcomes and re-anchors later queries on them through
/// [`crate::AttackDeltaEngine::begin_from_normal`].
#[derive(Clone, Debug)]
pub struct Outcome {
    pub(crate) kind: Vec<u8>,
    pub(crate) len: Vec<u32>,
    /// Packed per-AS byte: root flags ([`FLAG_ROOTS`]), the security bit
    /// ([`FLAG_SECURE`]) and the mark-traversal bit ([`FLAG_VIA_MARK`]).
    pub(crate) flags: Vec<u8>,
    /// A representative next hop (lowest-id member of the `BPR` set);
    /// `u32::MAX` when unrouted or a root.
    pub(crate) next_hop: Vec<u32>,
    pub(crate) destination: AsId,
    /// Announcer set of the computed scenario, primary attacker first
    /// (front-packed; all `None` for normal conditions).
    pub(crate) attackers: [Option<AsId>; MAX_ATTACKERS],
}

pub(crate) const KIND_UNFIXED: u8 = 0;
pub(crate) const KIND_ORIGIN: u8 = 1;
pub(crate) const KIND_CUSTOMER: u8 = 2;
pub(crate) const KIND_PEER: u8 = 3;
pub(crate) const KIND_PROVIDER: u8 = 4;

impl Outcome {
    pub(crate) fn new_empty() -> Outcome {
        Outcome {
            kind: Vec::new(),
            len: Vec::new(),
            flags: Vec::new(),
            next_hop: Vec::new(),
            destination: AsId(0),
            attackers: [None; MAX_ATTACKERS],
        }
    }

    pub(crate) fn reset(
        &mut self,
        n: usize,
        destination: AsId,
        attackers: [Option<AsId>; MAX_ATTACKERS],
    ) {
        self.kind.clear();
        self.kind.resize(n, KIND_UNFIXED);
        self.len.clear();
        self.len.resize(n, u32::MAX);
        self.flags.clear();
        self.flags.resize(n, 0);
        self.next_hop.clear();
        self.next_hop.resize(n, u32::MAX);
        self.destination = destination;
        self.attackers = attackers;
    }

    /// Overwrite `self` with a copy of `other`, reusing buffers.
    pub(crate) fn copy_from(&mut self, other: &Outcome) {
        self.kind.clone_from(&other.kind);
        self.len.clone_from(&other.len);
        self.flags.clone_from(&other.flags);
        self.next_hop.clone_from(&other.next_hop);
        self.destination = other.destination;
        self.attackers = other.attackers;
    }

    /// Copy only `v`'s entry from `other` — the touched-list undo primitive
    /// used by [`crate::SweepEngine`] and [`crate::AttackDeltaEngine`] to
    /// patch or restore a snapshot in `O(touched)` instead of `O(V)`.
    #[inline]
    pub(crate) fn copy_entry_from(&mut self, other: &Outcome, v: AsId) {
        let i = v.index();
        self.kind[i] = other.kind[i];
        self.len[i] = other.len[i];
        self.flags[i] = other.flags[i];
        self.next_hop[i] = other.next_hop[i];
    }

    /// Return `v` to the unfixed state, as if the run had never reached it.
    pub(crate) fn unfix(&mut self, v: AsId) {
        let i = v.index();
        self.kind[i] = KIND_UNFIXED;
        self.len[i] = u32::MAX;
        self.flags[i] = 0;
        self.next_hop[i] = u32::MAX;
    }

    /// Write a fixed entry for index `i` (everything except the next hop,
    /// which roots never have and `try_fix` sets itself).
    #[inline]
    pub(crate) fn set_fixed(
        &mut self,
        i: usize,
        kind: u8,
        len: u32,
        secure: bool,
        root_flags: u8,
        via_mark: bool,
    ) {
        self.kind[i] = kind;
        self.len[i] = len;
        self.flags[i] = pack_flags(root_flags, secure, via_mark);
    }

    /// The packed flags byte for index `i` (root bits + secure + mark).
    #[inline]
    pub(crate) fn packed_flags(&self, i: usize) -> u8 {
        self.flags[i]
    }

    /// Security bit of index `i`'s routes.
    #[inline]
    pub(crate) fn secure_at(&self, i: usize) -> bool {
        self.flags[i] & FLAG_SECURE != 0
    }

    /// True when `v`'s entry agrees with `other`'s on every field a
    /// *neighbor* of `v` can observe (class, length, security, root flags,
    /// mark traversal — the latter three share the packed flags byte). The
    /// representative next hop is excluded: it can shrink with the `BPR`
    /// set without changing what `v` offers others.
    pub(crate) fn same_for_neighbors(&self, other: &Outcome, v: AsId) -> bool {
        let i = v.index();
        self.kind[i] == other.kind[i]
            && self.len[i] == other.len[i]
            && self.flags[i] == other.flags[i]
    }

    /// Number of ASes covered.
    pub fn len(&self) -> usize {
        self.kind.len()
    }

    /// True when the outcome covers no ASes.
    pub fn is_empty(&self) -> bool {
        self.kind.is_empty()
    }

    /// The destination of the computed scenario.
    pub fn destination(&self) -> AsId {
        self.destination
    }

    /// The primary attacker of the computed scenario, if any.
    pub fn attacker(&self) -> Option<AsId> {
        self.attackers[0]
    }

    /// Every announcer of the computed scenario, primary first (empty for
    /// normal conditions).
    pub fn attackers(&self) -> impl Iterator<Item = AsId> + '_ {
        self.attackers.iter().copied().flatten()
    }

    /// The route information for `v`, or `None` when `v` has no route.
    /// Roots (the destination and the attacker) report
    /// [`RouteClass::Origin`].
    pub fn route(&self, v: AsId) -> Option<RouteInfo> {
        let i = v.index();
        let class = match self.kind[i] {
            KIND_UNFIXED => return None,
            KIND_ORIGIN => RouteClass::Origin,
            KIND_CUSTOMER => RouteClass::Customer,
            KIND_PEER => RouteClass::Peer,
            KIND_PROVIDER => RouteClass::Provider,
            other => unreachable!("bad kind {other}"),
        };
        Some(RouteInfo {
            class,
            length: self.len[i],
            secure: self.flags[i] & FLAG_SECURE != 0,
            flags: RootFlags(self.flags[i] & FLAG_ROOTS),
        })
    }

    /// Root flags for `v` ([`RootFlags::NONE`] when unreachable).
    #[inline]
    pub fn flags(&self, v: AsId) -> RootFlags {
        RootFlags(self.flags[v.index()] & FLAG_ROOTS)
    }

    /// True when `v` uses a secure route (necessarily legitimate).
    #[inline]
    pub fn uses_secure_route(&self, v: AsId) -> bool {
        self.flags[v.index()] & FLAG_SECURE != 0
    }

    /// True when some equally-best route of `v` traverses the scenario's
    /// marked AS (see [`crate::AttackScenario::normal_marked`]). Always
    /// false when no mark was set.
    #[inline]
    pub fn may_traverse_mark(&self, v: AsId) -> bool {
        self.flags[v.index()] & FLAG_VIA_MARK != 0
    }

    /// A representative next hop for `v`: the lowest-id neighbor whose
    /// route is in `v`'s equally-best set. `None` for roots and unrouted
    /// ASes. When `v` is tie-break-torn ([`RootFlags::MIXED`]) this is one
    /// *possible* choice, not a prediction.
    pub fn next_hop(&self, v: AsId) -> Option<AsId> {
        match self.next_hop[v.index()] {
            u32::MAX => None,
            u => Some(AsId(u)),
        }
    }

    /// Follow representative next hops from `v` to a root, inclusive of
    /// both endpoints (e.g. `[v, provider, d]`). Empty when `v` has no
    /// route; a bogus route ends at the attacker (the fake `"m, d"` tail
    /// is *claimed*, not real, so it is not included).
    pub fn trace(&self, v: AsId) -> Vec<AsId> {
        let mut path = Vec::new();
        if self.route(v).is_none() {
            return path;
        }
        let mut cur = v;
        path.push(cur);
        while let Some(next) = self.next_hop(cur) {
            debug_assert!(path.len() <= self.kind.len(), "next-hop cycle");
            path.push(next);
            cur = next;
        }
        path
    }

    /// True when `v` is a source AS for the computed scenario (neither the
    /// destination nor any announcer).
    pub fn is_source(&self, v: AsId) -> bool {
        v != self.destination && !self.attackers.contains(&Some(v))
    }

    /// Count happy sources: returns `(surely_happy, possibly_happy)` — the
    /// lower and upper tie-break bounds of §4.1.
    ///
    /// Branch-free over the flags array (the compiler vectorizes it), with
    /// the roots' contributions removed afterwards; on large graphs this
    /// scan otherwise rivals the routing computation itself.
    pub fn count_happy(&self) -> (usize, usize) {
        let mut lower = 0usize;
        let mut upper = 0usize;
        for &f in &self.flags {
            lower += usize::from(f & FLAG_ROOTS == RootFlags::TO_D.0);
            upper += usize::from(f & 1);
        }
        let root = |v: AsId| {
            let f = self.flags[v.index()];
            (
                usize::from(f & FLAG_ROOTS == RootFlags::TO_D.0),
                usize::from(f & 1 != 0),
            )
        };
        let (dl, du) = root(self.destination);
        lower -= dl;
        upper -= du;
        for m in self.attackers.iter().flatten() {
            let (ml, mu) = root(*m);
            lower -= ml;
            upper -= mu;
        }
        (lower, upper)
    }

    /// Count sources currently on secure routes.
    pub fn count_secure_sources(&self) -> usize {
        (0..self.kind.len())
            .filter(|&i| {
                let v = AsId(i as u32);
                self.is_source(v) && self.flags[i] & FLAG_SECURE != 0
            })
            .count()
    }

    /// Iterate over all source ASes of this scenario.
    pub fn sources(&self) -> impl Iterator<Item = AsId> + '_ {
        (0..self.kind.len() as u32)
            .map(AsId)
            .filter(move |&v| self.is_source(v))
    }
}

/// Structure-of-arrays outcome storage for a *set* of policy cells over
/// the same `(destination, deployment, announcers)` scenario — the lane
/// store behind [`crate::Engine::compute_cells`] and the fused engine.
///
/// **Lane layout.** Lane `j` holds the complete per-AS state (kind, length,
/// packed flags byte, next hop — each itself a struct-of-arrays
/// [`Outcome`]) of the `j`-th unique cell of a [`crate::CellSet`], so all
/// lanes of one AS are reachable by striding the lane array at a fixed
/// index: lane-major, AS-minor. Alongside the lanes sits a **cross-cell
/// dirty bitset**: bit `j` of `dirty[v]` is set exactly when lane `j`'s
/// entry at `v` differs from lane 0's — i.e. which cells still have the
/// AS dirty relative to the shared reference lane after the fused pass.
/// A zero mask means every cell agrees at that AS and one entry serves
/// them all; on the paper's grids the masks are overwhelmingly zero, which
/// is the overlap the fused traversal exploits.
#[derive(Debug, Default)]
pub struct MultiOutcome {
    lanes: Vec<Outcome>,
    happy: Vec<(usize, usize)>,
    dirty: Vec<u64>,
}

impl MultiOutcome {
    /// An empty store; [`crate::Engine::compute_cells`] sizes it.
    pub fn new() -> MultiOutcome {
        MultiOutcome::default()
    }

    /// Number of lanes (unique cells) currently stored.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Lane `j`'s full outcome.
    pub fn lane(&self, j: usize) -> &Outcome {
        &self.lanes[j]
    }

    /// Lane `j`'s happy-source bounds (as [`Outcome::count_happy`]).
    pub fn happy(&self, j: usize) -> (usize, usize) {
        self.happy[j]
    }

    /// The cross-cell dirty mask at `v`: bit `j` set iff lane `j` differs
    /// from lane 0 at `v` (kind, length, flags byte or next hop).
    pub fn dirty_mask(&self, v: AsId) -> u64 {
        self.dirty[v.index()]
    }

    /// Clear and size the store for `lanes` lanes.
    pub(crate) fn reset_lanes(&mut self, lanes: usize) {
        self.lanes.resize_with(lanes, Outcome::new_empty);
        self.happy.clear();
        self.happy.resize(lanes, (0, 0));
        self.dirty.clear();
    }

    /// Store lane `j` by copying `outcome`.
    pub(crate) fn set_lane(&mut self, j: usize, outcome: &Outcome, happy: (usize, usize)) {
        self.lanes[j].copy_from(outcome);
        self.happy[j] = happy;
    }

    /// Share lane `from`'s outcome into lane `to` (`from < to`): the two
    /// cells were proven behaviorally identical, so one computation
    /// serves both.
    pub(crate) fn share_lane(&mut self, from: usize, to: usize) {
        assert!(from < to, "share_lane copies forward only");
        let (head, tail) = self.lanes.split_at_mut(to);
        tail[0].copy_from(&head[from]);
        self.happy[to] = self.happy[from];
    }

    /// Rebuild the cross-cell dirty bitset against lane 0.
    pub(crate) fn rebuild_dirty(&mut self) {
        let n = self.lanes.first().map_or(0, Outcome::len);
        self.dirty.clear();
        self.dirty.resize(n, 0);
        for j in 1..self.lanes.len() {
            let (lane0, lane) = (&self.lanes[0], &self.lanes[j]);
            assert_eq!(lane.len(), n, "lane {j} size mismatch");
            for i in 0..n {
                let v = AsId(i as u32);
                if !lane.same_for_neighbors(lane0, v) || lane.next_hop[i] != lane0.next_hop[i] {
                    self.dirty[i] |= 1 << j;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_algebra() {
        assert!(RootFlags::TO_D.surely_happy());
        assert!(!RootFlags::MIXED.surely_happy());
        assert!(RootFlags::MIXED.may_reach_destination());
        assert!(RootFlags::MIXED.may_reach_attacker());
        assert!(RootFlags::TO_M.surely_unhappy());
        assert_eq!(RootFlags::TO_D.union(RootFlags::TO_M), RootFlags::MIXED);
        assert_eq!(RootFlags::NONE.union(RootFlags::TO_D), RootFlags::TO_D);
    }

    #[test]
    fn happy_counting_respects_bounds() {
        let mut o = Outcome::new_empty();
        o.reset(5, AsId(0), [Some(AsId(4)), None, None]);
        // Sources are 1,2,3.
        o.flags[1] = RootFlags::TO_D.0;
        o.flags[2] = RootFlags::MIXED.0;
        o.flags[3] = RootFlags::TO_M.0;
        let (lo, hi) = o.count_happy();
        assert_eq!((lo, hi), (1, 2));
    }

    #[test]
    fn multi_attacker_scenarios_shrink_the_source_pool() {
        let mut o = Outcome::new_empty();
        o.reset(6, AsId(0), [Some(AsId(4)), Some(AsId(5)), None]);
        assert_eq!(o.attacker(), Some(AsId(4)), "primary attacker");
        assert_eq!(o.attackers().collect::<Vec<_>>(), vec![AsId(4), AsId(5)]);
        assert!(!o.is_source(AsId(5)), "colluders are not sources");
        assert!(o.is_source(AsId(3)));
        // Sources are 1, 2, 3.
        o.flags[1] = RootFlags::TO_D.0;
        o.flags[2] = RootFlags::MIXED.0;
        o.flags[3] = RootFlags::TO_M.0;
        o.flags[4] = RootFlags::TO_M.0;
        o.flags[5] = RootFlags::TO_M.0;
        assert_eq!(o.count_happy(), (1, 2));
        assert_eq!(o.sources().count(), 3);
    }

    #[test]
    fn happy_counting_ignores_packed_state_bits() {
        let mut o = Outcome::new_empty();
        o.reset(4, AsId(0), [None; MAX_ATTACKERS]);
        // A secure, mark-traversing happy source still counts as TO_D.
        o.flags[1] = pack_flags(RootFlags::TO_D.0, true, true);
        o.flags[2] = pack_flags(RootFlags::TO_M.0, false, true);
        let (lo, hi) = o.count_happy();
        assert_eq!((lo, hi), (1, 1));
        assert!(o.uses_secure_route(AsId(1)));
        assert!(o.may_traverse_mark(AsId(2)));
        assert_eq!(o.flags(AsId(1)), RootFlags::TO_D);
    }

    #[test]
    fn route_accessor_roundtrips() {
        let mut o = Outcome::new_empty();
        o.reset(3, AsId(0), [None; MAX_ATTACKERS]);
        o.set_fixed(1, KIND_PEER, 4, true, RootFlags::TO_D.0, false);
        let r = o.route(AsId(1)).unwrap();
        assert_eq!(r.class, RouteClass::Peer);
        assert_eq!(r.length, 4);
        assert!(r.secure);
        assert!(r.flags.surely_happy());
        assert!(o.route(AsId(2)).is_none());
    }

    #[test]
    fn entry_copy_restores_a_single_as() {
        let mut a = Outcome::new_empty();
        a.reset(3, AsId(0), [None; MAX_ATTACKERS]);
        a.set_fixed(1, KIND_CUSTOMER, 2, false, RootFlags::TO_D.0, false);
        a.next_hop[1] = 0;
        let mut b = Outcome::new_empty();
        b.reset(3, AsId(0), [None; MAX_ATTACKERS]);
        b.set_fixed(1, KIND_PEER, 9, true, RootFlags::TO_M.0, true);
        b.next_hop[1] = 2;
        b.copy_entry_from(&a, AsId(1));
        assert!(b.same_for_neighbors(&a, AsId(1)));
        assert_eq!(b.next_hop(AsId(1)), a.next_hop(AsId(1)));
        // Untouched entries keep their own state.
        assert!(b.route(AsId(2)).is_none());
    }
}
