//! S\*BGP deployment state: which ASes are secure, and in what mode.
//!
//! The paper distinguishes (§5.3.2):
//!
//! * **full S\*BGP** — the AS signs its announcements, validates received
//!   ones, and uses the SecP step in route selection;
//! * **simplex S\*BGP** — proposed for stub ASes: the AS (or its provider,
//!   on its behalf) signs *outgoing* origin announcements but receives
//!   legacy BGP, so it neither validates nor prefers secure routes.
//!
//! A route `(v_k, …, v_1, d)` is *secure* from the deciding AS `v_k`'s
//! perspective iff `v_k` and every transit hop run full S\*BGP and the
//! origin `d` at least signs (full or simplex). The engine factors this as:
//! the origin contributes [`Deployment::signs_origin`], every extension by
//! an AS `v` contributes [`Deployment::validates`]`(v)`.
//!
//! Deployment is **not monotone in practice**: coverage waxes *and* wanes
//! (RPKI churn, operators turning validation off after an incident, the
//! §2.3 wedgie/downgrade dynamics). Steps between deployments are therefore
//! described by the *symmetric difference* of the `validates` sets —
//! [`Deployment::newly_validating`] for the growth direction,
//! [`Deployment::newly_retired`] for the retraction direction — plus the
//! destination's signing flip. [`crate::SweepEngine`] serves any-direction
//! steps incrementally from exactly these seeds.

use sbgp_topology::{AsGraph, AsId, AsSet};

/// The set of secure ASes `S`, split into full and simplex members.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Deployment {
    full: AsSet,
    simplex: AsSet,
}

impl Deployment {
    /// The baseline scenario `S = ∅`: origin authentication only.
    pub fn empty(n: usize) -> Deployment {
        Deployment {
            full: AsSet::new(n),
            simplex: AsSet::new(n),
        }
    }

    /// A deployment where every listed AS runs full S\*BGP.
    pub fn full_from_iter(n: usize, iter: impl IntoIterator<Item = AsId>) -> Deployment {
        Deployment {
            full: AsSet::from_iter(n, iter),
            simplex: AsSet::new(n),
        }
    }

    /// A deployment from explicit full and simplex sets. Ids present in
    /// both are treated as full.
    pub fn with_simplex(full: AsSet, mut simplex: AsSet) -> Deployment {
        simplex.difference_with(&full);
        Deployment { full, simplex }
    }

    /// Size of the AS universe.
    pub fn universe(&self) -> usize {
        self.full.universe()
    }

    /// Add an AS in full mode (upgrades a simplex member).
    pub fn insert_full(&mut self, v: AsId) {
        self.full.insert(v);
        self.simplex.remove(v);
    }

    /// Add an AS in simplex mode unless it is already full.
    pub fn insert_simplex(&mut self, v: AsId) {
        if !self.full.contains(v) {
            self.simplex.insert(v);
        }
    }

    /// True when `v` validates received routes and signs as a transit hop —
    /// i.e. runs full S\*BGP. Only these ASes apply the SecP step.
    #[inline]
    pub fn validates(&self, v: AsId) -> bool {
        self.full.contains(v)
    }

    /// True when `v` signs its own origin announcements (full or simplex).
    #[inline]
    pub fn signs_origin(&self, v: AsId) -> bool {
        self.full.contains(v) || self.simplex.contains(v)
    }

    /// True when `v` is secure in either mode.
    #[inline]
    pub fn is_secure(&self, v: AsId) -> bool {
        self.signs_origin(v)
    }

    /// Number of secure ASes (both modes).
    pub fn secure_count(&self) -> usize {
        self.full.count() + self.simplex.count()
    }

    /// Number of full-mode members.
    pub fn full_count(&self) -> usize {
        self.full.count()
    }

    /// The full-mode member set.
    pub fn full_set(&self) -> &AsSet {
        &self.full
    }

    /// The simplex member set.
    pub fn simplex_set(&self) -> &AsSet {
        &self.simplex
    }

    /// True when no AS is secure (the origin-authentication baseline).
    pub fn is_baseline(&self) -> bool {
        self.full.is_empty() && self.simplex.is_empty()
    }

    /// True when this deployment only *adds* security relative to `prev`:
    /// every full member stays full, and every signer keeps signing
    /// (simplex members may upgrade to full). Historically this was the
    /// precondition for incremental sweeping; [`crate::SweepEngine`] now
    /// serves *any* same-universe step incrementally, and this predicate
    /// remains for rollout generators that want to assert monotonicity.
    pub fn is_monotone_extension_of(&self, prev: &Deployment) -> bool {
        self.universe() == prev.universe()
            && self.full.is_superset(&prev.full)
            && prev.simplex.iter().all(|v| self.signs_origin(v))
    }

    /// The ASes that validate under `self` but did not under `prev` — the
    /// growth-direction dirty seeds of an incremental sweep step.
    pub fn newly_validating<'a>(&'a self, prev: &'a Deployment) -> impl Iterator<Item = AsId> + 'a {
        self.full.iter_added(&prev.full)
    }

    /// The ASes that validated under `prev` but no longer do under `self` —
    /// the retraction-direction dirty seeds of an incremental sweep step
    /// (an AS dropping out of `S`, or downgrading full → simplex).
    pub fn newly_retired<'a>(&'a self, prev: &'a Deployment) -> impl Iterator<Item = AsId> + 'a {
        prev.full.iter_added(&self.full)
    }

    /// True when `self` and `prev` have identical `validates` sets (the
    /// symmetric difference of the full sets is empty). Together with an
    /// unchanged destination-signing bit this makes a step a no-op for the
    /// engine: simplex membership elsewhere is never read.
    pub fn same_validators(&self, prev: &Deployment) -> bool {
        self.newly_validating(prev).next().is_none() && self.newly_retired(prev).next().is_none()
    }

    /// Downgrade every stub in the deployment to simplex mode: the paper's
    /// §5.3.2 variant ("the error bars of Figure 7"). A *stub* here is an
    /// AS with no customers, matching the Ex-based argument that such ASes
    /// never transit announcements.
    pub fn stubs_to_simplex(&self, graph: &AsGraph) -> Deployment {
        let mut out = Deployment::empty(self.universe());
        for v in self.full.iter() {
            if graph.customer_degree(v) == 0 {
                out.insert_simplex(v);
            } else {
                out.insert_full(v);
            }
        }
        for v in self.simplex.iter() {
            out.insert_simplex(v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgp_topology::GraphBuilder;

    #[test]
    fn baseline_is_empty() {
        let d = Deployment::empty(10);
        assert!(d.is_baseline());
        assert_eq!(d.secure_count(), 0);
        assert!(!d.validates(AsId(3)));
        assert!(!d.signs_origin(AsId(3)));
    }

    #[test]
    fn full_members_validate_and_sign() {
        let d = Deployment::full_from_iter(10, [AsId(1), AsId(2)]);
        assert!(d.validates(AsId(1)));
        assert!(d.signs_origin(AsId(1)));
        assert!(!d.validates(AsId(0)));
        assert_eq!(d.full_count(), 2);
    }

    #[test]
    fn simplex_members_sign_but_do_not_validate() {
        let mut d = Deployment::empty(10);
        d.insert_simplex(AsId(4));
        assert!(!d.validates(AsId(4)));
        assert!(d.signs_origin(AsId(4)));
        assert!(d.is_secure(AsId(4)));
        assert_eq!(d.secure_count(), 1);
        assert_eq!(d.full_count(), 0);
    }

    #[test]
    fn full_wins_over_simplex() {
        let mut d = Deployment::empty(10);
        d.insert_simplex(AsId(4));
        d.insert_full(AsId(4));
        assert!(d.validates(AsId(4)));
        assert_eq!(d.secure_count(), 1);

        let full = AsSet::from_iter(10, [AsId(1)]);
        let simplex = AsSet::from_iter(10, [AsId(1), AsId(2)]);
        let d = Deployment::with_simplex(full, simplex);
        assert!(d.validates(AsId(1)));
        assert!(!d.validates(AsId(2)));
        assert_eq!(d.secure_count(), 2);
    }

    #[test]
    fn monotone_extension_rules() {
        let mut a = Deployment::empty(10);
        a.insert_full(AsId(1));
        a.insert_simplex(AsId(2));

        // Adding members (and upgrading simplex to full) is monotone.
        let mut b = a.clone();
        b.insert_full(AsId(2));
        b.insert_full(AsId(3));
        b.insert_simplex(AsId(4));
        assert!(b.is_monotone_extension_of(&a));
        assert!(a.is_monotone_extension_of(&a));
        assert_eq!(
            b.newly_validating(&a).collect::<Vec<_>>(),
            vec![AsId(2), AsId(3)]
        );

        // Losing a full member is not.
        let c = Deployment::full_from_iter(10, [AsId(3)]);
        assert!(!c.is_monotone_extension_of(&a));
        // Downgrading full to simplex is not.
        let mut d = Deployment::empty(10);
        d.insert_simplex(AsId(1));
        d.insert_simplex(AsId(2));
        assert!(!d.is_monotone_extension_of(&a));
        // A signer that stops signing is not.
        let e = Deployment::full_from_iter(10, [AsId(1)]);
        assert!(!e.is_monotone_extension_of(&a));
        // Universe mismatch is not.
        assert!(!Deployment::empty(9).is_monotone_extension_of(&a));
    }

    #[test]
    fn retraction_and_symmetric_diff_helpers() {
        let a = Deployment::full_from_iter(10, [AsId(1), AsId(2), AsId(3)]);
        let b = Deployment::full_from_iter(10, [AsId(2), AsId(3), AsId(5)]);
        assert_eq!(b.newly_retired(&a).collect::<Vec<_>>(), vec![AsId(1)]);
        assert_eq!(b.newly_validating(&a).collect::<Vec<_>>(), vec![AsId(5)]);
        assert!(!b.same_validators(&a));
        assert!(a.same_validators(&a));

        // A full → simplex downgrade retires the validator but keeps the
        // signer; simplex membership alone never shows up in either diff.
        let mut c = a.clone();
        c.insert_simplex(AsId(7));
        assert!(c.same_validators(&a));
        let mut down = Deployment::full_from_iter(10, [AsId(2), AsId(3)]);
        down.insert_simplex(AsId(1));
        assert_eq!(down.newly_retired(&a).collect::<Vec<_>>(), vec![AsId(1)]);
        assert!(down.signs_origin(AsId(1)));
        assert!(!down.validates(AsId(1)));
    }

    #[test]
    fn stub_downgrade_keeps_transit_full() {
        // 0 is provider of 1; 1 is provider of 2; 2 is a stub.
        let mut b = GraphBuilder::new(3);
        b.add_provider(AsId(1), AsId(0)).unwrap();
        b.add_provider(AsId(2), AsId(1)).unwrap();
        let g = b.build();
        let d = Deployment::full_from_iter(3, [AsId(0), AsId(1), AsId(2)]);
        let dx = d.stubs_to_simplex(&g);
        assert!(dx.validates(AsId(0)));
        assert!(dx.validates(AsId(1)));
        assert!(!dx.validates(AsId(2)));
        assert!(dx.signs_origin(AsId(2)));
    }
}
