//! Routing-policy models (§2.2 and Appendix K).
//!
//! Every AS runs the standard BGP decision process:
//!
//! 1. **LP** — local preference: customer routes over peer routes over
//!    provider routes (or a length-interleaved [`LpVariant::LpK`] ranking);
//! 2. **SP** — shorter AS paths over longer ones;
//! 3. **TB** — an intradomain tie-break this model deliberately leaves
//!    undetermined (the engine tracks *sets* of equally-good routes, giving
//!    the paper's lower/upper metric bounds).
//!
//! Secure ASes insert one extra step, **SecP** ("prefer a secure route over
//! an insecure route"), whose position defines the three models of §2.2.2:
//!
//! | Model | SecP position | Survey popularity [Gill et al.] |
//! |-------|---------------|---------------------------------|
//! | [`SecurityModel::Security1st`] | before LP | 10 % |
//! | [`SecurityModel::Security2nd`] | between LP and SP | 20 % |
//! | [`SecurityModel::Security3rd`] | between SP and TB | 41 % |

use std::fmt;

/// Where a secure AS ranks route security in its decision process (§2.2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SecurityModel {
    /// SecP above everything: security is the AS's highest priority.
    Security1st,
    /// SecP between LP and SP: economics first, then security.
    Security2nd,
    /// SecP between SP and TB: economics and path length first (the model
    /// operators favor during partial deployment, and the one used by
    /// Gill–Schapira–Goldberg).
    Security3rd,
}

impl SecurityModel {
    /// All three models, in paper order.
    pub const ALL: [SecurityModel; 3] = [
        SecurityModel::Security1st,
        SecurityModel::Security2nd,
        SecurityModel::Security3rd,
    ];

    /// Short label used in reports ("Sec 1st" etc.).
    pub fn label(self) -> &'static str {
        match self {
            SecurityModel::Security1st => "Sec 1st",
            SecurityModel::Security2nd => "Sec 2nd",
            SecurityModel::Security3rd => "Sec 3rd",
        }
    }
}

impl fmt::Display for SecurityModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The local-preference step (Appendix K).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LpVariant {
    /// §2.2.1: customer ≻ peer ≻ provider, regardless of length.
    Standard,
    /// Appendix K's `LPk`: customer(1) ≻ peer(1) ≻ … ≻ customer(k) ≻
    /// peer(k) ≻ customer(>k) ≻ peer(>k) ≻ provider. The paper studies
    /// `k = 2`.
    LpK(u32),
    /// The `k → ∞` limit: customer and peer routes ranked purely by length
    /// (ties to customers), providers last.
    LpInf,
}

impl LpVariant {
    /// The interleaving depth: `0` for [`LpVariant::Standard`], `k` for
    /// [`LpVariant::LpK`], `u32::MAX` for [`LpVariant::LpInf`].
    pub fn interleave_depth(self) -> u32 {
        match self {
            LpVariant::Standard => 0,
            LpVariant::LpK(k) => k,
            LpVariant::LpInf => u32::MAX,
        }
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            LpVariant::Standard => "LP",
            LpVariant::LpK(2) => "LP2",
            LpVariant::LpK(_) => "LPk",
            LpVariant::LpInf => "LPinf",
        }
    }
}

impl fmt::Display for LpVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpVariant::LpK(k) if *k != 2 => write!(f, "LP{k}"),
            other => f.write_str(other.label()),
        }
    }
}

/// A complete routing policy: where SecP sits, and which LP step is used.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Policy {
    /// SecP placement for secure ASes.
    pub model: SecurityModel,
    /// Local-preference variant (all ASes).
    pub variant: LpVariant,
}

impl Policy {
    /// Standard-LP policy with the given security model.
    pub fn new(model: SecurityModel) -> Policy {
        Policy {
            model,
            variant: LpVariant::Standard,
        }
    }

    /// Policy with an explicit LP variant.
    pub fn with_variant(model: SecurityModel, variant: LpVariant) -> Policy {
        Policy { model, variant }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} / {}", self.model, self.variant)
    }
}

/// Comparison key for a route under a given policy, from the point of view
/// of a *validating* AS. Lower keys are preferred.
///
/// This is the reference definition of the preference order: the engine's
/// staged BFS and the message-level simulator in `sbgp-proto` must both
/// agree with it, and the property-test suite checks that they do.
///
/// `class_rank` is 0 for customer, 1 for peer, 2 for provider routes.
pub fn preference_key(
    policy: Policy,
    validating: bool,
    class_rank: u8,
    length: u32,
    secure: bool,
) -> (u32, u32, u32) {
    let k = policy.variant.interleave_depth();
    // LP step value: smaller is better.
    let lp: u32 = if class_rank == 2 {
        // Providers always rank below every customer/peer class.
        u32::MAX
    } else {
        match policy.variant {
            LpVariant::Standard => class_rank as u32,
            _ => {
                // Interleaved classes: C(1) P(1) C(2) P(2) ... C(>k) P(>k).
                if length <= k {
                    2 * length.max(1) + class_rank as u32
                } else {
                    2 * (k.saturating_add(1)) + class_rank as u32
                }
            }
        }
    };
    let sec: u32 = if validating && secure { 0 } else { 1 };
    match (policy.model, validating) {
        (SecurityModel::Security1st, true) => (sec, lp, length),
        (SecurityModel::Security2nd, true) => (lp, sec, length),
        (SecurityModel::Security3rd, true) => (lp, length, sec),
        // Non-validating ASes never see the SecP step.
        (_, false) => (lp, length, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC1: Policy = Policy {
        model: SecurityModel::Security1st,
        variant: LpVariant::Standard,
    };
    const SEC2: Policy = Policy {
        model: SecurityModel::Security2nd,
        variant: LpVariant::Standard,
    };
    const SEC3: Policy = Policy {
        model: SecurityModel::Security3rd,
        variant: LpVariant::Standard,
    };

    #[test]
    fn security_first_prefers_secure_provider_over_insecure_customer() {
        let secure_provider = preference_key(SEC1, true, 2, 5, true);
        let insecure_customer = preference_key(SEC1, true, 0, 1, false);
        assert!(secure_provider < insecure_customer);
    }

    #[test]
    fn security_second_prefers_insecure_customer_over_secure_provider() {
        let secure_provider = preference_key(SEC2, true, 2, 2, true);
        let insecure_customer = preference_key(SEC2, true, 0, 9, false);
        assert!(insecure_customer < secure_provider);
    }

    #[test]
    fn security_second_prefers_long_secure_peer_over_short_insecure_peer() {
        let long_secure = preference_key(SEC2, true, 1, 9, true);
        let short_insecure = preference_key(SEC2, true, 1, 2, false);
        assert!(long_secure < short_insecure);
    }

    #[test]
    fn security_third_prefers_short_insecure_over_long_secure() {
        let short_insecure = preference_key(SEC3, true, 1, 2, false);
        let long_secure = preference_key(SEC3, true, 1, 3, true);
        assert!(short_insecure < long_secure);
        // ... but security breaks exact ties.
        let tied_secure = preference_key(SEC3, true, 1, 2, true);
        assert!(tied_secure < short_insecure);
    }

    #[test]
    fn non_validating_ases_ignore_security() {
        let a = preference_key(SEC1, false, 0, 3, true);
        let b = preference_key(SEC1, false, 0, 3, false);
        assert_eq!(a, b);
    }

    #[test]
    fn lp2_interleaves_customers_and_peers_by_length() {
        let lp2 = Policy::with_variant(SecurityModel::Security3rd, LpVariant::LpK(2));
        let peer1 = preference_key(lp2, true, 1, 1, false);
        let cust2 = preference_key(lp2, true, 0, 2, false);
        let peer2 = preference_key(lp2, true, 1, 2, false);
        let cust3 = preference_key(lp2, true, 0, 3, false);
        let cust5 = preference_key(lp2, true, 0, 5, false);
        let peer3 = preference_key(lp2, true, 1, 3, false);
        let provider1 = preference_key(lp2, true, 2, 1, false);
        assert!(peer1 < cust2, "P(1) beats C(2)");
        assert!(cust2 < peer2, "C(2) beats P(2)");
        assert!(peer2 < cust3, "P(2) beats C(>2)");
        assert!(cust3 < cust5, "SP within C(>2)");
        assert!(cust5 < peer3, "all C(>2) beat all P(>2)");
        assert!(peer3 < provider1, "providers last");
    }

    #[test]
    fn lpinf_ranks_by_length_with_customer_ties() {
        let lpinf = Policy::with_variant(SecurityModel::Security3rd, LpVariant::LpInf);
        let cust9 = preference_key(lpinf, true, 0, 9, false);
        let peer2 = preference_key(lpinf, true, 1, 2, false);
        let cust2 = preference_key(lpinf, true, 0, 2, false);
        assert!(peer2 < cust9, "short peer beats long customer");
        assert!(cust2 < peer2, "customer wins length ties");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SecurityModel::Security2nd.label(), "Sec 2nd");
        assert_eq!(LpVariant::LpK(2).to_string(), "LP2");
        assert_eq!(LpVariant::LpK(3).to_string(), "LP3");
        assert_eq!(
            Policy::new(SecurityModel::Security1st).to_string(),
            "Sec 1st / LP"
        );
    }
}
