//! The threat model (§3.1).
//!
//! A single attacker `m` targets a single destination `d`. Origin
//! authentication is assumed deployed, so `m` cannot originate `d`'s prefix
//! itself; instead it announces the bogus AS-level path **"m, d"** — a fake
//! adjacency to the destination — via *legacy BGP* to **all** of its
//! neighbors (an attacker ignores its own export policy; recipients apply
//! theirs normally). The announcement therefore:
//!
//! * carries claimed length 2 at `m`'s neighbors (as if `m` were one hop
//!   from `d`), i.e. `m` behaves as a root at depth 1;
//! * is never secure — it arrives via legacy BGP and is not validated;
//! * works identically against partially-deployed soBGP, S-BGP and BGPSEC
//!   (§3.1): in every variant the recipient cannot detect the fake edge
//!   without a secure path.
//!
//! "Normal conditions" (no attacker) are modeled by
//! [`AttackScenario::normal`], used for downgrade analysis and for the
//! secure-routes-before-attack accounting of Figures 13 and 16.

use sbgp_topology::AsId;

/// What the attacker announces (via legacy BGP, to all its neighbors).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum AttackStrategy {
    /// The paper's attack (§3.1): announce the bogus one-hop path
    /// `"m, d"`, i.e. claim a direct link to the legitimate origin. This
    /// defeats origin authentication's *letter* (the origin is correct)
    /// and is what S\*BGP exists to stop.
    #[default]
    FakeLink,
    /// Classic pre-RPKI prefix hijacking: `m` originates the victim's
    /// prefix itself, announcing the zero-hop path `"m"`. Origin
    /// authentication **prevents** this entirely; the library models it so
    /// the value of RPKI itself can be quantified against the same metric
    /// (the premise the paper inherits from Goldberg et al. \[22\]).
    OriginHijack,
}

impl AttackStrategy {
    /// The claimed path length of the attacker's announcement as heard by
    /// its direct neighbors, minus one — i.e. the depth at which `m` roots
    /// the bogus routing tree (`d` roots the legitimate one at 0).
    pub fn root_depth(self) -> u32 {
        match self {
            AttackStrategy::FakeLink => 1,
            AttackStrategy::OriginHijack => 0,
        }
    }
}

/// One attack instance: a destination under attack, and optionally the
/// attacker (absent for normal conditions).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AttackScenario {
    /// The legitimate destination AS `d`.
    pub destination: AsId,
    /// The attacker `m`, or `None` for normal conditions.
    pub attacker: Option<AsId>,
    /// An AS whose presence on routes should be tracked (see
    /// [`crate::Outcome::may_traverse_mark`]). Theorem 3.1 only protects
    /// sources whose *normal* route avoids the attacker, so downgrade
    /// analysis marks `m` during the normal-conditions run.
    pub mark: Option<AsId>,
    /// The announcement the attacker sends.
    pub strategy: AttackStrategy,
}

impl AttackScenario {
    /// Attacker `m` announces "m, d" against destination `d`.
    ///
    /// # Panics
    ///
    /// Panics if `m == d`; the paper's metric only ranges over `d ≠ m`.
    pub fn attack(attacker: AsId, destination: AsId) -> AttackScenario {
        assert_ne!(attacker, destination, "attacker cannot be the destination");
        AttackScenario {
            destination,
            attacker: Some(attacker),
            mark: None,
            strategy: AttackStrategy::FakeLink,
        }
    }

    /// Attacker `m` hijacks `d`'s prefix outright (no origin
    /// authentication in place).
    ///
    /// # Panics
    ///
    /// Panics if `m == d`.
    pub fn hijack(attacker: AsId, destination: AsId) -> AttackScenario {
        assert_ne!(attacker, destination, "attacker cannot be the destination");
        AttackScenario {
            destination,
            attacker: Some(attacker),
            mark: None,
            strategy: AttackStrategy::OriginHijack,
        }
    }

    /// Normal conditions: routing to `d` with no attacker present.
    pub fn normal(destination: AsId) -> AttackScenario {
        AttackScenario {
            destination,
            attacker: None,
            mark: None,
            strategy: AttackStrategy::FakeLink,
        }
    }

    /// Normal conditions, additionally tracking which ASes route through
    /// `mark`.
    pub fn normal_marked(destination: AsId, mark: AsId) -> AttackScenario {
        AttackScenario {
            destination,
            attacker: None,
            mark: Some(mark),
            strategy: AttackStrategy::FakeLink,
        }
    }

    /// True when this scenario has an attacker.
    pub fn is_attack(&self) -> bool {
        self.attacker.is_some()
    }

    /// The number of source ASes the paper's metric divides by for this
    /// scenario on an `n`-AS graph: every AS except `d` and `m`.
    pub fn source_count(&self, n: usize) -> usize {
        n - 1 - usize::from(self.attacker.is_some())
    }

    /// True when `v` is a source (neither the destination nor the attacker).
    pub fn is_source(&self, v: AsId) -> bool {
        v != self.destination && Some(v) != self.attacker
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let a = AttackScenario::attack(AsId(3), AsId(7));
        assert!(a.is_attack());
        assert_eq!(a.source_count(10), 8);
        assert!(!a.is_source(AsId(3)));
        assert!(!a.is_source(AsId(7)));
        assert!(a.is_source(AsId(0)));

        let n = AttackScenario::normal(AsId(7));
        assert!(!n.is_attack());
        assert_eq!(n.source_count(10), 9);
        assert!(n.is_source(AsId(3)));
    }

    #[test]
    #[should_panic(expected = "attacker cannot be the destination")]
    fn attacker_must_differ_from_destination() {
        let _ = AttackScenario::attack(AsId(3), AsId(3));
    }

    #[test]
    fn strategies_root_at_different_depths() {
        assert_eq!(AttackStrategy::FakeLink.root_depth(), 1);
        assert_eq!(AttackStrategy::OriginHijack.root_depth(), 0);
        let a = AttackScenario::hijack(AsId(1), AsId(2));
        assert_eq!(a.strategy, AttackStrategy::OriginHijack);
        assert_eq!(
            AttackScenario::attack(AsId(1), AsId(2)).strategy,
            AttackStrategy::FakeLink
        );
    }
}
