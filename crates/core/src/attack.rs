//! The threat model (§3.1), generalized along Goldberg et al.'s
//! attack-strategy taxonomy (\[22\] in PAPERS.md).
//!
//! In the paper's base scenario a single attacker `m` targets a single
//! destination `d`. Origin authentication is assumed deployed, so `m`
//! cannot originate `d`'s prefix itself; instead it announces the bogus
//! AS-level path **"m, d"** — a fake adjacency to the destination — via
//! *legacy BGP* to **all** of its neighbors (an attacker ignores its own
//! export policy; recipients apply theirs normally). This library models
//! the full strategy family that scenario is drawn from:
//!
//! * [`AttackStrategy::FakePath`]`{ hops: k }` — the attacker announces
//!   `"m, x₁ … x_{k-1}, d"`, a forged path of **claimed length `k + 1`**
//!   at its neighbors whose intermediate hops are fabricated. Longer
//!   forged paths attract less traffic but evade path-plausibility
//!   heuristics; shorter ones maximize damage. Announcements are never
//!   secure regardless of `k` — they travel over legacy BGP — so the
//!   engine only needs the claimed length: `m` behaves as a root of the
//!   bogus routing tree at depth `k` (`d` roots the legitimate tree at 0).
//! * [`AttackStrategy::FakeLink`] — the paper's §3.1 attack, identical to
//!   `FakePath { hops: 1 }`.
//! * [`AttackStrategy::OriginHijack`] — classic pre-RPKI prefix
//!   hijacking, identical to `FakePath { hops: 0 }`; origin
//!   authentication prevents it entirely, which is what makes the rung
//!   worth measuring (the value of RPKI itself).
//!
//! **Colluding announcers.** A scenario may carry up to [`MAX_ATTACKERS`]
//! simultaneous announcers ([`AttackScenario::colluding`]): every member
//! of the set floods the same-shaped bogus announcement at once, rooting a
//! *multi-root* bogus tree. All announcers share one [`AttackStrategy`].
//!
//! **Source-counting rule.** The paper's metric divides by the number of
//! *source* ASes: every AS that is neither the destination nor an
//! announcer. With `a` colluding announcers on an `n`-AS graph that is
//! `n − 1 − a` ([`AttackScenario::source_count`]); [`AttackScenario::is_source`]
//! is the membership test. Both are set-aware: each additional colluder
//! removes itself from the source pool.
//!
//! "Normal conditions" (no attacker) are modeled by
//! [`AttackScenario::normal`], used for downgrade analysis and for the
//! secure-routes-before-attack accounting of Figures 13 and 16.

use std::fmt;

use sbgp_topology::AsId;

/// Maximum number of simultaneous colluding announcers in one scenario.
pub const MAX_ATTACKERS: usize = 3;

/// What the attacker announces (via legacy BGP, to all its neighbors).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum AttackStrategy {
    /// The paper's attack (§3.1): announce the bogus one-hop path
    /// `"m, d"`, i.e. claim a direct link to the legitimate origin. This
    /// defeats origin authentication's *letter* (the origin is correct)
    /// and is what S\*BGP exists to stop. Behaves identically to
    /// `FakePath { hops: 1 }`.
    #[default]
    FakeLink,
    /// Classic pre-RPKI prefix hijacking: `m` originates the victim's
    /// prefix itself, announcing the zero-hop path `"m"`. Origin
    /// authentication **prevents** this entirely; the library models it so
    /// the value of RPKI itself can be quantified against the same metric
    /// (the premise the paper inherits from Goldberg et al. \[22\]).
    /// Behaves identically to `FakePath { hops: 0 }`.
    OriginHijack,
    /// The general forged path of the Goldberg et al. taxonomy: announce
    /// `"m, x₁ … x_{hops-1}, d"` with claimed length `hops + 1`, the
    /// intermediate ASes fabricated. `hops = 0` degenerates to the origin
    /// hijack (no claimed tail at all) and `hops = 1` to the fake link.
    FakePath {
        /// Claimed distance from `m` to the origin: the number of (fake)
        /// edges between `m` and `d` on the announced path.
        hops: u8,
    },
}

impl AttackStrategy {
    /// The canonical strategy ladder evaluated by the strategic-attacker
    /// experiments: forged paths of claimed distance 0 through 3. Rung 0
    /// behaves as [`AttackStrategy::OriginHijack`] and rung 1 as
    /// [`AttackStrategy::FakeLink`].
    pub const LADDER: [AttackStrategy; 4] = [
        AttackStrategy::FakePath { hops: 0 },
        AttackStrategy::FakePath { hops: 1 },
        AttackStrategy::FakePath { hops: 2 },
        AttackStrategy::FakePath { hops: 3 },
    ];

    /// Collapse the behaviorally-identical spellings: `FakePath { 0 }` is
    /// the origin hijack and `FakePath { 1 }` the fake link. The enum
    /// derives `Eq`/`Hash` structurally, so anything that compares
    /// strategies (e.g. "is this the default?") should canonicalize
    /// first.
    pub fn canonical(self) -> AttackStrategy {
        match self {
            AttackStrategy::FakePath { hops: 0 } => AttackStrategy::OriginHijack,
            AttackStrategy::FakePath { hops: 1 } => AttackStrategy::FakeLink,
            other => other,
        }
    }

    /// The claimed path length of the attacker's announcement as heard by
    /// its direct neighbors, minus one — i.e. the depth at which `m` roots
    /// the bogus routing tree (`d` roots the legitimate one at 0).
    pub fn root_depth(self) -> u32 {
        match self {
            AttackStrategy::FakeLink => 1,
            AttackStrategy::OriginHijack => 0,
            AttackStrategy::FakePath { hops } => u32::from(hops),
        }
    }
}

impl fmt::Display for AttackStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackStrategy::FakeLink => f.write_str("fake link (k=1)"),
            AttackStrategy::OriginHijack => f.write_str("origin hijack (k=0)"),
            AttackStrategy::FakePath { hops } => write!(f, "forged path (k={hops})"),
        }
    }
}

/// One attack instance: a destination under attack, and the announcer set
/// (empty for normal conditions).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AttackScenario {
    /// The legitimate destination AS `d`.
    pub destination: AsId,
    /// The primary attacker `m`, or `None` for normal conditions. This
    /// field governs whether the scenario attacks at all: setting it to
    /// `None` disarms any accomplices too (see
    /// [`AttackScenario::attackers`]).
    pub attacker: Option<AsId>,
    /// Additional colluding announcers, front-packed; construct multi-
    /// attacker scenarios with [`AttackScenario::colluding`]. Only
    /// meaningful while `attacker` is `Some`.
    pub(crate) accomplices: [Option<AsId>; MAX_ATTACKERS - 1],
    /// An AS whose presence on routes should be tracked (see
    /// [`crate::Outcome::may_traverse_mark`]). Theorem 3.1 only protects
    /// sources whose *normal* route avoids the attacker, so downgrade
    /// analysis marks `m` during the normal-conditions run.
    pub mark: Option<AsId>,
    /// The announcement every attacker sends.
    pub strategy: AttackStrategy,
}

impl AttackScenario {
    /// Attacker `m` announces "m, d" against destination `d`.
    ///
    /// # Panics
    ///
    /// Panics if `m == d`; the paper's metric only ranges over `d ≠ m`.
    pub fn attack(attacker: AsId, destination: AsId) -> AttackScenario {
        assert_ne!(attacker, destination, "attacker cannot be the destination");
        AttackScenario {
            destination,
            attacker: Some(attacker),
            accomplices: [None; MAX_ATTACKERS - 1],
            mark: None,
            strategy: AttackStrategy::FakeLink,
        }
    }

    /// Attacker `m` hijacks `d`'s prefix outright (no origin
    /// authentication in place).
    ///
    /// # Panics
    ///
    /// Panics if `m == d`.
    pub fn hijack(attacker: AsId, destination: AsId) -> AttackScenario {
        assert_ne!(attacker, destination, "attacker cannot be the destination");
        AttackScenario {
            strategy: AttackStrategy::OriginHijack,
            ..AttackScenario::attack(attacker, destination)
        }
    }

    /// A set of colluding announcers simultaneously attacking
    /// `destination` (the first entry is the primary attacker reported by
    /// [`crate::Outcome::attacker`]). The strategy defaults to the fake
    /// link; chain [`AttackScenario::with_strategy`] to change it.
    ///
    /// # Panics
    ///
    /// Panics when `attackers` is empty, longer than [`MAX_ATTACKERS`],
    /// contains the destination, or contains duplicates.
    pub fn colluding(attackers: &[AsId], destination: AsId) -> AttackScenario {
        assert!(!attackers.is_empty(), "at least one attacker required");
        assert!(
            attackers.len() <= MAX_ATTACKERS,
            "at most {MAX_ATTACKERS} colluding attackers"
        );
        let mut accomplices = [None; MAX_ATTACKERS - 1];
        for (i, &m) in attackers.iter().enumerate() {
            assert_ne!(m, destination, "attacker cannot be the destination");
            assert!(
                !attackers[..i].contains(&m),
                "duplicate colluding attacker {m}"
            );
            if i > 0 {
                accomplices[i - 1] = Some(m);
            }
        }
        AttackScenario {
            destination,
            attacker: Some(attackers[0]),
            accomplices,
            mark: None,
            strategy: AttackStrategy::FakeLink,
        }
    }

    /// This scenario with a different announcement strategy (builder
    /// convenience; all colluders share one strategy).
    pub fn with_strategy(mut self, strategy: AttackStrategy) -> AttackScenario {
        self.strategy = strategy;
        self
    }

    /// Filter a raw announcer candidate list down to what
    /// [`AttackScenario::colluding`] accepts: duplicates and the
    /// destination are dropped and the remainder is truncated to
    /// [`MAX_ATTACKERS`], preserving first-appearance order. This is the
    /// one place the filtering rule lives — the collusion runners and the
    /// property-test generators all feed arbitrary candidate lists through
    /// it. Callers decide what a too-small remainder means (normal
    /// conditions, or a skipped cell).
    pub fn filter_announcers(candidates: &[AsId], destination: AsId) -> Vec<AsId> {
        let mut out: Vec<AsId> = Vec::new();
        for &m in candidates {
            if m != destination && !out.contains(&m) && out.len() < MAX_ATTACKERS {
                out.push(m);
            }
        }
        out
    }

    /// Normal conditions: routing to `d` with no attacker present.
    pub fn normal(destination: AsId) -> AttackScenario {
        AttackScenario {
            destination,
            attacker: None,
            accomplices: [None; MAX_ATTACKERS - 1],
            mark: None,
            strategy: AttackStrategy::FakeLink,
        }
    }

    /// Normal conditions, additionally tracking which ASes route through
    /// `mark`.
    pub fn normal_marked(destination: AsId, mark: AsId) -> AttackScenario {
        AttackScenario {
            mark: Some(mark),
            ..AttackScenario::normal(destination)
        }
    }

    /// True when this scenario has at least one attacker.
    pub fn is_attack(&self) -> bool {
        self.attacker.is_some()
    }

    /// Every announcer of this scenario, primary first. Empty whenever
    /// `attacker` is `None`: accomplices never announce without a primary
    /// attacker, so clearing the field is always a clean return to normal
    /// conditions.
    pub fn attackers(&self) -> impl Iterator<Item = AsId> {
        let [primary, a, b] = self.attacker_array();
        primary.into_iter().chain(a).chain(b)
    }

    /// Number of announcers (0 for normal conditions).
    pub fn attacker_count(&self) -> usize {
        self.attackers().count()
    }

    /// True when `v` announces in this scenario.
    pub fn is_attacker(&self, v: AsId) -> bool {
        self.attackers().any(|m| m == v)
    }

    /// The fixed-width announcer array [`crate::Outcome`] carries (primary
    /// first, front-packed). Accomplices only announce alongside a primary
    /// attacker: clearing the public `attacker` field returns the scenario
    /// to normal conditions even if stale accomplices remain, so external
    /// mutation of `attacker` (e.g. the protocol simulator's
    /// `launch_attack`) can never produce a half-announcing state.
    pub(crate) fn attacker_array(&self) -> [Option<AsId>; MAX_ATTACKERS] {
        match self.attacker {
            Some(m) => [Some(m), self.accomplices[0], self.accomplices[1]],
            None => [None; MAX_ATTACKERS],
        }
    }

    /// The number of source ASes the paper's metric divides by for this
    /// scenario on an `n`-AS graph: every AS except `d` and every
    /// announcer, i.e. `n − 1 − attacker_count` (each colluder removes
    /// itself from the source pool).
    pub fn source_count(&self, n: usize) -> usize {
        n - 1 - self.attacker_count()
    }

    /// True when `v` is a source (neither the destination nor any
    /// announcer).
    pub fn is_source(&self, v: AsId) -> bool {
        v != self.destination && !self.is_attacker(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let a = AttackScenario::attack(AsId(3), AsId(7));
        assert!(a.is_attack());
        assert_eq!(a.source_count(10), 8);
        assert!(!a.is_source(AsId(3)));
        assert!(!a.is_source(AsId(7)));
        assert!(a.is_source(AsId(0)));

        let n = AttackScenario::normal(AsId(7));
        assert!(!n.is_attack());
        assert_eq!(n.source_count(10), 9);
        assert!(n.is_source(AsId(3)));
        assert_eq!(n.attacker_count(), 0);
        assert_eq!(n.attackers().count(), 0);
    }

    #[test]
    fn colluding_sets_are_set_aware() {
        let c = AttackScenario::colluding(&[AsId(5), AsId(2), AsId(8)], AsId(1));
        assert!(c.is_attack());
        assert_eq!(c.attacker, Some(AsId(5)), "primary attacker first");
        assert_eq!(c.attacker_count(), 3);
        assert_eq!(
            c.attackers().collect::<Vec<_>>(),
            vec![AsId(5), AsId(2), AsId(8)]
        );
        for m in [5u32, 2, 8] {
            assert!(c.is_attacker(AsId(m)));
            assert!(!c.is_source(AsId(m)));
        }
        assert!(!c.is_attacker(AsId(1)));
        assert!(!c.is_source(AsId(1)), "destination is not a source");
        assert!(c.is_source(AsId(0)));
        // Every colluder leaves the source pool: n − 1 − 3.
        assert_eq!(c.source_count(10), 6);
        // A singleton colluding set is exactly the single-attacker case.
        let single = AttackScenario::colluding(&[AsId(3)], AsId(7));
        assert_eq!(single, AttackScenario::attack(AsId(3), AsId(7)));
    }

    #[test]
    fn clearing_the_primary_attacker_disarms_accomplices() {
        let mut c = AttackScenario::colluding(&[AsId(5), AsId(2)], AsId(1));
        c.attacker = None;
        assert!(!c.is_attack());
        assert_eq!(c.attacker_count(), 0);
        assert_eq!(c.attackers().count(), 0);
        assert!(!c.is_attacker(AsId(2)));
        assert_eq!(c.source_count(10), 9, "back to normal conditions");
    }

    #[test]
    #[should_panic(expected = "attacker cannot be the destination")]
    fn attacker_must_differ_from_destination() {
        let _ = AttackScenario::attack(AsId(3), AsId(3));
    }

    #[test]
    #[should_panic(expected = "duplicate colluding attacker")]
    fn colluders_must_be_distinct() {
        let _ = AttackScenario::colluding(&[AsId(3), AsId(3)], AsId(1));
    }

    #[test]
    #[should_panic(expected = "attacker cannot be the destination")]
    fn colluders_must_avoid_the_destination() {
        let _ = AttackScenario::colluding(&[AsId(3), AsId(1)], AsId(1));
    }

    #[test]
    #[should_panic(expected = "at most 3 colluding attackers")]
    fn colluder_sets_are_bounded() {
        let _ = AttackScenario::colluding(&[AsId(2), AsId(3), AsId(4), AsId(5)], AsId(1));
    }

    #[test]
    fn strategies_root_at_different_depths() {
        assert_eq!(AttackStrategy::FakeLink.root_depth(), 1);
        assert_eq!(AttackStrategy::OriginHijack.root_depth(), 0);
        for hops in 0..6u8 {
            assert_eq!(
                AttackStrategy::FakePath { hops }.root_depth(),
                u32::from(hops)
            );
        }
        let a = AttackScenario::hijack(AsId(1), AsId(2));
        assert_eq!(a.strategy, AttackStrategy::OriginHijack);
        assert_eq!(
            AttackScenario::attack(AsId(1), AsId(2)).strategy,
            AttackStrategy::FakeLink
        );
        let forged = AttackScenario::attack(AsId(1), AsId(2))
            .with_strategy(AttackStrategy::FakePath { hops: 3 });
        assert_eq!(forged.strategy.root_depth(), 3);
    }

    #[test]
    fn ladder_spans_the_legacy_strategies() {
        assert_eq!(AttackStrategy::LADDER.len(), 4);
        assert_eq!(
            AttackStrategy::LADDER[0].root_depth(),
            AttackStrategy::OriginHijack.root_depth()
        );
        assert_eq!(
            AttackStrategy::LADDER[1].root_depth(),
            AttackStrategy::FakeLink.root_depth()
        );
        for (k, rung) in AttackStrategy::LADDER.iter().enumerate() {
            assert_eq!(rung.root_depth(), k as u32);
        }
    }

    #[test]
    fn canonicalization_collapses_identical_spellings() {
        assert_eq!(
            AttackStrategy::FakePath { hops: 0 }.canonical(),
            AttackStrategy::OriginHijack
        );
        assert_eq!(
            AttackStrategy::FakePath { hops: 1 }.canonical(),
            AttackStrategy::FakeLink
        );
        for s in [
            AttackStrategy::FakeLink,
            AttackStrategy::OriginHijack,
            AttackStrategy::FakePath { hops: 2 },
        ] {
            assert_eq!(s.canonical(), s);
            assert_eq!(s.canonical().root_depth(), s.root_depth());
        }
    }

    #[test]
    fn announcer_filtering_is_shared_and_bounded() {
        let d = AsId(1);
        // Duplicates and the destination drop; order is preserved.
        assert_eq!(
            AttackScenario::filter_announcers(&[AsId(5), AsId(1), AsId(5), AsId(2)], d),
            vec![AsId(5), AsId(2)]
        );
        // Truncated to MAX_ATTACKERS.
        let many: Vec<AsId> = (2..10).map(AsId).collect();
        assert_eq!(
            AttackScenario::filter_announcers(&many, d).len(),
            MAX_ATTACKERS
        );
        // Degenerate lists survive as empty (the caller decides).
        assert!(AttackScenario::filter_announcers(&[d, d], d).is_empty());
    }

    #[test]
    fn strategy_labels_are_stable() {
        assert_eq!(AttackStrategy::FakeLink.to_string(), "fake link (k=1)");
        assert_eq!(
            AttackStrategy::OriginHijack.to_string(),
            "origin hijack (k=0)"
        );
        assert_eq!(
            AttackStrategy::FakePath { hops: 3 }.to_string(),
            "forged path (k=3)"
        );
    }
}
