//! Shared dirty-region machinery for the incremental engines.
//!
//! Both [`crate::SweepEngine`] (deployment axis) and
//! [`crate::AttackDeltaEngine`] (attacker axis) patch a previously computed
//! outcome by re-fixing only a *region* of ASes and then verifying local
//! consistency at the region border. The verify-and-grow step is identical
//! on both axes and lives here: a neighbor `u` of a changed AS `v` is
//! *affected* only when `v`'s old or new offer would tie or beat `u`'s
//! current route under the reference [`preference_key`] order. The
//! condition is deliberately **two-sided**, which is what makes retraction
//! steps sound:
//!
//! * the **new** offer ties or beats `u`'s current route — `v` now joins
//!   `u`'s `BPR` set (a tie) or `u` switches to it (a win): the
//!   improved-offer direction that monotone growth exercises;
//! * the **old** offer tied or beat `u`'s current route — `v` sat in `u`'s
//!   `BPR` set, and its offer has now been *withdrawn or worsened* (e.g. a
//!   secure offer that lost its security when the owner left `S`), which
//!   can strictly worsen `u`'s best route even though the replacement offer
//!   looks unremarkable. Note the min-property guaranteeing this check is
//!   complete: in a stable state `u`'s selected route is the best offer it
//!   receives, so any offer `u` actually used satisfies `old_offer <= k`
//!   and a worsened dependency never slips past the filter.
//!
//! Anything strictly worse in both states (the common case, e.g. a hub
//! whose short customer route dwarfs the offer) cannot change `u`'s
//! selection, so high-degree ASes stay out of the region unless truly
//! implicated.

use sbgp_topology::{AsGraph, AsId, AsSet};

use crate::attack::AttackScenario;
use crate::deployment::Deployment;
use crate::outcome::{Outcome, KIND_CUSTOMER, KIND_ORIGIN, KIND_PEER, KIND_PROVIDER, KIND_UNFIXED};
use crate::policy::{preference_key, Policy};

/// Compare `new` against `old` at every region member and absorb the
/// genuinely affected out-of-region neighbors into `region`/`region_list`.
/// Returns `true` when the region grew — i.e. some change escaped and
/// another solve round is needed. Returns `false` when the patched outcome
/// is locally consistent everywhere — inside the region by construction,
/// outside it because no input changed — which by Theorem 2.1 uniqueness
/// makes it exact.
///
/// The destination and the announcers never join the region: their entries
/// are roots, re-fixed explicitly by the caller when needed (with colluding
/// attackers, *every* member of the announcer set is excluded).
#[allow(clippy::too_many_arguments)]
pub(crate) fn grow_affected(
    graph: &AsGraph,
    new: &Outcome,
    old: &Outcome,
    scenario: AttackScenario,
    deployment: &Deployment,
    policy: Policy,
    region: &mut AsSet,
    region_list: &mut Vec<AsId>,
) -> bool {
    let d = scenario.destination;
    let mut frontier: Vec<AsId> = Vec::new();
    for &v in region_list.iter() {
        if new.same_for_neighbors(old, v) {
            continue;
        }
        // Each neighbor list with the route class `u` would learn from
        // `v`: v's providers learn a customer route, and so on.
        let classes: [(&[AsId], u8); 3] = [
            (graph.providers(v), 0),
            (graph.peers(v), 1),
            (graph.customers(v), 2),
        ];
        for (neighbors, rank) in classes {
            for &u in neighbors {
                if region.contains(u) || u == d || scenario.is_attacker(u) {
                    continue;
                }
                let validating = deployment.validates(u);
                let current = current_key(old, u, policy, validating);
                let old_offer = offer_key(old, v, rank, policy, validating);
                let new_offer = offer_key(new, v, rank, policy, validating);
                let affected = match current {
                    None => old_offer.is_some() || new_offer.is_some(),
                    Some(k) => {
                        old_offer.is_some_and(|o| o <= k) || new_offer.is_some_and(|o| o <= k)
                    }
                };
                if affected {
                    frontier.push(u);
                }
            }
        }
    }
    let mut escaped = false;
    for u in frontier {
        if region.insert(u) {
            region_list.push(u);
            escaped = true;
        }
    }
    escaped
}

/// Fold any AS a region solve fixed *outside* its seeded region into the
/// region (see [`crate::engine::Engine::fix_log`]: possible only for ASes
/// that were unreachable in the base outcome), keeping the touched list an
/// exact superset of the solve's writes — the invariant both engines'
/// snapshot/undo bookkeeping rests on.
pub(crate) fn absorb_fix_log(fix_log: &[u32], region: &mut AsSet, region_list: &mut Vec<AsId>) {
    for &x in fix_log {
        let v = AsId(x);
        if region.insert(v) {
            region_list.push(v);
        }
    }
}

/// `u`'s current position in the preference order, or `None` when it has no
/// route. Roots never call this.
pub(crate) fn current_key(
    outcome: &Outcome,
    u: AsId,
    policy: Policy,
    validating: bool,
) -> Option<(u32, u32, u32)> {
    let i = u.index();
    let rank = match outcome.kind[i] {
        KIND_UNFIXED => return None,
        KIND_ORIGIN | KIND_CUSTOMER => 0,
        KIND_PEER => 1,
        KIND_PROVIDER => 2,
        other => unreachable!("bad kind {other}"),
    };
    Some(preference_key(
        policy,
        validating,
        rank,
        outcome.len[i],
        outcome.secure_at(i),
    ))
}

/// Pack a lexicographic `(u32, u32, u32)` preference key into one `u128`
/// (strictly order-preserving, and always below `u128::MAX`).
#[inline]
pub(crate) fn pack_key(k: (u32, u32, u32)) -> u128 {
    ((k.0 as u128) << 64) | ((k.1 as u128) << 32) | (k.2 as u128)
}

/// One lane of the fused multi-cell contested-ball scan: the policy cell's
/// preference order, its forged announcement's claimed root depth, its
/// snapshot's packed per-AS keys, and its adjacency-mass budget.
pub(crate) struct ScanLane<'a> {
    pub policy: Policy,
    pub root_depth: u32,
    pub cell_keys: &'a [u128],
    pub budget: usize,
}

/// Contested-ball scan state bit: the AS already propagated the bogus
/// offer to every neighbor (customer-class receipt exports everywhere)...
const SCAN_WIDE: usize = 0;
/// ...or at least to its customers (peer/provider-class receipt).
const SCAN_DOWN: usize = 1;
/// The AS was adopted into the lane's seed region.
const SCAN_MEMBER: usize = 2;

/// Reusable scratch for the **fused multi-lane contested-ball scan**: one
/// breadth-first traversal of the snapshot neighborhood discovers every
/// lane's seed ball at once. Frontier entries carry a lane bitmask; each
/// AS holds per-lane member/wide/down bitsets (the cross-cell dirty masks)
/// so an edge is walked once per *distinct export decision*, not once per
/// lane. Per-lane offer keys differ only by the lane's policy and claimed
/// root depth, so each BFS level prices all lanes from six keys per lane.
///
/// Like the single-lane scan this is purely a performance seeding — the
/// verify-and-grow loop reaches the same unique stable outcome from any
/// seed set — so lanes may legally disagree with what their private scans
/// would have marked; only fallback decisions (via per-lane budgets) and
/// stats can differ, never outcomes.
#[derive(Debug)]
pub(crate) struct MultiScan {
    /// Per-AS `[wide, down, member]` lane bitsets.
    state: Vec<[u64; 3]>,
    touched: Vec<u32>,
    cur: Vec<(u32, u8, u64)>,
    next: Vec<(u32, u8, u64)>,
}

impl MultiScan {
    pub(crate) fn new(n: usize) -> MultiScan {
        MultiScan {
            state: vec![[0; 3]; n],
            touched: Vec::new(),
            cur: Vec::new(),
            next: Vec::new(),
        }
    }

    /// Discover all lanes' seed balls for `attackers` announcing against
    /// `destination`. Fills `seeds[j]` with lane `j`'s ball (roots
    /// excluded) and sets `over[j]` when the lane's adjacency mass blew
    /// its budget mid-scan (the caller then serves that lane with a full
    /// compute instead of a patch). Lanes must number at most 64.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run(
        &mut self,
        graph: &AsGraph,
        destination: AsId,
        attackers: &[AsId],
        deployment: &Deployment,
        lanes: &[ScanLane<'_>],
        seeds: &mut [Vec<AsId>],
        over: &mut [bool],
    ) {
        let nl = lanes.len();
        assert!(nl <= 64, "the fused scan packs lanes into a u64 mask");
        assert!(seeds.len() == nl && over.len() == nl);
        let all: u64 = if nl == 64 { u64::MAX } else { (1u64 << nl) - 1 };
        // Lanes drop out of `active` when they exceed their budget; their
        // partial seed lists are never used.
        let mut active = all;
        let mut mass = vec![0usize; nl];
        for j in 0..nl {
            seeds[j].clear();
            over[j] = false;
            for &m in attackers {
                mass[j] += graph.degree(m);
            }
        }
        // Every announcer's origin announcement exports to every neighbor.
        for &m in attackers {
            for &u in graph.providers(m) {
                self.next.push((u.0, 0, all));
            }
            for &u in graph.peers(m) {
                self.next.push((u.0, 1, all));
            }
            for &u in graph.customers(m) {
                self.next.push((u.0, 2, all));
            }
        }
        let mut level_keys = vec![[[0u128; 3]; 2]; nl];
        let mut level: u32 = 1;
        while !self.next.is_empty() && active != 0 {
            std::mem::swap(&mut self.cur, &mut self.next);
            // All offers of a level share the lane's bogus-path length, so
            // only six distinct offer keys exist per lane per level.
            for (j, lane) in lanes.iter().enumerate() {
                let len = lane.root_depth + level;
                for (validating, keys) in level_keys[j].iter_mut().enumerate() {
                    for (rank, key) in keys.iter_mut().enumerate() {
                        *key = pack_key(preference_key(
                            lane.policy,
                            validating == 1,
                            rank as u8,
                            len,
                            false,
                        ));
                    }
                }
            }
            for k in 0..self.cur.len() {
                let (ui, rank, mask) = self.cur[k];
                let mask = mask & active;
                if mask == 0 {
                    continue;
                }
                let u = AsId(ui);
                if u == destination || attackers.contains(&u) {
                    continue;
                }
                let validating = usize::from(deployment.validates(u));
                // An AS whose snapshot route strictly beats the offer
                // neither adopts nor re-exports it: prune per lane.
                let mut adopt = 0u64;
                let mut bits = mask;
                while bits != 0 {
                    let j = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if level_keys[j][validating][rank as usize] <= lanes[j].cell_keys[u.index()] {
                        adopt |= 1 << j;
                    }
                }
                if adopt == 0 {
                    continue;
                }
                let idx = u.index();
                let st = self.state[idx];
                let new_member = adopt & !st[SCAN_MEMBER];
                if new_member != 0 {
                    if st[SCAN_MEMBER] | st[SCAN_WIDE] | st[SCAN_DOWN] == 0 {
                        self.touched.push(ui);
                    }
                    self.state[idx][SCAN_MEMBER] |= new_member;
                    let deg = graph.degree(u);
                    let mut bits = new_member;
                    while bits != 0 {
                        let j = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        seeds[j].push(u);
                        mass[j] += deg;
                        if mass[j] > lanes[j].budget {
                            over[j] = true;
                            active &= !(1u64 << j);
                        }
                    }
                }
                // Export onward for the lanes that adopted and are still
                // in budget: customer-class receipt exports everywhere,
                // peer/provider-class receipt only to customers (Ex).
                let adopt = adopt & active;
                if rank == 0 {
                    let new_wide = adopt & !st[SCAN_WIDE];
                    if new_wide != 0 {
                        let cust = new_wide & !st[SCAN_DOWN];
                        self.state[idx][SCAN_WIDE] |= new_wide;
                        self.state[idx][SCAN_DOWN] |= new_wide;
                        for &p in graph.providers(u) {
                            self.next.push((p.0, 0, new_wide));
                        }
                        for &q in graph.peers(u) {
                            self.next.push((q.0, 1, new_wide));
                        }
                        if cust != 0 {
                            for &c in graph.customers(u) {
                                self.next.push((c.0, 2, cust));
                            }
                        }
                    }
                } else {
                    let new_down = adopt & !st[SCAN_DOWN];
                    if new_down != 0 {
                        self.state[idx][SCAN_DOWN] |= new_down;
                        for &c in graph.customers(u) {
                            self.next.push((c.0, 2, new_down));
                        }
                    }
                }
            }
            self.cur.clear();
            level += 1;
        }
        // An all-lanes-over break can leave entries in either frontier.
        self.cur.clear();
        self.next.clear();
        for &x in &self.touched {
            self.state[x as usize] = [0; 3];
        }
        self.touched.clear();
    }
}

/// The position of the route `u` would learn from `v` at class `rank`, or
/// `None` when `v` has no route or may not export it at that class (Ex).
fn offer_key(
    outcome: &Outcome,
    v: AsId,
    rank: u8,
    policy: Policy,
    validating: bool,
) -> Option<(u32, u32, u32)> {
    let i = v.index();
    let kind = outcome.kind[i];
    if kind == KIND_UNFIXED {
        return None;
    }
    if rank != 2 && kind != KIND_ORIGIN && kind != KIND_CUSTOMER {
        return None;
    }
    Some(preference_key(
        policy,
        validating,
        rank,
        outcome.len[i] + 1,
        outcome.secure_at(i) && validating,
    ))
}
