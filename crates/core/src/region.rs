//! Shared dirty-region machinery for the incremental engines.
//!
//! Both [`crate::SweepEngine`] (deployment axis) and
//! [`crate::AttackDeltaEngine`] (attacker axis) patch a previously computed
//! outcome by re-fixing only a *region* of ASes and then verifying local
//! consistency at the region border. The verify-and-grow step is identical
//! on both axes and lives here: a neighbor `u` of a changed AS `v` is
//! *affected* only when `v`'s old or new offer would tie or beat `u`'s
//! current route under the reference [`preference_key`] order — a tie means
//! `v` sat in (or now joins) `u`'s `BPR` set, a win means `u` switches.
//! Anything strictly worse (the common case, e.g. a hub whose short
//! customer route dwarfs the offer) cannot change `u`'s selection, so
//! high-degree ASes stay out of the region unless truly implicated.

use sbgp_topology::{AsGraph, AsId, AsSet};

use crate::attack::AttackScenario;
use crate::deployment::Deployment;
use crate::outcome::{Outcome, KIND_CUSTOMER, KIND_ORIGIN, KIND_PEER, KIND_PROVIDER, KIND_UNFIXED};
use crate::policy::{preference_key, Policy};

/// Compare `new` against `old` at every region member and absorb the
/// genuinely affected out-of-region neighbors into `region`/`region_list`.
/// Returns `true` when the region grew — i.e. some change escaped and
/// another solve round is needed. Returns `false` when the patched outcome
/// is locally consistent everywhere — inside the region by construction,
/// outside it because no input changed — which by Theorem 2.1 uniqueness
/// makes it exact.
///
/// The destination and the announcers never join the region: their entries
/// are roots, re-fixed explicitly by the caller when needed (with colluding
/// attackers, *every* member of the announcer set is excluded).
#[allow(clippy::too_many_arguments)]
pub(crate) fn grow_affected(
    graph: &AsGraph,
    new: &Outcome,
    old: &Outcome,
    scenario: AttackScenario,
    deployment: &Deployment,
    policy: Policy,
    region: &mut AsSet,
    region_list: &mut Vec<AsId>,
) -> bool {
    let d = scenario.destination;
    let mut frontier: Vec<AsId> = Vec::new();
    for &v in region_list.iter() {
        if new.same_for_neighbors(old, v) {
            continue;
        }
        // Each neighbor list with the route class `u` would learn from
        // `v`: v's providers learn a customer route, and so on.
        let classes: [(&[AsId], u8); 3] = [
            (graph.providers(v), 0),
            (graph.peers(v), 1),
            (graph.customers(v), 2),
        ];
        for (neighbors, rank) in classes {
            for &u in neighbors {
                if region.contains(u) || u == d || scenario.is_attacker(u) {
                    continue;
                }
                let validating = deployment.validates(u);
                let current = current_key(old, u, policy, validating);
                let old_offer = offer_key(old, v, rank, policy, validating);
                let new_offer = offer_key(new, v, rank, policy, validating);
                let affected = match current {
                    None => old_offer.is_some() || new_offer.is_some(),
                    Some(k) => {
                        old_offer.is_some_and(|o| o <= k) || new_offer.is_some_and(|o| o <= k)
                    }
                };
                if affected {
                    frontier.push(u);
                }
            }
        }
    }
    let mut escaped = false;
    for u in frontier {
        if region.insert(u) {
            region_list.push(u);
            escaped = true;
        }
    }
    escaped
}

/// Fold any AS a region solve fixed *outside* its seeded region into the
/// region (see [`crate::engine::Engine::fix_log`]: possible only for ASes
/// that were unreachable in the base outcome), keeping the touched list an
/// exact superset of the solve's writes — the invariant both engines'
/// snapshot/undo bookkeeping rests on.
pub(crate) fn absorb_fix_log(fix_log: &[u32], region: &mut AsSet, region_list: &mut Vec<AsId>) {
    for &x in fix_log {
        let v = AsId(x);
        if region.insert(v) {
            region_list.push(v);
        }
    }
}

/// `u`'s current position in the preference order, or `None` when it has no
/// route. Roots never call this.
pub(crate) fn current_key(
    outcome: &Outcome,
    u: AsId,
    policy: Policy,
    validating: bool,
) -> Option<(u32, u32, u32)> {
    let i = u.index();
    let rank = match outcome.kind[i] {
        KIND_UNFIXED => return None,
        KIND_ORIGIN | KIND_CUSTOMER => 0,
        KIND_PEER => 1,
        KIND_PROVIDER => 2,
        other => unreachable!("bad kind {other}"),
    };
    Some(preference_key(
        policy,
        validating,
        rank,
        outcome.len[i],
        outcome.secure_at(i),
    ))
}

/// The position of the route `u` would learn from `v` at class `rank`, or
/// `None` when `v` has no route or may not export it at that class (Ex).
fn offer_key(
    outcome: &Outcome,
    v: AsId,
    rank: u8,
    policy: Policy,
    validating: bool,
) -> Option<(u32, u32, u32)> {
    let i = v.index();
    let kind = outcome.kind[i];
    if kind == KIND_UNFIXED {
        return None;
    }
    if rank != 2 && kind != KIND_ORIGIN && kind != KIND_CUSTOMER {
        return None;
    }
    Some(preference_key(
        policy,
        validating,
        rank,
        outcome.len[i] + 1,
        outcome.secure_at(i) && validating,
    ))
}
