//! Incremental deployment sweeps: amortize routing-outcome computation
//! across a *changing* secure set — growth, retraction, or both at once.
//!
//! This is the **deployment axis** of the library's two-axis amortization
//! hierarchy (see [`crate::delta`] for the attacker axis, and how the two
//! compose destination-major in `sbgp-sim`). The paper's rollout curves
//! (Figures 7–13) evaluate the metric along sequences of deployments
//! `S_0 ⊆ S_1 ⊆ …` and recompute every `(m, d)` routing outcome from
//! scratch at each step — even though most ASes' best routes are identical
//! between adjacent steps. [`SweepEngine`] exploits Theorem 2.1 instead:
//! the stable state is **unique** and characterized *locally* (every AS's
//! route is the best export-legal extension of its neighbors' routes under
//! [`crate::policy::preference_key`]), so a state that is locally
//! consistent everywhere *is* the answer. Between any two same-universe
//! deployments, the engine therefore only has to re-fix a **dirty region**
//! around the ASes whose `validates` bit flipped — in *either* direction —
//! and verify consistency at its border:
//!
//! 1. seed the region with the symmetric difference of the `validates`
//!    sets ([`Deployment::newly_validating`] ∪
//!    [`Deployment::newly_retired`]), plus the destination when its
//!    signing status flipped either way;
//! 2. unfix the region on top of the previous outcome, re-enqueue boundary
//!    offers from fixed neighbors, and re-run the ordinary bucket-queue
//!    stage schedule restricted to the region;
//! 3. compare the re-fixed region against the previous outcome; for every
//!    changed AS, absorb the neighbors its old or new offer could actually
//!    tie or beat under [`crate::policy::preference_key`] (hubs whose
//!    short routes dwarf the offer stay out) and retry. The condition is
//!    deliberately two-sided: a *withdrawn or worsened* offer (the old one
//!    tied or beat the neighbor's current route) can strictly worsen that
//!    neighbor's best route just as an improved offer can better it, which
//!    is exactly what makes retraction steps sound (see
//!    [`crate::region::grow_affected`]);
//! 4. when no change escapes the region, the patched state is locally
//!    consistent at every AS — inside the region by construction, outside
//!    it because no input changed — and uniqueness makes it exact.
//!
//! **Snapshot/undo invariant:** between steps, the engine's working outcome
//! is byte-identical to the snapshot of the last served step, and every
//! solve attempt confines its writes to the region (the engine's fix log
//! catches the one exception — an AS unreachable in the snapshot getting
//! fixed — and absorbs it into the region). Advancing a step therefore
//! patches the snapshot at the touched entries only: no `O(V)` memcpy per
//! step anywhere on the incremental path.
//!
//! The scenario may carry any [`crate::AttackStrategy`] (forged paths of
//! any claimed depth) and any announcer set — colluding roots are re-fixed
//! exactly like a single attacker whenever they fall inside the dirty
//! region, and announcers never count as sources in the happy bounds.
//!
//! The invariant is **any-direction steps** over a fixed AS universe:
//! every step is classified as *monotone* (validators only joined, or the
//! destination started signing), *retracting* (validators only left, full
//! members downgraded to simplex, or the destination stopped signing), or
//! *mixed* (both at once), and all three are served through the identical
//! solve/verify/grow loop. Retraction needs no extra machinery because
//! every solve attempt unfixes the whole region and re-derives it from the
//! boundary under the *new* deployment — the region members never trust
//! stale secure bits — while everything outside the region kept all of its
//! route inputs unchanged. Only the first call, a universe mismatch, or a
//! region that balloons past half the graph falls back to a fresh
//! [`Engine::compute`], so `advance` is *always* exact; incrementality is
//! purely an optimization. The equivalence is enforced outcome-for-outcome
//! by `tests/sweep_equivalence.rs` against fresh computes — over monotone
//! *and* arbitrary grow/shrink/simplex-flip sequences — and, transitively,
//! by the message-level simulator oracle in `tests/equivalence.rs`.

use sbgp_topology::{AsGraph, AsId, AsSet};

use crate::attack::AttackScenario;
use crate::deployment::Deployment;
use crate::engine::Engine;
use crate::outcome::{Outcome, RootFlags};
use crate::policy::Policy;
use crate::region;

/// How the steps of a sweep were served (all counters cumulative since
/// [`SweepEngine::begin`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Steps served by a fresh [`Engine::compute`] (first step, universe
    /// mismatch, or dirty-region blow-up).
    pub full_recomputes: usize,
    /// Steps served by dirty-region re-fixing (any direction).
    pub incremental_steps: usize,
    /// Steps whose deployment change could not affect any outcome (only
    /// non-destination simplex flips).
    pub noop_steps: usize,
    /// Incremental steps where validators only joined (or the destination
    /// started signing).
    pub monotone_steps: usize,
    /// Incremental steps where validators only left (or the destination
    /// stopped signing).
    pub retracting_steps: usize,
    /// Incremental steps with flips in both directions.
    pub mixed_steps: usize,
    /// Steps that *attempted* the incremental path but blew the region
    /// budget mid-loop and fell back (a subset of `full_recomputes`).
    pub fallback_steps: usize,
    /// Total ASes re-fixed across all incremental steps.
    pub refixed_ases: usize,
    /// Extra verify-and-grow rounds beyond the first attempt.
    pub grow_rounds: usize,
}

impl SweepStats {
    /// Total steps served. Invariant:
    /// `noop_steps + incremental_steps + full_recomputes` equals the number
    /// of [`SweepEngine::advance`] calls (every call is counted exactly
    /// once, including mid-loop fallbacks), and
    /// `monotone_steps + retracting_steps + mixed_steps == incremental_steps`.
    pub fn steps(&self) -> usize {
        self.full_recomputes + self.incremental_steps + self.noop_steps
    }

    /// Fraction of steps served by a full recompute (0 when no steps ran).
    pub fn fallback_rate(&self) -> f64 {
        let steps = self.steps();
        if steps == 0 {
            0.0
        } else {
            self.full_recomputes as f64 / steps as f64
        }
    }

    /// Mean fraction of the graph re-fixed per served step (0 when no
    /// steps ran). `universe` is the AS count of the swept graph.
    pub fn refixed_fraction(&self, universe: usize) -> f64 {
        let cells = self.steps() * universe;
        if cells == 0 {
            0.0
        } else {
            self.refixed_ases as f64 / cells as f64
        }
    }

    /// The counter deltas accumulated since `earlier` — a previously saved
    /// copy of this engine's stats. Lets a runner attribute counters to one
    /// unit of work on a long-lived engine whose totals span many sweeps.
    pub fn delta_since(&self, earlier: &SweepStats) -> SweepStats {
        SweepStats {
            full_recomputes: self.full_recomputes - earlier.full_recomputes,
            incremental_steps: self.incremental_steps - earlier.incremental_steps,
            noop_steps: self.noop_steps - earlier.noop_steps,
            monotone_steps: self.monotone_steps - earlier.monotone_steps,
            retracting_steps: self.retracting_steps - earlier.retracting_steps,
            mixed_steps: self.mixed_steps - earlier.mixed_steps,
            fallback_steps: self.fallback_steps - earlier.fallback_steps,
            refixed_ases: self.refixed_ases - earlier.refixed_ases,
            grow_rounds: self.grow_rounds - earlier.grow_rounds,
        }
    }

    /// Accumulate another run's counters into this one (for merging
    /// per-worker stats into a per-run total).
    pub fn merge(&mut self, other: &SweepStats) {
        self.full_recomputes += other.full_recomputes;
        self.incremental_steps += other.incremental_steps;
        self.noop_steps += other.noop_steps;
        self.monotone_steps += other.monotone_steps;
        self.retracting_steps += other.retracting_steps;
        self.mixed_steps += other.mixed_steps;
        self.fallback_steps += other.fallback_steps;
        self.refixed_ases += other.refixed_ases;
        self.grow_rounds += other.grow_rounds;
    }
}

/// Incremental routing-outcome computer for one `(scenario, policy)` over
/// an arbitrarily changing secure set.
///
/// Create one per worker thread and reuse it across `(m, d)` pairs:
/// [`SweepEngine::begin`] starts a new sweep, then each
/// [`SweepEngine::advance`] returns the exact stable outcome for the next
/// deployment, reusing the previous step's state for every same-universe
/// step — growth, retraction, or mixed churn alike.
#[derive(Debug)]
pub struct SweepEngine<'g> {
    engine: Engine<'g>,
    scenario: Option<AttackScenario>,
    policy: Policy,
    /// Deployment of the last served step.
    prev: Option<Deployment>,
    /// Final outcome of the last served step. Invariant: equal to the
    /// engine's working outcome between [`SweepEngine::advance`] calls.
    snapshot: Outcome,
    /// The dirty region of the current incremental attempt.
    region: AsSet,
    region_list: Vec<AsId>,
    /// Happy-source bounds of the current snapshot, maintained
    /// incrementally (an `O(region)` patch instead of an `O(V)` rescan).
    happy: (usize, usize),
    stats: SweepStats,
}

impl<'g> SweepEngine<'g> {
    /// Create a sweep engine for `graph`.
    pub fn new(graph: &'g AsGraph) -> SweepEngine<'g> {
        let n = graph.len();
        SweepEngine {
            engine: Engine::new(graph),
            scenario: None,
            policy: Policy::new(crate::policy::SecurityModel::Security3rd),
            prev: None,
            snapshot: Outcome::new_empty(),
            region: AsSet::new(n),
            region_list: Vec::new(),
            happy: (0, 0),
            stats: SweepStats::default(),
        }
    }

    /// The topology this engine runs on.
    pub fn graph(&self) -> &'g AsGraph {
        self.engine.graph()
    }

    /// Start a new sweep for a fixed `(scenario, policy)`, discarding any
    /// cached state: until the first [`SweepEngine::advance`],
    /// [`SweepEngine::outcome`] is empty and the happy bounds are zero
    /// (rather than stale data from the previous sweep). Statistics keep
    /// accumulating across sweeps.
    pub fn begin(&mut self, scenario: AttackScenario, policy: Policy) {
        self.scenario = Some(scenario);
        self.policy = policy;
        self.prev = None;
        self.snapshot
            .reset(0, scenario.destination, scenario.attacker_array());
        self.happy = (0, 0);
    }

    /// Start a sweep *mid-flight* from an externally computed outcome —
    /// typically an [`crate::AttackDeltaEngine`] patch of the sequence's
    /// first deployment, which is how the attacker and deployment
    /// amortization axes compose: the delta engine serves `(m, d, S_0)`
    /// from the destination's shared normal outcome, this hook adopts the
    /// result, and [`SweepEngine::advance`] carries the remaining steps
    /// incrementally.
    ///
    /// `outcome` must be the exact stable outcome for `(scenario, policy)`
    /// under `deployment`, and `happy` its [`Outcome::count_happy`] value
    /// (the caller always has it; passing it avoids an `O(V)` rescan).
    ///
    /// # Panics
    ///
    /// Panics when `outcome` disagrees with `scenario` or the graph.
    pub fn begin_from(
        &mut self,
        scenario: AttackScenario,
        policy: Policy,
        deployment: &Deployment,
        outcome: &Outcome,
        happy: (usize, usize),
    ) {
        assert_eq!(outcome.len(), self.graph().len(), "outcome/graph mismatch");
        assert_eq!(
            (outcome.destination(), outcome.attackers),
            (scenario.destination, scenario.attacker_array()),
            "outcome/scenario mismatch"
        );
        debug_assert_eq!(outcome.count_happy(), happy, "stale happy bounds");
        self.scenario = Some(scenario);
        self.policy = policy;
        self.snapshot.copy_from(outcome);
        // Re-establish the invariant that the working outcome equals the
        // snapshot between steps.
        self.engine.outcome_mut().copy_from(outcome);
        self.happy = happy;
        self.prev = Some(deployment.clone());
    }

    /// Compute the stable outcome for the next deployment of the sweep.
    ///
    /// Exact for *any* deployment; incremental for every same-universe step
    /// after the first, whether the secure set grew, shrank, or did both
    /// (the step is classified monotone / retracting / mixed in
    /// [`SweepStats`]). The returned outcome is valid until the next
    /// `advance`/`begin` call.
    ///
    /// # Panics
    ///
    /// Panics when called before [`SweepEngine::begin`].
    pub fn advance(&mut self, deployment: &Deployment) -> &Outcome {
        let scenario = self.scenario.expect("SweepEngine::begin not called");
        let incremental = self
            .prev
            .as_ref()
            .is_some_and(|prev| deployment.universe() == prev.universe());
        if !incremental {
            return self.full_recompute(scenario, deployment);
        }

        // Dirty seeds: the symmetric difference of the `validates` sets,
        // plus the destination when its origin-signing status flipped in
        // either direction. Simplex flips elsewhere are invisible to the
        // engine (only the destination's signing is ever read) — a pure
        // no-op, whether the simplex member joined or left.
        let prev = self.prev.take().expect("same universe implies prev");
        let d = scenario.destination;
        self.region.clear();
        self.region_list.clear();
        let mut grew = false;
        let mut shrank = false;
        for v in deployment.newly_validating(&prev) {
            grew = true;
            if self.region.insert(v) {
                self.region_list.push(v);
            }
        }
        for v in deployment.newly_retired(&prev) {
            shrank = true;
            if self.region.insert(v) {
                self.region_list.push(v);
            }
        }
        let signs_now = deployment.signs_origin(d);
        if signs_now != prev.signs_origin(d) {
            grew |= signs_now;
            shrank |= !signs_now;
            if self.region.insert(d) {
                self.region_list.push(d);
            }
        }
        if self.region_list.is_empty() {
            self.stats.noop_steps += 1;
            self.prev = Some(deployment.clone());
            return &self.snapshot;
        }

        let max_region = self.graph().len() / 2;
        loop {
            if self.region_list.len() > max_region {
                self.stats.fallback_steps += 1;
                return self.full_recompute(scenario, deployment);
            }
            self.solve_region(scenario, deployment);
            self.absorb_fix_log();
            let escaped = region::grow_affected(
                self.engine.graph(),
                self.engine.outcome(),
                &self.snapshot,
                scenario,
                deployment,
                self.policy,
                &mut self.region,
                &mut self.region_list,
            );
            if !escaped {
                break;
            }
            self.stats.grow_rounds += 1;
        }
        // Patch the happy bounds by the region's delta, then fold the
        // region back into the snapshot entry by entry — everything outside
        // the region is untouched by construction.
        let outcome = self.engine.outcome();
        for &v in &self.region_list {
            if v == d || scenario.is_attacker(v) {
                continue;
            }
            let old = self.snapshot.flags(v);
            let new = outcome.flags(v);
            self.happy.0 += usize::from(new.surely_happy());
            self.happy.0 -= usize::from(old.surely_happy());
            self.happy.1 += usize::from(new.may_reach_destination());
            self.happy.1 -= usize::from(old.may_reach_destination());
        }

        self.stats.incremental_steps += 1;
        match (grew, shrank) {
            (true, false) => self.stats.monotone_steps += 1,
            (false, true) => self.stats.retracting_steps += 1,
            // Both directions flipped (the region was non-empty, so at
            // least one direction did).
            _ => self.stats.mixed_steps += 1,
        }
        self.stats.refixed_ases += self.region_list.len();
        for &v in &self.region_list {
            self.snapshot.copy_entry_from(self.engine.outcome(), v);
        }
        self.prev = Some(deployment.clone());
        &self.snapshot
    }

    /// The outcome of the last served step.
    pub fn outcome(&self) -> &Outcome {
        &self.snapshot
    }

    /// Happy-source tie-break bounds of the current outcome, identical to
    /// [`Outcome::count_happy`] but maintained incrementally across steps.
    pub fn count_happy(&self) -> (usize, usize) {
        self.happy
    }

    /// Cumulative sweep statistics.
    pub fn stats(&self) -> SweepStats {
        self.stats
    }

    fn full_recompute(&mut self, scenario: AttackScenario, deployment: &Deployment) -> &Outcome {
        self.stats.full_recomputes += 1;
        self.engine.compute(scenario, deployment, self.policy);
        self.snapshot.copy_from(self.engine.outcome());
        self.happy = self.snapshot.count_happy();
        self.prev = Some(deployment.clone());
        &self.snapshot
    }

    /// One attempt: re-fix exactly the current region on top of the
    /// previous outcome, treating everything outside it as fixed boundary.
    /// The engine's working outcome equals the snapshot at entry (either
    /// verbatim, or modified only at region members by an earlier attempt),
    /// so unfixing the region is all the preparation needed.
    fn solve_region(&mut self, scenario: AttackScenario, deployment: &Deployment) {
        self.engine.begin(scenario, deployment, self.policy);
        self.engine.enable_fix_log();
        for &v in &self.region_list {
            self.engine.outcome_mut().unfix(v);
        }
        // Roots inside the region are re-fixed exactly as `compute` would.
        let d = scenario.destination;
        if self.region.contains(d) {
            self.engine.fix_root(
                d,
                0,
                deployment.signs_origin(d),
                RootFlags::TO_D,
                deployment,
            );
        }
        for m in scenario.attackers() {
            if self.region.contains(m) {
                self.engine.fix_root(
                    m,
                    scenario.strategy.root_depth(),
                    false,
                    RootFlags::TO_M,
                    deployment,
                );
            }
        }
        for &v in &self.region_list {
            if v == d || scenario.is_attacker(v) {
                continue;
            }
            self.engine.seed_from_boundary(v, &self.region, deployment);
        }
        self.engine.run_schedule(self.policy, deployment);
    }

    fn absorb_fix_log(&mut self) {
        region::absorb_fix_log(
            self.engine.fix_log(),
            &mut self.region,
            &mut self.region_list,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::AttackStrategy;
    use crate::policy::{LpVariant, SecurityModel};
    use sbgp_topology::GraphBuilder;

    /// The Figure 2 downgrade gadget plus a second provider chain, so the
    /// sweep has something interesting to re-fix.
    fn gadget() -> AsGraph {
        let mut b = GraphBuilder::new(8);
        b.add_provider(AsId(1), AsId(0)).unwrap();
        b.add_peering(AsId(1), AsId(2)).unwrap();
        b.add_peering(AsId(0), AsId(2)).unwrap();
        b.add_provider(AsId(3), AsId(2)).unwrap();
        b.add_provider(AsId(4), AsId(3)).unwrap();
        b.add_provider(AsId(5), AsId(0)).unwrap();
        b.add_provider(AsId(6), AsId(5)).unwrap();
        b.add_provider(AsId(7), AsId(6)).unwrap();
        b.build()
    }

    fn assert_outcomes_match(sweep: &Outcome, fresh: &Outcome, graph: &AsGraph, ctx: &str) {
        for v in graph.ases() {
            assert_eq!(sweep.route(v), fresh.route(v), "{ctx}: route at {v}");
            assert_eq!(
                sweep.next_hop(v),
                fresh.next_hop(v),
                "{ctx}: next hop at {v}"
            );
            assert_eq!(
                sweep.may_traverse_mark(v),
                fresh.may_traverse_mark(v),
                "{ctx}: mark at {v}"
            );
        }
    }

    #[test]
    fn sweep_matches_fresh_compute_on_growing_deployments() {
        let g = gadget();
        let scenario = AttackScenario::attack(AsId(4), AsId(0));
        let steps: Vec<Deployment> = vec![
            Deployment::empty(8),
            Deployment::full_from_iter(8, [AsId(0)]),
            Deployment::full_from_iter(8, [AsId(0), AsId(1), AsId(2)]),
            Deployment::full_from_iter(8, [AsId(0), AsId(1), AsId(2), AsId(5), AsId(6)]),
        ];
        for model in SecurityModel::ALL {
            for variant in [LpVariant::Standard, LpVariant::LpK(2), LpVariant::LpInf] {
                let policy = Policy::with_variant(model, variant);
                let mut sweep = SweepEngine::new(&g);
                let mut fresh = Engine::new(&g);
                sweep.begin(scenario, policy);
                for (k, dep) in steps.iter().enumerate() {
                    let got = sweep.advance(dep);
                    let want = fresh.compute(scenario, dep, policy);
                    assert_outcomes_match(got, want, &g, &format!("{policy} step {k}"));
                    assert_eq!(
                        sweep.count_happy(),
                        want.count_happy(),
                        "{policy} step {k}: incremental happy bounds"
                    );
                }
                assert!(sweep.stats().incremental_steps >= 1, "{policy}");
            }
        }
    }

    #[test]
    fn destination_signing_flip_is_propagated() {
        // The destination joining S flips secure bits along whole chains —
        // the seed-the-destination path. The graph carries a long insecure
        // tail so the dirty region stays well under the fallback cap.
        let mut b = GraphBuilder::new(16);
        b.add_provider(AsId(1), AsId(0)).unwrap();
        b.add_provider(AsId(5), AsId(0)).unwrap();
        b.add_provider(AsId(6), AsId(5)).unwrap();
        b.add_provider(AsId(7), AsId(6)).unwrap();
        for i in 8..16u32 {
            b.add_provider(AsId(i), AsId(i - 1)).unwrap();
        }
        let g = b.build();
        let scenario = AttackScenario::normal(AsId(0));
        let policy = Policy::new(SecurityModel::Security2nd);
        let mut sweep = SweepEngine::new(&g);
        let mut fresh = Engine::new(&g);
        sweep.begin(scenario, policy);
        let s0 = Deployment::full_from_iter(16, [AsId(1), AsId(5), AsId(6)]);
        let mut s1 = s0.clone();
        s1.insert_simplex(AsId(0)); // d signs (simplex) but never validates
        for dep in [&s0, &s1] {
            let got = sweep.advance(dep);
            let want = fresh.compute(scenario, dep, policy);
            assert_outcomes_match(got, want, &g, "signing flip");
        }
        assert_eq!(sweep.stats().incremental_steps, 1);
        // The secure chain exists and the tail stayed insecure.
        assert!(sweep.outcome().uses_secure_route(AsId(6)));
        assert!(!sweep.outcome().uses_secure_route(AsId(7)));
    }

    #[test]
    fn non_destination_simplex_additions_are_noops() {
        let g = gadget();
        let scenario = AttackScenario::attack(AsId(4), AsId(0));
        let policy = Policy::new(SecurityModel::Security1st);
        let mut sweep = SweepEngine::new(&g);
        sweep.begin(scenario, policy);
        let s0 = Deployment::full_from_iter(8, [AsId(0), AsId(1)]);
        let mut s1 = s0.clone();
        s1.insert_simplex(AsId(7));
        sweep.advance(&s0);
        sweep.advance(&s1);
        assert_eq!(sweep.stats().noop_steps, 1);
        let mut fresh = Engine::new(&g);
        let want = fresh.compute(scenario, &s1, policy);
        assert_outcomes_match(sweep.outcome(), want, &g, "noop step");
    }

    #[test]
    fn retraction_steps_are_served_incrementally() {
        let g = gadget();
        let scenario = AttackScenario::attack(AsId(4), AsId(0));
        for model in SecurityModel::ALL {
            let policy = Policy::new(model);
            let mut sweep = SweepEngine::new(&g);
            let mut fresh = Engine::new(&g);
            sweep.begin(scenario, policy);
            // Wax and wane: grow to four members, then shrink back down.
            let steps = [
                Deployment::full_from_iter(8, [AsId(0), AsId(1), AsId(2), AsId(5)]),
                Deployment::full_from_iter(8, [AsId(0), AsId(1)]),
                Deployment::full_from_iter(8, [AsId(0)]),
            ];
            for (k, dep) in steps.iter().enumerate() {
                let got = sweep.advance(dep);
                let want = fresh.compute(scenario, dep, policy);
                assert_outcomes_match(got, want, &g, &format!("{policy} shrink step {k}"));
                assert_eq!(sweep.count_happy(), want.count_happy(), "{policy} step {k}");
            }
            let stats = sweep.stats();
            assert_eq!(stats.full_recomputes, 1, "{policy}: only the first step");
            assert_eq!(stats.retracting_steps, 2, "{policy}");
            assert_eq!(stats.incremental_steps, 2, "{policy}");
        }
    }

    #[test]
    fn mixed_churn_steps_are_served_incrementally() {
        let g = gadget();
        let scenario = AttackScenario::attack(AsId(4), AsId(0));
        let policy = Policy::new(SecurityModel::Security1st);
        let mut sweep = SweepEngine::new(&g);
        let mut fresh = Engine::new(&g);
        sweep.begin(scenario, policy);
        // Step 2 drops {2, 5} while adding {6}: both directions at once.
        let steps = [
            Deployment::full_from_iter(8, [AsId(0), AsId(1), AsId(2), AsId(5)]),
            Deployment::full_from_iter(8, [AsId(0), AsId(1), AsId(6)]),
        ];
        for (k, dep) in steps.iter().enumerate() {
            let got = sweep.advance(dep);
            let want = fresh.compute(scenario, dep, policy);
            assert_outcomes_match(got, want, &g, &format!("mixed step {k}"));
            assert_eq!(sweep.count_happy(), want.count_happy(), "mixed step {k}");
        }
        let stats = sweep.stats();
        assert_eq!(stats.mixed_steps, 1);
        assert_eq!(stats.incremental_steps, 1);
        assert_eq!(stats.full_recomputes, 1);
    }

    #[test]
    fn destination_unsigning_is_propagated() {
        // The inverse of `destination_signing_flip_is_propagated`: d leaves
        // S entirely, so every secure route in the chain must flip back to
        // insecure — the retraction seed is the destination itself.
        let mut b = GraphBuilder::new(16);
        b.add_provider(AsId(1), AsId(0)).unwrap();
        b.add_provider(AsId(5), AsId(0)).unwrap();
        b.add_provider(AsId(6), AsId(5)).unwrap();
        b.add_provider(AsId(7), AsId(6)).unwrap();
        for i in 8..16u32 {
            b.add_provider(AsId(i), AsId(i - 1)).unwrap();
        }
        let g = b.build();
        let scenario = AttackScenario::normal(AsId(0));
        let policy = Policy::new(SecurityModel::Security2nd);
        let mut sweep = SweepEngine::new(&g);
        let mut fresh = Engine::new(&g);
        sweep.begin(scenario, policy);
        let mut s0 = Deployment::full_from_iter(16, [AsId(1), AsId(5), AsId(6)]);
        s0.insert_simplex(AsId(0));
        let s1 = Deployment::full_from_iter(16, [AsId(1), AsId(5), AsId(6)]);
        for dep in [&s0, &s1] {
            let got = sweep.advance(dep);
            let want = fresh.compute(scenario, dep, policy);
            assert_outcomes_match(got, want, &g, "unsigning flip");
        }
        assert_eq!(sweep.stats().retracting_steps, 1);
        assert!(!sweep.outcome().uses_secure_route(AsId(6)));
    }

    #[test]
    fn non_destination_simplex_removals_are_noops() {
        let g = gadget();
        let scenario = AttackScenario::attack(AsId(4), AsId(0));
        let policy = Policy::new(SecurityModel::Security1st);
        let mut sweep = SweepEngine::new(&g);
        sweep.begin(scenario, policy);
        let mut s0 = Deployment::full_from_iter(8, [AsId(0), AsId(1)]);
        s0.insert_simplex(AsId(7));
        let s1 = Deployment::full_from_iter(8, [AsId(0), AsId(1)]);
        sweep.advance(&s0);
        sweep.advance(&s1);
        assert_eq!(sweep.stats().noop_steps, 1);
        let mut fresh = Engine::new(&g);
        let want = fresh.compute(scenario, &s1, policy);
        assert_outcomes_match(sweep.outcome(), want, &g, "simplex-removal noop");
    }

    #[test]
    fn step_accounting_holds_through_mid_loop_fallback() {
        // Flipping d's signing on a fully deployed 16-chain dirties the
        // whole chain one grow round at a time, blowing the region budget
        // mid-loop. The step must still be counted exactly once:
        // noop + incremental + full == advance calls, and the blow-up is
        // visible as a fallback_step.
        let mut b = GraphBuilder::new(16);
        for i in 1..16u32 {
            b.add_provider(AsId(i), AsId(i - 1)).unwrap();
        }
        let g = b.build();
        let scenario = AttackScenario::normal(AsId(0));
        let policy = Policy::new(SecurityModel::Security1st);
        let mut sweep = SweepEngine::new(&g);
        sweep.begin(scenario, policy);
        let s0 = Deployment::full_from_iter(16, (1..16).map(AsId));
        let s1 = Deployment::full_from_iter(16, (0..16).map(AsId));
        let mut calls = 0;
        for dep in [&s0, &s1, &s1, &s0] {
            sweep.advance(dep);
            calls += 1;
            let stats = sweep.stats();
            assert_eq!(
                stats.noop_steps + stats.incremental_steps + stats.full_recomputes,
                calls,
                "step accounting broke at call {calls}"
            );
            assert_eq!(
                stats.monotone_steps + stats.retracting_steps + stats.mixed_steps,
                stats.incremental_steps,
                "direction accounting broke at call {calls}"
            );
        }
        let stats = sweep.stats();
        // The two signing flips each blow the region budget mid-loop.
        assert_eq!(stats.fallback_steps, 2);
        assert!(stats.grow_rounds >= 2, "blow-up should take grow rounds");
        assert_eq!(stats.noop_steps, 1);
        // Exactness after the mid-loop fallbacks.
        let mut fresh = Engine::new(&g);
        let want = fresh.compute(scenario, &s0, policy);
        assert_outcomes_match(sweep.outcome(), want, &g, "post-fallback state");
    }

    #[test]
    fn colluding_and_forged_scenarios_sweep_exactly() {
        let g = gadget();
        let steps: Vec<Deployment> = vec![
            Deployment::empty(8),
            Deployment::full_from_iter(8, [AsId(0), AsId(1)]),
            Deployment::full_from_iter(8, [AsId(0), AsId(1), AsId(2), AsId(5)]),
        ];
        let scenarios = [
            AttackScenario::colluding(&[AsId(4), AsId(7)], AsId(0)),
            AttackScenario::colluding(&[AsId(4), AsId(6), AsId(3)], AsId(0))
                .with_strategy(AttackStrategy::FakePath { hops: 2 }),
            AttackScenario::attack(AsId(4), AsId(0))
                .with_strategy(AttackStrategy::FakePath { hops: 0 }),
        ];
        for model in SecurityModel::ALL {
            let policy = Policy::new(model);
            for scenario in scenarios {
                let mut sweep = SweepEngine::new(&g);
                let mut fresh = Engine::new(&g);
                sweep.begin(scenario, policy);
                for (k, dep) in steps.iter().enumerate() {
                    let got = sweep.advance(dep);
                    let want = fresh.compute(scenario, dep, policy);
                    assert_outcomes_match(got, want, &g, &format!("{policy} step {k}"));
                    assert_eq!(sweep.count_happy(), want.count_happy(), "{policy} step {k}");
                }
            }
        }
    }

    #[test]
    fn collateral_damage_ripples_are_tracked() {
        // The §6.1 collateral-damage gadget: securing {d, r, q, p2, a}
        // *lengthens* a's route and flips s to unhappy — the change must
        // propagate beyond the seeds themselves.
        let mut b = GraphBuilder::new(10);
        b.add_provider(AsId(0), AsId(1)).unwrap();
        b.add_provider(AsId(1), AsId(2)).unwrap();
        b.add_provider(AsId(2), AsId(3)).unwrap();
        b.add_provider(AsId(0), AsId(4)).unwrap();
        b.add_provider(AsId(5), AsId(3)).unwrap();
        b.add_provider(AsId(5), AsId(4)).unwrap();
        b.add_provider(AsId(6), AsId(5)).unwrap();
        b.add_provider(AsId(6), AsId(7)).unwrap();
        b.add_provider(AsId(8), AsId(7)).unwrap();
        b.add_provider(AsId(9), AsId(8)).unwrap();
        let g = b.build();
        let scenario = AttackScenario::attack(AsId(9), AsId(0));
        let policy = Policy::new(SecurityModel::Security2nd);
        let mut sweep = SweepEngine::new(&g);
        let mut fresh = Engine::new(&g);
        sweep.begin(scenario, policy);
        let steps = [
            Deployment::empty(10),
            Deployment::full_from_iter(10, [AsId(0), AsId(1), AsId(2)]),
            Deployment::full_from_iter(10, [AsId(0), AsId(1), AsId(2), AsId(3), AsId(5)]),
        ];
        for (k, dep) in steps.iter().enumerate() {
            let got = sweep.advance(dep);
            let want = fresh.compute(scenario, dep, policy);
            assert_outcomes_match(got, want, &g, &format!("step {k}"));
        }
        // The last step must show the damage (s = 6 surely unhappy).
        assert!(sweep.outcome().flags(AsId(6)).surely_unhappy());
        assert!(sweep.stats().incremental_steps >= 1);
    }
}
