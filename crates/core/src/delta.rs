//! The attacker-delta engine: amortize the destination-rooted side of the
//! routing computation across **all attackers** of a `(d, S, policy)` cell.
//!
//! Every experiment in the paper averages `H_{M,D}(S)` over attacker ×
//! destination pairs (§4.1), and the two-rooted `Fix-Routes` run is
//! `O(V + E)` per pair — even though, for a fixed destination, deployment
//! and policy, the destination-rooted side is byte-identical across all
//! attackers in `M`. [`AttackDeltaEngine`] computes the **normal-conditions
//! outcome once** (no attacker), snapshots it, and then evaluates each
//! attacker `m` by re-fixing only the *contested region*: the ASes whose
//! fixed route the forged announcement (a `k`-hop
//! [`AttackStrategy::FakePath`], of which the paper's `"m, d"` fake link
//! is `k = 1`) can actually tie or beat under the model's preference
//! order. The region is seeded at `m`'s root and grown with the same
//! [`crate::policy::preference_key`] affected-neighbor filter and
//! bucket-queue stage schedule the deployment-axis [`crate::SweepEngine`]
//! uses (shared in `region`); exactness rests on the same Theorem 2.1
//! local-consistency argument.
//!
//! **Colluding announcers.** [`AttackDeltaEngine::attack_set`] serves a
//! whole announcer set at once: the contested region is seeded as the
//! *multi-root* union of every colluder's ball (the forward scan starts
//! from all roots simultaneously, so an AS is marked the first time any
//! root's offer can reach it competitively), all roots are re-fixed in the
//! solve, and the same touched-list undo restores the snapshot exactly —
//! a colluding patch costs one region solve, not one per member.
//!
//! **Snapshot/undo invariant:** each [`AttackDeltaEngine::attack`] records
//! the set of ASes it touched (the final region, which the engine's fix
//! log keeps an exact superset of the writes) and the next call *undoes*
//! exactly those entries from the normal-conditions snapshot — an
//! `O(touched)` restore, never an `O(V)` memcpy per attacker. Happy-source
//! bounds are patched the same way.
//!
//! **Exactness fallback:** the contested ball is first discovered by a
//! cheap forward scan of the snapshot (no solving); when its *adjacency
//! mass* — the quantity every patch pass is proportional to, since the
//! balls are hub-heavy — exceeds the budget at which a patch can still
//! beat a compute, the engine serves that attacker with a full
//! [`Engine::compute`] instead (flagging the next restore as full), so
//! every answer stays exact no matter how pathological the topology and a
//! hopeless patch costs barely more than the compute it falls back to.
//! `tests/delta_equivalence.rs` pins outcome-for-outcome agreement with
//! fresh computes across all three security models, the `LP2`/`LPinf`
//! variants and both attack kinds.
//!
//! This is the **attacker axis** of the two-axis amortization hierarchy.
//! How heavy an attacker patch is depends on how far the bogus
//! announcement out-competes the truth: measured on the 4000-AS synthetic
//! graph, a fake-link attack by a non-stub against a *random* destination
//! changes ~40% of all ASes (~20% structurally; the rest is root-flag
//! contamination flowing down intact subtrees), while attacks against
//! destinations the deployment actually protects contest far less.
//! `sbgp-sim` therefore composes the axes destination-major with the
//! *deployment* axis innermost — `for d → for m (delta-patch the first
//! step off d's shared normal outcome) → for S_k (sweep the remaining
//! steps)` — because between adjacent `S` steps the bogus spread is shared
//! state ([`crate::SweepEngine::begin_from`] adopts a patched outcome),
//! whereas re-patching each attacker into every step would pay the
//! contested ball `|S|` times.

use sbgp_topology::{AsGraph, AsId, AsSet};

use crate::attack::{AttackScenario, AttackStrategy};
use crate::deployment::Deployment;
use crate::engine::Engine;
use crate::outcome::{Outcome, RootFlags};
use crate::policy::{preference_key, Policy};
use crate::region;

/// Contested-ball scan state: the AS already propagated the bogus offer to
/// every neighbor (customer-class receipt exports everywhere)...
const SCAN_WIDE: u8 = 1;
/// ...or at least to its customers (peer/provider-class receipt).
const SCAN_DOWN: u8 = 2;

/// How the attacks of a delta engine were served (cumulative across
/// [`AttackDeltaEngine::begin`] calls).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Normal-conditions base outcomes computed by
    /// [`AttackDeltaEngine::begin`].
    pub base_computes: usize,
    /// Base outcomes adopted from an external computation (the
    /// deployment-sweep composition path).
    pub adopted_bases: usize,
    /// Attacks served by contested-region re-fixing.
    pub delta_attacks: usize,
    /// Attacks served by a full [`Engine::compute`] after a region blow-up.
    pub full_recomputes: usize,
    /// Total ASes re-fixed across all delta-served attacks.
    pub refixed_ases: usize,
    /// Extra verify-and-grow rounds beyond the first attempt.
    pub grow_rounds: usize,
}

impl DeltaStats {
    /// Total attacks served.
    pub fn attacks(&self) -> usize {
        self.delta_attacks + self.full_recomputes
    }
}

/// One cell's adopted base state, exported by
/// [`AttackDeltaEngine::export_base`] for external caching (the planner
/// service's normal-outcome cache) and re-adopted by
/// [`AttackDeltaEngine::begin_from_base`] without recomputing anything.
#[derive(Clone, Debug)]
pub struct CachedBase {
    outcome: Outcome,
    cell_keys: Vec<u128>,
    normal_happy: (usize, usize),
}

impl CachedBase {
    /// The cached normal-conditions outcome.
    pub fn outcome(&self) -> &Outcome {
        &self.outcome
    }
}

/// How the engine's working outcome differs from the snapshot, i.e. what
/// the next attack must undo before patching.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Restore {
    /// Working outcome equals the snapshot.
    Clean,
    /// Only the entries in `region_list` differ (last attack was a patch).
    Touched,
    /// Arbitrary divergence (last attack fell back to a full compute).
    Full,
}

/// Incremental routing-outcome computer for all attackers of one
/// `(destination, deployment, policy)` cell.
///
/// Create one per worker thread and reuse it across cells:
/// [`AttackDeltaEngine::begin`] (or
/// [`AttackDeltaEngine::begin_from_normal`], when a [`crate::SweepEngine`]
/// already holds the normal-conditions outcome) fixes the cell, then each
/// [`AttackDeltaEngine::attack`] returns the exact stable outcome for one
/// attacker.
#[derive(Debug)]
pub struct AttackDeltaEngine<'g> {
    engine: Engine<'g>,
    /// Normal-conditions outcome of the current cell.
    snapshot: Outcome,
    destination: AsId,
    deployment: Option<Deployment>,
    policy: Policy,
    /// Happy bounds of the snapshot (sources exclude only `d`).
    normal_happy: (usize, usize),
    /// Happy bounds of the last served attack (sources exclude `d`, `m`).
    happy: (usize, usize),
    /// Contested region of the current attack.
    region: AsSet,
    region_list: Vec<AsId>,
    /// Sum of the region members' degrees — the adjacency mass every
    /// patch pass (seed, rescan, verify) is proportional to.
    region_mass: usize,
    /// Adjacency-mass budget above which a patch can no longer beat a
    /// from-scratch compute (the regions are hub-heavy, so node counts
    /// track cost poorly; edge mass is what the solve actually scans).
    mass_budget: usize,
    /// The last patch's region — exactly the entries where the working
    /// outcome differs from the snapshot, i.e. the undo list.
    touched: Vec<AsId>,
    restore: Restore,
    /// Per-cell cache of every AS's snapshot preference key, packed into
    /// one `u128` for a single-compare scan filter (`u128::MAX` = no
    /// route). Built once per cell, amortized over its attackers.
    cell_keys: Vec<u128>,
    /// Contested-ball scan scratch (per-AS export bits + its undo list and
    /// the two BFS frontiers), reused across attacks.
    scan_state: Vec<u8>,
    scan_touched: Vec<u32>,
    scan_cur: Vec<(u32, u8)>,
    scan_next: Vec<(u32, u8)>,
    stats: DeltaStats,
}

use crate::region::pack_key;

impl<'g> AttackDeltaEngine<'g> {
    /// Create a delta engine for `graph`.
    pub fn new(graph: &'g AsGraph) -> AttackDeltaEngine<'g> {
        let n = graph.len();
        AttackDeltaEngine {
            engine: Engine::new(graph),
            snapshot: Outcome::new_empty(),
            destination: AsId(0),
            deployment: None,
            policy: Policy::new(crate::policy::SecurityModel::Security3rd),
            normal_happy: (0, 0),
            happy: (0, 0),
            region: AsSet::new(n),
            region_list: Vec::new(),
            region_mass: 0,
            // A patch pays roughly three passes over the region's
            // adjacency where a compute pays one pass over the whole
            // graph (plus two O(V) scans); beyond ~a sixth of the total
            // mass the patch stops winning. Calibrated on the 4000-AS
            // benchmark workload.
            mass_budget: (n + 2 * graph.num_edges()) / 6,
            touched: Vec::new(),
            restore: Restore::Clean,
            cell_keys: Vec::new(),
            scan_state: vec![0; n],
            scan_touched: Vec::new(),
            scan_cur: Vec::new(),
            scan_next: Vec::new(),
            stats: DeltaStats::default(),
        }
    }

    /// The topology this engine runs on.
    pub fn graph(&self) -> &'g AsGraph {
        self.engine.graph()
    }

    /// Fix the `(destination, deployment, policy)` cell, computing its
    /// normal-conditions outcome from scratch. Statistics keep accumulating
    /// across cells.
    pub fn begin(&mut self, destination: AsId, deployment: &Deployment, policy: Policy) {
        self.stats.base_computes += 1;
        self.engine
            .compute(AttackScenario::normal(destination), deployment, policy);
        self.snapshot.copy_from(self.engine.outcome());
        self.restore = Restore::Clean;
        self.adopt(destination, deployment, policy);
    }

    /// Fix the cell from an externally computed normal-conditions outcome —
    /// typically a [`crate::SweepEngine`] mid-rollout, which is what lets
    /// the deployment and attacker amortization axes compose.
    ///
    /// # Panics
    ///
    /// Panics when `normal` has an attacker, or doesn't cover the graph.
    pub fn begin_from_normal(&mut self, normal: &Outcome, deployment: &Deployment, policy: Policy) {
        assert!(
            normal.attacker().is_none(),
            "base outcome must be normal conditions"
        );
        assert_eq!(normal.len(), self.graph().len(), "outcome/graph mismatch");
        self.stats.adopted_bases += 1;
        self.snapshot.copy_from(normal);
        // The engine's working buffers hold whatever the previous cell
        // left; resync them wholesale once per cell.
        self.engine.outcome_mut().copy_from(normal);
        self.restore = Restore::Clean;
        self.adopt(normal.destination(), deployment, policy);
    }

    /// Export the current cell's base state for external caching: the
    /// normal-conditions outcome plus the packed preference keys and
    /// happy bounds the adoption scans derive from it. Re-anchoring
    /// through [`AttackDeltaEngine::begin_from_base`] then skips the
    /// route computation *and* the O(V) adoption scans.
    ///
    /// The export is only valid for the exact
    /// `(destination, deployment, policy)` cell it was taken from; the
    /// engine cannot verify that from the outcome alone, so callers key
    /// their caches on the full cell identity (the planner service
    /// compares the deployment's member lists).
    pub fn export_base(&self) -> CachedBase {
        CachedBase {
            outcome: self.snapshot.clone(),
            cell_keys: self.cell_keys.clone(),
            normal_happy: self.normal_happy,
        }
    }

    /// Fix the cell from a [`CachedBase`] exported earlier for the same
    /// `(destination, deployment, policy)` cell. Unlike
    /// [`AttackDeltaEngine::begin_from_normal`] this skips the per-AS
    /// preference-key scan, so a cache hit costs only three buffer
    /// copies.
    ///
    /// # Panics
    ///
    /// Panics when the base carries an attacker or doesn't cover the
    /// graph. A base exported from a *different* deployment or policy is
    /// undetectable here and would corrupt results — the cell-identity
    /// contract is the caller's (see [`AttackDeltaEngine::export_base`]).
    pub fn begin_from_base(&mut self, base: &CachedBase, deployment: &Deployment, policy: Policy) {
        assert!(
            base.outcome.attacker().is_none(),
            "base outcome must be normal conditions"
        );
        assert_eq!(
            base.outcome.len(),
            self.graph().len(),
            "outcome/graph mismatch"
        );
        assert_eq!(
            base.cell_keys.len(),
            self.graph().len(),
            "key/graph mismatch"
        );
        self.stats.adopted_bases += 1;
        self.snapshot.copy_from(&base.outcome);
        self.engine.outcome_mut().copy_from(&base.outcome);
        self.restore = Restore::Clean;
        self.destination = base.outcome.destination();
        self.policy = policy;
        self.normal_happy = base.normal_happy;
        self.happy = base.normal_happy;
        self.region_list.clear();
        self.region.clear();
        self.touched.clear();
        self.cell_keys.clear();
        self.cell_keys.extend_from_slice(&base.cell_keys);
        self.deployment = Some(deployment.clone());
    }

    fn adopt(&mut self, destination: AsId, deployment: &Deployment, policy: Policy) {
        self.destination = destination;
        self.policy = policy;
        self.normal_happy = self.snapshot.count_happy();
        self.happy = self.normal_happy;
        self.region_list.clear();
        self.region.clear();
        self.touched.clear();
        // Precompute every AS's packed snapshot key once per cell: the
        // contested-ball scan then filters each offer with one compare.
        let n = self.graph().len();
        self.cell_keys.clear();
        self.cell_keys.resize(n, u128::MAX);
        for i in 0..n {
            let v = AsId(i as u32);
            if let Some(k) = region::current_key(&self.snapshot, v, policy, deployment.validates(v))
            {
                self.cell_keys[i] = pack_key(k);
            }
        }
        self.deployment = Some(deployment.clone());
    }

    /// The outcome of the last served attack (the normal-conditions
    /// outcome before the first attack of a cell). Identical to what
    /// [`AttackDeltaEngine::attack`] returned, re-borrowable immutably.
    pub fn last_outcome(&self) -> &Outcome {
        self.engine.outcome()
    }

    /// The normal-conditions outcome of the current cell.
    pub fn normal_outcome(&self) -> &Outcome {
        &self.snapshot
    }

    /// Happy bounds of the normal-conditions outcome.
    pub fn normal_happy(&self) -> (usize, usize) {
        self.normal_happy
    }

    /// Happy-source tie-break bounds of the last served attack, identical
    /// to [`Outcome::count_happy`] but patched incrementally.
    pub fn count_happy(&self) -> (usize, usize) {
        self.happy
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> DeltaStats {
        self.stats
    }

    /// The per-cell packed snapshot preference keys (`u128::MAX` = no
    /// route), for the fused engine's shared multi-lane scan.
    pub(crate) fn cell_keys(&self) -> &[u128] {
        &self.cell_keys
    }

    /// The adjacency-mass budget above which this engine would fall back.
    pub(crate) fn mass_budget(&self) -> usize {
        self.mass_budget
    }

    /// Compute the exact stable outcome for `attacker` announcing
    /// `strategy` against the cell's destination. The returned outcome is
    /// valid until the next `attack`/`begin*` call.
    ///
    /// # Panics
    ///
    /// Panics before [`AttackDeltaEngine::begin`] /
    /// [`AttackDeltaEngine::begin_from_normal`], or when `attacker` is the
    /// destination.
    pub fn attack(&mut self, attacker: AsId, strategy: AttackStrategy) -> &Outcome {
        self.attack_set(&[attacker], strategy)
    }

    /// As [`AttackDeltaEngine::attack`], for a set of colluding announcers
    /// flooding the same-shaped forged announcement simultaneously. The
    /// contested region is seeded from **all** roots and solved once; the
    /// touched-list undo is identical to the single-attacker case.
    ///
    /// # Panics
    ///
    /// Panics before `begin*`, or when `attackers` violates
    /// [`AttackScenario::colluding`]'s preconditions (empty, more than
    /// [`crate::MAX_ATTACKERS`], duplicates, or containing the
    /// destination).
    pub fn attack_set(&mut self, attackers: &[AsId], strategy: AttackStrategy) -> &Outcome {
        let deployment = self
            .deployment
            .take()
            .expect("AttackDeltaEngine::begin not called");
        let d = self.destination;
        let scenario = AttackScenario::colluding(attackers, d).with_strategy(strategy);
        self.init_roots(scenario);

        // Discover the contested ball in one cheap forward scan over the
        // *snapshot* (the working outcome is not consulted, so no restore
        // has happened yet), so the first solve already covers it: growing
        // it hop by hop through the verify step would cost one full region
        // re-solve per hop of the bogus announcement's reach. An over-cap
        // ball falls back *before* any restore or solve work is spent on
        // it, so a hopeless attacker costs barely more than the compute
        // it falls back to.
        self.seed_contested_region(scenario, &deployment);
        if self.region_mass > self.mass_budget {
            return self.fallback(scenario, deployment);
        }
        self.serve(scenario, deployment)
    }

    /// As [`AttackDeltaEngine::attack_set`], but adopt an externally
    /// discovered seed region instead of running this engine's own
    /// contested-ball scan — the [`crate::FusedDeltaEngine`] discovers all
    /// its lanes' balls in one shared multi-lane traversal and hands each
    /// lane its slice here. Seeding is *purely* a performance hint: the
    /// verify-and-grow loop reaches local consistency from any seed set and
    /// Theorem 2.1 uniqueness then pins the same stable outcome bit for
    /// bit, so callers may pass any subset or superset of the true ball.
    pub(crate) fn attack_set_seeded(
        &mut self,
        attackers: &[AsId],
        strategy: AttackStrategy,
        seeds: &[AsId],
    ) -> &Outcome {
        let deployment = self
            .deployment
            .take()
            .expect("AttackDeltaEngine::begin not called");
        let d = self.destination;
        let scenario = AttackScenario::colluding(attackers, d).with_strategy(strategy);
        self.init_roots(scenario);
        let graph = self.graph();
        for &v in seeds {
            if v == d || scenario.is_attacker(v) {
                continue;
            }
            if self.region.insert(v) {
                self.region_list.push(v);
                self.region_mass += graph.degree(v);
            }
        }
        if self.region_mass > self.mass_budget {
            return self.fallback(scenario, deployment);
        }
        self.serve(scenario, deployment)
    }

    /// Serve one attack with a forced full compute — the fused engine's
    /// per-lane escape hatch when the shared scan already proved this
    /// lane's ball blows its budget.
    pub(crate) fn attack_set_full(
        &mut self,
        attackers: &[AsId],
        strategy: AttackStrategy,
    ) -> &Outcome {
        let deployment = self
            .deployment
            .take()
            .expect("AttackDeltaEngine::begin not called");
        let scenario =
            AttackScenario::colluding(attackers, self.destination).with_strategy(strategy);
        self.fallback(scenario, deployment)
    }

    /// Reset the region to exactly the announcer roots.
    fn init_roots(&mut self, scenario: AttackScenario) {
        self.region.clear();
        self.region_list.clear();
        self.region_mass = 0;
        let graph = self.graph();
        for m in scenario.attackers() {
            self.region.insert(m);
            self.region_list.push(m);
            self.region_mass += graph.degree(m);
        }
    }

    /// The patch tail shared by every seeded entry point: undo, solve the
    /// region to local consistency (growing it as needed), patch the happy
    /// bounds, and flip the snapshot/undo bookkeeping.
    fn serve(&mut self, scenario: AttackScenario, deployment: Deployment) -> &Outcome {
        // Undo the previous attack's writes; afterwards the working outcome
        // equals the snapshot again and the patch can solve against it.
        match self.restore {
            Restore::Clean => {}
            Restore::Touched => {
                for &v in &self.touched {
                    self.engine.outcome_mut().copy_entry_from(&self.snapshot, v);
                }
            }
            Restore::Full => self.engine.outcome_mut().copy_from(&self.snapshot),
        }

        // Entries whose degree is already folded into `region_mass` (the
        // scan counts its own marks; grow/absorb additions are folded in
        // at each loop top).
        let graph = self.graph();
        let mut mass_counted = self.region_list.len();
        loop {
            for &v in &self.region_list[mass_counted..] {
                self.region_mass += graph.degree(v);
            }
            mass_counted = self.region_list.len();
            if self.region_mass > self.mass_budget {
                // The verify step grew the region past the cap after all.
                return self.fallback(scenario, deployment);
            }
            self.solve_region(scenario, &deployment);
            self.absorb_fix_log();
            let escaped = region::grow_affected(
                self.engine.graph(),
                self.engine.outcome(),
                &self.snapshot,
                scenario,
                &deployment,
                self.policy,
                &mut self.region,
                &mut self.region_list,
            );
            if !escaped {
                break;
            }
            self.stats.grow_rounds += 1;
        }

        // Patch the happy bounds: remove every region member's normal
        // contribution (announcers stop being sources entirely) and add
        // back the non-root members' contested contributions.
        let mut happy = self.normal_happy;
        {
            let outcome = self.engine.outcome();
            for &v in &self.region_list {
                let old = self.snapshot.flags(v);
                happy.0 -= usize::from(old.surely_happy());
                happy.1 -= usize::from(old.may_reach_destination());
                if scenario.is_attacker(v) {
                    continue;
                }
                let new = outcome.flags(v);
                happy.0 += usize::from(new.surely_happy());
                happy.1 += usize::from(new.may_reach_destination());
            }
        }
        self.happy = happy;
        self.stats.delta_attacks += 1;
        self.stats.refixed_ases += self.region_list.len();
        // The final region is exactly where the working outcome now
        // differs from the snapshot: it becomes the next undo list.
        std::mem::swap(&mut self.touched, &mut self.region_list);
        self.restore = Restore::Touched;
        self.engine.outcome_mut().attackers = scenario.attacker_array();
        self.deployment = Some(deployment);
        self.engine.outcome()
    }

    /// Serve the current attack with a full [`Engine::compute`] (contested
    /// ball past the cap). The compute rewrites the working outcome
    /// wholesale, so whatever restore was pending is moot and the next one
    /// must be a full copy.
    fn fallback(&mut self, scenario: AttackScenario, deployment: Deployment) -> &Outcome {
        self.stats.full_recomputes += 1;
        self.engine.compute(scenario, &deployment, self.policy);
        self.happy = self.engine.outcome().count_happy();
        self.restore = Restore::Full;
        self.deployment = Some(deployment);
        self.engine.outcome()
    }

    /// Seed the region with the *contested ball*: every AS the bogus
    /// announcement can reach along export-legal paths while tying or
    /// beating the current route at each hop, found by a breadth-first
    /// scan of the snapshot in bogus-path-length order. An AS whose route
    /// strictly beats the offer neither adopts nor re-exports it, so the
    /// scan prunes there; customer-class receipt re-exports everywhere,
    /// peer/provider-class receipt only to customers (Ex). With colluding
    /// announcers, every root contributes its neighbors to the initial
    /// frontier (the announcers share one claimed depth, so the levels stay
    /// aligned) and the scan discovers the union ball in one pass. This is
    /// purely a performance seeding — the verify-and-grow loop would find
    /// the same ASes one hop per round — so its filter does not need to be
    /// tight in either direction. The scan stops early once the region's
    /// adjacency mass exceeds the budget (the caller then falls back
    /// without solving).
    fn seed_contested_region(&mut self, scenario: AttackScenario, deployment: &Deployment) {
        let graph = self.engine.graph();
        let policy = self.policy;
        let d = scenario.destination;

        // Each announcer's origin announcement exports to every neighbor.
        for m in scenario.attackers() {
            for &u in graph.providers(m) {
                self.scan_next.push((u.0, 0));
            }
            for &u in graph.peers(m) {
                self.scan_next.push((u.0, 1));
            }
            for &u in graph.customers(m) {
                self.scan_next.push((u.0, 2));
            }
        }
        let mut len = scenario.strategy.root_depth() + 1;
        'scan: while !self.scan_next.is_empty() {
            std::mem::swap(&mut self.scan_cur, &mut self.scan_next);
            // All offers of a level share the same bogus-path length, so
            // only six distinct offer keys exist per level.
            let mut level_keys = [[0u128; 3]; 2];
            for (validating, keys) in level_keys.iter_mut().enumerate() {
                for (rank, key) in keys.iter_mut().enumerate() {
                    *key = pack_key(preference_key(
                        policy,
                        validating == 1,
                        rank as u8,
                        len,
                        false,
                    ));
                }
            }
            for k in 0..self.scan_cur.len() {
                if self.region_mass > self.mass_budget {
                    // Over budget mid-level: the caller will fall back, so
                    // every further mark is wasted work.
                    break 'scan;
                }
                let (ui, rank) = self.scan_cur[k];
                let u = AsId(ui);
                if u == d || scenario.is_attacker(u) {
                    continue;
                }
                let validating = deployment.validates(u);
                let offer = level_keys[usize::from(validating)][rank as usize];
                if offer > self.cell_keys[u.index()] {
                    continue;
                }
                if self.region.insert(u) {
                    self.region_list.push(u);
                    self.region_mass += graph.degree(u);
                }
                let st = self.scan_state[u.index()];
                if st == 0 {
                    self.scan_touched.push(ui);
                }
                if rank == 0 && st & SCAN_WIDE == 0 {
                    self.scan_state[u.index()] |= SCAN_WIDE | SCAN_DOWN;
                    for &p in graph.providers(u) {
                        self.scan_next.push((p.0, 0));
                    }
                    for &q in graph.peers(u) {
                        self.scan_next.push((q.0, 1));
                    }
                    if st & SCAN_DOWN == 0 {
                        for &c in graph.customers(u) {
                            self.scan_next.push((c.0, 2));
                        }
                    }
                } else if rank != 0 && st & SCAN_DOWN == 0 {
                    self.scan_state[u.index()] |= SCAN_DOWN;
                    for &c in graph.customers(u) {
                        self.scan_next.push((c.0, 2));
                    }
                }
            }
            self.scan_cur.clear();
            len += 1;
        }
        // An over-cap break can leave entries in either frontier.
        self.scan_cur.clear();
        self.scan_next.clear();
        for &x in &self.scan_touched {
            self.scan_state[x as usize] = 0;
        }
        self.scan_touched.clear();
    }

    /// One attempt: re-fix exactly the current contested region on top of
    /// the normal-conditions snapshot, treating everything outside it as
    /// fixed boundary. Mirrors [`crate::SweepEngine`]'s solve, with the
    /// announcer roots replacing the deployment seeds.
    fn solve_region(&mut self, scenario: AttackScenario, deployment: &Deployment) {
        self.engine.begin(scenario, deployment, self.policy);
        self.engine.enable_fix_log();
        self.engine.outcome_mut().attackers = scenario.attacker_array();
        for &v in &self.region_list {
            self.engine.outcome_mut().unfix(v);
        }
        // Every announcer roots the (multi-root) bogus tree; the
        // destination's root entry is never contested (it stays fixed at
        // depth 0 outside the region), so no other root needs re-fixing.
        for m in scenario.attackers() {
            self.engine.fix_root(
                m,
                scenario.strategy.root_depth(),
                false,
                RootFlags::TO_M,
                deployment,
            );
        }
        for &v in &self.region_list {
            if scenario.is_attacker(v) {
                continue;
            }
            self.engine.seed_from_boundary(v, &self.region, deployment);
        }
        self.engine.run_schedule(self.policy, deployment);
    }

    /// Here an out-of-region fix means an AS unreachable under normal
    /// conditions that the bogus announcement reaches — e.g. an island
    /// behind the attacker.
    fn absorb_fix_log(&mut self) {
        region::absorb_fix_log(
            self.engine.fix_log(),
            &mut self.region,
            &mut self.region_list,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::SecurityModel;
    use sbgp_topology::GraphBuilder;

    /// The Figure 2 downgrade gadget plus a second provider chain.
    fn gadget() -> AsGraph {
        let mut b = GraphBuilder::new(8);
        b.add_provider(AsId(1), AsId(0)).unwrap();
        b.add_peering(AsId(1), AsId(2)).unwrap();
        b.add_peering(AsId(0), AsId(2)).unwrap();
        b.add_provider(AsId(3), AsId(2)).unwrap();
        b.add_provider(AsId(4), AsId(3)).unwrap();
        b.add_provider(AsId(5), AsId(0)).unwrap();
        b.add_provider(AsId(6), AsId(5)).unwrap();
        b.add_provider(AsId(7), AsId(6)).unwrap();
        b.build()
    }

    fn assert_outcomes_match(got: &Outcome, want: &Outcome, graph: &AsGraph, ctx: &str) {
        for v in graph.ases() {
            assert_eq!(got.route(v), want.route(v), "{ctx}: route at {v}");
            assert_eq!(got.next_hop(v), want.next_hop(v), "{ctx}: next hop at {v}");
        }
        assert_eq!(got.attacker(), want.attacker(), "{ctx}: attacker");
    }

    #[test]
    fn every_attacker_matches_a_fresh_compute() {
        let g = gadget();
        let dep = Deployment::full_from_iter(8, [AsId(0), AsId(1), AsId(2)]);
        for model in SecurityModel::ALL {
            let policy = Policy::new(model);
            let mut delta = AttackDeltaEngine::new(&g);
            let mut fresh = Engine::new(&g);
            delta.begin(AsId(0), &dep, policy);
            for m in 1..8u32 {
                let m = AsId(m);
                for strategy in [AttackStrategy::FakeLink, AttackStrategy::OriginHijack] {
                    let got = delta.attack(m, strategy);
                    let mut scenario = AttackScenario::attack(m, AsId(0));
                    scenario.strategy = strategy;
                    let want = fresh.compute(scenario, &dep, policy);
                    assert_outcomes_match(got, want, &g, &format!("{policy} m={m}"));
                    assert_eq!(
                        delta.count_happy(),
                        want.count_happy(),
                        "{policy} m={m} {strategy:?}: happy bounds"
                    );
                }
            }
            assert!(delta.stats().delta_attacks >= 1, "{policy}");
        }
    }

    #[test]
    fn normal_outcome_is_preserved_across_attacks() {
        let g = gadget();
        let dep = Deployment::full_from_iter(8, [AsId(0), AsId(1)]);
        let policy = Policy::new(SecurityModel::Security2nd);
        let mut delta = AttackDeltaEngine::new(&g);
        let mut fresh = Engine::new(&g);
        delta.begin(AsId(0), &dep, policy);
        let want_normal = fresh.compute(AttackScenario::normal(AsId(0)), &dep, policy);
        assert_outcomes_match(delta.normal_outcome(), want_normal, &g, "before attacks");
        for m in [4u32, 7, 3, 4] {
            delta.attack(AsId(m), AttackStrategy::FakeLink);
        }
        assert_outcomes_match(delta.normal_outcome(), want_normal, &g, "after attacks");
        assert_eq!(delta.normal_happy(), want_normal.count_happy());
    }

    #[test]
    fn cells_can_be_switched_on_one_engine() {
        let g = gadget();
        let policy = Policy::new(SecurityModel::Security1st);
        let deps = [
            Deployment::empty(8),
            Deployment::full_from_iter(8, [AsId(0), AsId(1), AsId(2), AsId(5)]),
        ];
        let mut delta = AttackDeltaEngine::new(&g);
        let mut fresh = Engine::new(&g);
        for dep in &deps {
            for d in [AsId(0), AsId(2)] {
                delta.begin(d, dep, policy);
                for m in 0..8u32 {
                    let m = AsId(m);
                    if m == d {
                        continue;
                    }
                    let got = delta.attack(m, AttackStrategy::FakeLink);
                    let want = fresh.compute(AttackScenario::attack(m, d), dep, policy);
                    assert_outcomes_match(got, want, &g, &format!("d={d} m={m}"));
                    assert_eq!(delta.count_happy(), want.count_happy(), "d={d} m={m}");
                }
            }
        }
    }

    #[test]
    fn island_behind_the_attacker_is_absorbed() {
        // 0 = d with customer 1; {2, 3} form an island reachable only via
        // the attacker 2: under normal conditions 2 and 3 are unreachable,
        // under attack they route to m. Exercises the fix-log absorption.
        let mut b = GraphBuilder::new(4);
        b.add_provider(AsId(1), AsId(0)).unwrap();
        b.add_provider(AsId(3), AsId(2)).unwrap();
        let g = b.build();
        let dep = Deployment::empty(4);
        let policy = Policy::new(SecurityModel::Security3rd);
        let mut delta = AttackDeltaEngine::new(&g);
        let mut fresh = Engine::new(&g);
        delta.begin(AsId(0), &dep, policy);
        assert!(delta.normal_outcome().route(AsId(3)).is_none());
        let got = delta.attack(AsId(2), AttackStrategy::FakeLink);
        let want = fresh.compute(AttackScenario::attack(AsId(2), AsId(0)), &dep, policy);
        assert_outcomes_match(got, want, &g, "island");
        assert!(got.flags(AsId(3)).surely_unhappy());
        assert_eq!(delta.count_happy(), want.count_happy());
        // And the island must be undone for the next attacker.
        let got = delta.attack(AsId(1), AttackStrategy::FakeLink);
        assert!(got.route(AsId(3)).is_none(), "island write leaked");
    }

    #[test]
    fn colluding_sets_match_fresh_computes() {
        let g = gadget();
        let dep = Deployment::full_from_iter(8, [AsId(0), AsId(1)]);
        let sets: [&[AsId]; 3] = [
            &[AsId(4), AsId(7)],
            &[AsId(3), AsId(6), AsId(1)],
            &[AsId(2)],
        ];
        for model in SecurityModel::ALL {
            let policy = Policy::new(model);
            let mut delta = AttackDeltaEngine::new(&g);
            let mut fresh = Engine::new(&g);
            delta.begin(AsId(0), &dep, policy);
            for set in sets {
                for strategy in [
                    AttackStrategy::FakeLink,
                    AttackStrategy::FakePath { hops: 0 },
                    AttackStrategy::FakePath { hops: 2 },
                ] {
                    let got = delta.attack_set(set, strategy);
                    let scenario = AttackScenario::colluding(set, AsId(0)).with_strategy(strategy);
                    let want = fresh.compute(scenario, &dep, policy);
                    let ctx = format!("{policy} set={set:?} {strategy:?}");
                    assert_outcomes_match(got, want, &g, &ctx);
                    assert_eq!(
                        got.attackers().collect::<Vec<_>>(),
                        set.to_vec(),
                        "{ctx}: announcer set"
                    );
                    assert_eq!(delta.count_happy(), want.count_happy(), "{ctx}: happy");
                }
            }
            // The undo after a colluding patch must leave the snapshot
            // intact for the next (single-attacker) patch.
            let got = delta.attack(AsId(5), AttackStrategy::FakeLink);
            let want = fresh.compute(AttackScenario::attack(AsId(5), AsId(0)), &dep, policy);
            assert_outcomes_match(got, want, &g, &format!("{policy} after collusion"));
        }
    }

    #[test]
    #[should_panic(expected = "attacker cannot be the destination")]
    fn attacking_the_destination_panics() {
        let g = gadget();
        let dep = Deployment::empty(8);
        let mut delta = AttackDeltaEngine::new(&g);
        delta.begin(AsId(0), &dep, Policy::new(SecurityModel::Security3rd));
        delta.attack(AsId(0), AttackStrategy::FakeLink);
    }
}
