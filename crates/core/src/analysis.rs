//! Downgrade and collateral-effect analysis (§3.2, §6, Appendix F.1).
//!
//! For one `(m, d)` pair and deployment `S`, [`PairAnalyzer::analyze`] runs
//! the engine three times —
//!
//! 1. **normal** conditions with `S` (who has secure routes before the
//!    attack),
//! 2. the attack with `S = ∅` (the origin-authentication baseline), and
//! 3. the attack with `S` —
//!
//! and classifies every source AS into the Figure 16 root-cause buckets:
//!
//! * **downgraded** — had a secure route normally, uses an insecure route
//!   during the attack (the protocol downgrade attack of §3.2);
//! * **wasted** — keeps a secure route, but would have been happy even
//!   with `S = ∅` ("secure routes given to happy nodes");
//! * **protected** — keeps a secure route and would have been unhappy in
//!   the baseline ("secure routes given to unhappy nodes");
//! * **collateral benefit** — insecurely-routed AS that is happy under `S`
//!   but was not in the baseline (§6.1.2);
//! * **collateral damage** — AS that was happy in the baseline but no
//!   longer is under `S` (§6.1.1).
//!
//! With the sure-happy (tie-break lower-bound) convention used throughout,
//! the decomposition is exact:
//!
//! ```text
//! H_lower(S) − H_lower(∅)  =  protected + collateral_benefit − collateral_damage
//! ```
//!
//! which the test suite asserts on every analyzed pair.

use std::ops::AddAssign;

use sbgp_topology::AsId;

use crate::attack::AttackScenario;
use crate::deployment::Deployment;
use crate::engine::Engine;
use crate::metric::HappyCount;
use crate::policy::Policy;

/// Root-cause counters for one `(m, d, S)` instance (or a sum of many).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PairAnalysis {
    /// Number of `(m, d)` pairs aggregated (1 for a single analysis).
    pub pairs: usize,
    /// Source ASes per pair (`|V| − 2`).
    pub sources: usize,
    /// Happy sources under the attack with `S` deployed.
    pub happy: HappyCount,
    /// Happy sources under the attack in the `S = ∅` baseline.
    pub happy_baseline: HappyCount,
    /// Sources with secure routes under normal conditions.
    pub secure_normal: usize,
    /// Sources with secure routes during the attack.
    pub secure_attack: usize,
    /// Sources that lost a secure route to the attack (downgrades).
    pub downgraded: usize,
    /// Downgrades of sources whose *normal* route may traverse the
    /// attacker — the case Theorem 3.1 explicitly exempts. Under security
    /// 1st, `downgraded == downgraded_via_attacker` always.
    pub downgraded_via_attacker: usize,
    /// Secure-during-attack sources that were already happy at `S = ∅`.
    pub wasted: usize,
    /// Secure-during-attack sources that were unhappy at `S = ∅`.
    pub protected: usize,
    /// Insecure sources made happy by others' deployment.
    pub collateral_benefit: usize,
    /// Sources made unhappy by the deployment.
    pub collateral_damage: usize,
}

impl PairAnalysis {
    /// The exact decomposition identity (lower-bound convention):
    /// `ΔH = protected + benefit − damage`.
    pub fn metric_change_identity_holds(&self) -> bool {
        let dh = self.happy.lower as i64 - self.happy_baseline.lower as i64;
        dh == self.protected as i64 + self.collateral_benefit as i64 - self.collateral_damage as i64
    }

    /// Change in the lower-bound metric versus the baseline, as a fraction
    /// of sources.
    pub fn metric_change_lower(&self) -> f64 {
        (self.happy.lower as f64 - self.happy_baseline.lower as f64) / self.sources.max(1) as f64
    }

    /// Change in the upper-bound metric versus the baseline.
    pub fn metric_change_upper(&self) -> f64 {
        (self.happy.upper as f64 - self.happy_baseline.upper as f64) / self.sources.max(1) as f64
    }

    /// Fraction of sources in a counter field, e.g.
    /// `a.fraction(a.downgraded)`.
    pub fn fraction(&self, count: usize) -> f64 {
        count as f64 / self.sources.max(1) as f64
    }
}

impl AddAssign for PairAnalysis {
    fn add_assign(&mut self, o: PairAnalysis) {
        self.pairs += o.pairs;
        self.sources += o.sources;
        self.happy += o.happy;
        self.happy_baseline += o.happy_baseline;
        self.secure_normal += o.secure_normal;
        self.secure_attack += o.secure_attack;
        self.downgraded += o.downgraded;
        self.downgraded_via_attacker += o.downgraded_via_attacker;
        self.wasted += o.wasted;
        self.protected += o.protected;
        self.collateral_benefit += o.collateral_benefit;
        self.collateral_damage += o.collateral_damage;
    }
}

/// Reusable three-run analyzer for one topology.
#[derive(Debug)]
pub struct PairAnalyzer<'g> {
    engine: Engine<'g>,
    baseline: Deployment,
    normal_secure: Vec<bool>,
    normal_via_attacker: Vec<bool>,
    base_sure_happy: Vec<bool>,
    base_may_happy: Vec<bool>,
}

impl<'g> PairAnalyzer<'g> {
    /// Create an analyzer for `graph`.
    pub fn new(graph: &'g sbgp_topology::AsGraph) -> PairAnalyzer<'g> {
        PairAnalyzer {
            engine: Engine::new(graph),
            baseline: Deployment::empty(graph.len()),
            normal_secure: Vec::new(),
            normal_via_attacker: Vec::new(),
            base_sure_happy: Vec::new(),
            base_may_happy: Vec::new(),
        }
    }

    /// Analyze attacker `m` against destination `d` under `deployment`.
    pub fn analyze(
        &mut self,
        m: AsId,
        d: AsId,
        deployment: &Deployment,
        policy: Policy,
    ) -> PairAnalysis {
        let n = self.engine.graph().len();
        let attack = AttackScenario::attack(m, d);

        // Run 1: normal conditions with S, tracking routes through m.
        {
            let o = self
                .engine
                .compute(AttackScenario::normal_marked(d, m), deployment, policy);
            self.normal_secure.clear();
            self.normal_via_attacker.clear();
            for i in 0..n {
                let v = AsId(i as u32);
                self.normal_secure.push(o.uses_secure_route(v));
                self.normal_via_attacker.push(o.may_traverse_mark(v));
            }
        }
        // Run 2: the attack at S = ∅.
        {
            let o = self.engine.compute(attack, &self.baseline, policy);
            self.base_sure_happy.clear();
            self.base_may_happy.clear();
            for i in 0..n {
                let f = o.flags(AsId(i as u32));
                self.base_sure_happy.push(f.surely_happy());
                self.base_may_happy.push(f.may_reach_destination());
            }
        }
        // Run 3: the attack with S; classify in one pass.
        let o = self.engine.compute(attack, deployment, policy);
        let mut a = PairAnalysis {
            pairs: 1,
            sources: attack.source_count(n),
            ..PairAnalysis::default()
        };
        for i in 0..n {
            let v = AsId(i as u32);
            if !o.is_source(v) {
                continue;
            }
            let flags = o.flags(v);
            let sure_happy = flags.surely_happy();
            let may_happy = flags.may_reach_destination();
            let secure = o.uses_secure_route(v);
            let base_sure = self.base_sure_happy[i];
            a.happy.lower += usize::from(sure_happy);
            a.happy.upper += usize::from(may_happy);
            a.happy_baseline.lower += usize::from(base_sure);
            a.happy_baseline.upper += usize::from(self.base_may_happy[i]);
            a.secure_normal += usize::from(self.normal_secure[i]);
            a.secure_attack += usize::from(secure);
            if self.normal_secure[i] && !secure {
                a.downgraded += 1;
                if self.normal_via_attacker[i] {
                    a.downgraded_via_attacker += 1;
                }
            }
            if secure {
                if base_sure {
                    a.wasted += 1;
                } else {
                    a.protected += 1;
                }
            } else if sure_happy && !base_sure {
                a.collateral_benefit += 1;
            }
            if base_sure && !sure_happy {
                a.collateral_damage += 1;
            }
        }
        a.happy.sources = a.sources;
        a.happy_baseline.sources = a.sources;
        debug_assert!(a.metric_change_identity_holds());
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::SecurityModel;
    use sbgp_topology::{AsGraph, GraphBuilder};

    /// Figure 2 gadget (ids as in `engine::tests`).
    fn figure2() -> AsGraph {
        let mut b = GraphBuilder::new(6);
        b.add_provider(AsId(1), AsId(0)).unwrap();
        b.add_peering(AsId(1), AsId(2)).unwrap();
        b.add_peering(AsId(0), AsId(2)).unwrap();
        b.add_provider(AsId(3), AsId(2)).unwrap();
        b.add_provider(AsId(4), AsId(3)).unwrap();
        b.add_provider(AsId(5), AsId(0)).unwrap();
        b.build()
    }

    #[test]
    fn downgrade_counted_in_sec2_but_not_sec1() {
        let g = figure2();
        let dep = Deployment::full_from_iter(6, [AsId(0), AsId(1), AsId(2)]);
        let mut an = PairAnalyzer::new(&g);

        let a2 = an.analyze(
            AsId(4),
            AsId(0),
            &dep,
            Policy::new(SecurityModel::Security2nd),
        );
        assert_eq!(a2.downgraded, 2, "both 21740 and 174 downgrade");
        assert!(a2.metric_change_identity_holds());

        let a1 = an.analyze(
            AsId(4),
            AsId(0),
            &dep,
            Policy::new(SecurityModel::Security1st),
        );
        assert_eq!(a1.downgraded, 0, "Theorem 3.1");
        // 174 keeps a secure route it actually needed: protected.
        assert!(a1.protected >= 1);
        assert!(a1.metric_change_identity_holds());
    }

    #[test]
    fn collateral_damage_example_is_detected() {
        // The engine test's collateral-damage gadget.
        let mut b = GraphBuilder::new(10);
        b.add_provider(AsId(0), AsId(1)).unwrap();
        b.add_provider(AsId(1), AsId(2)).unwrap();
        b.add_provider(AsId(2), AsId(3)).unwrap();
        b.add_provider(AsId(0), AsId(4)).unwrap();
        b.add_provider(AsId(5), AsId(3)).unwrap();
        b.add_provider(AsId(5), AsId(4)).unwrap();
        b.add_provider(AsId(6), AsId(5)).unwrap();
        b.add_provider(AsId(6), AsId(7)).unwrap();
        b.add_provider(AsId(8), AsId(7)).unwrap();
        b.add_provider(AsId(9), AsId(8)).unwrap();
        let g = b.build();
        let dep = Deployment::full_from_iter(10, [AsId(0), AsId(1), AsId(2), AsId(3), AsId(5)]);
        let mut an = PairAnalyzer::new(&g);

        let a = an.analyze(
            AsId(9),
            AsId(0),
            &dep,
            Policy::new(SecurityModel::Security2nd),
        );
        assert_eq!(a.collateral_damage, 1, "s suffers collateral damage");
        assert!(a.metric_change_identity_holds());

        // Theorem 6.1: none under security 3rd.
        let a = an.analyze(
            AsId(9),
            AsId(0),
            &dep,
            Policy::new(SecurityModel::Security3rd),
        );
        assert_eq!(a.collateral_damage, 0);
    }

    #[test]
    fn collateral_benefit_example_is_detected() {
        // Figure 15 shape: x(1) has two equal-length peer routes — to d
        // via pd(2)–w(6), to m via pm(3) — and an insecure customer child
        // c(5). Securing the d side tips x's tie-break, and c benefits.
        let mut b = GraphBuilder::new(7);
        b.add_provider(AsId(0), AsId(6)).unwrap(); // d customer of w
        b.add_provider(AsId(6), AsId(2)).unwrap(); // w customer of pd
        b.add_provider(AsId(4), AsId(3)).unwrap(); // m customer of pm
        b.add_peering(AsId(1), AsId(2)).unwrap();
        b.add_peering(AsId(1), AsId(3)).unwrap();
        b.add_provider(AsId(5), AsId(1)).unwrap(); // c buys from x
        let g = b.build();
        let mut an = PairAnalyzer::new(&g);
        let dep = Deployment::full_from_iter(7, [AsId(0), AsId(1), AsId(2), AsId(6)]);
        let a = an.analyze(
            AsId(4),
            AsId(0),
            &dep,
            Policy::new(SecurityModel::Security3rd),
        );
        // x is protected (it was mixed in the baseline: not surely happy);
        // c is a collateral beneficiary (insecure, now surely happy).
        assert_eq!(a.protected, 1);
        assert_eq!(a.collateral_benefit, 1);
        assert!(a.metric_change_identity_holds());
    }

    #[test]
    fn aggregation_adds_fields() {
        let g = figure2();
        let dep = Deployment::full_from_iter(6, [AsId(0), AsId(1), AsId(2)]);
        let mut an = PairAnalyzer::new(&g);
        let a = an.analyze(
            AsId(4),
            AsId(0),
            &dep,
            Policy::new(SecurityModel::Security2nd),
        );
        let mut sum = PairAnalysis::default();
        sum += a;
        sum += a;
        assert_eq!(sum.pairs, 2);
        assert_eq!(sum.downgraded, 2 * a.downgraded);
        assert_eq!(sum.sources, 2 * a.sources);
    }

    #[test]
    fn normal_conditions_secure_routes_counted() {
        let g = figure2();
        let dep = Deployment::full_from_iter(6, [AsId(0), AsId(1), AsId(2)]);
        let mut an = PairAnalyzer::new(&g);
        let a = an.analyze(
            AsId(4),
            AsId(0),
            &dep,
            Policy::new(SecurityModel::Security2nd),
        );
        // Under normal conditions the victim (1) and 174 (2) have secure
        // routes to d.
        assert_eq!(a.secure_normal, 2);
        // Under attack only 174... no: 174 prefers its bogus customer
        // route (LP), so it downgrades too. Both secure routes are lost.
        assert_eq!(a.downgraded, 2);
        assert_eq!(a.secure_attack, 0);
    }
}
