//! The doomed / protectable / immune partition (§4.3, Appendix E).
//!
//! For an attacker–destination pair `(m, d)` and a routing model, every
//! source AS falls into one of three classes *independent of which ASes
//! deploy S\*BGP*:
//!
//! * **doomed** — routes through `m` for every deployment `S`;
//! * **immune** — routes to `d` for every deployment `S`;
//! * **protectable** — the outcome depends on `S`.
//!
//! Averaging immune (resp. non-doomed) fractions over pairs lower- (resp.
//! upper-) bounds the metric `H_{M,D}(S)` for **all** deployments at once —
//! the paper's Figure 3–6 framework.
//!
//! Computation per model (Appendix E):
//!
//! * **security 3rd** — by Corollary E.1 the stable route's class and
//!   length are deployment-invariant, so the engine's baseline (`S = ∅`)
//!   `BPR` root-flags decide directly (all→d ⇒ immune, all→m ⇒ doomed).
//! * **security 2nd** — by Corollary E.2 only the *class* is invariant:
//!   a source is classified by whether any/all *perceivable* routes of its
//!   best class lead to `d` or `m`, which reduces to valley-free
//!   reachability predicates (customer chains up, one peer hop, provider
//!   closure down).
//! * **security 1st** — doomed iff every perceivable route contains `m`
//!   (Observation E.3: such a source is *never* happy, though under some
//!   deployments it may end up with no route at all rather than a bogus
//!   one); immune iff no perceivable route contains `m` **and** the source
//!   is *anchored* — adjacent to `d`, or below an anchored AS via a
//!   provider edge — so that a legitimate route survives every deployment
//!   (origin announcements and downward exports are unconditional, while
//!   peer/customer-learned routes can be withdrawn when the neighbor
//!   switches to a secure peer/provider route it may not re-export). This
//!   anchoring refinement is a soundness fix over the bare Observation
//!   E.4, discovered by this repo's property tests; see
//!   `tests/theorems.rs::partition_fates_are_deployment_sound`.
//!
//! The Appendix K `LPk` variants refine the security-2nd case with
//! length-resolved classes (`C(1), P(1), …, C(>k), P(>k), provider`),
//! supported here for `k ≤ 8`.

use sbgp_topology::{AsGraph, AsId};

use crate::attack::AttackScenario;
use crate::deployment::Deployment;
use crate::engine::Engine;
use crate::policy::{LpVariant, Policy, SecurityModel};

/// Deployment-independent fate of a source AS for one `(m, d)` pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fate {
    /// Routes to `d` no matter which ASes are secure.
    Immune,
    /// Outcome depends on the deployment.
    Protectable,
    /// Routes to `m` no matter which ASes are secure.
    Doomed,
    /// Has no route to either root (disconnected corner case).
    Unreachable,
}

/// Aggregated fate counts over the sources of one pair.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PartitionCounts {
    /// Immune sources.
    pub immune: usize,
    /// Protectable sources.
    pub protectable: usize,
    /// Doomed sources.
    pub doomed: usize,
    /// Unreachable sources.
    pub unreachable: usize,
}

impl PartitionCounts {
    /// Total sources counted.
    pub fn sources(&self) -> usize {
        self.immune + self.protectable + self.doomed + self.unreachable
    }

    /// Add another pair's counts (for averaging over pairs).
    pub fn add(&mut self, other: &PartitionCounts) {
        self.immune += other.immune;
        self.protectable += other.protectable;
        self.doomed += other.doomed;
        self.unreachable += other.unreachable;
    }
}

const UP_D: u8 = 1; // perceivable customer-chain route to d
const UP_M: u8 = 2;
const PEER_D: u8 = 4; // perceivable peer route to d
const PEER_M: u8 = 8;
const ANY_D: u8 = 16; // perceivable route of any class to d
const ANY_M: u8 = 32;

/// Reusable partition computer for one topology.
#[derive(Debug)]
pub struct PartitionComputer<'g> {
    graph: &'g AsGraph,
    engine: Engine<'g>,
    baseline: Deployment,
    fates: Vec<Fate>,
    reach: Vec<u8>,
    queue: Vec<AsId>,
    /// Bit `ℓ` set: customer chain of exactly `ℓ` to d / to m (LPk only).
    exact_d: Vec<u16>,
    exact_m: Vec<u16>,
    /// Customer chain of length > k to d / to m (LPk only).
    long_d: Vec<bool>,
    long_m: Vec<bool>,
}

impl<'g> PartitionComputer<'g> {
    /// Create a computer for `graph`.
    pub fn new(graph: &'g AsGraph) -> PartitionComputer<'g> {
        PartitionComputer {
            graph,
            engine: Engine::new(graph),
            baseline: Deployment::empty(graph.len()),
            fates: Vec::new(),
            reach: Vec::new(),
            queue: Vec::new(),
            exact_d: Vec::new(),
            exact_m: Vec::new(),
            long_d: Vec::new(),
            long_m: Vec::new(),
        }
    }

    /// Compute the fate of every AS for attacker `m` and destination `d`
    /// under `policy`. Entries for `m` and `d` themselves are set to
    /// [`Fate::Doomed`] / [`Fate::Immune`] and should be skipped by
    /// callers; [`PartitionComputer::counts`] does so.
    ///
    /// # Panics
    ///
    /// Panics for `LpK(k)` with `k > 8` or [`LpVariant::LpInf`] under the
    /// security-2nd model, whose class structure this implementation does
    /// not enumerate.
    pub fn compute(&mut self, m: AsId, d: AsId, policy: Policy) -> &[Fate] {
        assert_ne!(m, d, "attacker cannot be the destination");
        let n = self.graph.len();
        self.fates.clear();
        self.fates.resize(n, Fate::Unreachable);

        match policy.model {
            SecurityModel::Security3rd => self.compute_sec3(m, d, policy),
            SecurityModel::Security1st => self.compute_sec1(m, d),
            SecurityModel::Security2nd => match policy.variant {
                LpVariant::Standard => self.compute_sec2_standard(m, d),
                LpVariant::LpK(k) if k <= 8 => self.compute_sec2_lpk(m, d, k),
                other => panic!(
                    "security-2nd partitions are not defined for {other:?} in this implementation"
                ),
            },
        }

        self.fates[d.index()] = Fate::Immune;
        self.fates[m.index()] = Fate::Doomed;
        &self.fates
    }

    /// Compute and aggregate over sources (excluding `m` and `d`).
    pub fn counts(&mut self, m: AsId, d: AsId, policy: Policy) -> PartitionCounts {
        self.compute(m, d, policy);
        let mut c = PartitionCounts::default();
        for (i, &f) in self.fates.iter().enumerate() {
            let v = AsId(i as u32);
            if v == m || v == d {
                continue;
            }
            match f {
                Fate::Immune => c.immune += 1,
                Fate::Protectable => c.protectable += 1,
                Fate::Doomed => c.doomed += 1,
                Fate::Unreachable => c.unreachable += 1,
            }
        }
        c
    }

    /// The fates computed by the last `compute` call.
    pub fn fates(&self) -> &[Fate] {
        &self.fates
    }

    fn compute_sec3(&mut self, m: AsId, d: AsId, policy: Policy) {
        let outcome = self.engine.compute(
            AttackScenario::attack(m, d),
            &self.baseline,
            Policy::with_variant(SecurityModel::Security3rd, policy.variant),
        );
        for i in 0..self.fates.len() {
            let f = outcome.flags(AsId(i as u32));
            self.fates[i] = match (f.may_reach_destination(), f.may_reach_attacker()) {
                (true, false) => Fate::Immune,
                (false, true) => Fate::Doomed,
                (true, true) => Fate::Protectable,
                (false, false) => Fate::Unreachable,
            };
        }
    }

    fn compute_sec1(&mut self, m: AsId, d: AsId) {
        self.compute_reachability(m, d);
        let anchored = self.compute_anchored(m, d);
        for (i, fate) in self.fates.iter_mut().enumerate() {
            let r = self.reach[i];
            let to_d = r & ANY_D != 0;
            let to_m = r & ANY_M != 0;
            *fate = match (to_d, to_m) {
                // Immune needs a deployment-proof route; m-free sources
                // without an anchor can end up routeless (never unhappy,
                // but not guaranteed happy) — conservatively protectable.
                (true, false) if anchored[i] => Fate::Immune,
                (true, false) => Fate::Protectable,
                (false, true) => Fate::Doomed,
                (true, true) => Fate::Protectable,
                (false, false) => Fate::Unreachable,
            };
        }
    }

    /// ASes guaranteed a route under *every* deployment: neighbors of `d`
    /// (origin announcements are unconditional) and, transitively, their
    /// customers (an AS always exports its route, whatever it is, to its
    /// customers).
    fn compute_anchored(&mut self, m: AsId, d: AsId) -> Vec<bool> {
        let n = self.graph.len();
        let mut anchored = vec![false; n];
        self.queue.clear();
        for &u in self.graph.neighbors(d) {
            if u != m && !anchored[u.index()] {
                anchored[u.index()] = true;
                self.queue.push(u);
            }
        }
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            for &c in self.graph.customers(u) {
                if c != m && c != d && !anchored[c.index()] {
                    anchored[c.index()] = true;
                    self.queue.push(c);
                }
            }
        }
        anchored
    }

    fn compute_sec2_standard(&mut self, m: AsId, d: AsId) {
        self.compute_reachability(m, d);
        for i in 0..self.fates.len() {
            let r = self.reach[i];
            // Best perceivable class, in LP order.
            let pair = if r & (UP_D | UP_M) != 0 {
                (r & UP_D != 0, r & UP_M != 0)
            } else if r & (PEER_D | PEER_M) != 0 {
                (r & PEER_D != 0, r & PEER_M != 0)
            } else {
                (r & ANY_D != 0, r & ANY_M != 0)
            };
            self.fates[i] = match pair {
                (true, false) => Fate::Immune,
                (false, true) => Fate::Doomed,
                (true, true) => Fate::Protectable,
                (false, false) => Fate::Unreachable,
            };
        }
    }

    fn compute_sec2_lpk(&mut self, m: AsId, d: AsId, k: u32) {
        self.compute_reachability(m, d);
        self.compute_exact_lengths(m, d, k);
        let n = self.graph.len();
        for i in 0..n {
            let v = AsId(i as u32);
            let mut fate: Option<(bool, bool)> = None;
            // Classes C(1) P(1) ... C(k) P(k), then C(>k), P(>k), provider.
            for l in 1..=k {
                let cd = self.exact_d[i] & (1 << l) != 0;
                let cm = self.exact_m[i] & (1 << l) != 0;
                if cd || cm {
                    fate = Some((cd, cm));
                    break;
                }
                let (pd, pm) = self.peer_class_at(v, m, d, l);
                if pd || pm {
                    fate = Some((pd, pm));
                    break;
                }
            }
            if fate.is_none() {
                let (cd, cm) = (self.long_d[i], self.long_m[i]);
                if cd || cm {
                    fate = Some((cd, cm));
                } else {
                    let (pd, pm) = self.peer_long(v, m, d, k);
                    if pd || pm {
                        fate = Some((pd, pm));
                    } else {
                        let r = self.reach[i];
                        let (ad, am) = (r & ANY_D != 0, r & ANY_M != 0);
                        if ad || am {
                            fate = Some((ad, am));
                        }
                    }
                }
            }
            self.fates[i] = match fate {
                Some((true, false)) => Fate::Immune,
                Some((false, true)) => Fate::Doomed,
                Some((true, true)) => Fate::Protectable,
                Some((false, false)) | None => Fate::Unreachable,
            };
        }
    }

    /// Does `v` have a peer route of exactly length `l` to d / m?
    fn peer_class_at(&self, v: AsId, m: AsId, d: AsId, l: u32) -> (bool, bool) {
        let mut pd = false;
        let mut pm = false;
        for &u in self.graph.peers(v) {
            // Chain of length l-1 at the peer: for d, length 0 means d
            // itself; for m, the bogus announcement makes m a chain of
            // claimed length 1.
            if !pd {
                pd |= if l == 1 {
                    u == d
                } else {
                    u != m && self.exact_d[u.index()] & (1 << (l - 1)) != 0
                };
            }
            if !pm {
                pm |= if l == 2 {
                    u == m
                } else {
                    u != d && l >= 2 && self.exact_m[u.index()] & (1 << (l - 1)) != 0
                };
            }
        }
        (pd, pm)
    }

    /// Does `v` have a peer route longer than `k` to d / m?
    fn peer_long(&self, v: AsId, m: AsId, d: AsId, k: u32) -> (bool, bool) {
        let mut pd = false;
        let mut pm = false;
        for &u in self.graph.peers(v) {
            let ui = u.index();
            // Peer route length = peer's chain + 1 > k  ⇔  chain ≥ k.
            if u != m {
                pd |= self.long_d[ui] || self.exact_d[ui] & (1 << k) != 0;
            }
            if u != d {
                pm |= self.long_m[ui]
                    || (k >= 1 && self.exact_m[ui] & (1 << k) != 0)
                    || (k == 1 && u == m);
            }
        }
        (pd, pm)
    }

    /// Fill `self.reach` with the six class-reachability bits.
    fn compute_reachability(&mut self, m: AsId, d: AsId) {
        let n = self.graph.len();
        self.reach.clear();
        self.reach.resize(n, 0);

        // Customer chains up from each root (legitimate routes never
        // traverse m; bogus ones never traverse d).
        self.mark_up(d, m, UP_D);
        self.mark_up(m, d, UP_M);

        // One peer hop off a customer chain (or off the root itself).
        for i in 0..n {
            let v = AsId(i as u32);
            if v == m || v == d {
                continue;
            }
            let mut bits = 0u8;
            for &u in self.graph.peers(v) {
                if (u == d || (u != m && self.reach[u.index()] & UP_D != 0)) && bits & PEER_D == 0 {
                    bits |= PEER_D;
                }
                if (u == m || (u != d && self.reach[u.index()] & UP_M != 0)) && bits & PEER_M == 0 {
                    bits |= PEER_M;
                }
            }
            self.reach[i] |= bits;
        }

        // Provider closure: any AS below an AS with any route inherits one.
        self.mark_down(m, d, UP_D | PEER_D, ANY_D);
        self.mark_down(d, m, UP_M | PEER_M, ANY_M);
    }

    /// BFS up customer→provider edges from `root`, avoiding `skip`.
    fn mark_up(&mut self, root: AsId, skip: AsId, bit: u8) {
        self.queue.clear();
        self.queue.push(root);
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            for &p in self.graph.providers(u) {
                if p == skip || p == root {
                    continue;
                }
                if self.reach[p.index()] & bit == 0 {
                    self.reach[p.index()] |= bit;
                    self.queue.push(p);
                }
            }
        }
    }

    /// BFS down provider→customer edges from every AS holding `seed_bits`,
    /// setting `bit`; `skip` (the other root) never transits, and the
    /// destination root of the other side is excluded implicitly because
    /// roots carry no seed bits.
    fn mark_down(&mut self, skip: AsId, root: AsId, seed_bits: u8, bit: u8) {
        self.queue.clear();
        let n = self.graph.len();
        for i in 0..n {
            let v = AsId(i as u32);
            if v == skip {
                continue;
            }
            if v == root || self.reach[i] & seed_bits != 0 {
                self.reach[i] |= bit;
                self.queue.push(v);
            }
        }
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            for &c in self.graph.customers(u) {
                if c == skip || c == root {
                    continue;
                }
                if self.reach[c.index()] & bit == 0 {
                    self.reach[c.index()] |= bit;
                    self.queue.push(c);
                }
            }
        }
    }

    /// Exact-length customer-chain sets for `ℓ ≤ k` plus the `> k` closure.
    fn compute_exact_lengths(&mut self, m: AsId, d: AsId, k: u32) {
        let n = self.graph.len();
        self.exact_d.clear();
        self.exact_d.resize(n, 0);
        self.exact_m.clear();
        self.exact_m.resize(n, 0);
        self.long_d.clear();
        self.long_d.resize(n, false);
        self.long_m.clear();
        self.long_m.resize(n, false);

        // d side: chains start at claimed length 0 (the origin itself).
        self.layered_up(d, m, 0, k, true);
        // m side: the bogus announcement is a claimed chain of length 1.
        self.layered_up(m, d, 1, k, false);
    }

    /// Layered BFS up provider edges recording exact chain lengths in
    /// `exact_*` (bits `start+1 ..= k`) and the `> k` up-closure in
    /// `long_*`.
    fn layered_up(&mut self, root: AsId, skip: AsId, start: u32, k: u32, d_side: bool) {
        let mut frontier: Vec<AsId> = vec![root];
        let mut level = start;
        while level < k && !frontier.is_empty() {
            level += 1;
            let mut next: Vec<AsId> = Vec::new();
            for &u in &frontier {
                for &p in self.graph.providers(u) {
                    if p == skip || p == root {
                        continue;
                    }
                    let e = if d_side {
                        &mut self.exact_d[p.index()]
                    } else {
                        &mut self.exact_m[p.index()]
                    };
                    if *e & (1 << level) == 0 {
                        *e |= 1 << level;
                        next.push(p);
                    }
                }
            }
            frontier = next;
        }
        // frontier now holds chains of exactly length k (or the search died
        // out); everything strictly above them has a chain > k.
        self.queue.clear();
        for &u in &frontier {
            for &p in self.graph.providers(u) {
                if p == skip || p == root {
                    continue;
                }
                let long = if d_side {
                    &mut self.long_d[p.index()]
                } else {
                    &mut self.long_m[p.index()]
                };
                if !*long {
                    *long = true;
                    self.queue.push(p);
                }
            }
        }
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            for &p in self.graph.providers(u) {
                if p == skip || p == root {
                    continue;
                }
                let long = if d_side {
                    &mut self.long_d[p.index()]
                } else {
                    &mut self.long_m[p.index()]
                };
                if !*long {
                    *long = true;
                    self.queue.push(p);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbgp_topology::GraphBuilder;

    /// The Figure 2 gadget (see `engine::tests::figure2`).
    fn figure2() -> AsGraph {
        let mut b = GraphBuilder::new(6);
        b.add_provider(AsId(1), AsId(0)).unwrap();
        b.add_peering(AsId(1), AsId(2)).unwrap();
        b.add_peering(AsId(0), AsId(2)).unwrap();
        b.add_provider(AsId(3), AsId(2)).unwrap();
        b.add_provider(AsId(4), AsId(3)).unwrap();
        b.add_provider(AsId(5), AsId(0)).unwrap();
        b.build()
    }

    #[test]
    fn figure2_partitions_match_the_paper() {
        let g = figure2();
        let mut pc = PartitionComputer::new(&g);
        let (m, d) = (AsId(4), AsId(0));

        // Security 2nd and 3rd: 174 (id 2) is doomed (bogus customer route
        // beats legitimate peer route), the single-homed stub 3536 (id 5)
        // is immune; the victim 21740 (id 1) is doomed too (insecure peer
        // route beats its secure provider route).
        for model in [SecurityModel::Security2nd, SecurityModel::Security3rd] {
            let fates = pc.compute(m, d, Policy::new(model));
            assert_eq!(fates[2], Fate::Doomed, "{model}");
            assert_eq!(fates[5], Fate::Immune, "{model}");
            assert_eq!(fates[1], Fate::Doomed, "{model}");
            assert_eq!(fates[3], Fate::Doomed, "{model}: 3491 feeds the attack");
        }

        // Security 1st: 174 becomes protectable (Figure 2 discussion), and
        // so does the victim.
        let fates = pc.compute(m, d, Policy::new(SecurityModel::Security1st));
        assert_eq!(fates[2], Fate::Protectable);
        assert_eq!(fates[1], Fate::Protectable);
        assert_eq!(fates[5], Fate::Immune);
        // 3491 only reaches d through its provider 174's peer route, so it
        // is protectable as well in the security-1st sense.
        assert_eq!(fates[3], Fate::Protectable);
    }

    #[test]
    fn partition_counts_skip_roots() {
        let g = figure2();
        let mut pc = PartitionComputer::new(&g);
        let c = pc.counts(AsId(4), AsId(0), Policy::new(SecurityModel::Security3rd));
        assert_eq!(c.sources(), 4);
    }

    #[test]
    fn sec2_lp2_direct_peer_to_destination_is_immune() {
        // Appendix K: an AS with a 1-hop peer route to d is immune under
        // LP2 unless the attacker is exactly one hop away. Reuse Figure 2:
        // AS 174 (id 2) has a 1-hop peer route to d and its bogus customer
        // route is 3 hops, so it flips from doomed (standard LP) to immune.
        let g = figure2();
        let mut pc = PartitionComputer::new(&g);
        let policy = Policy::with_variant(SecurityModel::Security2nd, LpVariant::LpK(2));
        let fates = pc.compute(AsId(4), AsId(0), policy);
        assert_eq!(fates[2], Fate::Immune);
        // The victim (id 1): classes — customer none; P(1): peer 174 has
        // no chain... P(1) requires peering directly with d: no. C(1):
        // none. C(2)/P(2): peer route via 174 of length 2 to d? 174's
        // chain to d has length... 174 is not on a customer chain to d, so
        // no. Its provider route to d (length 1) makes it immune-or-better
        // only at the provider class; but the bogus P(4) route via 174
        // appears at class P(>2) first => doomed at that class? The bogus
        // peer route via 174 has length 4 (> 2) while the only d-side
        // route is the provider one, ranked lower: doomed.
        assert_eq!(fates[1], Fate::Doomed);
    }

    #[test]
    fn sec2_lp2_attacker_one_hop_away_still_wins() {
        // v peers with both d and m: P(1) has only the d route (bogus peer
        // routes start at claimed length 2) => immune. A second AS w peers
        // only with m and has a 3-hop customer chain to d: P(2) (bogus)
        // beats C(3), so w is doomed.
        let mut b = GraphBuilder::new(6);
        // v(1) peers d(0) and m(2).
        b.add_peering(AsId(1), AsId(0)).unwrap();
        b.add_peering(AsId(1), AsId(2)).unwrap();
        // w(3) peers m; chain w <- a(4) <- b(5) <- ... to d: d customer of
        // 5, 5 customer of 4, 4 customer of 3.
        b.add_peering(AsId(3), AsId(2)).unwrap();
        b.add_provider(AsId(0), AsId(5)).unwrap();
        b.add_provider(AsId(5), AsId(4)).unwrap();
        b.add_provider(AsId(4), AsId(3)).unwrap();
        let g = b.build();
        let mut pc = PartitionComputer::new(&g);
        let policy = Policy::with_variant(SecurityModel::Security2nd, LpVariant::LpK(2));
        let fates = pc.compute(AsId(2), AsId(0), policy);
        assert_eq!(fates[1], Fate::Immune, "P(1) beats the bogus P(2)");
        assert_eq!(fates[3], Fate::Doomed, "bogus P(2) beats C(3)");
    }

    #[test]
    fn sec1_uses_any_route_reachability() {
        // s(1) single-homed to m's side only: doomed even in security 1st.
        // t(3) single-homed to d: immune.
        let mut b = GraphBuilder::new(4);
        b.add_provider(AsId(1), AsId(2)).unwrap(); // s buys from m
        b.add_provider(AsId(3), AsId(0)).unwrap(); // t buys from d
        b.add_peering(AsId(0), AsId(2)).unwrap(); // d peers m
        let g = b.build();
        let mut pc = PartitionComputer::new(&g);
        let fates = pc.compute(AsId(2), AsId(0), Policy::new(SecurityModel::Security1st));
        assert_eq!(fates[1], Fate::Doomed);
        assert_eq!(fates[3], Fate::Immune);
    }

    #[test]
    fn sec1_immunity_requires_an_anchor() {
        // v(1) peers u(2); u has a customer route to d(0) (via its
        // customer w... here directly: d is u's customer) and also a peer
        // route to d? Give u both a customer route to d and a secure-able
        // peer route so a deployment can make u switch to a route it will
        // not re-export to v. v has no route to m at all — yet v is NOT
        // immune, because u's switch can leave v routeless.
        let mut b = GraphBuilder::new(5);
        b.add_provider(AsId(0), AsId(3)).unwrap(); // d customer of w
        b.add_provider(AsId(3), AsId(2)).unwrap(); // w customer of u
        b.add_peering(AsId(2), AsId(0)).unwrap(); // u peers d directly
        b.add_peering(AsId(1), AsId(2)).unwrap(); // v peers u
                                                  // attacker m(4) far away: customer of v? No — keep m isolated from
                                                  // v's perceivable routes: m is a customer of w.
        b.add_provider(AsId(4), AsId(3)).unwrap();
        let g = b.build();
        let mut pc = PartitionComputer::new(&g);
        let fates = pc.compute(AsId(4), AsId(0), Policy::new(SecurityModel::Security1st));
        // v cannot perceive any route to m (its only feed is u's customer
        // routes, and m-routes at u arrive via customer w making them
        // customer routes... so check what the computation says and assert
        // the soundness-critical part: v must NOT be immune, because u can
        // switch to its secure peer route (not exported to peer v).
        assert_ne!(fates[1], Fate::Immune, "v is not anchored");
        // u itself is adjacent to d: anchored.
        // w is d's provider: it can perceive m's bogus route via customer
        // m, so it is not immune; but v's fate is the point here.
    }

    #[test]
    fn sec1_customers_of_d_are_anchored_and_immune() {
        // Single-homed customer chain below d never loses its route.
        let mut b = GraphBuilder::new(4);
        b.add_provider(AsId(1), AsId(0)).unwrap(); // c1 buys from d
        b.add_provider(AsId(2), AsId(1)).unwrap(); // c2 buys from c1
        b.add_provider(AsId(3), AsId(2)).unwrap(); // m buys from c2!
        let g = b.build();
        let mut pc = PartitionComputer::new(&g);
        let fates = pc.compute(AsId(3), AsId(0), Policy::new(SecurityModel::Security1st));
        // c1 is anchored (customer of d) and... it CAN hear m's bogus
        // route (via customer chain c2-m), so it is protectable, not
        // immune. Its sibling... make a clean immune case: a direct
        // customer of d with no other connectivity.
        assert_eq!(fates[1], Fate::Protectable);
        // c2 hears m directly (customer) and d only via provider: also
        // protectable under sec 1st (a secure route could save it).
        assert_eq!(fates[2], Fate::Protectable);
    }

    #[test]
    fn sec1_single_homed_stub_of_d_is_immune() {
        let mut b = GraphBuilder::new(4);
        b.add_provider(AsId(1), AsId(0)).unwrap(); // stub buys from d
        b.add_peering(AsId(0), AsId(2)).unwrap(); // d peers x
        b.add_provider(AsId(3), AsId(2)).unwrap(); // m buys from x
        let g = b.build();
        let mut pc = PartitionComputer::new(&g);
        let fates = pc.compute(AsId(3), AsId(0), Policy::new(SecurityModel::Security1st));
        assert_eq!(fates[1], Fate::Immune, "single-homed stub of d");
    }

    #[test]
    fn fates_are_deployment_sound_for_sec3() {
        // Monotonicity sanity: immune ASes stay happy and doomed ASes stay
        // unhappy across a few concrete deployments.
        let g = figure2();
        let mut pc = PartitionComputer::new(&g);
        let policy = Policy::new(SecurityModel::Security3rd);
        let fates: Vec<Fate> = pc.compute(AsId(4), AsId(0), policy).to_vec();
        let mut engine = Engine::new(&g);
        let deployments = [
            Deployment::empty(6),
            Deployment::full_from_iter(6, [AsId(0), AsId(1)]),
            Deployment::full_from_iter(6, [AsId(0), AsId(1), AsId(2), AsId(3)]),
            Deployment::full_from_iter(6, (0..6).map(AsId)),
        ];
        for dep in &deployments {
            let o = engine.compute(AttackScenario::attack(AsId(4), AsId(0)), dep, policy);
            for v in g.ases() {
                if v == AsId(4) || v == AsId(0) {
                    continue;
                }
                match fates[v.index()] {
                    Fate::Immune => {
                        assert!(o.flags(v).may_reach_destination(), "{v} predicted immune")
                    }
                    Fate::Doomed => {
                        assert!(o.flags(v).may_reach_attacker(), "{v} predicted doomed")
                    }
                    _ => {}
                }
            }
        }
    }
}
