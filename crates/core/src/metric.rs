//! The security metric `H_{M,D}(S)` (§4.1).
//!
//! `H(m, d, S)` counts "happy" sources — ASes that route to the legitimate
//! destination rather than the attacker — and the metric averages the happy
//! *fraction* over a set of attackers `M` and destinations `D`:
//!
//! ```text
//! H_{M,D}(S) = 1/(|pairs| · (|V|−2)) · Σ_{m∈M} Σ_{d∈D\{m}} H(m, d, S)
//! ```
//!
//! Because the models leave the intradomain tie-break TB undetermined, every
//! count is a **pair of bounds**: the lower bound assumes a torn AS always
//! picks the bogus route, the upper bound that it always picks the
//! legitimate one (Appendix C).

use std::fmt;
use std::ops::AddAssign;

/// Happy-source counts for one pair (or a sum over pairs), with tie-break
/// bounds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HappyCount {
    /// Sources happy under every tie-break.
    pub lower: usize,
    /// Sources happy under some tie-break.
    pub upper: usize,
    /// Total sources considered.
    pub sources: usize,
}

impl HappyCount {
    /// The happy fraction as bounds.
    pub fn fraction(&self) -> Bounds {
        let n = self.sources.max(1) as f64;
        Bounds {
            lower: self.lower as f64 / n,
            upper: self.upper as f64 / n,
        }
    }
}

impl AddAssign for HappyCount {
    fn add_assign(&mut self, o: HappyCount) {
        self.lower += o.lower;
        self.upper += o.upper;
        self.sources += o.sources;
    }
}

/// A `[lower, upper]` interval on a fraction-valued quantity.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Bounds {
    /// Pessimistic tie-breaking.
    pub lower: f64,
    /// Optimistic tie-breaking.
    pub upper: f64,
}

impl Bounds {
    /// Pointwise difference `self − other` (e.g. metric improvement over
    /// the baseline; note bounds subtract crosswise is *not* done here —
    /// the paper plots `H(S) − H(∅)` bound-by-bound, as we do).
    pub fn minus(self, other: Bounds) -> Bounds {
        Bounds {
            lower: self.lower - other.lower,
            upper: self.upper - other.upper,
        }
    }

    /// Width of the interval (the tie-break uncertainty).
    pub fn width(self) -> f64 {
        self.upper - self.lower
    }

    /// Midpoint of the interval.
    pub fn mid(self) -> f64 {
        0.5 * (self.lower + self.upper)
    }
}

impl fmt::Display for Bounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.4}, {:.4}]", self.lower, self.upper)
    }
}

/// Accumulates per-pair happy fractions into the metric.
///
/// Tracks first and second moments so sampled estimates carry standard
/// errors: experiments here subsample `(m, d)` pairs where the paper
/// enumerated all of `V × V` on a supercomputer, and the standard error of
/// the mean says how much that costs.
#[derive(Clone, Copy, Debug, Default)]
pub struct MetricAccumulator {
    sum_lower: f64,
    sum_upper: f64,
    sumsq_lower: f64,
    sumsq_upper: f64,
    pairs: usize,
}

impl MetricAccumulator {
    /// Record one pair's happy count.
    pub fn add(&mut self, count: HappyCount) {
        let f = count.fraction();
        self.sum_lower += f.lower;
        self.sum_upper += f.upper;
        self.sumsq_lower += f.lower * f.lower;
        self.sumsq_upper += f.upper * f.upper;
        self.pairs += 1;
    }

    /// Merge another accumulator (for parallel reduction).
    pub fn merge(&mut self, other: MetricAccumulator) {
        self.sum_lower += other.sum_lower;
        self.sum_upper += other.sum_upper;
        self.sumsq_lower += other.sumsq_lower;
        self.sumsq_upper += other.sumsq_upper;
        self.pairs += other.pairs;
    }

    /// Number of pairs recorded.
    pub fn pairs(&self) -> usize {
        self.pairs
    }

    /// The metric `H_{M,D}(S)` as bounds.
    pub fn value(&self) -> Bounds {
        let n = self.pairs.max(1) as f64;
        Bounds {
            lower: self.sum_lower / n,
            upper: self.sum_upper / n,
        }
    }

    /// Standard error of the mean for each bound (0 when fewer than two
    /// pairs were recorded).
    pub fn stderr(&self) -> Bounds {
        if self.pairs < 2 {
            return Bounds::default();
        }
        let n = self.pairs as f64;
        let sem = |sum: f64, sumsq: f64| {
            let var = ((sumsq - sum * sum / n) / (n - 1.0)).max(0.0);
            (var / n).sqrt()
        };
        Bounds {
            lower: sem(self.sum_lower, self.sumsq_lower),
            upper: sem(self.sum_upper, self.sumsq_upper),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_and_bounds() {
        let h = HappyCount {
            lower: 6,
            upper: 8,
            sources: 10,
        };
        let b = h.fraction();
        assert_eq!(b.lower, 0.6);
        assert_eq!(b.upper, 0.8);
        assert!((b.width() - 0.2).abs() < 1e-12);
        assert!((b.mid() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn accumulator_averages_fractions() {
        let mut acc = MetricAccumulator::default();
        acc.add(HappyCount {
            lower: 5,
            upper: 5,
            sources: 10,
        });
        acc.add(HappyCount {
            lower: 10,
            upper: 10,
            sources: 10,
        });
        let v = acc.value();
        assert_eq!(acc.pairs(), 2);
        assert!((v.lower - 0.75).abs() < 1e-12);
    }

    #[test]
    fn stderr_tracks_dispersion() {
        let mut tight = MetricAccumulator::default();
        let mut loose = MetricAccumulator::default();
        for _ in 0..10 {
            tight.add(HappyCount {
                lower: 5,
                upper: 5,
                sources: 10,
            });
        }
        for i in 0..10 {
            let l = if i % 2 == 0 { 0 } else { 10 };
            loose.add(HappyCount {
                lower: l,
                upper: l,
                sources: 10,
            });
        }
        assert_eq!(tight.stderr().lower, 0.0, "constant samples");
        assert!(loose.stderr().lower > 0.1, "alternating samples");
        // Means agree even though spreads differ.
        assert!((tight.value().lower - loose.value().lower).abs() < 1e-12);
        // Fewer than two samples: no estimate.
        assert_eq!(MetricAccumulator::default().stderr(), Bounds::default());
    }

    #[test]
    fn merge_combines_partial_sums() {
        let mut a = MetricAccumulator::default();
        a.add(HappyCount {
            lower: 1,
            upper: 1,
            sources: 2,
        });
        let mut b = MetricAccumulator::default();
        b.add(HappyCount {
            lower: 2,
            upper: 2,
            sources: 2,
        });
        a.merge(b);
        assert_eq!(a.pairs(), 2);
        assert!((a.value().lower - 0.75).abs() < 1e-12);
    }

    #[test]
    fn bounds_difference_is_pointwise() {
        let a = Bounds {
            lower: 0.7,
            upper: 0.9,
        };
        let b = Bounds {
            lower: 0.6,
            upper: 0.6,
        };
        let d = a.minus(b);
        assert!((d.lower - 0.1).abs() < 1e-12);
        assert!((d.upper - 0.3).abs() < 1e-12);
    }

    #[test]
    fn happy_count_addition() {
        let mut h = HappyCount::default();
        h += HappyCount {
            lower: 1,
            upper: 2,
            sources: 3,
        };
        h += HappyCount {
            lower: 2,
            upper: 2,
            sources: 3,
        };
        assert_eq!(
            h,
            HappyCount {
                lower: 3,
                upper: 4,
                sources: 6
            }
        );
    }
}
