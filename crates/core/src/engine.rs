//! The routing-outcome engine: Appendix B's multi-stage two-rooted BFS.
//!
//! For a destination `d`, optional attacker `m`, secure set `S` and policy,
//! the engine computes the unique stable routing state (Theorem 2.1) by
//! *fixing* AS routes in preference order, exactly as the paper's
//! `Fix-Routes` algorithm does:
//!
//! * **customer stages** are breadth-first searches up customer→provider
//!   edges (the paper's FCR/FSCR);
//! * **peer stages** extend fixed customer routes across one peer edge
//!   (FPeeR/FSPeeR);
//! * **provider stages** are breadth-first searches down
//!   provider→customer edges, extending fixed routes of any class
//!   (FPrvR/FSPrvR).
//!
//! Each (class, security) pair owns a monotone *bucket queue* of fix
//! candidates keyed by route length. A security model is then just a drain
//! order:
//!
//! | Model | Drain order (standard LP) | Paper |
//! |-------|---------------------------|-------|
//! | security 1st | Cᛋ Pᛋ Prᛋ C P Pr | B.4: FSCR FSPeeR FSPrvR FCR FPeeR FPrvR |
//! | security 2nd | Cᛋ C Pᛋ P Prᛋ Pr | B.3: FSCR FCR FPeeR FSPrvR FPrvR |
//! | security 3rd | C P Pr (secure wins length ties) | B.2: FCR FPeeR FPrvR |
//!
//! (The paper's single FPeeR sweep is equivalent to draining secure peer
//! candidates before insecure ones, because peer routes never extend other
//! peer routes.) The Appendix K `LPk` variants interleave customer and peer
//! classes up to length `k` before the unbounded drains.
//!
//! When an AS is fixed, the engine rescans its eligible neighbors to find
//! *all* equally-best routes (the `BPR` set) and unions their
//! [`RootFlags`], which is what makes the tie-break-free happy bounds of
//! §4.1 exact.
//!
//! **Fused multi-cell passes.** [`Engine::compute_cells`] evaluates a
//! whole [`crate::CellSet`] of policy cells over one scenario into a
//! [`crate::MultiOutcome`] (one lane per unique cell, lane-major storage
//! with a cross-cell dirty bitset): behaviorally identical lanes — same
//! policy, or models collapsed at a validator-free deployment — share one
//! computation, and every remaining lane runs the ordinary single-cell
//! [`Engine::compute`], so fused results are bit-identical to per-cell
//! computes by construction. The incremental fused engine
//! ([`crate::FusedDeltaEngine`]) extends the same contract to the
//! attacker axis with a shared contested-region traversal.

use sbgp_topology::{AsGraph, AsId};

use crate::attack::AttackScenario;
use crate::deployment::Deployment;
use crate::outcome::{
    Outcome, RootFlags, FLAG_ROOTS, FLAG_SECURE, FLAG_VIA_MARK, KIND_CUSTOMER, KIND_ORIGIN,
    KIND_PEER, KIND_PROVIDER, KIND_UNFIXED,
};
use crate::policy::{Policy, SecurityModel};

/// Sentinel for an empty per-length chain in [`BucketQueue`].
const NO_ENTRY: u32 = u32::MAX;

/// Monotone bucket queue of fix candidates keyed by route length.
///
/// Candidates live in one flat arena of `(node, next)` links; `heads[len]`
/// chains the candidates of each length as an intrusive LIFO stack. A
/// `clear` therefore truncates two `Vec`s and never frees per-bucket
/// storage — deep graphs used to pay a `Vec<Vec<u32>>` reallocation per
/// bucket per `compute`, and pop order (LIFO within a length) is unchanged.
#[derive(Debug, Default)]
struct BucketQueue {
    /// Arena index of the most recently pushed candidate per length.
    heads: Vec<u32>,
    /// `(node, next-arena-index)` links; stale (popped) entries are
    /// reclaimed wholesale by `clear`.
    arena: Vec<(u32, u32)>,
    cursor: usize,
    size: usize,
}

impl BucketQueue {
    fn clear(&mut self) {
        self.heads.clear();
        self.arena.clear();
        self.cursor = 0;
        self.size = 0;
    }

    fn push(&mut self, len: u32, node: u32) {
        let len = len as usize;
        if len >= self.heads.len() {
            self.heads.resize(len + 1, NO_ENTRY);
        }
        let idx = self.arena.len() as u32;
        self.arena.push((node, self.heads[len]));
        self.heads[len] = idx;
        self.size += 1;
        if len < self.cursor {
            self.cursor = len;
        }
    }

    /// Smallest candidate length currently queued.
    fn peek_len(&mut self) -> Option<u32> {
        if self.size == 0 {
            return None;
        }
        while self.heads[self.cursor] == NO_ENTRY {
            self.cursor += 1;
        }
        Some(self.cursor as u32)
    }

    /// Pop a candidate with length ≤ `max_len`, lowest lengths first.
    fn pop_at_most(&mut self, max_len: u32) -> Option<(u32, u32)> {
        let len = self.peek_len()?;
        if len > max_len {
            return None;
        }
        let (node, next) = self.arena[self.heads[len as usize] as usize];
        self.heads[len as usize] = next;
        self.size -= 1;
        Some((node, len))
    }
}

/// Which candidates a drain admits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Only fully secure routes (the FS* stages).
    SecureOnly,
    /// Any route; when `tie_prefer_secure` (security 3rd), a validating AS
    /// keeps only the secure members of an equal-length `BPR` set.
    Any { tie_prefer_secure: bool },
}

/// Which neighbor class a fix candidate extends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Class {
    Customer,
    Peer,
    Provider,
}

/// Reusable routing-outcome computer for one topology.
///
/// Create one engine per worker thread; [`Engine::compute`] reuses all
/// internal buffers, so a single `(m, d, S)` evaluation on a graph with
/// `V` ASes and `E` edges costs `O(V + E)` with no allocation in the
/// steady state.
#[derive(Debug)]
pub struct Engine<'g> {
    graph: &'g AsGraph,
    outcome: Outcome,
    cust_sec: BucketQueue,
    cust_any: BucketQueue,
    peer_sec: BucketQueue,
    peer_any: BucketQueue,
    prov_sec: BucketQueue,
    prov_any: BucketQueue,
    /// Whether secure queues are in use this run (skipped for security 3rd
    /// and for the `S = ∅` baseline, where no secure route can exist).
    use_secure_queues: bool,
    /// The scenario's marked AS, if any (for route-traversal tracking).
    mark: Option<AsId>,
    /// When set, every AS fixed by this run is appended to `fix_log`. The
    /// incremental engines enable this for region solves so that ASes fixed
    /// *outside* the seeded region (possible only for ASes that were
    /// unreachable in the base outcome, e.g. an island reachable solely via
    /// the attacker's bogus announcement) are absorbed into the touched
    /// set — keeping the snapshot/undo bookkeeping exact.
    log_fixes: bool,
    fix_log: Vec<u32>,
}

impl<'g> Engine<'g> {
    /// Create an engine for `graph`.
    pub fn new(graph: &'g AsGraph) -> Engine<'g> {
        Engine {
            graph,
            outcome: Outcome::new_empty(),
            cust_sec: BucketQueue::default(),
            cust_any: BucketQueue::default(),
            peer_sec: BucketQueue::default(),
            peer_any: BucketQueue::default(),
            prov_sec: BucketQueue::default(),
            prov_any: BucketQueue::default(),
            use_secure_queues: false,
            mark: None,
            log_fixes: false,
            fix_log: Vec::new(),
        }
    }

    /// The topology this engine runs on.
    pub fn graph(&self) -> &'g AsGraph {
        self.graph
    }

    /// Compute the stable routing outcome for `scenario` under `deployment`
    /// and `policy`. The returned outcome borrows the engine and is valid
    /// until the next `compute` call.
    pub fn compute(
        &mut self,
        scenario: AttackScenario,
        deployment: &Deployment,
        policy: Policy,
    ) -> &Outcome {
        self.begin(scenario, deployment, policy);
        self.outcome.reset(
            self.graph.len(),
            scenario.destination,
            scenario.attacker_array(),
        );

        // Roots. The destination announces at depth 0; every announcer's
        // forged path makes it a root of the (multi-root) bogus tree at
        // the strategy's claimed depth (§3.1 generalized — the fake link
        // is depth 1, a k-hop forged path depth k).
        let d = scenario.destination;
        self.fix_root(
            d,
            0,
            deployment.signs_origin(d),
            RootFlags::TO_D,
            deployment,
        );
        for m in scenario.attackers() {
            self.fix_root(
                m,
                scenario.strategy.root_depth(),
                false,
                RootFlags::TO_M,
                deployment,
            );
        }

        self.run_schedule(policy, deployment);
        &self.outcome
    }

    /// Compute the stable outcomes of a whole *set* of policy cells over
    /// one `(destination, announcers, deployment)` scenario in a single
    /// fused pass, filling one [`MultiOutcome`] lane per unique cell of
    /// `cells` (see [`crate::CellSet`] for the input→lane mapping).
    ///
    /// Lanes that are behaviorally identical under this deployment share
    /// one computation: at `deployment.full_count() == 0` no secure offer
    /// can ever be assembled and the preference order ignores the security
    /// model, so lanes differing only in their model collapse onto their
    /// group's representative (and with no announcers, the strategy is
    /// moot too). Every remaining lane is served by the ordinary
    /// single-cell [`Engine::compute`], so each lane is bit-identical to a
    /// dedicated compute of that cell — the per-lane fallback exactness
    /// contract the fused incremental engines
    /// ([`crate::FusedDeltaEngine`]) also guarantee.
    ///
    /// With an empty `attackers` slice the scenario is normal conditions.
    pub fn compute_cells(
        &mut self,
        destination: AsId,
        attackers: &[AsId],
        deployment: &Deployment,
        cells: &crate::CellSet,
        out: &mut crate::MultiOutcome,
    ) {
        let collapse = deployment.full_count() == 0;
        let lanes = cells.lanes();
        out.reset_lanes(lanes.len());
        for (j, cell) in lanes.iter().enumerate() {
            let twin = (0..j).find(|&i| {
                let c = lanes[i];
                (c.policy == cell.policy || (collapse && c.policy.variant == cell.policy.variant))
                    && (attackers.is_empty() || c.strategy == cell.strategy)
            });
            if let Some(i) = twin {
                out.share_lane(i, j);
                continue;
            }
            let scenario = if attackers.is_empty() {
                AttackScenario::normal(destination)
            } else {
                AttackScenario::colluding(attackers, destination).with_strategy(cell.strategy)
            };
            self.compute(scenario, deployment, cell.policy);
            let happy = self.outcome.count_happy();
            out.set_lane(j, &self.outcome, happy);
        }
        out.rebuild_dirty();
    }

    /// Validate inputs and reset the per-run machinery (queues, secure-queue
    /// gating, mark) *without* touching the outcome buffers. `compute` calls
    /// this before resetting the outcome; [`crate::SweepEngine`] calls it
    /// before re-fixing only a dirty sub-region of a previous outcome.
    pub(crate) fn begin(
        &mut self,
        scenario: AttackScenario,
        deployment: &Deployment,
        policy: Policy,
    ) {
        let n = self.graph.len();
        assert_eq!(
            deployment.universe(),
            n,
            "deployment universe must match the graph"
        );
        assert!(scenario.destination.index() < n, "destination out of range");
        for m in scenario.attackers() {
            assert!(m.index() < n, "attacker out of range");
        }
        for q in [
            &mut self.cust_sec,
            &mut self.cust_any,
            &mut self.peer_sec,
            &mut self.peer_any,
            &mut self.prov_sec,
            &mut self.prov_any,
        ] {
            q.clear();
        }
        self.use_secure_queues =
            policy.model != SecurityModel::Security3rd && !deployment.is_baseline();
        self.mark = scenario.mark;
        self.log_fixes = false;
        self.fix_log.clear();
    }

    /// Record every subsequently fixed AS in the fix log (cleared by
    /// [`Engine::begin`]). Region solvers use the log to detect fixes that
    /// landed outside their seeded region.
    pub(crate) fn enable_fix_log(&mut self) {
        self.log_fixes = true;
    }

    /// The ASes fixed since the last [`Engine::begin`], in fix order (only
    /// populated after [`Engine::enable_fix_log`]).
    pub(crate) fn fix_log(&self) -> &[u32] {
        &self.fix_log
    }

    /// Drain every queue in the model's stage order (Appendix B). All fix
    /// candidates must already be enqueued — by the root fixes in `compute`,
    /// or by boundary seeding in an incremental sweep step.
    pub(crate) fn run_schedule(&mut self, policy: Policy, deployment: &Deployment) {
        let k = policy.variant.interleave_depth();
        match policy.model {
            SecurityModel::Security1st => {
                // Secure phase: every fully-secure class first (B.4).
                self.interleave(
                    k,
                    &[
                        (Class::Customer, Mode::SecureOnly),
                        (Class::Peer, Mode::SecureOnly),
                    ],
                    deployment,
                );
                self.drain(Class::Customer, Mode::SecureOnly, u32::MAX, deployment);
                self.drain(Class::Peer, Mode::SecureOnly, u32::MAX, deployment);
                self.drain(Class::Provider, Mode::SecureOnly, u32::MAX, deployment);
                // Insecure phase.
                let any = Mode::Any {
                    tie_prefer_secure: false,
                };
                self.interleave(k, &[(Class::Customer, any), (Class::Peer, any)], deployment);
                self.drain(Class::Customer, any, u32::MAX, deployment);
                self.drain(Class::Peer, any, u32::MAX, deployment);
                self.drain(Class::Provider, any, u32::MAX, deployment);
            }
            SecurityModel::Security2nd => {
                // Within every LP class: secure first, then the rest (B.3).
                let any = Mode::Any {
                    tie_prefer_secure: false,
                };
                self.interleave(
                    k,
                    &[
                        (Class::Customer, Mode::SecureOnly),
                        (Class::Customer, any),
                        (Class::Peer, Mode::SecureOnly),
                        (Class::Peer, any),
                    ],
                    deployment,
                );
                self.drain(Class::Customer, Mode::SecureOnly, u32::MAX, deployment);
                self.drain(Class::Customer, any, u32::MAX, deployment);
                self.drain(Class::Peer, Mode::SecureOnly, u32::MAX, deployment);
                self.drain(Class::Peer, any, u32::MAX, deployment);
                self.drain(Class::Provider, Mode::SecureOnly, u32::MAX, deployment);
                self.drain(Class::Provider, any, u32::MAX, deployment);
            }
            SecurityModel::Security3rd => {
                // One pass per class; security only breaks length ties (B.2).
                let tie = Mode::Any {
                    tie_prefer_secure: true,
                };
                self.interleave(k, &[(Class::Customer, tie), (Class::Peer, tie)], deployment);
                self.drain(Class::Customer, tie, u32::MAX, deployment);
                self.drain(Class::Peer, tie, u32::MAX, deployment);
                self.drain(Class::Provider, tie, u32::MAX, deployment);
            }
        }
    }

    /// Read access to the last computed outcome.
    pub fn outcome(&self) -> &Outcome {
        &self.outcome
    }

    /// Mutable access to the outcome buffers, for [`crate::SweepEngine`]'s
    /// partial resets.
    pub(crate) fn outcome_mut(&mut self) -> &mut Outcome {
        &mut self.outcome
    }

    pub(crate) fn fix_root(
        &mut self,
        v: AsId,
        len: u32,
        secure: bool,
        flags: RootFlags,
        deployment: &Deployment,
    ) {
        let i = v.index();
        self.outcome
            .set_fixed(i, KIND_ORIGIN, len, secure, flags.0, self.mark == Some(v));
        if self.log_fixes {
            self.fix_log.push(v.0);
        }
        self.push_from_fixed(v, deployment);
    }

    /// Enqueue fix candidates created by `v` having just been fixed.
    fn push_from_fixed(&mut self, v: AsId, deployment: &Deployment) {
        let i = v.index();
        let len = self.outcome.len[i];
        let secure = self.outcome.secure_at(i);
        let kind = self.outcome.kind[i];
        let next = len + 1;

        // Customer-class routes only extend customer-or-origin routes, and
        // the same holds for the single peer hop (export rule Ex).
        if kind == KIND_ORIGIN || kind == KIND_CUSTOMER {
            for &p in self.graph.providers(v) {
                if self.outcome.kind[p.index()] == KIND_UNFIXED {
                    self.cust_any.push(next, p.0);
                    if self.use_secure_queues && secure && deployment.validates(p) {
                        self.cust_sec.push(next, p.0);
                    }
                }
            }
            for &q in self.graph.peers(v) {
                if self.outcome.kind[q.index()] == KIND_UNFIXED {
                    self.peer_any.push(next, q.0);
                    if self.use_secure_queues && secure && deployment.validates(q) {
                        self.peer_sec.push(next, q.0);
                    }
                }
            }
        }
        // Provider-class routes extend a route of any class.
        for &c in self.graph.customers(v) {
            if self.outcome.kind[c.index()] == KIND_UNFIXED {
                self.prov_any.push(next, c.0);
                if self.use_secure_queues && secure && deployment.validates(c) {
                    self.prov_sec.push(next, c.0);
                }
            }
        }
    }

    /// Enqueue fix candidates for the unfixed AS `v` from every *fixed*
    /// neighbor outside `region` — the incremental-sweep dual of
    /// [`Engine::push_from_fixed`]. Neighbors inside `region` are skipped:
    /// either they are re-fixed roots (whose own `push_from_fixed` already
    /// ran) or they will push to `v` when the schedule fixes them.
    pub(crate) fn seed_from_boundary(
        &mut self,
        v: AsId,
        region: &sbgp_topology::AsSet,
        deployment: &Deployment,
    ) {
        let validating = deployment.validates(v);
        // Customer- and peer-class routes may only extend what the neighbor
        // exports upward/sideways: its origin announcement or a customer
        // route (Ex) — the same admission rule `try_fix` rescans with.
        for &u in self.graph.customers(v) {
            let ui = u.index();
            let ukind = self.outcome.kind[ui];
            if region.contains(u) || (ukind != KIND_ORIGIN && ukind != KIND_CUSTOMER) {
                continue;
            }
            let next = self.outcome.len[ui] + 1;
            self.cust_any.push(next, v.0);
            if self.use_secure_queues && self.outcome.secure_at(ui) && validating {
                self.cust_sec.push(next, v.0);
            }
        }
        for &u in self.graph.peers(v) {
            let ui = u.index();
            let ukind = self.outcome.kind[ui];
            if region.contains(u) || (ukind != KIND_ORIGIN && ukind != KIND_CUSTOMER) {
                continue;
            }
            let next = self.outcome.len[ui] + 1;
            self.peer_any.push(next, v.0);
            if self.use_secure_queues && self.outcome.secure_at(ui) && validating {
                self.peer_sec.push(next, v.0);
            }
        }
        for &u in self.graph.providers(v) {
            let ui = u.index();
            if region.contains(u) || self.outcome.kind[ui] == KIND_UNFIXED {
                continue;
            }
            let next = self.outcome.len[ui] + 1;
            self.prov_any.push(next, v.0);
            if self.use_secure_queues && self.outcome.secure_at(ui) && validating {
                self.prov_sec.push(next, v.0);
            }
        }
    }

    /// Interleaved LPk prefix: process classes C(1) P(1) C(2) P(2) … up to
    /// length `k`, honoring the given per-class (class, mode) order within
    /// each length level.
    fn interleave(&mut self, k: u32, order: &[(Class, Mode)], deployment: &Deployment) {
        if k == 0 {
            return;
        }
        loop {
            // The next level is the smallest candidate length across the
            // queues that participate in this phase.
            let mut level: Option<u32> = None;
            for &(class, mode) in order {
                let l = self.queue_mut(class, mode).peek_len();
                level = match (level, l) {
                    (None, l) => l,
                    (Some(a), None) => Some(a),
                    (Some(a), Some(b)) => Some(a.min(b)),
                };
            }
            let Some(level) = level else { break };
            if level > k {
                break;
            }
            for &(class, mode) in order {
                self.drain(class, mode, level, deployment);
            }
        }
    }

    fn queue_mut(&mut self, class: Class, mode: Mode) -> &mut BucketQueue {
        let secure = matches!(mode, Mode::SecureOnly);
        match (class, secure) {
            (Class::Customer, true) => &mut self.cust_sec,
            (Class::Customer, false) => &mut self.cust_any,
            (Class::Peer, true) => &mut self.peer_sec,
            (Class::Peer, false) => &mut self.peer_any,
            (Class::Provider, true) => &mut self.prov_sec,
            (Class::Provider, false) => &mut self.prov_any,
        }
    }

    /// Drain one (class, mode) queue up to `max_len`, fixing ASes in
    /// ascending route-length order.
    fn drain(&mut self, class: Class, mode: Mode, max_len: u32, deployment: &Deployment) {
        while let Some((node, len)) = self.queue_mut(class, mode).pop_at_most(max_len) {
            self.try_fix(AsId(node), len, class, mode, deployment);
        }
    }

    /// Attempt to fix `v` at route length `len` in the given class/mode, by
    /// rescanning its eligible neighbors to build the exact `BPR` set.
    fn try_fix(&mut self, v: AsId, len: u32, class: Class, mode: Mode, deployment: &Deployment) {
        let i = v.index();
        if self.outcome.kind[i] != KIND_UNFIXED {
            return; // Stale candidate: already fixed by a better class.
        }
        let validating = deployment.validates(v);
        let want_len = len - 1;

        let neighbors = match class {
            Class::Customer => self.graph.customers(v),
            Class::Peer => self.graph.peers(v),
            Class::Provider => self.graph.providers(v),
        };

        let mut flags_any: u8 = 0;
        let mut flags_secure: u8 = 0;
        let mut via_any = false;
        let mut via_secure = false;
        let mut n_any = 0usize;
        let mut n_secure = 0usize;
        let mut hop_any = u32::MAX;
        let mut hop_secure = u32::MAX;
        for &u in neighbors {
            let ui = u.index();
            let ukind = self.outcome.kind[ui];
            if ukind == KIND_UNFIXED || self.outcome.len[ui] != want_len {
                continue;
            }
            // Customer and peer routes can only extend a route the neighbor
            // may export upward/sideways: its own origin announcement or a
            // customer route (Ex). Provider routes extend anything.
            if class != Class::Provider && ukind != KIND_ORIGIN && ukind != KIND_CUSTOMER {
                continue;
            }
            // One byte carries the neighbor's root flags, security bit and
            // mark bit — a single cache stream in this inner rescan loop.
            let packed = self.outcome.packed_flags(ui);
            let ext_secure = packed & FLAG_SECURE != 0 && validating;
            if let Mode::SecureOnly = mode {
                if !ext_secure {
                    continue;
                }
            }
            n_any += 1;
            flags_any |= packed & FLAG_ROOTS;
            via_any |= packed & FLAG_VIA_MARK != 0;
            hop_any = hop_any.min(u.0);
            if ext_secure {
                n_secure += 1;
                flags_secure |= packed & FLAG_ROOTS;
                via_secure |= packed & FLAG_VIA_MARK != 0;
                hop_secure = hop_secure.min(u.0);
            }
        }
        if n_any == 0 {
            return; // Stale candidate: its suffix was outcompeted.
        }

        let (flags, secure, via, hop) = match mode {
            Mode::SecureOnly => (flags_secure, true, via_secure, hop_secure),
            Mode::Any { tie_prefer_secure } => {
                if tie_prefer_secure && n_secure > 0 {
                    // Security 3rd: secure routes win the length tie.
                    (flags_secure, true, via_secure, hop_secure)
                } else {
                    // All equally-best routes form the BPR set; they are
                    // all secure only when every candidate extension is.
                    (flags_any, n_secure == n_any, via_any, hop_any)
                }
            }
        };

        let kind = match class {
            Class::Customer => KIND_CUSTOMER,
            Class::Peer => KIND_PEER,
            Class::Provider => KIND_PROVIDER,
        };
        self.outcome
            .set_fixed(i, kind, len, secure, flags, via || self.mark == Some(v));
        self.outcome.next_hop[i] = hop;
        debug_assert!(
            !secure || flags == RootFlags::TO_D.0,
            "secure routes cannot reach the attacker"
        );
        if self.log_fixes {
            self.fix_log.push(v.0);
        }
        self.push_from_fixed(v, deployment);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::AttackStrategy;
    use crate::policy::LpVariant;
    use sbgp_topology::GraphBuilder;

    fn sec(model: SecurityModel) -> Policy {
        Policy::new(model)
    }

    /// d(0) has provider p(1); p has provider t(2); d also has a stub
    /// customer c(3); t peers with q(4), q is provider of e(5).
    fn chain() -> AsGraph {
        let mut b = GraphBuilder::new(6);
        b.add_provider(AsId(0), AsId(1)).unwrap();
        b.add_provider(AsId(1), AsId(2)).unwrap();
        b.add_provider(AsId(3), AsId(0)).unwrap();
        b.add_peering(AsId(2), AsId(4)).unwrap();
        b.add_provider(AsId(5), AsId(4)).unwrap();
        b.build()
    }

    #[test]
    fn baseline_routing_classes_and_lengths() {
        let g = chain();
        let dep = Deployment::empty(g.len());
        let mut e = Engine::new(&g);
        let o = e.compute(
            AttackScenario::normal(AsId(0)),
            &dep,
            sec(SecurityModel::Security3rd),
        );

        // p learns d as a customer route of length 1.
        let p = o.route(AsId(1)).unwrap();
        assert_eq!(p.class, crate::RouteClass::Customer);
        assert_eq!(p.length, 1);
        assert!(!p.secure);
        // t: customer route of length 2.
        assert_eq!(o.route(AsId(2)).unwrap().length, 2);
        // c is d's customer: provider route of length 1.
        let c = o.route(AsId(3)).unwrap();
        assert_eq!(c.class, crate::RouteClass::Provider);
        assert_eq!(c.length, 1);
        // q: peer route of length 3 via t.
        let q = o.route(AsId(4)).unwrap();
        assert_eq!(q.class, crate::RouteClass::Peer);
        assert_eq!(q.length, 3);
        // e: provider route of length 4 via q.
        let e5 = o.route(AsId(5)).unwrap();
        assert_eq!(e5.class, crate::RouteClass::Provider);
        assert_eq!(e5.length, 4);
        // Everyone is happy: no attacker.
        let (lo, hi) = o.count_happy();
        assert_eq!((lo, hi), (5, 5));
    }

    #[test]
    fn export_rule_blocks_peer_to_peer_transit() {
        // d(0) peers with a(1); a peers with b(2). b must NOT reach d via
        // a (peer routes are not exported to peers).
        let mut g = GraphBuilder::new(3);
        g.add_peering(AsId(0), AsId(1)).unwrap();
        g.add_peering(AsId(1), AsId(2)).unwrap();
        let g = g.build();
        let dep = Deployment::empty(3);
        let mut e = Engine::new(&g);
        let o = e.compute(
            AttackScenario::normal(AsId(0)),
            &dep,
            sec(SecurityModel::Security3rd),
        );
        assert!(o.route(AsId(1)).is_some());
        assert!(o.route(AsId(2)).is_none(), "valley-free export violated");
    }

    #[test]
    fn customer_route_preferred_over_shorter_peer_and_provider() {
        // v(3) can reach d(0) three ways: via customer c(1) (length 3: a
        // detour), via peer q(2) (length 2), via provider... keep it to two
        // for clarity: LP must pick the customer route despite the length.
        let mut b = GraphBuilder::new(5);
        // chain d(0) <- x(4) <- c(1): c has customer route of length 2.
        b.add_provider(AsId(0), AsId(4)).unwrap();
        b.add_provider(AsId(4), AsId(1)).unwrap();
        // c is v's customer.
        b.add_provider(AsId(1), AsId(3)).unwrap();
        // q peers with v; q has customer route to d of length 1.
        b.add_provider(AsId(0), AsId(2)).unwrap();
        b.add_peering(AsId(2), AsId(3)).unwrap();
        let g = b.build();
        let dep = Deployment::empty(5);
        let mut e = Engine::new(&g);
        let o = e.compute(
            AttackScenario::normal(AsId(0)),
            &dep,
            sec(SecurityModel::Security3rd),
        );
        let v = o.route(AsId(3)).unwrap();
        assert_eq!(v.class, crate::RouteClass::Customer);
        assert_eq!(v.length, 3);
    }

    /// The Figure 2 protocol-downgrade gadget.
    ///
    /// ids: 0 = d (Tier-1 "Level3 3356"), 1 = victim stub "21740",
    /// 2 = "174" (peer of both), 3 = "3491", 4 = m, 5 = stub "3536".
    fn figure2() -> AsGraph {
        let mut b = GraphBuilder::new(6);
        b.add_provider(AsId(1), AsId(0)).unwrap(); // 21740 buys from 3356
        b.add_peering(AsId(1), AsId(2)).unwrap(); // 21740 peers 174
        b.add_peering(AsId(0), AsId(2)).unwrap(); // 3356 peers 174
        b.add_provider(AsId(3), AsId(2)).unwrap(); // 3491 buys from 174
        b.add_provider(AsId(4), AsId(3)).unwrap(); // m buys from 3491
        b.add_provider(AsId(5), AsId(0)).unwrap(); // 3536 buys from 3356
        b.build()
    }

    #[test]
    fn figure2_protocol_downgrade_in_security_2nd_and_3rd() {
        let g = figure2();
        // Secure: d and the victim (and 174, which doesn't help it).
        let dep = Deployment::full_from_iter(6, [AsId(0), AsId(1), AsId(2)]);
        let mut e = Engine::new(&g);

        for model in [SecurityModel::Security2nd, SecurityModel::Security3rd] {
            // Normal conditions: the victim uses its secure provider route.
            let o = e.compute(AttackScenario::normal(AsId(0)), &dep, sec(model));
            let v = o.route(AsId(1)).unwrap();
            assert!(v.secure, "{model}: victim secure before attack");
            assert_eq!(v.length, 1);

            // Under attack: m's bogus customer chain reaches 174, which
            // exports it to its peer; the victim prefers the insecure peer
            // route (LP) and downgrades.
            let o = e.compute(AttackScenario::attack(AsId(4), AsId(0)), &dep, sec(model));
            let v = o.route(AsId(1)).unwrap();
            assert!(!v.secure, "{model}: victim downgraded");
            assert_eq!(v.class, crate::RouteClass::Peer);
            assert_eq!(v.length, 4);
            assert!(v.flags.surely_unhappy(), "{model}: victim routes to m");
            // 174 is doomed: bogus customer route beats legitimate peer.
            assert!(o.flags(AsId(2)).surely_unhappy(), "{model}: 174 doomed");
            // The single-homed stub is immune.
            assert!(o.flags(AsId(5)).surely_happy(), "{model}: 3536 immune");
        }
    }

    #[test]
    fn figure2_security_first_resists_downgrade() {
        let g = figure2();
        let dep = Deployment::full_from_iter(6, [AsId(0), AsId(1), AsId(2)]);
        let mut e = Engine::new(&g);
        let o = e.compute(
            AttackScenario::attack(AsId(4), AsId(0)),
            &dep,
            sec(SecurityModel::Security1st),
        );
        // Theorem 3.1: the victim keeps its secure route.
        let v = o.route(AsId(1)).unwrap();
        assert!(v.secure);
        assert!(v.flags.surely_happy());
        assert_eq!(v.length, 1);
        // 174 is now protectable and indeed protected (secure peer route).
        let r174 = o.route(AsId(2)).unwrap();
        assert!(r174.secure);
        assert!(r174.flags.surely_happy());
    }

    #[test]
    fn bogus_route_length_counts_the_fake_edge() {
        // m's neighbor sees "m, d": length 2.
        let mut b = GraphBuilder::new(3);
        b.add_provider(AsId(1), AsId(0)).unwrap(); // s buys from d... no:
        let _ = b; // rebuild cleanly below.
        let mut b = GraphBuilder::new(3);
        b.add_provider(AsId(2), AsId(1)).unwrap(); // m is customer of s(1)
        b.add_provider(AsId(1), AsId(0)).unwrap(); // s is customer of d(0)
        let g = b.build();
        let dep = Deployment::empty(3);
        let mut e = Engine::new(&g);
        let o = e.compute(
            AttackScenario::attack(AsId(2), AsId(0)),
            &dep,
            sec(SecurityModel::Security3rd),
        );
        // s has a provider route to d of length 1, and a customer route to
        // m of claimed length 2. LP prefers the customer route to m.
        let s = o.route(AsId(1)).unwrap();
        assert_eq!(s.class, crate::RouteClass::Customer);
        assert_eq!(s.length, 2);
        assert!(s.flags.surely_unhappy());
    }

    #[test]
    fn mixed_flags_on_equal_insecure_routes() {
        // s(1) has two peers: pd(2) with a 2-hop customer route to d(0)
        // via x(5), and pm(3) with a claimed-2-hop customer route to m(4).
        // Both peer routes are length 3 from s: a genuine tie.
        let mut b = GraphBuilder::new(6);
        b.add_provider(AsId(0), AsId(5)).unwrap(); // d customer of x
        b.add_provider(AsId(5), AsId(2)).unwrap(); // x customer of pd
        b.add_provider(AsId(4), AsId(3)).unwrap(); // m customer of pm
        b.add_peering(AsId(1), AsId(2)).unwrap();
        b.add_peering(AsId(1), AsId(3)).unwrap();
        let g = b.build();
        let dep = Deployment::empty(6);
        let mut e = Engine::new(&g);
        let o = e.compute(
            AttackScenario::attack(AsId(4), AsId(0)),
            &dep,
            sec(SecurityModel::Security3rd),
        );
        let s = o.route(AsId(1)).unwrap();
        assert_eq!(s.flags, RootFlags::MIXED);
        assert_eq!(s.length, 3);
        let (lo, hi) = o.count_happy();
        // Sources: 1, 2, 3, 5. pd, x are happy; pm is unhappy; s is mixed.
        assert_eq!((lo, hi), (2, 3));
    }

    #[test]
    fn security_3rd_breaks_ties_toward_secure_routes() {
        // Same topology; make the d-side path secure.
        let mut b = GraphBuilder::new(6);
        b.add_provider(AsId(0), AsId(5)).unwrap();
        b.add_provider(AsId(5), AsId(2)).unwrap();
        b.add_provider(AsId(4), AsId(3)).unwrap();
        b.add_peering(AsId(1), AsId(2)).unwrap();
        b.add_peering(AsId(1), AsId(3)).unwrap();
        let g = b.build();
        let dep = Deployment::full_from_iter(6, [AsId(0), AsId(1), AsId(2), AsId(5)]);
        let mut e = Engine::new(&g);
        let o = e.compute(
            AttackScenario::attack(AsId(4), AsId(0)),
            &dep,
            sec(SecurityModel::Security3rd),
        );
        let s = o.route(AsId(1)).unwrap();
        assert!(s.secure);
        assert!(s.flags.surely_happy());
    }

    #[test]
    fn simplex_destination_supports_secure_routes() {
        // d(0) is a simplex stub; its provider p(1) and p's provider t(2)
        // run full S*BGP. t must see a secure route.
        let mut b = GraphBuilder::new(3);
        b.add_provider(AsId(0), AsId(1)).unwrap();
        b.add_provider(AsId(1), AsId(2)).unwrap();
        let g = b.build();
        let mut dep = Deployment::empty(3);
        dep.insert_simplex(AsId(0));
        dep.insert_full(AsId(1));
        dep.insert_full(AsId(2));
        let mut e = Engine::new(&g);
        let o = e.compute(
            AttackScenario::normal(AsId(0)),
            &dep,
            sec(SecurityModel::Security2nd),
        );
        assert!(o.route(AsId(1)).unwrap().secure);
        assert!(o.route(AsId(2)).unwrap().secure);
    }

    #[test]
    fn simplex_source_does_not_validate() {
        // Same chain, but the top AS is simplex: its route is insecure
        // from its own perspective.
        let mut b = GraphBuilder::new(3);
        b.add_provider(AsId(0), AsId(1)).unwrap();
        b.add_provider(AsId(1), AsId(2)).unwrap();
        let g = b.build();
        let mut dep = Deployment::empty(3);
        dep.insert_full(AsId(0));
        dep.insert_full(AsId(1));
        dep.insert_simplex(AsId(2));
        let mut e = Engine::new(&g);
        let o = e.compute(
            AttackScenario::normal(AsId(0)),
            &dep,
            sec(SecurityModel::Security2nd),
        );
        assert!(o.route(AsId(1)).unwrap().secure);
        assert!(!o.route(AsId(2)).unwrap().secure);
    }

    #[test]
    fn security_2nd_prefers_longer_secure_route_within_class() {
        // v(1) has two providers: pa(2) with an insecure route of length 1,
        // pb(3) with a secure route of length 2 (via t(4), all secure).
        let mut b = GraphBuilder::new(5);
        b.add_provider(AsId(0), AsId(2)).unwrap(); // d customer of pa
        b.add_provider(AsId(0), AsId(4)).unwrap(); // d customer of t
        b.add_provider(AsId(4), AsId(3)).unwrap(); // t customer of pb
        b.add_provider(AsId(1), AsId(2)).unwrap();
        b.add_provider(AsId(1), AsId(3)).unwrap();
        let g = b.build();
        let dep = Deployment::full_from_iter(5, [AsId(0), AsId(1), AsId(3), AsId(4)]);
        let mut e = Engine::new(&g);
        // Security 2nd: v picks the secure provider route (longer).
        let o = e.compute(
            AttackScenario::normal(AsId(0)),
            &dep,
            sec(SecurityModel::Security2nd),
        );
        let v = o.route(AsId(1)).unwrap();
        assert!(v.secure);
        assert_eq!(v.length, 3);
        // Security 3rd: v picks the shorter insecure route.
        let o = e.compute(
            AttackScenario::normal(AsId(0)),
            &dep,
            sec(SecurityModel::Security3rd),
        );
        let v = o.route(AsId(1)).unwrap();
        assert!(!v.secure);
        assert_eq!(v.length, 2);
    }

    #[test]
    fn lp2_prefers_short_peer_over_long_customer() {
        // v(1): customer route of length 3 (via c(2) -> x(3) -> d(0)) and a
        // peer route of length 1 (peers with d).
        let mut b = GraphBuilder::new(4);
        b.add_provider(AsId(0), AsId(3)).unwrap();
        b.add_provider(AsId(3), AsId(2)).unwrap();
        b.add_provider(AsId(2), AsId(1)).unwrap();
        b.add_peering(AsId(1), AsId(0)).unwrap();
        let g = b.build();
        let dep = Deployment::empty(4);
        let mut e = Engine::new(&g);

        // Standard LP: customer wins.
        let o = e.compute(
            AttackScenario::normal(AsId(0)),
            &dep,
            sec(SecurityModel::Security3rd),
        );
        assert_eq!(o.route(AsId(1)).unwrap().class, crate::RouteClass::Customer);

        // LP2: the 1-hop peer route wins.
        let lp2 = Policy::with_variant(SecurityModel::Security3rd, LpVariant::LpK(2));
        let o = e.compute(AttackScenario::normal(AsId(0)), &dep, lp2);
        let v = o.route(AsId(1)).unwrap();
        assert_eq!(v.class, crate::RouteClass::Peer);
        assert_eq!(v.length, 1);

        // LPinf behaves the same here.
        let lpinf = Policy::with_variant(SecurityModel::Security3rd, LpVariant::LpInf);
        let o = e.compute(AttackScenario::normal(AsId(0)), &dep, lpinf);
        assert_eq!(o.route(AsId(1)).unwrap().class, crate::RouteClass::Peer);
    }

    #[test]
    fn lp2_keeps_customer_priority_within_a_length() {
        // v(1): customer route length 2 and peer route length 2 -> C(2)
        // beats P(2) under LP2.
        let mut b = GraphBuilder::new(4);
        b.add_provider(AsId(0), AsId(2)).unwrap(); // d customer of c
        b.add_provider(AsId(2), AsId(1)).unwrap(); // c customer of v
        b.add_provider(AsId(0), AsId(3)).unwrap(); // d customer of q
        b.add_peering(AsId(3), AsId(1)).unwrap(); // q peers v
        let g = b.build();
        let dep = Deployment::empty(4);
        let mut e = Engine::new(&g);
        let lp2 = Policy::with_variant(SecurityModel::Security3rd, LpVariant::LpK(2));
        let o = e.compute(AttackScenario::normal(AsId(0)), &dep, lp2);
        assert_eq!(o.route(AsId(1)).unwrap().class, crate::RouteClass::Customer);
    }

    #[test]
    fn collateral_damage_gadget_security_2nd() {
        // See DESIGN.md §4 (Figures 14): a secure AS `a` switches to a
        // longer secure route, lengthening its customer s's legitimate
        // route past the bogus one.
        //
        // ids: 0=d, 1=r, 2=q, 3=p2, 4=p1, 5=a, 6=s, 7=b, 8=x, 9=m.
        let mut b = GraphBuilder::new(10);
        b.add_provider(AsId(0), AsId(1)).unwrap(); // d < r
        b.add_provider(AsId(1), AsId(2)).unwrap(); // r < q
        b.add_provider(AsId(2), AsId(3)).unwrap(); // q < p2
        b.add_provider(AsId(0), AsId(4)).unwrap(); // d < p1
        b.add_provider(AsId(5), AsId(3)).unwrap(); // a buys from p2
        b.add_provider(AsId(5), AsId(4)).unwrap(); // a buys from p1
        b.add_provider(AsId(6), AsId(5)).unwrap(); // s buys from a
        b.add_provider(AsId(6), AsId(7)).unwrap(); // s buys from b
        b.add_provider(AsId(8), AsId(7)).unwrap(); // x customer of b
        b.add_provider(AsId(9), AsId(8)).unwrap(); // m customer of x
        let g = b.build();
        let mut e = Engine::new(&g);
        let attack = AttackScenario::attack(AsId(9), AsId(0));

        // Baseline: a uses the short insecure provider route via p1; s's
        // legitimate route (len 3) beats the bogus one (len 4).
        let base = Deployment::empty(10);
        let o = e.compute(attack, &base, sec(SecurityModel::Security2nd));
        assert!(o.flags(AsId(6)).surely_happy());

        // Deploy S*BGP at {d, r, q, p2, a}: a switches to the secure
        // provider route (len 4); s's legitimate route becomes len 5 and
        // the bogus route (len 4) wins. Collateral damage.
        let dep = Deployment::full_from_iter(10, [AsId(0), AsId(1), AsId(2), AsId(3), AsId(5)]);
        let o = e.compute(attack, &dep, sec(SecurityModel::Security2nd));
        let a = o.route(AsId(5)).unwrap();
        assert!(a.secure);
        assert_eq!(a.length, 4);
        assert!(o.flags(AsId(6)).surely_unhappy(), "collateral damage");

        // Theorem 6.1: no such damage in security 3rd (a keeps the short
        // route).
        let o = e.compute(attack, &dep, sec(SecurityModel::Security3rd));
        assert!(o.flags(AsId(6)).surely_happy());
    }

    #[test]
    fn attacker_can_be_inside_the_deployment() {
        // m being "secure" must not make its bogus announcement secure: it
        // is sent via legacy BGP.
        let mut b = GraphBuilder::new(3);
        b.add_provider(AsId(1), AsId(0)).unwrap(); // s buys from d
        b.add_provider(AsId(2), AsId(1)).unwrap(); // m is customer of s
        let g = b.build();
        let dep = Deployment::full_from_iter(3, [AsId(0), AsId(1), AsId(2)]);
        let mut e = Engine::new(&g);
        let o = e.compute(
            AttackScenario::attack(AsId(2), AsId(0)),
            &dep,
            sec(SecurityModel::Security1st),
        );
        // Security 1st: s has a secure customer... no — d is s's provider,
        // so s's legitimate route is a secure *provider* route, while the
        // bogus route is an insecure customer route. Security 1st keeps s
        // safe regardless.
        let s = o.route(AsId(1)).unwrap();
        assert!(s.secure);
        assert!(s.flags.surely_happy());
    }

    #[test]
    fn unreachable_ases_have_no_route() {
        let mut b = GraphBuilder::new(3);
        b.add_provider(AsId(1), AsId(0)).unwrap();
        // 2 is isolated.
        let g = b.build();
        let dep = Deployment::empty(3);
        let mut e = Engine::new(&g);
        let o = e.compute(
            AttackScenario::normal(AsId(0)),
            &dep,
            sec(SecurityModel::Security3rd),
        );
        assert!(o.route(AsId(2)).is_none());
        assert_eq!(o.flags(AsId(2)), RootFlags::NONE);
    }

    #[test]
    fn lp2_with_security_first_still_prefers_secure_routes() {
        // v(1): insecure 1-hop peer route to d(0) vs secure 3-hop customer
        // route (via c(2) -> x(3) -> d). LP2 alone would take the peer
        // route; security 1st overrides even the LPk classes.
        let mut b = GraphBuilder::new(4);
        b.add_provider(AsId(0), AsId(3)).unwrap();
        b.add_provider(AsId(3), AsId(2)).unwrap();
        b.add_provider(AsId(2), AsId(1)).unwrap();
        b.add_peering(AsId(1), AsId(0)).unwrap();
        let g = b.build();
        let all = Deployment::full_from_iter(4, (0..4).map(AsId));
        let mut e = Engine::new(&g);
        let lp2_sec1 = Policy::with_variant(SecurityModel::Security1st, LpVariant::LpK(2));
        let o = e.compute(AttackScenario::normal(AsId(0)), &all, lp2_sec1);
        let v = o.route(AsId(1)).unwrap();
        // Both routes are secure here (everyone deployed), so LP2 class
        // order applies among secure routes: the 1-hop peer route wins.
        assert_eq!(v.class, crate::RouteClass::Peer);
        assert!(v.secure);
        // Now make the peer route insecure by removing d from... d must
        // sign for any route to be secure; instead break the peer route's
        // security by removing v's *peer* from the deployment? The peer IS
        // d. Use a partial deployment where only the customer chain is
        // secure: {d, v, c, x} minus nothing... the peer route (v, d) is
        // secure whenever v and d are. So test the reverse: deploy nobody
        // but d and v and c and x — both routes secure again. Instead,
        // drop v from the deployment: nothing is secure, LP2 class wins.
        let dep = Deployment::full_from_iter(4, [AsId(0), AsId(2), AsId(3)]);
        let o = e.compute(AttackScenario::normal(AsId(0)), &dep, lp2_sec1);
        let v = o.route(AsId(1)).unwrap();
        assert_eq!(v.class, crate::RouteClass::Peer);
        assert!(!v.secure);
    }

    #[test]
    fn lpinf_with_security_second_prefers_secure_within_class() {
        // v(1) has two peer routes of length 2: via pa(2) (insecure chain)
        // and via pb(3) (secure chain). Under LPinf both are class P(2);
        // security 2nd picks the secure one.
        let mut b = GraphBuilder::new(6);
        b.add_provider(AsId(0), AsId(4)).unwrap(); // d customer of xa
        b.add_provider(AsId(0), AsId(5)).unwrap(); // d customer of xb
        b.add_provider(AsId(4), AsId(2)).unwrap(); // xa customer of pa
        b.add_provider(AsId(5), AsId(3)).unwrap(); // xb customer of pb
        b.add_peering(AsId(1), AsId(2)).unwrap();
        b.add_peering(AsId(1), AsId(3)).unwrap();
        let g = b.build();
        let dep = Deployment::full_from_iter(6, [AsId(0), AsId(1), AsId(3), AsId(5)]);
        let mut e = Engine::new(&g);
        let pol = Policy::with_variant(SecurityModel::Security2nd, LpVariant::LpInf);
        let o = e.compute(AttackScenario::normal(AsId(0)), &dep, pol);
        let v = o.route(AsId(1)).unwrap();
        assert!(v.secure, "security 2nd picks the secure P(3) route");
        assert_eq!(v.length, 3);
        // Under security 3rd + LPinf the tie also goes secure (SecP at TB).
        let pol3 = Policy::with_variant(SecurityModel::Security3rd, LpVariant::LpInf);
        let o = e.compute(AttackScenario::normal(AsId(0)), &dep, pol3);
        assert!(o.route(AsId(1)).unwrap().secure);
    }

    #[test]
    fn traces_follow_representative_routes() {
        let g = chain();
        let dep = Deployment::empty(g.len());
        let mut e = Engine::new(&g);
        let o = e.compute(
            AttackScenario::normal(AsId(0)),
            &dep,
            sec(SecurityModel::Security3rd),
        );
        // e(5) -> q(4) -> t(2) -> p(1) -> d(0).
        assert_eq!(
            o.trace(AsId(5)),
            vec![AsId(5), AsId(4), AsId(2), AsId(1), AsId(0)]
        );
        assert_eq!(o.trace(AsId(0)), vec![AsId(0)], "root traces to itself");
        assert_eq!(o.next_hop(AsId(0)), None);
    }

    #[test]
    fn origin_hijack_beats_fake_link_for_the_attacker() {
        // d(0) <- s(1); m(2) is also a provider of s. With origin
        // authentication (FakeLink) s keeps the shorter legitimate route;
        // without it (OriginHijack) both routes tie at length 1 and s is
        // torn.
        let mut b = GraphBuilder::new(3);
        b.add_provider(AsId(1), AsId(0)).unwrap();
        b.add_provider(AsId(1), AsId(2)).unwrap();
        let g = b.build();
        let dep = Deployment::empty(3);
        let mut e = Engine::new(&g);
        let o = e.compute(
            AttackScenario::attack(AsId(2), AsId(0)),
            &dep,
            sec(SecurityModel::Security3rd),
        );
        assert!(o.flags(AsId(1)).surely_happy(), "RPKI blunts the fake link");
        let o = e.compute(
            AttackScenario::hijack(AsId(2), AsId(0)),
            &dep,
            sec(SecurityModel::Security3rd),
        );
        assert_eq!(o.flags(AsId(1)), RootFlags::MIXED, "hijack ties the race");
    }

    #[test]
    fn forged_path_roots_at_its_claimed_depth() {
        // m(2) is a customer of s(1), s a customer of d(0): whatever the
        // claimed length, the bogus customer route beats s's provider
        // route under standard LP, and its length counts the fake tail.
        let mut b = GraphBuilder::new(3);
        b.add_provider(AsId(2), AsId(1)).unwrap();
        b.add_provider(AsId(1), AsId(0)).unwrap();
        let g = b.build();
        let dep = Deployment::empty(3);
        let mut e = Engine::new(&g);
        for hops in 0..4u8 {
            let scenario = AttackScenario::attack(AsId(2), AsId(0))
                .with_strategy(AttackStrategy::FakePath { hops });
            let o = e.compute(scenario, &dep, sec(SecurityModel::Security3rd));
            let s = o.route(AsId(1)).unwrap();
            assert_eq!(s.class, crate::RouteClass::Customer, "hops {hops}");
            assert_eq!(s.length, u32::from(hops) + 1, "hops {hops}");
            assert!(s.flags.surely_unhappy(), "hops {hops}");
            assert_eq!(o.route(AsId(2)).unwrap().length, u32::from(hops));
        }
    }

    #[test]
    fn colluding_roots_fix_a_multi_root_bogus_tree() {
        // d(0) <- s(1); m1(2) and m2(3) are both customers of s. Colluding
        // fake links tie at s: every equally-best route is bogus.
        let mut b = GraphBuilder::new(4);
        b.add_provider(AsId(1), AsId(0)).unwrap();
        b.add_provider(AsId(2), AsId(1)).unwrap();
        b.add_provider(AsId(3), AsId(1)).unwrap();
        let g = b.build();
        let dep = Deployment::empty(4);
        let mut e = Engine::new(&g);
        let scenario = AttackScenario::colluding(&[AsId(2), AsId(3)], AsId(0));
        let o = e.compute(scenario, &dep, sec(SecurityModel::Security3rd));
        let s = o.route(AsId(1)).unwrap();
        assert_eq!(s.class, crate::RouteClass::Customer);
        assert_eq!(s.length, 2);
        assert!(s.flags.surely_unhappy(), "both best routes are bogus");
        assert_eq!(o.attacker(), Some(AsId(2)));
        assert_eq!(o.attackers().collect::<Vec<_>>(), vec![AsId(2), AsId(3)]);
        // Only s is a source: n − 1 − 2 colluders.
        assert_eq!(o.sources().count(), 1);
        assert_eq!(o.count_happy(), (0, 0));
    }

    #[test]
    fn engine_reuse_is_clean() {
        let g = chain();
        let dep = Deployment::empty(g.len());
        let mut e = Engine::new(&g);
        let first: Vec<Option<crate::RouteInfo>> = {
            let o = e.compute(
                AttackScenario::normal(AsId(0)),
                &dep,
                sec(SecurityModel::Security3rd),
            );
            g.ases().map(|v| o.route(v)).collect()
        };
        // Interleave a different computation.
        let _ = e.compute(
            AttackScenario::attack(AsId(5), AsId(0)),
            &dep,
            sec(SecurityModel::Security2nd),
        );
        let again: Vec<Option<crate::RouteInfo>> = {
            let o = e.compute(
                AttackScenario::normal(AsId(0)),
                &dep,
                sec(SecurityModel::Security3rd),
            );
            g.ases().map(|v| o.route(v)).collect()
        };
        assert_eq!(first, again);
    }
}
