//! The supervised multi-process campaign: coordinator, worker protocol,
//! retry ladder, and checkpoint-integrity primitives.
//!
//! The paper's grids ran on Blue Gene under MPI (Appendix H); this module
//! is the single-machine analogue with *crash containment*: a coordinator
//! ([`Supervisor`]) shards a round's destination groups across N worker
//! **processes** (the campaign binary re-invoked in `--worker` mode),
//! speaking length-prefixed JSON over stdin/stdout. Work assignment is
//! work-stealing (idle workers pull the next queued group), every
//! in-flight group has a wall-clock watchdog, and failures walk a retry
//! ladder:
//!
//! > worker crash / timeout / wrong-schema reply ⇒ kill & respawn with
//! > exponential backoff ⇒ reassign the group to another worker ⇒ after
//! > `strikes` failures mark the group **degraded** and keep going.
//!
//! Degradation is graceful by contract: a degraded group's pairs are
//! excluded from the estimates (tracked in
//! [`AdaptiveRun::lost_groups`] / [`AdaptiveRun::lost_pairs`]), the
//! campaign's final JSON lists the affected cells under `"degraded"`, and
//! the grid still validates.
//!
//! **Bit-identity.** [`estimate_adaptive_supervised`] mirrors
//! [`crate::stats::estimate_adaptive_cells`] exactly: workers evaluate a
//! destination group through the same [`CellEval`] kernel and stream back
//! raw per-stratum Welford triples (floats as `to_bits`, so the wire
//! round trip is exact); the coordinator merges group accumulators **in
//! group order** into the round state and round state into persistent
//! state in round order — the same Chan-merge sequence the in-process
//! chunk-ordered reduction performs. An N-worker run therefore produces
//! the same bytes as the single-process run, for any N (pinned by
//! `tests/campaign.rs`).
//!
//! Checkpoint integrity rides along: [`content_checksum`] /
//! [`verify_checksum`] give per-cell JSON files an FNV-1a content
//! checksum, so resume can distinguish a good checkpoint from a torn or
//! corrupted one and quarantine the latter instead of trusting it.

use std::collections::{HashSet, VecDeque};
use std::io::{Read, Write};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

use sbgp_core::Bounds;
use sbgp_topology::AsId;

use crate::faultpoint;
use crate::stats::{
    group_tagged_by_destination, recombine, AdaptiveRun, CellEval, Estimate, EstimatorConfig,
    PairUniverse, RoundTrace, StratifiedSampler, StratumStats, Welford,
};

// ---------------------------------------------------------------------------
// Length-prefixed JSON frames
// ---------------------------------------------------------------------------

/// Upper bound on a frame payload; anything larger is protocol garbage.
const MAX_FRAME: u32 = 256 * 1024 * 1024;

/// Write one length-prefixed (u32 big-endian) UTF-8 frame.
pub fn write_frame(w: &mut impl Write, payload: &str) -> std::io::Result<()> {
    let len = payload.len() as u32;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Read one frame; `Ok(None)` on clean EOF at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<String>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

// ---------------------------------------------------------------------------
// Wire messages (hand-rolled JSON, like every serializer in this repo)
// ---------------------------------------------------------------------------

pub(crate) fn json_str_field<'t>(text: &'t str, key: &str) -> Option<&'t str> {
    let pat = format!("\"{key}\":\"");
    let start = text.find(&pat)? + pat.len();
    let rest = &text[start..];
    Some(&rest[..rest.find('"')?])
}

pub(crate) fn json_u64_field(text: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = text.find(&pat)? + pat.len();
    let rest = &text[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parse a flat or one-level-nested array of unsigned integers starting at
/// `"key":[` — every number in source order, nesting flattened.
pub(crate) fn json_u64s(text: &str, key: &str) -> Option<Vec<u64>> {
    let pat = format!("\"{key}\":[");
    let start = text.find(&pat)? + pat.len() - 1;
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur: Option<u64> = None;
    for c in text[start..].chars() {
        match c {
            '[' => depth += 1,
            ']' | ',' => {
                if let Some(v) = cur.take() {
                    out.push(v);
                }
                if c == ']' {
                    depth -= 1;
                    if depth == 0 {
                        return Some(out);
                    }
                }
            }
            '0'..='9' => cur = Some(cur.unwrap_or(0) * 10 + (c as u64 - '0' as u64)),
            _ => return None,
        }
    }
    None
}

pub(crate) fn sanitize(msg: &str) -> String {
    msg.chars()
        .map(|c| {
            if c == '"' || c == '\\' || c.is_control() {
                ' '
            } else {
                c
            }
        })
        .take(300)
        .collect()
}

/// A coordinator→worker message, as the worker loop consumes it.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkerMsg {
    /// (Re)configure for a figure group; payload is the campaign-defined
    /// group spec, passed through verbatim.
    Init(String),
    /// Evaluate one destination group.
    Task {
        /// Batch-local task id, echoed in the reply.
        id: u64,
        /// The group's destination.
        dest: AsId,
        /// `(attacker, stratum)` pairs in evaluation order.
        attackers: Vec<(AsId, usize)>,
    },
    /// Exit the worker loop.
    Shutdown,
}

/// Encode an init message around an opaque single-line JSON payload.
pub fn encode_init(payload: &str) -> String {
    format!("{{\"type\":\"init\",\"payload\":{payload}}}")
}

/// Encode a task message.
pub fn encode_task(id: u64, dest: AsId, attackers: &[(AsId, usize)]) -> String {
    let mut s = format!(
        "{{\"type\":\"task\",\"id\":{id},\"dest\":{},\"attackers\":[",
        dest.0
    );
    for (i, (m, h)) in attackers.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("[{},{h}]", m.0));
    }
    s.push_str("]}");
    s
}

/// The shutdown message.
pub fn encode_shutdown() -> String {
    "{\"type\":\"shutdown\"}".to_string()
}

/// Encode the worker's post-init handshake: the shape it will produce.
pub fn encode_ready(cell_stats: &[usize], nstrata: usize) -> String {
    let mut s = String::from("{\"type\":\"ready\",\"stats\":[");
    for (i, k) in cell_stats.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&k.to_string());
    }
    s.push_str(&format!("],\"strata\":{nstrata}}}"));
    s
}

/// Encode a task result (the flat accumulator data of [`encode_task`]'s
/// group — see [`eval_task_data`] for the layout).
pub fn encode_result(id: u64, data: &[u64]) -> String {
    let mut s = format!("{{\"type\":\"result\",\"id\":{id},\"data\":[");
    for (i, v) in data.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&v.to_string());
    }
    s.push_str("]}");
    s
}

/// Encode a recoverable per-task failure (the worker survives; the
/// coordinator strikes the task).
pub fn encode_error(id: u64, msg: &str) -> String {
    format!(
        "{{\"type\":\"error\",\"id\":{id},\"msg\":\"{}\"}}",
        sanitize(msg)
    )
}

/// Parse a coordinator→worker frame.
pub fn parse_worker_msg(text: &str) -> Result<WorkerMsg, String> {
    match json_str_field(text, "type") {
        Some("init") => {
            let pat = "\"payload\":";
            let start = text
                .find(pat)
                .ok_or_else(|| "init without payload".to_string())?
                + pat.len();
            let payload = text[start..]
                .strip_suffix('}')
                .ok_or_else(|| "unterminated init".to_string())?;
            Ok(WorkerMsg::Init(payload.to_string()))
        }
        Some("task") => {
            let id = json_u64_field(text, "id").ok_or_else(|| "task without id".to_string())?;
            let dest =
                json_u64_field(text, "dest").ok_or_else(|| "task without dest".to_string())?;
            let flat =
                json_u64s(text, "attackers").ok_or_else(|| "task without attackers".to_string())?;
            if flat.len() % 2 != 0 {
                return Err("odd attacker list".to_string());
            }
            let attackers = flat
                .chunks_exact(2)
                .map(|p| (AsId(p[0] as u32), p[1] as usize))
                .collect();
            Ok(WorkerMsg::Task {
                id,
                dest: AsId(dest as u32),
                attackers,
            })
        }
        Some("shutdown") => Ok(WorkerMsg::Shutdown),
        other => Err(format!("unknown message type {other:?}")),
    }
}

// ---------------------------------------------------------------------------
// Worker-side evaluation
// ---------------------------------------------------------------------------

/// Evaluate one destination group through a [`CellEval`] kernel and return
/// the accumulator data in wire layout: for each cell `c`, statistic `k`,
/// stratum `h`, the six `u64`s `(n, mean, m2)` of the lower then the upper
/// Welford accumulator (floats as `to_bits`). This is byte-for-byte the
/// chunk accumulator the in-process reduction would have produced for the
/// same group, which is the whole bit-identity argument.
pub fn eval_task_data<E: CellEval>(
    eval: &E,
    w: &mut E::Worker,
    nstrata: usize,
    dest: AsId,
    attackers: &[(AsId, usize)],
) -> Vec<u64> {
    let cell_stats = eval.cell_stats();
    let mut acc: Vec<Vec<Vec<StratumStats>>> = cell_stats
        .iter()
        .map(|&k| vec![vec![StratumStats::default(); nstrata]; k])
        .collect();
    eval.begin(w, dest);
    for &(m, h) in attackers {
        eval.eval_pair(w, m, dest, &mut |c, k, b: Bounds| {
            acc[c][k][h].push(b);
        });
    }
    let mut data = Vec::with_capacity(data_len(&cell_stats, nstrata));
    for cell in &acc {
        for stats in cell {
            for s in stats {
                for welford in [&s.lower, &s.upper] {
                    let (n, mean, m2) = welford.raw();
                    data.push(n);
                    data.push(mean.to_bits());
                    data.push(m2.to_bits());
                }
            }
        }
    }
    data
}

/// Wire length of one task's data for a shape.
pub fn data_len(cell_stats: &[usize], nstrata: usize) -> usize {
    cell_stats.iter().sum::<usize>() * nstrata * 6
}

fn decode_result_data(
    data: &[u64],
    cell_stats: &[usize],
    nstrata: usize,
) -> Vec<Vec<Vec<StratumStats>>> {
    let mut it = data.iter().copied();
    cell_stats
        .iter()
        .map(|&k| {
            (0..k)
                .map(|_| {
                    (0..nstrata)
                        .map(|_| {
                            let mut halves = [Welford::default(), Welford::default()];
                            for w in halves.iter_mut() {
                                let n = it.next().unwrap_or(0);
                                let mean = f64::from_bits(it.next().unwrap_or(0));
                                let m2 = f64::from_bits(it.next().unwrap_or(0));
                                *w = Welford::from_raw(n, mean, m2);
                            }
                            StratumStats {
                                lower: halves[0],
                                upper: halves[1],
                            }
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The supervisor
// ---------------------------------------------------------------------------

/// Supervisor knobs (campaign flags map onto these).
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Worker process count (≥ 1).
    pub workers: usize,
    /// Worker command line: program plus base arguments. The supervisor
    /// appends `--worker-id <spawn-id>` so every incarnation has a unique
    /// fault-plan role.
    pub argv: Vec<String>,
    /// Per-task wall-clock watchdog.
    pub watchdog: Duration,
    /// Failures before a task is marked degraded.
    pub strikes: u32,
    /// Base respawn backoff, doubled per consecutive failure of a slot.
    pub backoff: Duration,
}

/// The outcome of one task of a batch.
#[derive(Clone, Debug)]
pub enum TaskOutcome {
    /// Accumulator data in wire layout (see [`eval_task_data`]).
    Done(Vec<u64>),
    /// The task failed `strikes` times and was abandoned.
    Degraded {
        /// Failures charged to the task.
        strikes: u32,
        /// The last failure's description.
        last_error: String,
    },
}

enum Event {
    Frame(String),
    Gone(String),
}

#[derive(Clone, Copy)]
enum ProcState {
    AwaitingReady,
    Idle,
    Busy { task: usize, deadline: Instant },
}

struct Proc {
    spawn_id: u64,
    child: Child,
    stdin: ChildStdin,
    state: ProcState,
}

struct Slot {
    proc: Option<Proc>,
    failures: u32,
    respawn_at: Instant,
}

/// One failure charged to a task: requeue it, or degrade it at the strike
/// cap.
fn charge_strike(
    t: usize,
    why: &str,
    max: u32,
    strikes: &mut [u32],
    queue: &mut VecDeque<usize>,
    outcomes: &mut [Option<TaskOutcome>],
    pending: &mut usize,
) {
    strikes[t] += 1;
    eprintln!("supervisor: task {t} strike {}/{max}: {why}", strikes[t]);
    if strikes[t] >= max {
        eprintln!("supervisor: task {t} degraded after {} strikes", strikes[t]);
        outcomes[t] = Some(TaskOutcome::Degraded {
            strikes: strikes[t],
            last_error: why.to_string(),
        });
        *pending -= 1;
    } else {
        queue.push_back(t);
    }
}

/// A pool of supervised worker processes serving destination-group tasks.
///
/// One `Supervisor` lives across many batches (and many figure groups —
/// each re-inits the workers); dropping it shuts the workers down.
pub struct Supervisor {
    cfg: SupervisorConfig,
    slots: Vec<Slot>,
    tx: Sender<(u64, Event)>,
    rx: Receiver<(u64, Event)>,
    next_spawn: u64,
    /// Spawn ids whose events are stale (killed or replaced processes).
    dead: HashSet<u64>,
    init: Option<String>,
    boot_failures: u32,
}

impl Supervisor {
    /// Build a pool; workers are spawned lazily on the first batch.
    pub fn new(cfg: SupervisorConfig) -> Supervisor {
        assert!(cfg.workers >= 1, "supervisor needs at least one worker");
        assert!(cfg.strikes >= 1, "retry ladder needs at least one strike");
        let (tx, rx) = std::sync::mpsc::channel();
        let slots = (0..cfg.workers)
            .map(|_| Slot {
                proc: None,
                failures: 0,
                respawn_at: Instant::now(),
            })
            .collect();
        Supervisor {
            cfg,
            slots,
            tx,
            rx,
            next_spawn: 0,
            dead: HashSet::new(),
            init: None,
            boot_failures: 0,
        }
    }

    fn spawn(&mut self, slot: usize) {
        let spawn_id = self.next_spawn;
        self.next_spawn += 1;
        let init = self.init.clone().expect("spawn only inside a batch");
        let mut cmd = Command::new(&self.cfg.argv[0]);
        cmd.args(&self.cfg.argv[1..])
            .arg("--worker-id")
            .arg(spawn_id.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        let mut child = match cmd.spawn() {
            Ok(c) => c,
            Err(e) => {
                eprintln!("supervisor: cannot spawn worker{spawn_id}: {e}");
                self.note_boot_failure(slot);
                return;
            }
        };
        let mut stdin = child.stdin.take().expect("piped stdin");
        let mut stdout = child.stdout.take().expect("piped stdout");
        let tx = self.tx.clone();
        std::thread::spawn(move || loop {
            match read_frame(&mut stdout) {
                Ok(Some(frame)) => {
                    if tx.send((spawn_id, Event::Frame(frame))).is_err() {
                        break;
                    }
                }
                Ok(None) => {
                    let _ = tx.send((spawn_id, Event::Gone("eof".to_string())));
                    break;
                }
                Err(e) => {
                    let _ = tx.send((spawn_id, Event::Gone(e.to_string())));
                    break;
                }
            }
        });
        // A failed init write means the child died at birth; its Gone
        // event retires the slot once the proc is registered below.
        let _ = write_frame(&mut stdin, &encode_init(&init));
        self.slots[slot].proc = Some(Proc {
            spawn_id,
            child,
            stdin,
            state: ProcState::AwaitingReady,
        });
    }

    fn note_boot_failure(&mut self, slot: usize) {
        self.boot_failures += 1;
        let backoff = self.backoff(self.slots[slot].failures + 1);
        let s = &mut self.slots[slot];
        s.failures += 1;
        s.respawn_at = Instant::now() + backoff;
    }

    fn backoff(&self, failures: u32) -> Duration {
        self.cfg.backoff * 2u32.pow(failures.saturating_sub(1).min(5))
    }

    fn retire(&mut self, slot: usize, kill: bool) {
        if let Some(mut p) = self.slots[slot].proc.take() {
            self.dead.insert(p.spawn_id);
            if kill {
                let _ = p.child.kill();
            }
            let _ = p.child.wait();
        }
        let backoff = self.backoff(self.slots[slot].failures + 1);
        let s = &mut self.slots[slot];
        s.failures += 1;
        s.respawn_at = Instant::now() + backoff;
    }

    fn slot_of(&self, spawn_id: u64) -> Option<usize> {
        self.slots
            .iter()
            .position(|s| s.proc.as_ref().is_some_and(|p| p.spawn_id == spawn_id))
    }

    fn state_of(&self, slot: usize) -> ProcState {
        self.slots[slot].proc.as_ref().expect("live proc").state
    }

    fn set_state(&mut self, slot: usize, state: ProcState) {
        self.slots[slot].proc.as_mut().expect("live proc").state = state;
    }

    /// Run one batch of destination-group tasks to completion, returning
    /// outcomes in task order. `init` reconfigures workers whose current
    /// figure group differs; `cell_stats`/`nstrata` pin the reply shape
    /// (a mismatched `ready` is a boot failure, a mismatched result a
    /// strike).
    pub fn run_batch(
        &mut self,
        init: &str,
        cell_stats: &[usize],
        nstrata: usize,
        tasks: &[(AsId, Vec<(AsId, usize)>)],
    ) -> Vec<TaskOutcome> {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        let expected_len = data_len(cell_stats, nstrata);
        let max_strikes = self.cfg.strikes;
        let mut outcomes: Vec<Option<TaskOutcome>> = (0..n).map(|_| None).collect();

        // Re-init live workers when the figure group changed.
        if self.init.as_deref() != Some(init) {
            self.init = Some(init.to_string());
            let msg = encode_init(init);
            for slot in 0..self.slots.len() {
                if self.slots[slot].proc.is_none() {
                    continue;
                }
                let ok = {
                    let p = self.slots[slot].proc.as_mut().expect("live proc");
                    write_frame(&mut p.stdin, &msg).is_ok()
                };
                if ok {
                    self.set_state(slot, ProcState::AwaitingReady);
                } else {
                    self.retire(slot, true);
                }
            }
        }

        let mut queue: VecDeque<usize> = (0..n).collect();
        let mut strikes = vec![0u32; n];
        let mut pending = n;
        // Boot-failure circuit breaker: if workers can't even reach
        // `ready` this many times in a row, the fleet is unusable and the
        // whole batch degrades rather than retrying forever.
        let boot_cap = (max_strikes * self.cfg.workers as u32).max(4);
        self.boot_failures = 0;

        while pending > 0 {
            let now = Instant::now();

            // Respawn empty slots whose backoff expired.
            for slot in 0..self.slots.len() {
                if self.slots[slot].proc.is_none()
                    && now >= self.slots[slot].respawn_at
                    && self.boot_failures < boot_cap
                {
                    self.spawn(slot);
                }
            }

            // Work stealing: every idle worker pulls the next queued task.
            for slot in 0..self.slots.len() {
                if queue.is_empty() {
                    break;
                }
                let idle = self.slots[slot]
                    .proc
                    .as_ref()
                    .is_some_and(|p| matches!(p.state, ProcState::Idle));
                if !idle {
                    continue;
                }
                let t = queue.pop_front().expect("checked nonempty");
                let mut msg = encode_task(t as u64, tasks[t].0, &tasks[t].1);
                match faultpoint::check("coord.frame", &format!("task{t}")) {
                    Some(faultpoint::Fault::Garbage) => msg = "{\"type\":\"task\"}".to_string(),
                    Some(_) => msg.clear(), // an empty frame is wire garbage too
                    None => {}
                }
                let ok = {
                    let p = self.slots[slot].proc.as_mut().expect("live proc");
                    write_frame(&mut p.stdin, &msg).is_ok()
                };
                if ok {
                    self.set_state(
                        slot,
                        ProcState::Busy {
                            task: t,
                            deadline: Instant::now() + self.cfg.watchdog,
                        },
                    );
                } else {
                    // Death during assignment: requeue without a strike —
                    // the crash predates the task.
                    queue.push_front(t);
                    self.retire(slot, true);
                }
            }

            // Fleet unusable and nothing in flight: degrade what's left.
            if self.boot_failures >= boot_cap && self.slots.iter().all(|s| s.proc.is_none()) {
                for (t, o) in outcomes.iter_mut().enumerate() {
                    if o.is_none() {
                        eprintln!("supervisor: task {t} degraded, worker fleet failed to boot");
                        *o = Some(TaskOutcome::Degraded {
                            strikes: strikes[t],
                            last_error: "worker fleet failed to boot".to_string(),
                        });
                    }
                }
                break;
            }

            // Sleep until the next deadline or respawn, whichever first.
            let mut wake: Option<Instant> = None;
            for s in &self.slots {
                let t = match &s.proc {
                    Some(p) => match p.state {
                        ProcState::Busy { deadline, .. } => Some(deadline),
                        _ => None,
                    },
                    None => Some(s.respawn_at),
                };
                if let Some(t) = t {
                    wake = Some(match wake {
                        Some(w) => w.min(t),
                        None => t,
                    });
                }
            }
            let timeout = wake
                .map(|w| w.saturating_duration_since(now))
                .unwrap_or(Duration::from_millis(200))
                .max(Duration::from_millis(1));

            match self.rx.recv_timeout(timeout) {
                Ok((spawn_id, _)) if self.dead.contains(&spawn_id) => {}
                Ok((spawn_id, Event::Gone(why))) => {
                    if let Some(slot) = self.slot_of(spawn_id) {
                        match self.state_of(slot) {
                            ProcState::Busy { task, .. } => charge_strike(
                                task,
                                &format!("worker{spawn_id} died ({why})"),
                                max_strikes,
                                &mut strikes,
                                &mut queue,
                                &mut outcomes,
                                &mut pending,
                            ),
                            ProcState::AwaitingReady => {
                                eprintln!("supervisor: worker{spawn_id} died before ready ({why})");
                                self.boot_failures += 1;
                            }
                            ProcState::Idle => {
                                eprintln!("supervisor: idle worker{spawn_id} died ({why})");
                            }
                        }
                        self.retire(slot, false);
                    }
                }
                Ok((spawn_id, Event::Frame(frame))) => {
                    let Some(slot) = self.slot_of(spawn_id) else {
                        continue;
                    };
                    match json_str_field(&frame, "type") {
                        Some("ready") => {
                            let stats = json_u64s(&frame, "stats").unwrap_or_default();
                            let strata = json_u64_field(&frame, "strata");
                            let want: Vec<u64> = cell_stats.iter().map(|&k| k as u64).collect();
                            if stats == want && strata == Some(nstrata as u64) {
                                self.set_state(slot, ProcState::Idle);
                                self.slots[slot].failures = 0;
                                self.boot_failures = 0;
                            } else {
                                eprintln!(
                                    "supervisor: worker{spawn_id} ready with wrong shape, retiring"
                                );
                                self.boot_failures += 1;
                                self.retire(slot, true);
                            }
                        }
                        Some("result") => {
                            let ProcState::Busy { task, .. } = self.state_of(slot) else {
                                eprintln!(
                                    "supervisor: unexpected result from worker{spawn_id}, retiring"
                                );
                                self.retire(slot, true);
                                continue;
                            };
                            let id = json_u64_field(&frame, "id");
                            let data = json_u64s(&frame, "data");
                            match (id, data) {
                                (Some(id), Some(data))
                                    if id == task as u64 && data.len() == expected_len =>
                                {
                                    outcomes[task] = Some(TaskOutcome::Done(data));
                                    pending -= 1;
                                    self.set_state(slot, ProcState::Idle);
                                }
                                _ => {
                                    charge_strike(
                                        task,
                                        &format!(
                                            "worker{spawn_id} replied with a wrong-schema result"
                                        ),
                                        max_strikes,
                                        &mut strikes,
                                        &mut queue,
                                        &mut outcomes,
                                        &mut pending,
                                    );
                                    self.retire(slot, true);
                                }
                            }
                        }
                        Some("error") => {
                            // The worker survived (caught panic / injected
                            // eval error): strike the task, keep the
                            // worker.
                            let ProcState::Busy { task, .. } = self.state_of(slot) else {
                                self.retire(slot, true);
                                continue;
                            };
                            let msg = json_str_field(&frame, "msg").unwrap_or("?").to_string();
                            self.set_state(slot, ProcState::Idle);
                            charge_strike(
                                task,
                                &format!("worker{spawn_id} eval failed: {msg}"),
                                max_strikes,
                                &mut strikes,
                                &mut queue,
                                &mut outcomes,
                                &mut pending,
                            );
                        }
                        _ => {
                            eprintln!("supervisor: garbage frame from worker{spawn_id}, retiring");
                            if let ProcState::Busy { task, .. } = self.state_of(slot) {
                                charge_strike(
                                    task,
                                    &format!("worker{spawn_id} sent a garbage frame"),
                                    max_strikes,
                                    &mut strikes,
                                    &mut queue,
                                    &mut outcomes,
                                    &mut pending,
                                );
                            }
                            self.retire(slot, true);
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => unreachable!("supervisor holds a sender"),
            }

            // Watchdog sweep: kill anything past its deadline.
            let now = Instant::now();
            for slot in 0..self.slots.len() {
                let expired = match &self.slots[slot].proc {
                    Some(p) => match p.state {
                        ProcState::Busy { task, deadline } if now >= deadline => {
                            Some((task, p.spawn_id))
                        }
                        _ => None,
                    },
                    None => None,
                };
                if let Some((task, sid)) = expired {
                    eprintln!(
                        "supervisor: watchdog expired for task {task} on worker{sid}, killing"
                    );
                    charge_strike(
                        task,
                        &format!("watchdog expired on worker{sid}"),
                        max_strikes,
                        &mut strikes,
                        &mut queue,
                        &mut outcomes,
                        &mut pending,
                    );
                    self.retire(slot, true);
                }
            }
        }

        outcomes
            .into_iter()
            .map(|o| o.expect("all tasks resolved"))
            .collect()
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        for slot in &mut self.slots {
            if let Some(mut p) = slot.proc.take() {
                let _ = write_frame(&mut p.stdin, &encode_shutdown());
                let _ = p.child.kill();
                let _ = p.child.wait();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The distributed adaptive estimator
// ---------------------------------------------------------------------------

/// [`crate::stats::estimate_adaptive_cells`] over a [`Supervisor`]'s
/// worker pool: same universe, same seeded round schedule, same Chan-merge
/// order — bit-identical to the in-process estimator for any worker
/// count. Degraded groups surface as [`AdaptiveRun::lost_groups`] /
/// [`AdaptiveRun::lost_pairs`] on every cell still active that round.
pub fn estimate_adaptive_supervised(
    universe: &PairUniverse,
    cfg: &EstimatorConfig,
    cell_stats: &[usize],
    init: &str,
    sup: &mut Supervisor,
) -> Vec<AdaptiveRun> {
    let nstrata = universe.strata().len();
    let budget = cfg.budget.min(universe.population());
    let mut runs: Vec<AdaptiveRun> = cell_stats
        .iter()
        .map(|&k| AdaptiveRun {
            estimates: vec![Estimate::default(); k],
            rounds: Vec::new(),
            sampled: Vec::new(),
            population: universe.population(),
            strata: nstrata,
            lost_groups: 0,
            lost_pairs: 0,
        })
        .collect();
    let mut active: Vec<bool> = cell_stats.iter().map(|&k| k > 0 && budget > 0).collect();
    if !active.iter().any(|&a| a) {
        return runs;
    }
    let sampler = StratifiedSampler::new(universe, cfg.seed);
    let initial = if cfg.initial == 0 {
        (2 * nstrata as u64).max(64)
    } else {
        cfg.initial
    };
    let mut counts = vec![0u64; nstrata];
    let mut persistent: Vec<Vec<Vec<StratumStats>>> = cell_stats
        .iter()
        .map(|&k| vec![vec![StratumStats::default(); nstrata]; k])
        .collect();
    let mut target = initial.min(budget);
    loop {
        let prev = counts.clone();
        universe.allocate_into(&mut counts, target);
        let incr = sampler.increment(&prev, &counts);
        let groups = group_tagged_by_destination(&incr);
        let outcomes = sup.run_batch(init, cell_stats, nstrata, &groups);

        // Merge group accumulators in group (= task) order — exactly the
        // chunk-order merge of the in-process reduction — skipping
        // already-stopped cells (whose in-process accumulators would have
        // been empty).
        let mut poisoned: Vec<usize> = Vec::new();
        for (g, outcome) in outcomes.iter().enumerate() {
            match outcome {
                TaskOutcome::Done(data) => {
                    let decoded = decode_result_data(data, cell_stats, nstrata);
                    for (c, cell) in decoded.into_iter().enumerate() {
                        if !active[c] {
                            continue;
                        }
                        for (xs, ys) in persistent[c].iter_mut().zip(cell) {
                            for (x, y) in xs.iter_mut().zip(ys) {
                                x.merge(y);
                            }
                        }
                    }
                }
                TaskOutcome::Degraded { .. } => poisoned.push(g),
            }
        }

        let lost: HashSet<AsId> = poisoned.iter().map(|&g| groups[g].0).collect();
        let lost_pairs: u64 = poisoned.iter().map(|&g| groups[g].1.len() as u64).sum();
        let total: u64 = counts.iter().sum();
        for (c, run) in runs.iter_mut().enumerate() {
            if !active[c] {
                continue;
            }
            if lost.is_empty() {
                run.sampled
                    .extend(incr.iter().map(|p| (p.attacker, p.dest)));
            } else {
                run.sampled.extend(
                    incr.iter()
                        .filter(|p| !lost.contains(&p.dest))
                        .map(|p| (p.attacker, p.dest)),
                );
                run.lost_groups += poisoned.len() as u64;
                run.lost_pairs += lost_pairs;
            }
            run.estimates = persistent[c]
                .iter()
                .map(|stats| recombine(universe, stats, cfg.z))
                .collect();
            run.rounds.push(RoundTrace {
                pairs: total,
                max_halfwidth: run.max_halfwidth(),
            });
            let ci_met = cfg.ci_target.is_some_and(|t| run.max_halfwidth() <= t);
            if ci_met || total >= budget {
                active[c] = false;
            }
        }
        if !active.iter().any(|&a| a) {
            return runs;
        }
        target = (total * 2).min(budget);
    }
}

// ---------------------------------------------------------------------------
// Checkpoint integrity
// ---------------------------------------------------------------------------

/// FNV-1a 64 over `text`, line by line, with any `"checksum"` line elided —
/// so a checkpoint can embed its own checksum and still verify.
pub fn content_checksum(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    fn eat(h: &mut u64, b: u8) {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for line in text.lines() {
        if line.trim_start().starts_with("\"checksum\":") {
            continue;
        }
        for &b in line.as_bytes() {
            eat(&mut h, b);
        }
        eat(&mut h, b'\n');
    }
    h
}

/// The 16-hex-digit form of [`content_checksum`], as embedded in cell JSON.
pub fn checksum_hex(text: &str) -> String {
    format!("{:016x}", content_checksum(text))
}

/// What [`verify_checksum`] found in a checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChecksumStatus {
    /// No checksum line (pre-hardening checkpoint, or not a checkpoint).
    Missing,
    /// Checksum present and matching the content.
    Valid,
    /// Checksum present but wrong: the file is torn or corrupted.
    Mismatch,
}

/// Audit a checkpoint's embedded `"checksum"` line against its content.
pub fn verify_checksum(text: &str) -> ChecksumStatus {
    let pat = "\"checksum\": \"";
    let Some(start) = text.find(pat) else {
        return ChecksumStatus::Missing;
    };
    let hex = &text[start + pat.len()..];
    let Some(end) = hex.find('"') else {
        return ChecksumStatus::Mismatch;
    };
    match u64::from_str_radix(&hex[..end], 16) {
        Ok(v) if v == content_checksum(text) => ChecksumStatus::Valid,
        _ => ChecksumStatus::Mismatch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello").unwrap();
        write_frame(&mut buf, "").unwrap();
        write_frame(&mut buf, "{\"x\":1}").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("hello"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("{\"x\":1}"));
        assert_eq!(read_frame(&mut r).unwrap(), None);
        // A frame truncated mid-payload is an error, not a silent EOF.
        let mut r = &buf[..6];
        assert!(read_frame(&mut r).is_err());
        // An insane length is rejected before allocation.
        let mut bad = Vec::new();
        bad.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut r = &bad[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn messages_round_trip() {
        let init = encode_init("{\"figure\":\"baseline\",\"asns\":400}");
        match parse_worker_msg(&init).unwrap() {
            WorkerMsg::Init(p) => assert_eq!(p, "{\"figure\":\"baseline\",\"asns\":400}"),
            other => panic!("{other:?}"),
        }
        let task = encode_task(7, AsId(42), &[(AsId(5), 0), (AsId(9), 3)]);
        assert_eq!(
            parse_worker_msg(&task).unwrap(),
            WorkerMsg::Task {
                id: 7,
                dest: AsId(42),
                attackers: vec![(AsId(5), 0), (AsId(9), 3)],
            }
        );
        let empty = encode_task(0, AsId(1), &[]);
        assert_eq!(
            parse_worker_msg(&empty).unwrap(),
            WorkerMsg::Task {
                id: 0,
                dest: AsId(1),
                attackers: vec![],
            }
        );
        assert_eq!(
            parse_worker_msg(&encode_shutdown()).unwrap(),
            WorkerMsg::Shutdown
        );
        assert!(parse_worker_msg("{\"type\":\"task\"}").is_err());
        assert!(parse_worker_msg("nonsense").is_err());

        let ready = encode_ready(&[4, 4, 4], 25);
        assert_eq!(json_u64s(&ready, "stats"), Some(vec![4, 4, 4]));
        assert_eq!(json_u64_field(&ready, "strata"), Some(25));

        let result = encode_result(3, &[1, u64::MAX, 0]);
        assert_eq!(json_u64_field(&result, "id"), Some(3));
        assert_eq!(json_u64s(&result, "data"), Some(vec![1, u64::MAX, 0]));

        let err = encode_error(2, "boom \"quoted\"\nline");
        assert_eq!(json_u64_field(&err, "id"), Some(2));
        assert_eq!(json_str_field(&err, "msg"), Some("boom  quoted  line"));
    }

    #[test]
    fn result_data_round_trips_bit_exactly() {
        let mut s = StratumStats::default();
        s.push(Bounds {
            lower: 0.123456789,
            upper: 0.987654321,
        });
        s.push(Bounds {
            lower: 1.0 / 3.0,
            upper: 2.0 / 7.0,
        });
        let mut data = Vec::new();
        for w in [&s.lower, &s.upper] {
            let (n, mean, m2) = w.raw();
            data.extend_from_slice(&[n, mean.to_bits(), m2.to_bits()]);
        }
        let text = encode_result(0, &data);
        let back = json_u64s(&text, "data").unwrap();
        assert_eq!(back, data);
        let decoded = decode_result_data(&back, &[1], 1);
        let d = &decoded[0][0][0];
        assert_eq!(d.lower.raw(), s.lower.raw());
        assert_eq!(d.upper.raw(), s.upper.raw());
        let mut merged = Welford::default();
        merged.merge(d.lower);
        assert_eq!(merged.raw(), s.lower.raw());
    }

    #[test]
    fn checksums_catch_any_flip() {
        let cell = "    {\n      \"schema\": \"campaign-cell-v1\",\n      \"pairs\": 300\n    }";
        let sum = checksum_hex(cell);
        let with = format!(
            "    {{\n      \"schema\": \"campaign-cell-v1\",\n      \"checksum\": \"{sum}\",\n      \"pairs\": 300\n    }}"
        );
        assert_eq!(verify_checksum(&with), ChecksumStatus::Valid);
        assert_eq!(verify_checksum(cell), ChecksumStatus::Missing);
        // Any single byte flip trips it — including inside the checksum
        // digits themselves. The one blind spot is bytes *after* the hex
        // value on the elided checksum line (its trailing comma), which
        // no self-embedded checksum can cover.
        let comma = with.find(&format!("{sum}\"")).unwrap() + sum.len() + 1;
        assert_eq!(with.as_bytes()[comma], b',');
        for i in 0..with.len() {
            if i == comma {
                continue;
            }
            let mut bytes = with.as_bytes().to_vec();
            bytes[i] ^= 0x01;
            if let Ok(s) = String::from_utf8(bytes) {
                assert_ne!(verify_checksum(&s), ChecksumStatus::Valid, "flip at {i}");
            }
        }
        assert_eq!(verify_checksum(""), ChecksumStatus::Missing);
    }
}
